//! Smoke test: every `examples/*.rs` target must run to completion.
//!
//! The example list is discovered from the `examples/` directory, so a
//! new example is covered automatically. Each one is executed through
//! `cargo run --example` (the binaries were already compiled as part of
//! `cargo test`, so this is mostly process startup plus the example's own
//! planning work).

use std::path::Path;
use std::process::Command;

fn example_names() -> Vec<String> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            if path.extension().is_some_and(|e| e == "rs") {
                Some(
                    path.file_stem()
                        .expect("file stem")
                        .to_string_lossy()
                        .into_owned(),
                )
            } else {
                None
            }
        })
        .collect();
    names.sort();
    names
}

#[test]
fn every_example_runs_successfully() {
    let names = example_names();
    assert!(
        names.len() >= 5,
        "expected at least the five seed examples, found {names:?}"
    );
    for name in &names {
        let output = Command::new(env!("CARGO"))
            .args(["run", "--quiet", "--example", name])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        assert!(
            output.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );
    }
}
