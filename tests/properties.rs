//! Property-based tests over the core invariants of the reproduction.
//!
//! The offline build environment has no proptest, so each property is
//! exercised over a seeded randomized sweep (deterministic per run): the
//! same invariants, driven by explicit case loops instead of a shrinker.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use temp_repro::graph::models::ModelZoo;
use temp_repro::graph::segment::SegmentKind;
use temp_repro::graph::workload::Workload;
use temp_repro::mapping::engines::MappingEngine;
use temp_repro::parallel::strategy::HybridConfig;
use temp_repro::parallel::tatp::TatpOrchestration;
use temp_repro::parallel::tspp::TsppOrchestration;
use temp_repro::sim::network::{ContentionSim, Flow};
use temp_repro::solver::dlws::Dlws;
use temp_repro::wsc::config::WaferConfig;
use temp_repro::wsc::fault::FaultMap;
use temp_repro::wsc::topology::{DieId, Mesh, RouteOrder};

/// Algorithm 1 invariants hold for every group size.
#[test]
fn tatp_invariants_hold() {
    for n in 1usize..48 {
        let orch = TatpOrchestration::build(n);
        let stats = orch.validate().expect("valid orchestration");
        assert!(stats.max_hop_distance <= 1, "n={n}");
        assert!(stats.peak_buffer <= 8, "n={n}");
    }
}

/// The naive ring is always valid too — it is just slow, not wrong.
#[test]
fn tspp_ring_is_correct() {
    for n in 1usize..32 {
        let orch = TsppOrchestration::build(n);
        let stats = orch.validate().expect("valid ring");
        assert!(stats.peak_buffer <= 2, "n={n}");
        if n >= 2 {
            assert_eq!(stats.max_hop_distance, n - 1, "n={n}");
        }
    }
}

/// XY routes have Manhattan length and valid link sequences.
#[test]
fn xy_routes_are_minimal() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..64 {
        let w = rng.gen_range(2u32..10);
        let h = rng.gen_range(2u32..8);
        let mesh = Mesh::new(w, h).unwrap();
        let n = mesh.die_count() as u32;
        let a = DieId(rng.gen_range(0u32..80) % n);
        let b = DieId(rng.gen_range(0u32..80) % n);
        let path = mesh.route(a, b, RouteOrder::XThenY);
        assert_eq!(
            path.len() as u32 - 1,
            mesh.manhattan(a, b),
            "{w}x{h} {a:?}->{b:?}"
        );
        assert!(mesh.path_links(&path).is_ok(), "{w}x{h} {a:?}->{b:?}");
    }
}

/// Max–min fair sharing never finishes earlier than the most loaded link
/// allows, and never later than full serialization.
#[test]
fn contention_bounds() {
    let cfg = WaferConfig::hpca();
    let mesh = cfg.mesh();
    let sim = ContentionSim::new(&cfg);
    for seed in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let flows: Vec<Flow> = (0..6)
            .map(|_| {
                let a = DieId(rng.gen_range(0u32..32));
                let b = DieId(rng.gen_range(0u32..32));
                Flow::xy(&mesh, a, b, rng.gen_range(1.0e6..64.0e6))
            })
            .collect();
        let report = sim.simulate(&flows);
        let lower = sim.congestion_lower_bound(&flows);
        // Store-and-forward upper bound: every flow fully serialized.
        let upper: f64 = flows.iter().map(|f| sim.solo_time(f)).sum::<f64>() + 1e-9;
        assert!(report.makespan + 1e-12 >= lower, "seed={seed}");
        assert!(report.makespan <= upper * 1.001, "seed={seed}");
    }
}

/// Fault-free maps keep all pairs mutually reachable; the rerouted path is
/// never shorter than the Manhattan distance.
#[test]
fn fault_reroutes_are_sane() {
    let cfg = WaferConfig::hpca();
    let mesh = cfg.mesh();
    let mut rng = StdRng::seed_from_u64(0xFA017);
    for seed in 0u64..50 {
        let rate = rng.gen_range(0.0f64..0.2);
        let faults = FaultMap::inject_link_faults(&mesh, rate, seed);
        if faults.is_connected(&mesh) {
            let path = faults.route_around(&mesh, DieId(0), DieId(31)).unwrap();
            assert!(
                path.len() as u32 > mesh.manhattan(DieId(0), DieId(31)),
                "rate={rate} seed={seed}"
            );
        }
    }
}

/// The heterogeneous segment-chain DP can only improve on uniform
/// replication: for every fig13 zoo model the solved chain objective is
/// at or below the cheapest uniform candidate (the DP can always pick the
/// uniform assignment), and on at least one model the chain legitimately
/// diverges — embedding or head under a different strategy than the
/// blocks — with a strictly lower total.
#[test]
fn segment_chain_dp_beats_uniform_replication_on_the_fig13_zoo() {
    let mut heterogeneous_wins = 0usize;
    for model in ModelZoo::table2() {
        let name = model.name.clone();
        let workload = Workload::for_model(&model);
        let solver = Dlws::new(WaferConfig::hpca(), model, workload);
        let plan = solver.solve().unwrap_or_else(|e| panic!("{name}: {e}"));

        // The uniform-replication baseline: the cheapest single candidate
        // applied to every segment of the chain.
        let uniform_best = solver
            .candidates()
            .iter()
            .map(|cfg| solver.cost_of(cfg, MappingEngine::Tcme).0)
            .filter(|t| t.is_finite())
            .fold(f64::INFINITY, f64::min);
        assert!(uniform_best.is_finite(), "{name}: no uniform plan");
        assert!(
            plan.chain_cost <= uniform_best * (1.0 + 1e-9),
            "{name}: chain {} above uniform baseline {}",
            plan.chain_cost,
            uniform_best
        );

        // The chain must be exactly the IR's shape.
        let kinds: Vec<SegmentKind> = plan.segments.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SegmentKind::Embedding,
                SegmentKind::Block,
                SegmentKind::Head
            ],
            "{name}"
        );

        if plan.is_heterogeneous() {
            assert!(
                plan.chain_cost < uniform_best * (1.0 - 1e-9),
                "{name}: heterogeneous chain must strictly beat uniform \
                 ({} vs {})",
                plan.chain_cost,
                uniform_best
            );
            heterogeneous_wins += 1;
        }
    }
    assert!(
        heterogeneous_wins >= 1,
        "no fig13 zoo model chose a non-uniform per-segment assignment"
    );
}

/// Pipeline-stage slices are a *partition* of the segment chain: for any
/// valid cut set, the per-stage sub-chains reproduce the expanded chain
/// exactly — no instance lost, duplicated or reordered — and conserve
/// parameters and FLOPs.
#[test]
fn stage_slices_partition_every_zoo_chain() {
    use temp_repro::graph::segment::SegmentChain;
    let mut rng = StdRng::seed_from_u64(0x57A6E);
    for model in ModelZoo::table2() {
        let workload = Workload::for_model(&model);
        let chain = SegmentChain::for_model(&model, &workload);
        let len = chain.expanded_len();
        for _ in 0..16 {
            // A random strictly-increasing interior cut set.
            let n_cuts = rng.gen_range(1..6u64);
            let mut cuts: Vec<u64> = (0..n_cuts).map(|_| rng.gen_range(1..len)).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let stages = chain
                .split_at(&cuts)
                .unwrap_or_else(|| panic!("{}: cuts {cuts:?}", model.name));
            assert_eq!(stages.len(), cuts.len() + 1, "{}", model.name);
            // Exact partition: expanded kinds concatenate to the chain's.
            let expanded: Vec<_> = stages
                .iter()
                .flat_map(|s| {
                    s.segments()
                        .iter()
                        .flat_map(|seg| std::iter::repeat_n(seg.kind, seg.count as usize))
                })
                .collect();
            let reference: Vec<_> = (0..len).map(|i| chain.kind_at(i).unwrap()).collect();
            assert_eq!(expanded, reference, "{}: cuts {cuts:?}", model.name);
            // Conservation of params and FLOPs across the partition.
            let params: u64 = stages.iter().map(SegmentChain::total_params).sum();
            assert_eq!(params, chain.total_params(), "{}", model.name);
            let flops = |c: &SegmentChain| -> f64 {
                c.segments().iter().map(|s| s.count as f64 * s.flops).sum()
            };
            let split_flops: f64 = stages.iter().map(flops).sum();
            assert!(
                (split_flops - flops(&chain)).abs() <= 1e-6 * flops(&chain),
                "{}",
                model.name
            );
            // Every cut's boundary tensor is priced from its producer.
            for &cut in &cuts {
                assert!(
                    chain.boundary_activation_bytes(cut).unwrap() > 0.0,
                    "{}: cut {cut}",
                    model.name
                );
            }
        }
    }
}

/// The stage-partitioned multi-wafer planner against the retained
/// uniform-multiplier costing, zoo-wide at two wafers: the stage plan is
/// never slower, and is strictly faster wherever the chain is
/// heterogeneous or the end segments overlap inside the pipeline (which
/// the fig13 zoo always exercises). One wafer must reproduce the
/// single-wafer plan bit-for-bit.
#[test]
fn stage_partitioned_plans_dominate_the_uniform_multiplier_zoo_wide() {
    use temp_repro::core::baselines::BaselineSystem;
    use temp_repro::core::framework::Temp;
    use temp_repro::wsc::multiwafer::MultiWaferSystem;

    let mut strict_wins = 0usize;
    for model in ModelZoo::table2() {
        let name = model.name.clone();
        let temp = Temp::hpca(model);
        let system = BaselineSystem::temp();

        // Two wafers (2 divides every zoo model's layer count, so the
        // uniform fractional stage split is realizable as integer cuts).
        let wafers = MultiWaferSystem::new(temp.wafer().clone(), 2).unwrap();
        let staged = temp.evaluate_multiwafer(&system, &wafers, 1);
        let uniform = temp.evaluate_multiwafer_uniform(&system, &wafers, 1);
        assert!(!staged.oom, "{name}");
        assert!(!uniform.oom, "{name}");
        assert!(
            staged.step_time() <= uniform.step_time() * (1.0 + 1e-9),
            "{name}: staged {} above uniform {}",
            staged.step_time(),
            uniform.step_time()
        );
        if staged.step_time() < uniform.step_time() * (1.0 - 1e-9) {
            strict_wins += 1;
        }

        // One wafer, one stage: bit-for-bit the single-wafer plan.
        let one = MultiWaferSystem::new(temp.wafer().clone(), 1).unwrap();
        let multi = temp.evaluate_multiwafer(&system, &one, 1);
        let single = temp.evaluate_system(&system);
        let plan = multi.plan.as_ref().unwrap_or_else(|| panic!("{name}"));
        assert_eq!(
            Some(&plan.body),
            single.plan.as_ref(),
            "{name}: one-wafer body must equal the single-wafer plan"
        );
        assert_eq!(multi.step_time(), single.step_time(), "{name}");
        assert_eq!(plan.handoff_time, 0.0, "{name}");
    }
    assert!(
        strict_wins >= 1,
        "no zoo model improved on the uniform-multiplier plan"
    );
}

/// Hybrid configuration enumeration always covers the die count.
#[test]
fn enumerated_tuples_cover_dies() {
    for exp in 2u32..7 {
        let dies = 1usize << exp;
        for cfg in HybridConfig::enumerate_tuples(dies, false) {
            assert_eq!(cfg.intra_wafer_degree(), dies, "dies={dies}");
            assert!(cfg.validate(dies).is_ok(), "dies={dies}");
        }
    }
}

/// The expert-parallel degree is a *factor* of the die array, never an
/// overlay: for every enumerated tuple — MoE enumerations included —
/// `ep x intra_wafer_degree` exactly covers (and so never exceeds) the
/// die count.
#[test]
fn expert_parallel_degree_never_exceeds_the_die_budget() {
    use temp_repro::solver::search::SearchContext;
    for exp in 2u32..7 {
        let dies = 1usize << exp;
        for max_ep in [1usize, 2, 8, 64] {
            for fsdp in [false, true] {
                for cfg in HybridConfig::enumerate_tuples_ep(dies, fsdp, max_ep) {
                    assert!(
                        cfg.ep * cfg.intra_wafer_degree() <= dies,
                        "dies={dies} max_ep={max_ep}: {cfg}"
                    );
                    assert_eq!(cfg.ep * cfg.intra_wafer_degree(), dies);
                    assert!(cfg.validate(dies).is_ok());
                    assert!(cfg.ep <= max_ep);
                }
            }
        }
    }
    // The solver's MoE candidate space obeys the same budget, capped at
    // the model's expert count.
    for model in ModelZoo::moe_zoo() {
        let experts = model.moe.unwrap().num_experts as usize;
        for cfg in SearchContext::enumerate_moe_candidates(32, experts) {
            assert!(cfg.ep * cfg.intra_wafer_degree() <= 32, "{cfg}");
            assert!(cfg.ep <= experts, "{cfg}");
        }
    }
}

/// Mixed dense/MoE chains slice exactly like dense ones: every stage
/// slicing partitions the expanded chain (no instance lost, duplicated
/// or reordered; params conserved), and the boundary tensor after a MoE
/// instance is the combine output — the residual stream `B x S x H`, not
/// the routed expert copies.
#[test]
fn mixed_chains_partition_exactly_and_bound_with_the_combine_output() {
    use temp_repro::graph::segment::SegmentChain;
    let mut rng = StdRng::seed_from_u64(0x40E5);
    for model in ModelZoo::moe_zoo() {
        let workload = Workload::for_model(&model);
        let chain = SegmentChain::for_model(&model, &workload);
        let len = chain.expanded_len();
        assert_eq!(len, model.layers + 2, "{}", model.name);
        // The combine-output identity at every MoE boundary.
        let sbh = workload.micro_batch_size() as f64
            * workload.seq_len as f64
            * model.hidden as f64
            * workload.compute_dtype.bytes() as f64;
        for cut in 1..len {
            let produced_by_moe = chain.kind_at(cut - 1) == Some(SegmentKind::MoeBlock);
            let bytes = chain.boundary_activation_bytes(cut).unwrap();
            assert_eq!(bytes, sbh, "{}: cut {cut}", model.name);
            if produced_by_moe {
                // The stored activations of a MoE instance are far larger
                // than its boundary tensor: the cut moves the combine
                // output only.
                let moe = chain.find(SegmentKind::MoeBlock).unwrap();
                assert!(moe.activation_bytes > bytes, "{}", model.name);
            }
        }
        // Random stage slicings partition the chain exactly.
        for _ in 0..16 {
            let n_cuts = rng.gen_range(1..6u64);
            let mut cuts: Vec<u64> = (0..n_cuts).map(|_| rng.gen_range(1..len)).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let stages = chain
                .split_at(&cuts)
                .unwrap_or_else(|| panic!("{}: cuts {cuts:?}", model.name));
            let expanded: Vec<_> = stages
                .iter()
                .flat_map(|s| {
                    s.segments()
                        .iter()
                        .flat_map(|seg| std::iter::repeat_n(seg.kind, seg.count as usize))
                })
                .collect();
            let reference: Vec<_> = (0..len).map(|i| chain.kind_at(i).unwrap()).collect();
            assert_eq!(expanded, reference, "{}: cuts {cuts:?}", model.name);
            let params: u64 = stages.iter().map(SegmentChain::total_params).sum();
            assert_eq!(params, chain.total_params(), "{}", model.name);
        }
    }
}

/// The stage-partitioned planner on MoE chains, two wafers: never worse
/// than the uniform-multiplier baseline (which serializes the ends and
/// prices every stage border at inter-wafer cost), and the weighted cuts
/// keep every wafer non-empty while the chain partitions exactly.
#[test]
fn stage_plans_dominate_uniform_on_moe_chains_at_two_wafers() {
    use temp_repro::core::baselines::BaselineSystem;
    use temp_repro::core::framework::Temp;
    use temp_repro::wsc::multiwafer::MultiWaferSystem;

    for model in ModelZoo::moe_zoo() {
        let name = model.name.clone();
        let temp = Temp::hpca(model);
        let system = BaselineSystem::temp();
        let wafers = MultiWaferSystem::new(temp.wafer().clone(), 2).unwrap();
        let staged = temp.evaluate_multiwafer(&system, &wafers, 1);
        let uniform = temp.evaluate_multiwafer_uniform(&system, &wafers, 1);
        assert!(!staged.oom, "{name}");
        assert!(!uniform.oom, "{name}");
        assert!(
            staged.step_time() <= uniform.step_time() * (1.0 + 1e-9),
            "{name}: staged {} above uniform {}",
            staged.step_time(),
            uniform.step_time()
        );
        let plan = staged.plan.as_ref().unwrap();
        assert_eq!(plan.stage_count(), 2, "{name}");
        // The stage slices reassemble the whole mixed chain.
        let total: u64 = plan.stages.iter().map(|st| st.chain.expanded_len()).sum();
        assert_eq!(total, model_chain_len(&temp), "{name}");
        // Both wafers carry interior instances and the MoE run appears in
        // the slices.
        for st in &plan.stages {
            assert!(st.chain.expanded_len() > 0, "{name}");
        }
        let moe_in_stages: u64 = plan
            .stages
            .iter()
            .filter_map(|st| st.chain.find(SegmentKind::MoeBlock).map(|s| s.count))
            .sum();
        assert_eq!(
            moe_in_stages,
            temp.model().moe_layer_count(),
            "{name}: MoE instances must partition across stages"
        );
    }

    fn model_chain_len(temp: &temp_repro::core::framework::Temp) -> u64 {
        temp.model().layers + 2
    }
}

/// Per seed, the re-solved plan's cost never improves as the link-fault
/// rate rises: dead-link sets nest per seed, every candidate's degraded
/// cost is monotone in the fault set, and the solver minimizes over a
/// space that faults can only shrink. Infeasible (disconnected) points
/// dominate everything before them.
#[test]
fn resolved_throughput_is_monotone_in_link_fault_rate_per_seed() {
    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    let wafer = WaferConfig::hpca();
    let solver = Dlws::new(wafer.clone(), model, workload);
    let mesh = wafer.mesh();
    for seed in [7u64, 23, 1009] {
        let mut prev = (0.0f64, 0.0f64);
        for rate in [0.0, 0.1, 0.2, 0.3, 0.5] {
            let faults = FaultMap::inject_link_faults(&mesh, rate, seed);
            let cost = match solver.resolve_degraded(&faults) {
                Ok(plan) => {
                    assert!(plan.report.fits_memory, "seed {seed} rate {rate}");
                    plan.chain_cost
                }
                Err(_) => f64::INFINITY,
            };
            let (prev_rate, prev_cost) = prev;
            assert!(
                cost >= prev_cost * (1.0 - 1e-6),
                "seed {seed}: cost fell from {prev_cost} at rate {prev_rate} \
                 to {cost} at rate {rate}"
            );
            prev = (rate, cost);
        }
    }
}

/// Rerouted degraded-fabric traffic never touches a dead link: every
/// surviving neighbor flow is routed over live links only, and the only
/// way to get no flows at all is a disconnected mesh.
#[test]
fn rerouted_flows_never_cross_dead_links() {
    use temp_repro::sim::network::rerouted_neighbor_flows;
    let mut rng = StdRng::seed_from_u64(0xFA017);
    for _ in 0..48 {
        let w = rng.gen_range(2u32..8);
        let h = rng.gen_range(2u32..6);
        let mesh = Mesh::new(w, h).unwrap();
        let rate = rng.gen_range(0.0..0.6);
        let seed = rng.gen_range(0u64..1 << 32);
        let faults = FaultMap::inject_link_faults(&mesh, rate, seed);
        match rerouted_neighbor_flows(&mesh, &faults, (1u64 << 20) as f64) {
            Some(flows) => {
                assert!(!flows.is_empty());
                for f in &flows {
                    assert!(
                        !f.crosses_dead_link(&faults),
                        "{w}x{h} rate {rate:.2} seed {seed}: flow {:?}->{:?} \
                         rides a dead link",
                        f.src,
                        f.dst
                    );
                }
            }
            None => assert!(
                !faults.is_connected(&mesh),
                "{w}x{h} rate {rate:.2} seed {seed}: flows only vanish when \
                 the mesh disconnects"
            ),
        }
    }
}

/// The bound-pruned chain search returns the exhaustive winner
/// bit-for-bit on every fig13 zoo model, dense and MoE. The pruned solve
/// runs first (cold); pruning is then disabled on the **same** context,
/// so the exhaustive pass re-costs exactly the pruned holes with the
/// exact model — a wrongly pruned optimum would win the second solve and
/// the plans would differ. Sharing the context keeps the comparison
/// bit-exact: the winning report is literally the same cached evaluation.
#[test]
fn bound_pruned_search_is_bit_identical_to_exhaustive_zoo_wide() {
    let mut pruned_total = 0u64;
    for model in ModelZoo::table2().into_iter().chain(ModelZoo::moe_zoo()) {
        let name = model.name.clone();
        let workload = Workload::for_model(&model);
        let solver = Dlws::new(WaferConfig::hpca(), model, workload);
        let pruned = solver.solve().expect("pruned solve");
        pruned_total += solver.context().stats().pruned_candidates();
        solver.context().set_pruning(false);
        let exhaustive = solver.solve().expect("exhaustive solve");
        assert_eq!(pruned, exhaustive, "{name}");
    }
    assert!(
        pruned_total > 0,
        "the property is vacuous if nothing was ever pruned"
    );
}

/// Pruned and exhaustive two-wafer staged plans agree: the staged
/// planner's pre-costing and pp=1 solves ride the bound-pruned chain
/// path, so filling every pruned hole with exact costs must not change
/// any stage assignment.
#[test]
fn bound_pruned_staged_plans_match_exhaustive_at_two_wafers() {
    use temp_repro::core::baselines::BaselineSystem;
    use temp_repro::core::framework::Temp;
    use temp_repro::wsc::multiwafer::MultiWaferSystem;

    for model in [ModelZoo::gpt3_6_7b(), ModelZoo::deepseek_moe_16b()] {
        let name = model.name.clone();
        let temp = Temp::hpca(model);
        let system = BaselineSystem::temp();
        let wafers = MultiWaferSystem::new(temp.wafer().clone(), 2).unwrap();
        let pruned = temp.evaluate_multiwafer(&system, &wafers, 1);
        temp.solver().context().set_pruning(false);
        let exhaustive = temp.evaluate_multiwafer(&system, &wafers, 1);
        assert_eq!(pruned, exhaustive, "{name}");
    }
}

/// On seeded degraded fabrics the pruned re-solve and the exhaustive
/// re-solve pick the same plan, and infeasibility verdicts agree — the
/// bounds stay admissible under fault-derated bandwidth, shrunken HBM,
/// and rerouted links.
#[test]
fn bound_pruned_degraded_resolves_match_exhaustive_per_seed() {
    use temp_repro::solver::faultcamp::FaultKind;

    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    let wafer = WaferConfig::hpca();
    let solver = Dlws::new(wafer.clone(), model, workload);
    let mesh = wafer.mesh();
    for kind in [FaultKind::Link, FaultKind::Core] {
        for (rate, s) in [(0.1, 3), (0.25, 7), (0.4, 11)] {
            let faults = kind.inject(&mesh, rate, kind.seed_base() + s);
            let degraded = solver.degraded(&faults);
            let pruned = degraded.solve();
            degraded.context().set_pruning(false);
            let exhaustive = degraded.solve();
            match (pruned, exhaustive) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{kind:?} rate {rate} seed {s}")
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!(
                    "{kind:?} rate {rate} seed {s}: feasibility diverged \
                     (pruned ok={}, exhaustive ok={})",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}

/// Seeding the incumbent with a known-good configuration (as the
/// campaign harness does with the previous rate point's winner) is a
/// pure accelerator: the winner and its cost are unchanged.
#[test]
fn incumbent_seeding_never_changes_the_winner() {
    let model = ModelZoo::gpt3_6_7b();
    let wafer = WaferConfig::hpca();
    let workload = Workload::for_model(&model);
    let baseline = Dlws::new(wafer.clone(), model.clone(), workload.clone())
        .solve()
        .expect("baseline solve");

    let seeded = Dlws::new(wafer, model, workload);
    seeded.context().set_bound_seeds(vec![baseline.config]);
    let plan = seeded.solve().expect("seeded solve");
    assert_eq!(plan.config, baseline.config);
    // Fresh contexts re-fold HashMap-ordered sums, so the cost matches
    // up to float association, not bitwise.
    assert!(
        (plan.chain_cost - baseline.chain_cost).abs() <= 1e-9 * baseline.chain_cost,
        "{} vs {}",
        plan.chain_cost,
        baseline.chain_cost
    );
}

/// Every chain bound is admissible on a sampled candidate grid: the
/// lower bound never exceeds the exact block row, and `feasible = false`
/// is only claimed when the exact path indeed returns infinity.
#[test]
fn chain_bounds_are_admissible_on_a_sampled_grid() {
    for model in [ModelZoo::gpt3_6_7b(), ModelZoo::deepseek_moe_16b()] {
        let name = model.name.clone();
        let workload = Workload::for_model(&model);
        let solver = Dlws::new(WaferConfig::hpca(), model, workload);
        let ctx = solver.context();
        let mut rng = StdRng::seed_from_u64(0xB0D5);
        let sampled: Vec<HybridConfig> = ctx
            .candidates()
            .iter()
            .filter(|_| rng.gen_bool(0.6))
            .copied()
            .collect();
        assert!(sampled.len() > 20, "{name}: sample too small to mean much");
        let bounds = ctx.cost_model().chain_bounds(&sampled);
        let costs = ctx.cost_candidates_exact(&sampled, MappingEngine::Tcme);
        for ((cfg, b), (t, report)) in sampled.iter().zip(&bounds).zip(&costs) {
            if !b.feasible {
                assert!(
                    !t.is_finite(),
                    "{name} {cfg:?}: bound claims infeasible, exact found {t}"
                );
                continue;
            }
            if let Some((_, r)) = report {
                assert!(
                    b.lb_block <= r.block_time() * (1.0 + 1e-9),
                    "{name} {cfg:?}: bound {} above exact block row {}",
                    b.lb_block,
                    r.block_time()
                );
            }
        }
    }
}

/// A fault map with no faults is not a different planning problem: the
/// degraded re-solve entry point must reproduce the healthy plan
/// bit-for-bit, answered from the same warm context.
#[test]
fn healthy_fault_map_reproduces_the_healthy_plan_bit_for_bit() {
    for model in [ModelZoo::gpt3_6_7b(), ModelZoo::llama2_7b()] {
        let name = model.name.clone();
        let workload = Workload::for_model(&model);
        let wafer = WaferConfig::hpca();
        let solver = Dlws::new(wafer.clone(), model, workload);
        let healthy = FaultMap::healthy(&wafer.mesh());
        let baseline = solver.solve().expect("healthy plan");
        let resolved = solver.resolve_degraded(&healthy).expect("healthy re-solve");
        assert_eq!(resolved, baseline, "{name}");
    }
}

/// The batched SoA costing engine is bit-identical to per-candidate
/// sequential evaluation across the dense and MoE zoos, in both the
/// workload's native recompute mode and the Full escalation mode: both
/// paths run the same hoisted core, so every `Ok` report must compare
/// equal field-for-field and every `Err` must carry the same message.
#[test]
fn evaluate_batch_matches_sequential_evaluation_zoo_wide() {
    use temp_repro::graph::workload::RecomputeMode;

    for model in ModelZoo::table2().into_iter().chain(ModelZoo::moe_zoo()) {
        let name = model.name.clone();
        let workload = Workload::for_model(&model);
        let solver = Dlws::new(WaferConfig::hpca(), model, workload);
        let ctx = solver.context();
        let cost = ctx.cost_model();
        let mut rng = StdRng::seed_from_u64(0xBA7C4);
        let sampled: Vec<HybridConfig> = ctx
            .candidates()
            .iter()
            .filter(|_| rng.gen_bool(0.4))
            .copied()
            .collect();
        assert!(sampled.len() > 10, "{name}: sample too small to mean much");
        for mode in [cost.workload().recompute, RecomputeMode::Full] {
            let w = cost.workload().clone().with_recompute(mode);
            let batched = cost.evaluate_batch(&sampled, MappingEngine::Tcme, &w);
            for (cfg, got) in sampled.iter().zip(batched) {
                let want = cost.evaluate_with(cfg, MappingEngine::Tcme, &w);
                match (got, want) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "{name} {cfg:?} {mode:?}"),
                    (Err(a), Err(b)) => assert_eq!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "{name} {cfg:?} {mode:?}"
                    ),
                    (a, b) => panic!(
                        "{name} {cfg:?} {mode:?}: outcomes diverged \
                         (batched ok={}, sequential ok={})",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }
}

/// The batch path is also bit-identical on staged (pp=2) candidate
/// grids — the shapes the two-wafer staged planner costs — for a dense
/// and an MoE model.
#[test]
fn evaluate_batch_matches_sequential_evaluation_staged() {
    for model in [ModelZoo::gpt3_6_7b(), ModelZoo::deepseek_moe_16b()] {
        let name = model.name.clone();
        let workload = Workload::for_model(&model);
        let solver = Dlws::new(WaferConfig::hpca(), model, workload);
        let ctx = solver.context();
        let cost = ctx.cost_model();
        let staged = ctx.candidates_with_pp(2);
        assert!(!staged.is_empty(), "{name}: no pp=2 candidates");
        let w = cost.workload().clone();
        let batched = cost.evaluate_batch(&staged, MappingEngine::Tcme, &w);
        for (cfg, got) in staged.iter().zip(batched) {
            let want = cost.evaluate_with(cfg, MappingEngine::Tcme, &w);
            match (got, want) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{name} {cfg:?}"),
                (Err(a), Err(b)) => {
                    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{name} {cfg:?}")
                }
                (a, b) => panic!(
                    "{name} {cfg:?}: outcomes diverged \
                     (batched ok={}, sequential ok={})",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}

/// On seeded Link and Core fault maps the derated cost model's batch
/// path still matches sequential evaluation bit-for-bit — the mapping
/// memo and hoisted scalars are per-model state, so fault derating must
/// flow through both paths identically.
#[test]
fn evaluate_batch_matches_sequential_evaluation_degraded() {
    use temp_repro::solver::faultcamp::FaultKind;

    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    let wafer = WaferConfig::hpca();
    let solver = Dlws::new(wafer.clone(), model, workload);
    let mesh = wafer.mesh();
    for kind in [FaultKind::Link, FaultKind::Core] {
        for (rate, s) in [(0.1, 3), (0.25, 7), (0.4, 11)] {
            let faults = kind.inject(&mesh, rate, kind.seed_base() + s);
            let degraded = solver.degraded(&faults);
            let ctx = degraded.context();
            let cost = ctx.cost_model();
            let mut rng = StdRng::seed_from_u64(0xDE6 + s);
            let sampled: Vec<HybridConfig> = ctx
                .candidates()
                .iter()
                .filter(|_| rng.gen_bool(0.3))
                .copied()
                .collect();
            let w = cost.workload().clone();
            let batched = cost.evaluate_batch(&sampled, MappingEngine::Tcme, &w);
            for (cfg, got) in sampled.iter().zip(batched) {
                let want = cost.evaluate_with(cfg, MappingEngine::Tcme, &w);
                match (got, want) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "{kind:?} rate {rate} seed {s} {cfg:?}")
                    }
                    (Err(a), Err(b)) => assert_eq!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "{kind:?} rate {rate} seed {s} {cfg:?}"
                    ),
                    (a, b) => panic!(
                        "{kind:?} rate {rate} seed {s} {cfg:?}: outcomes \
                         diverged (batched ok={}, sequential ok={})",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }
}

/// Warm-started contention fixed points match cold solves on 48 random
/// meshes: after seeding from one equilibrium, a proportional payload
/// rescale reproduces the cold per-flow completions and makespan to
/// 1e-9 relative, and a non-proportional perturbation falls back to a
/// bit-identical cold solve.
#[test]
fn warm_started_fixed_points_match_cold_solves_on_random_meshes() {
    use temp_repro::sim::network::WarmStart;

    let mut rng = StdRng::seed_from_u64(0x3A11);
    for case in 0..48 {
        let w = rng.gen_range(2u32..9);
        let h = rng.gen_range(2u32..7);
        let wafer = WaferConfig {
            mesh_width: w,
            mesh_height: h,
            ..WaferConfig::hpca()
        };
        let mesh = wafer.mesh();
        let sim = ContentionSim::new(&wafer);
        let n = mesh.die_count() as u32;
        let flows: Vec<Flow> = (0..rng.gen_range(3usize..12))
            .map(|_| {
                Flow::xy(
                    &mesh,
                    DieId(rng.gen_range(0u32..n)),
                    DieId(rng.gen_range(0u32..n)),
                    rng.gen_range(1.0e6..64.0e6),
                )
            })
            .collect();

        let mut warm = WarmStart::new();
        let seeded = sim.simulate_warm(&flows, &mut warm);
        assert_eq!(
            seeded.makespan.to_bits(),
            sim.simulate(&flows).makespan.to_bits(),
            "case {case} ({w}x{h}): cold seed must be bit-identical"
        );
        assert!(warm.is_seeded());

        let scale = rng.gen_range(0.2..6.0);
        let scaled: Vec<Flow> = flows
            .iter()
            .map(|f| {
                let mut f = f.clone();
                f.bytes *= scale;
                f
            })
            .collect();
        let warm_report = sim.simulate_warm(&scaled, &mut warm);
        let cold = sim.simulate(&scaled);
        let reference = sim.simulate_reference(&scaled);
        for (i, ((a, b), r)) in warm_report
            .completion
            .iter()
            .zip(&cold.completion)
            .zip(&reference.completion)
            .enumerate()
        {
            let tol = 1e-9 * b.abs().max(1.0);
            assert!(
                (a - b).abs() <= tol,
                "case {case} ({w}x{h}) flow {i}: warm {a} vs cold {b}"
            );
            assert!(
                (a - r).abs() <= tol,
                "case {case} ({w}x{h}) flow {i}: warm {a} vs reference {r}"
            );
        }
        let tol = 1e-9 * cold.makespan.abs().max(1.0);
        assert!(
            (warm_report.makespan - cold.makespan).abs() <= tol,
            "case {case} ({w}x{h}): warm makespan {} vs cold {}",
            warm_report.makespan,
            cold.makespan
        );

        // A non-proportional perturbation must not be served warm: the
        // fallback is a cold solve, bit-identical by construction.
        let mut perturbed = scaled.clone();
        if let Some(f) = perturbed.first_mut() {
            f.bytes *= 1.0 + 0.37;
        }
        let fallback = sim.simulate_warm(&perturbed, &mut warm);
        let cold_perturbed = sim.simulate(&perturbed);
        assert_eq!(
            fallback.makespan.to_bits(),
            cold_perturbed.makespan.to_bits(),
            "case {case} ({w}x{h}): non-proportional fallback must be cold"
        );
    }
}
