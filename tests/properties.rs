//! Property-based tests over the core invariants of the reproduction.

use proptest::prelude::*;

use temp_repro::parallel::strategy::HybridConfig;
use temp_repro::parallel::tatp::TatpOrchestration;
use temp_repro::parallel::tspp::TsppOrchestration;
use temp_repro::sim::network::{ContentionSim, Flow};
use temp_repro::wsc::config::WaferConfig;
use temp_repro::wsc::fault::FaultMap;
use temp_repro::wsc::topology::{DieId, Mesh, RouteOrder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 invariants hold for every group size.
    #[test]
    fn tatp_invariants_hold(n in 1usize..48) {
        let orch = TatpOrchestration::build(n);
        let stats = orch.validate().expect("valid orchestration");
        prop_assert!(stats.max_hop_distance <= 1);
        prop_assert!(stats.peak_buffer <= 8);
    }

    /// The naive ring is always valid too — it is just slow, not wrong.
    #[test]
    fn tspp_ring_is_correct(n in 1usize..32) {
        let orch = TsppOrchestration::build(n);
        let stats = orch.validate().expect("valid ring");
        prop_assert!(stats.peak_buffer <= 2);
        if n >= 2 {
            prop_assert_eq!(stats.max_hop_distance, n - 1);
        }
    }

    /// XY routes have Manhattan length and valid link sequences.
    #[test]
    fn xy_routes_are_minimal(w in 2u32..10, h in 2u32..8, a in 0u32..80, b in 0u32..80) {
        let mesh = Mesh::new(w, h).unwrap();
        let n = mesh.die_count() as u32;
        let (a, b) = (DieId(a % n), DieId(b % n));
        let path = mesh.route(a, b, RouteOrder::XThenY);
        prop_assert_eq!(path.len() as u32 - 1, mesh.manhattan(a, b));
        prop_assert!(mesh.path_links(&path).is_ok());
    }

    /// Max–min fair sharing never finishes earlier than the most loaded
    /// link allows, and never later than full serialization.
    #[test]
    fn contention_bounds(seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let cfg = WaferConfig::hpca();
        let mesh = cfg.mesh();
        let sim = ContentionSim::new(&cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let flows: Vec<Flow> = (0..6)
            .map(|_| {
                let a = DieId(rng.gen_range(0..32));
                let b = DieId(rng.gen_range(0..32));
                Flow::xy(&mesh, a, b, rng.gen_range(1.0e6..64.0e6))
            })
            .collect();
        let report = sim.simulate(&flows);
        let lower = sim.congestion_lower_bound(&flows);
        // Store-and-forward upper bound: every flow fully serialized.
        let upper: f64 = flows.iter().map(|f| sim.solo_time(f)).sum::<f64>() + 1e-9;
        prop_assert!(report.makespan + 1e-12 >= lower);
        prop_assert!(report.makespan <= upper * 1.001);
    }

    /// Fault-free maps keep all pairs mutually reachable; the rerouted path
    /// is never shorter than the Manhattan distance.
    #[test]
    fn fault_reroutes_are_sane(rate in 0.0f64..0.2, seed in 0u64..50) {
        let cfg = WaferConfig::hpca();
        let mesh = cfg.mesh();
        let faults = FaultMap::inject_link_faults(&mesh, rate, seed);
        if faults.is_connected(&mesh) {
            let path = faults.route_around(&mesh, DieId(0), DieId(31)).unwrap();
            prop_assert!(path.len() as u32 - 1 >= mesh.manhattan(DieId(0), DieId(31)));
        }
    }

    /// Hybrid configuration enumeration always covers the die count.
    #[test]
    fn enumerated_tuples_cover_dies(exp in 2u32..7) {
        let dies = 1usize << exp;
        for cfg in HybridConfig::enumerate_tuples(dies, false) {
            prop_assert_eq!(cfg.intra_wafer_degree(), dies);
            prop_assert!(cfg.validate(dies).is_ok());
        }
    }
}
