//! Integration tests for the two-tier search pipeline and the dense-link
//! contention fast path.
//!
//! * The surrogate gate must be *safe*: across the fig13 model zoo the
//!   gated search returns the same [`ExecutionPlan`] as exhaustive exact
//!   search (the exact winner always survives the gate).
//! * The dense-link `ContentionSim` must be a pure re-implementation:
//!   it agrees with the retained `HashMap` reference to 1e-9 relative on
//!   fig05-style contended flow sets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use temp_repro::graph::models::ModelZoo;
use temp_repro::graph::workload::Workload;
use temp_repro::sim::network::{ContentionSim, Flow};
use temp_repro::solver::cost::WaferCostModel;
use temp_repro::solver::dlws::Dlws;
use temp_repro::solver::search::{CostTier, SearchContext};
use temp_repro::wsc::config::WaferConfig;
use temp_repro::wsc::topology::DieId;
use temp_repro::wsc::units::MB;

/// Paper §VII-A / Fig. 21: the surrogate accelerates the search without
/// changing its answer. For every fig13 zoo model the gated solve (cold
/// context) must select the identical plan to exhaustive exact search.
/// Both solves share one context, so the comparison is bit-exact: the
/// winning report is literally the same cached evaluation.
#[test]
fn gated_search_matches_exhaustive_on_the_fig13_zoo() {
    for model in ModelZoo::table2() {
        let name = model.name.clone();
        let workload = Workload::for_model(&model);
        let ctx = std::sync::Arc::new(SearchContext::new(WaferCostModel::new(
            WaferConfig::hpca(),
            model,
            workload,
        )));
        let solver = Dlws::from_context(ctx.clone());

        // Gated solve first, on the cold context.
        ctx.set_cost_tier(CostTier::SurrogateGated);
        let gated = solver.solve().unwrap_or_else(|e| panic!("{name}: {e}"));
        let after_gated = ctx.stats();

        // Exhaustive solve on the same context: only the candidates the
        // gate pruned still need costing. Bound pruning is disabled so
        // the reference really is exhaustive — with it on, the incumbent
        // from the gate's own evaluations can prune every remaining
        // candidate, and "strictly fewer misses" no longer discriminates.
        ctx.set_pruning(false);
        ctx.set_cost_tier(CostTier::Exact);
        let exact = solver.solve().unwrap_or_else(|e| panic!("{name}: {e}"));
        let after_exact = ctx.stats();

        assert_eq!(
            gated, exact,
            "{name}: gated plan must equal the exhaustive plan"
        );
        assert!(
            after_gated.gate_pruned > 0,
            "{name}: the gate never engaged ({after_gated:?})"
        );
        assert!(
            after_gated.misses < after_exact.misses,
            "{name}: the gated solve must cost strictly fewer candidates \
             ({after_gated:?} vs {after_exact:?})"
        );
    }
}

/// The winner-retention guarantee must hold on *heterogeneous* chains:
/// when the exact solve assigns the embedding or head a different
/// strategy than the blocks, the gated solve must reproduce the identical
/// per-segment assignment — not merely the same block winner. The
/// chain-aware surrogate features plus the gate's closed-form chain
/// correction are what make this hold.
#[test]
fn gated_matches_exact_on_a_heterogeneous_chain() {
    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    // One shared context so the comparison is bit-exact (re-evaluating a
    // key in a fresh context agrees only up to float association).
    let ctx = std::sync::Arc::new(SearchContext::new(WaferCostModel::new(
        WaferConfig::hpca(),
        model,
        workload,
    )));
    let solver = Dlws::from_context(ctx.clone());

    // Gated solve first, on the cold context, so the gate really prunes.
    ctx.set_cost_tier(CostTier::SurrogateGated);
    let gated = solver.solve().expect("gated plan");
    assert!(
        ctx.stats().gate_pruned > 0,
        "the gate never engaged: {:?}",
        ctx.stats()
    );

    ctx.set_cost_tier(CostTier::Exact);
    let exact = solver.solve().expect("exact plan");
    assert!(
        exact.is_heterogeneous(),
        "GPT-3 6.7B must exercise the heterogeneous chain: {:?}",
        exact
            .segments
            .iter()
            .map(|s| s.config.label())
            .collect::<Vec<_>>()
    );
    assert!(
        exact.chain_cost < exact.report.step_time,
        "heterogeneous chain must beat the uniform evaluation \
         ({} vs {})",
        exact.chain_cost,
        exact.report.step_time
    );
    assert_eq!(
        exact.segments, gated.segments,
        "gated solve must reproduce the exact per-segment assignment"
    );
    assert_eq!(exact, gated, "gated and exact plans must be identical");
}

/// The winner-retention guarantee on **MoE chains**: for every MoE zoo
/// model the gated solve (cold context) must select the identical plan —
/// including the per-segment assignment, where the MoE run picks an
/// expert-parallel tuple — to exhaustive exact search. On mixed chains
/// the gate trains its predictor on the dense block-only residual and
/// adds the tier-independent segment rows in closed form (the MoE row
/// dominates the step time, so a total-time target would bury the block
/// signal the ranking has to discriminate); this test is what holds that
/// construction to the same bar as the dense zoo.
#[test]
fn gated_search_matches_exhaustive_on_the_moe_zoo() {
    for model in ModelZoo::moe_zoo() {
        let name = model.name.clone();
        let workload = Workload::for_model(&model);
        let ctx = std::sync::Arc::new(SearchContext::new(WaferCostModel::new(
            WaferConfig::hpca(),
            model,
            workload,
        )));
        let solver = Dlws::from_context(ctx.clone());

        ctx.set_cost_tier(CostTier::SurrogateGated);
        let gated = solver.solve().unwrap_or_else(|e| panic!("{name}: {e}"));
        let after_gated = ctx.stats();

        ctx.set_cost_tier(CostTier::Exact);
        let exact = solver.solve().unwrap_or_else(|e| panic!("{name}: {e}"));
        let after_exact = ctx.stats();

        assert_eq!(
            gated, exact,
            "{name}: gated plan must equal the exhaustive plan"
        );
        assert!(
            after_gated.gate_pruned > 0,
            "{name}: the gate never engaged ({after_gated:?})"
        );
        assert!(
            after_gated.misses < after_exact.misses,
            "{name}: the gated solve must cost strictly fewer candidates \
             ({after_gated:?} vs {after_exact:?})"
        );
        // The retained plan exercises the expert-parallel axis: the MoE
        // run's strategy is not the dense blocks'.
        use temp_repro::graph::segment::SegmentKind;
        let moe = exact
            .segments
            .iter()
            .find(|s| s.kind == SegmentKind::MoeBlock)
            .unwrap_or_else(|| panic!("{name}: no MoE run in the solved chain"));
        let dense = exact
            .segments
            .iter()
            .find(|s| s.kind == SegmentKind::Block)
            .unwrap_or_else(|| panic!("{name}: no dense run in the solved chain"));
        assert_ne!(moe.config, dense.config, "{name}");
        assert!(moe.config.ep > 1, "{name}: MoE run stayed at ep = 1");
    }
}

/// The per-degree batch mode of the gate: a surrogate-gated multi-wafer
/// sweep must select plans identical to the exact sweep — every degree's
/// batch is ranked and shortlisted on its own, so the winner-retention
/// guarantee holds per solve even though the sweep pre-costs all degrees
/// up front. Both sweeps share one context so the comparison is
/// bit-exact.
#[test]
fn gated_multiwafer_sweep_matches_exact_sweep() {
    use temp_repro::core::baselines::BaselineSystem;
    use temp_repro::core::framework::Temp;
    use temp_repro::solver::dlws::Dlws;

    let model = ModelZoo::gpt3_76b();
    let workload = Workload::for_model(&model);
    let ctx = std::sync::Arc::new(SearchContext::new(WaferCostModel::new(
        WaferConfig::hpca(),
        model,
        workload,
    )));
    let temp = Temp::from_solver(Dlws::from_context(ctx.clone()));
    let system = BaselineSystem::temp();

    // Gated sweep first, on the cold context, so the gate really prunes.
    ctx.set_cost_tier(CostTier::SurrogateGated);
    let gated = temp.evaluate_multiwafer_sweep(&system, &[2, 4], &[1, 2]);
    let after_gated = ctx.stats();
    assert!(
        after_gated.gate_pruned > 0,
        "the per-degree gate never engaged: {after_gated:?}"
    );

    // Exact sweep on the same context: only pruned candidates re-cost.
    ctx.set_cost_tier(CostTier::Exact);
    let exact = temp.evaluate_multiwafer_sweep(&system, &[2, 4], &[1, 2]);
    let after_exact = ctx.stats();
    assert!(
        after_gated.misses < after_exact.misses,
        "the gated sweep must cost strictly fewer candidates \
         ({after_gated:?} vs {after_exact:?})"
    );

    assert_eq!(gated.len(), exact.len());
    for (g, e) in gated.iter().zip(&exact) {
        assert_eq!(
            g, e,
            "gated sweep entry {}x{} must equal the exact entry",
            g.wafer_count, g.pp_multiplier
        );
    }
}

/// Fig. 5(b)-style contended flow sets: neighbor chains forced through
/// shared links, row/column crossings, plus seeded random traffic. The
/// dense water-filling must agree with the HashMap reference to 1e-9
/// relative on every completion time.
#[test]
fn dense_contention_sim_matches_reference_on_fig05_flow_sets() {
    let cfg = WaferConfig::hpca();
    let mesh = cfg.mesh();
    let sim = ContentionSim::new(&cfg);
    let dies = mesh.die_count() as u32;

    let mut flow_sets: Vec<Vec<Flow>> = Vec::new();
    // Fig. 5(a)/(b): same-row transfers sharing middle links.
    flow_sets.push(
        (0..6)
            .map(|i| Flow::xy(&mesh, DieId(i), DieId(i + 2), 128.0 * MB))
            .collect(),
    );
    // Row/column crossings plus long diagonals.
    flow_sets.push(vec![
        Flow::xy(&mesh, DieId(0), DieId(7), 64.0 * MB),
        Flow::xy(&mesh, DieId(8), DieId(15), 64.0 * MB),
        Flow::xy(&mesh, DieId(0), DieId(24), 64.0 * MB),
        Flow::xy(&mesh, DieId(7), DieId(31), 64.0 * MB),
        Flow::xy(&mesh, DieId(0), DieId(31), 96.0 * MB),
        Flow::xy(&mesh, DieId(31), DieId(0), 96.0 * MB),
    ]);
    // Seeded random traffic, including local (zero-route) flows.
    let mut rng = StdRng::seed_from_u64(41);
    for _ in 0..8 {
        let n = rng.gen_range(4..24);
        flow_sets.push(
            (0..n)
                .map(|_| {
                    let src = DieId(rng.gen_range(0..dies));
                    let dst = DieId(rng.gen_range(0..dies));
                    let bytes = rng.gen_range(1.0..256.0) * MB;
                    Flow::xy(&mesh, src, dst, bytes)
                })
                .collect(),
        );
    }

    for (case, flows) in flow_sets.iter().enumerate() {
        let dense = sim.simulate(flows);
        let reference = sim.simulate_reference(flows);
        let tol = |r: f64| 1e-9 * r.abs().max(1e-12);
        assert!(
            (dense.makespan - reference.makespan).abs() <= tol(reference.makespan),
            "case {case}: makespan {} vs {}",
            dense.makespan,
            reference.makespan
        );
        for (i, (d, r)) in dense
            .completion
            .iter()
            .zip(&reference.completion)
            .enumerate()
        {
            assert!(
                (d - r).abs() <= tol(*r),
                "case {case}, flow {i}: {d} vs {r}"
            );
        }
        assert_eq!(dense.link_bytes, reference.link_bytes, "case {case}");
        // Ties in the max-load scan may resolve to different links across
        // HashMap instances; the load itself must agree.
        assert_eq!(
            dense.max_loaded_link.map(|(_, b)| b),
            reference.max_loaded_link.map(|(_, b)| b),
            "case {case}"
        );
    }
}

/// The gate is an optimization, not a semantic switch: flipping the tier
/// back to exact on a warm context reproduces the original behavior and
/// the cache survives both pipelines.
#[test]
fn tier_switch_is_idempotent_on_a_warm_context() {
    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    let ctx = std::sync::Arc::new(SearchContext::new(WaferCostModel::new(
        WaferConfig::hpca(),
        model,
        workload,
    )));
    let solver = Dlws::from_context(ctx.clone());
    // Exhaustive first solve: bound pruning would leave uncached holes
    // (skips are not verdicts) that the gate's stride-sampled training
    // set then re-costs, which is exactly the warmth this test relies on.
    ctx.set_pruning(false);
    let exact_first = solver.solve().unwrap();
    let misses_after_exact = ctx.stats().misses;

    // A gated solve on the warm context answers everything from cache.
    ctx.set_cost_tier(CostTier::SurrogateGated);
    let gated = solver.solve().unwrap();
    assert_eq!(exact_first, gated);
    assert_eq!(
        ctx.stats().misses,
        misses_after_exact,
        "warm gated solve must not re-cost anything"
    );
    // On a warm context every ranked-out candidate is answered from the
    // cache, so the only entries still counted as pruned are the
    // memory-precheck skips — candidates whose exact cost is infinite
    // anyway. Nothing with a finite exact cost may be pruned.
    let candidates = ctx.candidates().to_vec();
    ctx.set_cost_tier(CostTier::Exact);
    let exact_costs = ctx.cost_candidates(
        &candidates,
        temp_repro::mapping::engines::MappingEngine::Tcme,
    );
    let infeasible = exact_costs.iter().filter(|(t, _)| !t.is_finite()).count();
    assert!(
        ctx.stats().gate_pruned as usize <= infeasible,
        "warm gated solve pruned a candidate with a finite exact cost \
         ({} pruned, {} infeasible)",
        ctx.stats().gate_pruned,
        infeasible
    );
}
