//! Cross-crate integration tests: the full paper pipeline from hardware
//! substrate to solved plans, exercised through the public facade.

use temp_repro::core::baselines::BaselineSystem;
use temp_repro::core::framework::Temp;
use temp_repro::graph::models::ModelZoo;
use temp_repro::graph::workload::Workload;
use temp_repro::mapping::engines::{map_hybrid, MappingEngine};
use temp_repro::parallel::strategy::HybridConfig;
use temp_repro::parallel::tatp::TatpOrchestration;
use temp_repro::solver::cost::WaferCostModel;
use temp_repro::wsc::config::WaferConfig;

#[test]
fn full_pipeline_plans_and_reports() {
    let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
    let plan = temp.solve().expect("feasible plan");
    assert!(plan.report.fits_memory);
    assert!(plan.report.step_time > 0.0);
    assert!(plan.report.throughput > 0.0);
    assert!(
        plan.config.tatp >= 4,
        "TATP should carry the plan: {}",
        plan.config.label()
    );
}

#[test]
fn temp_never_trails_the_best_baseline() {
    let temp = Temp::hpca(ModelZoo::llama2_7b());
    let reports = temp.compare_all();
    let best_baseline = reports[..6]
        .iter()
        .map(|r| r.step_time())
        .fold(f64::INFINITY, f64::min);
    let t = reports[6].step_time();
    assert!(
        t <= best_baseline * 1.001,
        "TEMP {t} vs best baseline {best_baseline}"
    );
}

#[test]
fn orchestration_feeds_cost_model_consistently() {
    // The TATP degree the cost model prices must be a valid orchestration.
    let model = ModelZoo::gpt3_6_7b();
    let cost = WaferCostModel::new(
        WaferConfig::hpca(),
        model.clone(),
        Workload::for_model(&model),
    );
    let cfg = HybridConfig::tuple(2, 2, 1, 8);
    let report = cost.evaluate(&cfg, MappingEngine::Tcme).expect("feasible");
    let orch = TatpOrchestration::build(cfg.tatp);
    let stats = orch.validate().expect("Algorithm 1 invariants");
    assert_eq!(stats.max_hop_distance, 1);
    assert!(report.stream_time > 0.0);
}

#[test]
fn mapping_engines_order_is_preserved_end_to_end() {
    // TCME <= GMap <= (roughly) SMap on contention-heavy hybrid configs.
    let wafer = WaferConfig::hpca();
    let model = ModelZoo::gpt3_6_7b();
    let workload = Workload::for_model(&model);
    let cfg = HybridConfig {
        dp: 4,
        fsdp: true,
        tatp: 8,
        ..Default::default()
    };
    let smap = map_hybrid(MappingEngine::SMap, &wafer, &model, &workload, &cfg).unwrap();
    let tcme = map_hybrid(MappingEngine::Tcme, &wafer, &model, &workload, &cfg).unwrap();
    assert!(tcme.comm_time_per_layer <= smap.comm_time_per_layer * 1.01);
    assert!(tcme.max_link_load <= smap.max_link_load * 1.01);
}

#[test]
fn oom_verdicts_are_consistent_across_layers_of_the_stack() {
    // 175B: Megatron must OOM, TEMP must plan — end to end.
    let temp = Temp::hpca(ModelZoo::gpt3_175b());
    let systems = BaselineSystem::all_systems();
    let reports: Vec<_> = systems.iter().map(|s| temp.evaluate_system(s)).collect();
    assert!(reports[0].oom, "Mega+SMap must OOM on 175B");
    assert!(!reports[6].oom, "TEMP must plan 175B");
}
