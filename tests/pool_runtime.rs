//! Integration tests for the work-stealing solver runtime and the
//! persistent cache warm starts: pool results must be bit-identical to
//! serial execution under stress (concurrent submitters, skewed task
//! costs, nested submission), and a fresh process importing persisted
//! caches must re-solve the zoo with (near) zero exact evaluations.

use std::sync::Arc;

use temp_repro::graph::models::ModelZoo;
use temp_repro::graph::workload::Workload;
use temp_repro::solver::pool::ContextPool;
use temp_repro::solver::runtime::WorkPool;
use temp_repro::wsc::config::WaferConfig;

/// Deterministic xorshift — the stress tests are seeded, not flaky.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A deliberately skewed, seeded per-item workload: most items are
/// trivial, a few spin orders of magnitude longer, emulating the real
/// costing batches (a 32-die TATP ring costs far more than pure DP).
fn skewed_work(seed: u64, item: u64) -> u64 {
    let mut s = seed ^ (item.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
    let spin = if xorshift(&mut s) % 16 == 0 { 4000 } else { 50 };
    let mut acc = item;
    for _ in 0..spin {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    acc
}

#[test]
fn pool_matches_serial_under_skewed_costs() {
    let pool = WorkPool::with_workers(4);
    for seed in [1u64, 42, 0xdead_beef] {
        let items: Vec<u64> = (0..1500).collect();
        let serial: Vec<u64> = items.iter().map(|&i| skewed_work(seed, i)).collect();
        for chunk in [1, 7, 64] {
            let pooled = pool.map(&items, &|&i| skewed_work(seed, i), chunk);
            assert_eq!(pooled, serial, "seed {seed}, chunk {chunk}");
        }
    }
    let stats = pool.stats();
    assert!(stats.executed > 0, "work must actually run on the pool");
}

#[test]
fn many_concurrent_submitters_get_order_preserving_results() {
    let pool = Arc::new(WorkPool::with_workers(4));
    let submitters = 8u64;
    let handles: Vec<_> = (0..submitters)
        .map(|seed| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                // Each submitter runs several rounds so submissions from
                // different threads interleave on the shared deques.
                for round in 0..4u64 {
                    let n = 200 + (seed * 37 + round * 13) % 300;
                    let items: Vec<u64> = (0..n).collect();
                    let expect: Vec<u64> = items.iter().map(|&i| skewed_work(seed, i)).collect();
                    let got = pool.map(&items, &|&i| skewed_work(seed, i), 3);
                    assert_eq!(got, expect, "submitter {seed}, round {round}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter panicked");
    }
}

#[test]
fn nested_submission_inside_tasks_matches_serial() {
    let pool = Arc::new(WorkPool::with_workers(3));
    let outer: Vec<u64> = (0..24).collect();
    let serial: Vec<u64> = outer
        .iter()
        .map(|&r| {
            (0..100)
                .map(|c| skewed_work(r, c))
                .fold(0u64, u64::wrapping_add)
        })
        .collect();
    let inner_items: Vec<u64> = (0..100).collect();
    let nested = pool.map(
        &outer,
        &|&r| {
            // A task that itself fans out on the same pool: the worker
            // helps (pop-own / steal) instead of blocking, so this must
            // complete and agree with serial even at depth.
            pool.map(&inner_items, &|&c| skewed_work(r, c), 5)
                .into_iter()
                .fold(0u64, u64::wrapping_add)
        },
        1,
    );
    assert_eq!(nested, serial);
}

#[test]
fn persisted_caches_warm_start_a_fresh_pool_with_identical_plans() {
    use temp_repro::mapping::engines::MappingEngine;

    let dir =
        std::env::temp_dir().join(format!("temp-warm-start-round-trip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Keep the test fast: the two smallest zoo models stand in for the
    // fig13 zoo (the full sweep runs in the benchmark and the CI smoke).
    let zoo = [ModelZoo::gpt3_6_7b(), ModelZoo::llama2_7b()];
    let engine = MappingEngine::Tcme;

    // Cold process: solve everything, then persist.
    let cold = ContextPool::new(WaferConfig::hpca());
    let mut cold_plans = Vec::new();
    let mut cold_evals = 0u64;
    for model in &zoo {
        let workload = Workload::for_model(model);
        let plan = cold
            .solver(model, &workload)
            .solve_with_engine(engine, |_| true)
            .expect("cold solve");
        cold_evals += cold.context(model, &workload).stats().misses;
        cold_plans.push(plan);
    }
    assert!(cold_evals > 0, "cold solves must evaluate");
    assert_eq!(cold.save_to(&dir).expect("save"), zoo.len());

    // "Fresh process": a brand-new pool importing the saved caches.
    let warm = ContextPool::new(WaferConfig::hpca());
    assert_eq!(warm.load_from(&dir).expect("load"), zoo.len());
    let mut warm_evals = 0u64;
    for (model, cold_plan) in zoo.iter().zip(&cold_plans) {
        let workload = Workload::for_model(model);
        let plan = warm
            .solver(model, &workload)
            .solve_with_engine(engine, |_| true)
            .expect("warm solve");
        assert_eq!(&plan, cold_plan, "warm-started plans must be bit-identical");
        warm_evals += warm.context(model, &workload).stats().misses;
    }
    assert_eq!(
        warm_evals, 0,
        "a warm start over the identical searches must run zero exact evaluations"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
