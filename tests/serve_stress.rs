//! Concurrency stress for plan serving: many threads pushing
//! overlapping solves — same models and different models — through one
//! shared [`ContextPool`] must produce plans bit-identical to a
//! sequential run, without duplicating exact-evaluation work (the
//! single-flight gate: total evals ≤ 1.2x the distinct keys costed).

use std::sync::{Arc, Barrier};

use temp_repro::graph::models::{ModelConfig, ModelZoo};
use temp_repro::graph::workload::Workload;
use temp_repro::serve::PlanServer;
use temp_repro::solver::dlws::ExecutionPlan;
use temp_repro::solver::pool::ContextPool;
use temp_repro::wsc::config::WaferConfig;

/// The models under stress — the fig13 zoo.
fn stress_zoo() -> Vec<ModelConfig> {
    ModelZoo::table2()
}

fn solve_on(pool: &ContextPool, model: &ModelConfig) -> ExecutionPlan {
    let workload = Workload::for_model(model);
    pool.solver(model, &workload)
        .solve()
        .expect("zoo model must solve")
}

#[test]
fn overlapping_concurrent_solves_match_sequential_bit_for_bit() {
    let zoo = stress_zoo();

    // Sequential reference on its own pool.
    let reference_pool = ContextPool::new(WaferConfig::hpca());
    let reference: Vec<ExecutionPlan> = zoo.iter().map(|m| solve_on(&reference_pool, m)).collect();

    // 12 threads on one shared pool: every zoo model solved by two
    // threads at once, all released together.
    let shared = Arc::new(ContextPool::new(WaferConfig::hpca()));
    let lanes = zoo.len() * 2;
    let barrier = Arc::new(Barrier::new(lanes));
    let handles: Vec<_> = (0..lanes)
        .map(|lane| {
            let shared = Arc::clone(&shared);
            let barrier = Arc::clone(&barrier);
            let model = zoo[lane % zoo.len()].clone();
            std::thread::spawn(move || {
                barrier.wait();
                (lane % stress_zoo().len(), solve_on(&shared, &model))
            })
        })
        .collect();
    for handle in handles {
        let (index, plan) = handle.join().expect("stress lane");
        assert_eq!(
            plan, reference[index],
            "concurrent solve of zoo[{index}] diverged from the sequential plan"
        );
    }

    // Single-flight: the shared pool must not have re-costed keys that
    // another lane was already evaluating.
    let (stats, unique_keys) = shared.aggregate_stats();
    assert!(unique_keys > 0, "stress run must cost something");
    let duplicate_work = stats.misses as f64 / unique_keys as f64;
    assert!(
        duplicate_work <= 1.2,
        "duplicate-work ratio {duplicate_work:.3} > 1.2 \
         ({} evals over {unique_keys} unique keys)",
        stats.misses
    );
    // And the shared pool costed no more keys than the sequential run.
    let (ref_stats, ref_keys) = reference_pool.aggregate_stats();
    assert_eq!(
        unique_keys, ref_keys,
        "concurrent and sequential runs explored different key sets"
    );
    assert!(
        stats.misses <= ref_stats.misses + (ref_stats.misses / 5),
        "concurrent evals {} exceed 1.2x the sequential {}",
        stats.misses,
        ref_stats.misses
    );
}

#[test]
fn eight_identical_queries_coalesce_onto_one_evaluation_run() {
    let server = Arc::new(PlanServer::new(None).expect("cold server"));
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let replies: Vec<String> = (0..clients)
        .map(|_| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                server.handle_line("solve llama2_7b").text().to_string()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();

    // All eight observe the identical plan (replies differ only in the
    // trailing wall-clock field).
    let stable = |r: &str| r.split(",\"wall_ms\"").next().unwrap_or("").to_string();
    let first = stable(&replies[0]);
    assert!(first.starts_with("{\"ok\":true"), "got {first}");
    for reply in &replies {
        assert_eq!(stable(reply), first);
    }

    // And the eight-way race costs what one solve costs.
    let lone = PlanServer::new(None).expect("cold server");
    lone.handle_line("solve llama2_7b");
    let (lone_stats, _) = lone.aggregate();
    let (stats, unique) = server.aggregate();
    assert_eq!(
        stats.misses, lone_stats.misses,
        "identical concurrent queries re-ran exact evaluations"
    );
    assert_eq!(unique, stats.misses as usize, "every eval keyed uniquely");
}

#[test]
fn mixed_wafer_queries_stay_isolated_per_pool() {
    let server = Arc::new(PlanServer::new(None).expect("cold server"));
    let handles: Vec<_> = ["hpca", "4x4", "hpca", "4x4"]
        .into_iter()
        .map(|wafer| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                server
                    .handle_line(&format!("solve gpt3_6_7b wafer={wafer}"))
                    .text()
                    .to_string()
            })
        })
        .collect();
    let replies: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("wafer lane"))
        .collect();
    for reply in &replies {
        assert!(reply.starts_with("{\"ok\":true"), "got {reply}");
    }
    // Different wafer fabrics may pick different plans; the same wafer
    // must answer identically.
    let stable = |r: &str| r.split(",\"wall_ms\"").next().unwrap_or("").to_string();
    assert_eq!(stable(&replies[0]), stable(&replies[2]));
    assert_eq!(stable(&replies[1]), stable(&replies[3]));
}
