//! Integration tests for the cached search pipeline: `compare_all()` must
//! perform at most one full candidate-costing pass across all seven
//! compared systems, and the cache must survive (not be consumed by)
//! repeated solves.

use temp_repro::core::baselines::BaselineSystem;
use temp_repro::core::framework::Temp;
use temp_repro::graph::models::ModelZoo;

#[test]
fn compare_all_costs_each_key_at_most_once() {
    let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
    let reports = temp.compare_all();
    assert_eq!(reports.len(), 7);
    let stats = temp.search_stats();

    // "One full candidate-costing pass" upper bound: every candidate, per
    // distinct mapping engine, in at most two recompute modes (the base
    // mode plus the OOM escalation). The seed behavior was one pass *per
    // system* (7 sweeps); the cache must keep us at per-engine unions.
    let candidates = temp.solver().candidates();
    let engines = 3; // SMap, GMap, TCME
    let one_pass_bound = (candidates.len() * engines * 2) as u64;
    assert!(
        stats.misses <= one_pass_bound,
        "misses {} exceed the one-pass bound {one_pass_bound}",
        stats.misses
    );

    // And strictly fewer evaluations than the seed's per-system sweeps:
    // systems sharing an engine overlap (Megatron's space is a subset of
    // MeSP's), so the sweep must have produced cache hits. Replay the
    // sweep against the now-warm cache to count exactly how many cost-
    // model runs the uncached behavior would have needed (base mode per
    // admitted candidate, plus the full-recompute escalation wherever the
    // base mode does not fit memory).
    let base_mode = temp.workload().recompute;
    let ctx = temp.solver().context();
    let per_system_evals: usize = BaselineSystem::all_systems()
        .iter()
        .map(|s| {
            candidates
                .iter()
                .filter(|c| s.partitioner.admits(c))
                .map(|c| match ctx.evaluate(c, s.engine, base_mode) {
                    Some(report) if report.fits_memory => 1,
                    _ => 2,
                })
                .sum::<usize>()
        })
        .sum();
    assert!(
        (stats.misses as usize) < per_system_evals,
        "misses {} not below the uncached per-system total {per_system_evals}",
        stats.misses
    );
    assert!(
        stats.hits > 0,
        "overlapping system spaces must hit the cache"
    );
}

#[test]
fn second_sweep_is_answered_entirely_from_the_cache() {
    let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
    let first = temp.compare_all();
    let after_first = temp.search_stats();
    let second = temp.compare_all();
    let after_second = temp.search_stats();
    assert_eq!(
        after_first.misses, after_second.misses,
        "the second compare_all must not run the cost model at all"
    );
    assert!(after_second.hits > after_first.hits);
    assert_eq!(first, second, "cached sweep must reproduce the reports");
}

#[test]
fn multiwafer_planning_shares_the_same_cache() {
    use temp_repro::wsc::config::WaferConfig;
    use temp_repro::wsc::multiwafer::MultiWaferSystem;

    let temp = Temp::hpca(ModelZoo::gpt3_175b());
    let wafers = MultiWaferSystem::new(WaferConfig::hpca(), 4).unwrap();
    let system = BaselineSystem::temp();
    let first = temp.evaluate_multiwafer(&system, &wafers, 1);
    let after_first = temp.search_stats();
    let second = temp.evaluate_multiwafer(&system, &wafers, 1);
    let after_second = temp.search_stats();
    assert!(!first.oom);
    assert_eq!(
        after_first.misses, after_second.misses,
        "repeating the multi-wafer evaluation must be pure cache hits"
    );
    // The stage-partitioned handoff pricing must not leak into cached
    // reports: both evaluations see identical plans and step times.
    assert_eq!(first, second);
    assert_eq!(first.step_time(), second.step_time());
}

#[test]
fn repeated_pooled_solves_hit_at_least_ninety_percent() {
    use temp_repro::solver::pool::ContextPool;
    use temp_repro::wsc::config::WaferConfig;

    let pool = ContextPool::new(WaferConfig::hpca());
    let model = ModelZoo::gpt3_6_7b();

    // First sweep fills the cache; the second must be answered almost
    // entirely from it — the 0.10 sweep hit rate the bench recorded was
    // the *cold* pass dominating the ratio, not eviction or key churn.
    let first = Temp::pooled(&pool, model.clone());
    first.compare_all();
    let cold = first.search_stats();
    assert!(cold.misses > 0);

    let second = Temp::pooled(&pool, model.clone());
    second.compare_all();
    let warm = second.search_stats();
    let warm_hits = warm.hits - cold.hits;
    let warm_misses = warm.misses - cold.misses;
    let warm_rate = warm_hits as f64 / (warm_hits + warm_misses).max(1) as f64;
    assert!(
        warm_rate >= 0.9,
        "pooled re-solve hit rate {warm_rate:.3} below 0.9 \
         ({warm_hits} hits / {warm_misses} misses)"
    );

    // Per-tier breakdown ties out: these sweeps ran under the exact tier
    // only, and totals always decompose into the tier counters.
    assert_eq!(warm.hits, warm.exact_hits + warm.gated_hits);
    assert_eq!(warm.misses, warm.exact_misses + warm.gated_misses);
    assert_eq!(warm.gated_hits + warm.gated_misses, 0, "no gated lookups");
    assert!(warm.exact_hit_rate() > 0.0);
}

#[test]
fn context_pool_reuses_wafer_level_state_across_models() {
    use std::sync::Arc;
    use temp_repro::solver::pool::ContextPool;
    use temp_repro::wsc::config::WaferConfig;

    let pool = ContextPool::new(WaferConfig::hpca());

    // fig13/fig18-style zoo sweep: several models through one pool. Every
    // context shares the wafer-level candidate enumeration by pointer.
    let models = [ModelZoo::gpt3_6_7b(), ModelZoo::llama2_7b()];
    for model in &models {
        let temp = Temp::pooled(&pool, model.clone());
        let reports = temp.compare_all();
        assert_eq!(reports.len(), 7);
    }
    assert_eq!(pool.len(), models.len());
    let ctx_a = pool.context(
        &models[0],
        &temp_repro::graph::workload::Workload::for_model(&models[0]),
    );
    let ctx_b = pool.context(
        &models[1],
        &temp_repro::graph::workload::Workload::for_model(&models[1]),
    );
    assert!(
        Arc::ptr_eq(&ctx_a.candidates_arc(), &ctx_b.candidates_arc()),
        "pooled contexts must share one candidate enumeration"
    );
    assert!(Arc::ptr_eq(&ctx_a.candidates_arc(), &pool.candidates()));

    // A second sweep over the same model reuses the *same warm context*:
    // zero new cost-model evaluations, identical reports.
    let temp_again = Temp::pooled(&pool, models[0].clone());
    let misses_before = temp_again.search_stats().misses;
    assert!(misses_before > 0, "first sweep must have filled the cache");
    let replay = temp_again.compare_all();
    assert_eq!(
        temp_again.search_stats().misses,
        misses_before,
        "a pooled re-sweep must be answered entirely from the cache"
    );
    let fresh = Temp::pooled(&pool, models[0].clone());
    assert_eq!(replay, fresh.compare_all());
    assert_eq!(pool.len(), models.len(), "no duplicate contexts");
}
