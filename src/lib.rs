//! # temp-repro — facade for the TEMP (HPCA 2026) reproduction
//!
//! Re-exports every crate of the workspace under one roof so examples and
//! integration tests can address the whole system:
//!
//! * [`wsc`] — wafer-scale chip substrate (topology, signal, faults);
//! * [`graph`] — compute graphs, model zoo, workloads;
//! * [`sim`] — compute/network/memory/power simulator;
//! * [`parallel`] — parallel strategies and TATP orchestration;
//! * [`mapping`] — TCME traffic-conscious mapping engine;
//! * [`solver`] — DLWS cost model and dual-level search;
//! * [`serve`] — concurrent plan serving over a shared context pool;
//! * [`surrogate`] — DNN cost model;
//! * [`core`] — the TEMP framework facade and baselines.

pub use temp_core as core;
pub use temp_graph as graph;
pub use temp_mapping as mapping;
pub use temp_parallel as parallel;
pub use temp_serve as serve;
pub use temp_sim as sim;
pub use temp_solver as solver;
pub use temp_surrogate as surrogate;
pub use temp_wsc as wsc;
