//! Multi-wafer systems (Fig. 19, §VIII-E).
//!
//! Models beyond ~200B parameters exceed one wafer's HBM; the paper scales
//! to 2–6 WSCs joined by inter-wafer links (9 TB/s, Dojo-class [109]) and
//! distributes pipeline stages across wafers. Intra-wafer parallelism stays
//! whatever TEMP chooses per wafer.

use serde::{Deserialize, Serialize};

use crate::config::WaferConfig;
use crate::units::{TB, US};
use crate::{Result, WscError};

/// Inter-wafer interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterWaferLink {
    /// Aggregate bandwidth between adjacent wafers in bytes/s (paper: 9 TB/s).
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
    /// Transfer energy in pJ/bit.
    pub energy_pj_per_bit: f64,
}

impl Default for InterWaferLink {
    fn default() -> Self {
        InterWaferLink {
            bandwidth: 9.0 * TB,
            latency: 1.0 * US,
            energy_pj_per_bit: 8.0,
        }
    }
}

/// A linear chain of identical wafers — the natural shape for pipeline
/// parallelism across WSCs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiWaferSystem {
    /// Per-wafer configuration (all wafers identical).
    pub wafer: WaferConfig,
    /// Number of wafers in the chain.
    pub wafer_count: usize,
    /// Inter-wafer link parameters.
    pub link: InterWaferLink,
}

impl MultiWaferSystem {
    /// Creates a chain of `wafer_count` identical wafers.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::InvalidConfig`] when `wafer_count` is zero or the
    /// wafer configuration is invalid.
    pub fn new(wafer: WaferConfig, wafer_count: usize) -> Result<Self> {
        if wafer_count == 0 {
            return Err(WscError::InvalidConfig(
                "wafer count must be positive".into(),
            ));
        }
        wafer.validate()?;
        Ok(MultiWaferSystem {
            wafer,
            wafer_count,
            link: InterWaferLink::default(),
        })
    }

    /// Total dies across all wafers.
    pub fn total_dies(&self) -> usize {
        self.wafer.die_count() * self.wafer_count
    }

    /// Aggregate HBM capacity in bytes.
    pub fn total_hbm_capacity(&self) -> f64 {
        self.wafer.total_hbm_capacity() * self.wafer_count as f64
    }

    /// Aggregate peak compute in FLOP/s.
    pub fn total_peak_flops(&self) -> f64 {
        self.wafer.total_peak_flops() * self.wafer_count as f64
    }

    /// Pipeline stages hosted by the chain at `pp_multiplier` stages per
    /// wafer.
    pub fn stage_count(&self, pp_multiplier: usize) -> usize {
        self.wafer_count * pp_multiplier.max(1)
    }

    /// Which wafer hosts pipeline stage `stage`: stages fill wafers in
    /// chain order, `pp_multiplier` consecutive stages per wafer.
    pub fn wafer_of_stage(&self, stage: usize, pp_multiplier: usize) -> usize {
        (stage / pp_multiplier.max(1)).min(self.wafer_count.saturating_sub(1))
    }

    /// Whether the boundary between stage `stage` and `stage + 1` crosses
    /// wafers (and therefore pays the inter-wafer link) or stays on one
    /// wafer (the activation stays resident on the same dies).
    pub fn boundary_crosses_wafers(&self, stage: usize, pp_multiplier: usize) -> bool {
        self.wafer_of_stage(stage, pp_multiplier) != self.wafer_of_stage(stage + 1, pp_multiplier)
    }

    /// The smallest wafer count whose aggregate HBM can hold `bytes` — a
    /// necessary (not sufficient) lower bound on deployment size.
    pub fn minimum_wafers_for(wafer: &WaferConfig, bytes: f64) -> usize {
        let per_wafer = wafer.total_hbm_capacity();
        if per_wafer <= 0.0 {
            return 1;
        }
        (bytes / per_wafer).ceil().max(1.0) as usize
    }

    /// Time to move `bytes` between adjacent wafers (activation handoff of a
    /// pipeline stage boundary).
    pub fn inter_wafer_transfer_time(&self, bytes: f64) -> f64 {
        self.link.latency + bytes / self.link.bandwidth
    }

    /// Energy in joules to move `bytes` between adjacent wafers.
    pub fn inter_wafer_transfer_energy(&self, bytes: f64) -> f64 {
        bytes * 8.0 * self.link.energy_pj_per_bit * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_wafers() {
        assert!(MultiWaferSystem::new(WaferConfig::hpca(), 0).is_err());
    }

    #[test]
    fn totals_scale_linearly() {
        let one = MultiWaferSystem::new(WaferConfig::hpca(), 1).unwrap();
        let four = MultiWaferSystem::new(WaferConfig::hpca(), 4).unwrap();
        assert_eq!(four.total_dies(), 4 * one.total_dies());
        assert!((four.total_hbm_capacity() - 4.0 * one.total_hbm_capacity()).abs() < 1.0);
        assert!((four.total_peak_flops() - 4.0 * one.total_peak_flops()).abs() < 1.0);
    }

    #[test]
    fn stage_placement_fills_wafers_in_order() {
        let sys = MultiWaferSystem::new(WaferConfig::hpca(), 3).unwrap();
        assert_eq!(sys.stage_count(2), 6);
        assert_eq!(sys.stage_count(0), 3, "multiplier clamps to 1");
        let wafers: Vec<usize> = (0..6).map(|s| sys.wafer_of_stage(s, 2)).collect();
        assert_eq!(wafers, vec![0, 0, 1, 1, 2, 2]);
        // Only every second boundary crosses wafers at 2 stages/wafer.
        let crossings: Vec<bool> = (0..5).map(|s| sys.boundary_crosses_wafers(s, 2)).collect();
        assert_eq!(crossings, vec![false, true, false, true, false]);
        // At 1 stage/wafer every boundary is an inter-wafer handoff.
        assert!((0..2).all(|s| sys.boundary_crosses_wafers(s, 1)));
    }

    #[test]
    fn minimum_wafers_matches_aggregate_hbm() {
        let wafer = WaferConfig::hpca();
        let per_wafer = wafer.total_hbm_capacity();
        assert_eq!(MultiWaferSystem::minimum_wafers_for(&wafer, 0.0), 1);
        assert_eq!(
            MultiWaferSystem::minimum_wafers_for(&wafer, per_wafer * 0.7),
            1
        );
        assert_eq!(
            MultiWaferSystem::minimum_wafers_for(&wafer, per_wafer * 1.3),
            2
        );
        assert_eq!(
            MultiWaferSystem::minimum_wafers_for(&wafer, per_wafer * 4.0),
            4
        );
    }

    #[test]
    fn inter_wafer_transfer_time_is_latency_plus_serialization() {
        let sys = MultiWaferSystem::new(WaferConfig::hpca(), 2).unwrap();
        let bytes = 9.0e12; // exactly one second of serialization
        let t = sys.inter_wafer_transfer_time(bytes);
        assert!((t - (1.0 + sys.link.latency)).abs() < 1e-9);
    }

    #[test]
    fn transfer_energy_matches_pj_per_bit() {
        let sys = MultiWaferSystem::new(WaferConfig::hpca(), 2).unwrap();
        let e = sys.inter_wafer_transfer_energy(1.0e9); // 8e9 bits at 8 pJ
        assert!((e - 8.0e9 * 8.0e-12).abs() < 1e-9);
    }
}
