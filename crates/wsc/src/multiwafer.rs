//! Multi-wafer systems (Fig. 19, §VIII-E).
//!
//! Models beyond ~200B parameters exceed one wafer's HBM; the paper scales
//! to 2–6 WSCs joined by inter-wafer links (9 TB/s, Dojo-class [109]) and
//! distributes pipeline stages across wafers. Intra-wafer parallelism stays
//! whatever TEMP chooses per wafer.

use serde::{Deserialize, Serialize};

use crate::config::WaferConfig;
use crate::units::{TB, US};
use crate::{Result, WscError};

/// Inter-wafer interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterWaferLink {
    /// Aggregate bandwidth between adjacent wafers in bytes/s (paper: 9 TB/s).
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
    /// Transfer energy in pJ/bit.
    pub energy_pj_per_bit: f64,
}

impl Default for InterWaferLink {
    fn default() -> Self {
        InterWaferLink {
            bandwidth: 9.0 * TB,
            latency: 1.0 * US,
            energy_pj_per_bit: 8.0,
        }
    }
}

/// A linear chain of identical wafers — the natural shape for pipeline
/// parallelism across WSCs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiWaferSystem {
    /// Per-wafer configuration (all wafers identical).
    pub wafer: WaferConfig,
    /// Number of wafers in the chain.
    pub wafer_count: usize,
    /// Inter-wafer link parameters.
    pub link: InterWaferLink,
}

impl MultiWaferSystem {
    /// Creates a chain of `wafer_count` identical wafers.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::InvalidConfig`] when `wafer_count` is zero or the
    /// wafer configuration is invalid.
    pub fn new(wafer: WaferConfig, wafer_count: usize) -> Result<Self> {
        if wafer_count == 0 {
            return Err(WscError::InvalidConfig(
                "wafer count must be positive".into(),
            ));
        }
        wafer.validate()?;
        Ok(MultiWaferSystem {
            wafer,
            wafer_count,
            link: InterWaferLink::default(),
        })
    }

    /// Total dies across all wafers.
    pub fn total_dies(&self) -> usize {
        self.wafer.die_count() * self.wafer_count
    }

    /// Aggregate HBM capacity in bytes.
    pub fn total_hbm_capacity(&self) -> f64 {
        self.wafer.total_hbm_capacity() * self.wafer_count as f64
    }

    /// Aggregate peak compute in FLOP/s.
    pub fn total_peak_flops(&self) -> f64 {
        self.wafer.total_peak_flops() * self.wafer_count as f64
    }

    /// Time to move `bytes` between adjacent wafers (activation handoff of a
    /// pipeline stage boundary).
    pub fn inter_wafer_transfer_time(&self, bytes: f64) -> f64 {
        self.link.latency + bytes / self.link.bandwidth
    }

    /// Energy in joules to move `bytes` between adjacent wafers.
    pub fn inter_wafer_transfer_energy(&self, bytes: f64) -> f64 {
        bytes * 8.0 * self.link.energy_pj_per_bit * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_wafers() {
        assert!(MultiWaferSystem::new(WaferConfig::hpca(), 0).is_err());
    }

    #[test]
    fn totals_scale_linearly() {
        let one = MultiWaferSystem::new(WaferConfig::hpca(), 1).unwrap();
        let four = MultiWaferSystem::new(WaferConfig::hpca(), 4).unwrap();
        assert_eq!(four.total_dies(), 4 * one.total_dies());
        assert!((four.total_hbm_capacity() - 4.0 * one.total_hbm_capacity()).abs() < 1.0);
        assert!((four.total_peak_flops() - 4.0 * one.total_peak_flops()).abs() < 1.0);
    }

    #[test]
    fn inter_wafer_transfer_time_is_latency_plus_serialization() {
        let sys = MultiWaferSystem::new(WaferConfig::hpca(), 2).unwrap();
        let bytes = 9.0e12; // exactly one second of serialization
        let t = sys.inter_wafer_transfer_time(bytes);
        assert!((t - (1.0 + sys.link.latency)).abs() < 1e-9);
    }

    #[test]
    fn transfer_energy_matches_pj_per_bit() {
        let sys = MultiWaferSystem::new(WaferConfig::hpca(), 2).unwrap();
        let e = sys.inter_wafer_transfer_energy(1.0e9); // 8e9 bits at 8 pJ
        assert!((e - 8.0e9 * 8.0e-12).abs() < 1e-9);
    }
}
