//! # temp-wsc — wafer-scale chip hardware substrate
//!
//! This crate models the physical substrate that the TEMP framework (HPCA
//! 2026) plans against: a heterogeneously integrated wafer-scale chip (WSC)
//! built from a 2D mesh of compute dies, each with local HBM stacks and
//! die-to-die (D2D) links restricted — by interposer signal integrity — to
//! physically adjacent dies.
//!
//! The substrate covers:
//!
//! * [`config`] — Table I hardware parameters and preset wafer configurations;
//! * [`topology`] — the 2D-mesh die array, link enumeration and XY/YX routing;
//! * [`signal`] — the signal-integrity model that forbids long/diagonal links
//!   (Fig. 7(b) of the paper) and prices FEC for over-length traces;
//! * [`rings`] — contiguous physical ring (Hamiltonian cycle) detection and
//!   group allocation, the geometric core of TATP's motivation (Fig. 7(a));
//! * [`fault`] — link and core fault maps with seeded injection (Fig. 20);
//! * [`multiwafer`] — multi-WSC systems joined by inter-wafer links (Fig. 19).
//!
//! # Example
//!
//! ```
//! use temp_wsc::config::WaferConfig;
//! use temp_wsc::topology::Coord;
//!
//! let cfg = WaferConfig::hpca(); // the paper's 4x8 evaluation wafer
//! let mesh = cfg.mesh();
//! assert_eq!(mesh.die_count(), 32);
//! let a = mesh.die_at(Coord::new(0, 0)).unwrap();
//! let b = mesh.die_at(Coord::new(7, 3)).unwrap();
//! assert_eq!(mesh.manhattan(a, b), 10);
//! ```

pub mod config;
pub mod fault;
pub mod multiwafer;
pub mod rings;
pub mod signal;
pub mod topology;
pub mod units;

pub use config::{D2dConfig, DieConfig, HbmConfig, WaferConfig};
pub use fault::FaultMap;
pub use multiwafer::MultiWaferSystem;
pub use topology::{Coord, DieId, Link, LinkId, Mesh};

/// Errors produced by substrate construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WscError {
    /// A coordinate fell outside the die array.
    CoordOutOfBounds {
        x: u32,
        y: u32,
        width: u32,
        height: u32,
    },
    /// A die id did not name a die on this wafer.
    UnknownDie(u32),
    /// Two dies were expected to be mesh neighbors but are not.
    NotAdjacent(u32, u32),
    /// A configuration parameter was invalid (empty mesh, zero bandwidth, ...).
    InvalidConfig(String),
    /// The requested route does not exist (e.g. all paths faulted out).
    NoRoute { src: u32, dst: u32 },
}

impl std::fmt::Display for WscError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WscError::CoordOutOfBounds {
                x,
                y,
                width,
                height,
            } => {
                write!(
                    f,
                    "coordinate ({x}, {y}) outside {width}x{height} die array"
                )
            }
            WscError::UnknownDie(d) => write!(f, "unknown die id {d}"),
            WscError::NotAdjacent(a, b) => write!(f, "dies {a} and {b} are not mesh neighbors"),
            WscError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            WscError::NoRoute { src, dst } => write!(f, "no route from die {src} to die {dst}"),
        }
    }
}

impl std::error::Error for WscError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WscError>;
