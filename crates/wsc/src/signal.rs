//! Signal-integrity model for on-interposer D2D traces (Fig. 7(b), §III-B).
//!
//! 2.5D interposer traces attenuate rapidly with length and frequency. The
//! paper's constraints, reproduced here:
//!
//! * short (< 50 mm) traces tolerate the loss budget (< ~16 dB) — reliable;
//! * beyond ~100–150 mm the loss exceeds the disallowed region (≥ 25 dB) and
//!   the bit error rate grows by up to 1e8x, forcing forward error
//!   correction (FEC) which raises link latency to 210 ns — 14x the normal
//!   ~15 ns PHY latency;
//! * therefore practical D2D links connect only *adjacent* dies.

use serde::{Deserialize, Serialize};

use crate::config::WaferConfig;
use crate::units::NS;

/// Loss budget in dB beyond which a trace enters the "disallowed region"
/// of Fig. 7(b).
pub const DISALLOWED_LOSS_DB: f64 = 25.0;

/// Loss in dB that short traces must stay under to avoid FEC (§V: "<16 dB").
pub const TOLERABLE_LOSS_DB: f64 = 16.0;

/// Baseline (FEC-free) PHY latency of a D2D hop; the paper quotes FEC at
/// 210 ns being 14x this.
pub const PHY_LATENCY: f64 = 15.0 * NS;

/// Nominal signaling frequency of the D2D SerDes in GHz used for link
/// feasibility checks.
pub const NOMINAL_FREQ_GHZ: f64 = 8.0;

/// Interposer trace signal-integrity model.
///
/// The attenuation model is a first-order fit to the loss curves in
/// Fig. 7(b): loss grows linearly in trace length, with a frequency-dependent
/// per-mm coefficient (dielectric + skin effect).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalModel {
    /// Frequency-independent loss per mm (dB/mm).
    pub base_db_per_mm: f64,
    /// Additional loss per mm per GHz (dB/mm/GHz).
    pub freq_db_per_mm_ghz: f64,
    /// Reference bit error rate of an in-budget link.
    pub base_ber: f64,
}

impl Default for SignalModel {
    fn default() -> Self {
        // Calibrated so that at 8 GHz: 30 mm ≈ 9.6 dB (fine), 50 mm ≈ 16 dB
        // (the tolerable limit), 100 mm ≈ 32 dB and 150 mm ≈ 48 dB (deep in
        // the disallowed region) — matching the shape of Fig. 7(b).
        SignalModel {
            base_db_per_mm: 0.08,
            freq_db_per_mm_ghz: 0.03,
            base_ber: 1e-18,
        }
    }
}

impl SignalModel {
    /// Signal loss in dB for a trace of `length_mm` at `freq_ghz`.
    pub fn loss_db(&self, length_mm: f64, freq_ghz: f64) -> f64 {
        (self.base_db_per_mm + self.freq_db_per_mm_ghz * freq_ghz) * length_mm
    }

    /// Longest trace (mm) that stays within `budget_db` at `freq_ghz`.
    pub fn max_length_mm(&self, budget_db: f64, freq_ghz: f64) -> f64 {
        budget_db / (self.base_db_per_mm + self.freq_db_per_mm_ghz * freq_ghz)
    }

    /// Whether a trace is reliable without FEC at the nominal frequency.
    pub fn is_reliable(&self, length_mm: f64) -> bool {
        self.loss_db(length_mm, NOMINAL_FREQ_GHZ) <= TOLERABLE_LOSS_DB
    }

    /// Whether a trace is outright infeasible (disallowed region) even with
    /// FEC at the nominal frequency.
    pub fn is_disallowed(&self, length_mm: f64) -> bool {
        self.loss_db(length_mm, NOMINAL_FREQ_GHZ) > DISALLOWED_LOSS_DB
    }

    /// Bit error rate versus trace length: flat within the reliable region,
    /// then growing by ~10^8 over the next 20 mm (§I: "the bit error rate
    /// increases by up to 1e8x" past 50 mm).
    pub fn bit_error_rate(&self, length_mm: f64) -> f64 {
        let reliable = self.max_length_mm(TOLERABLE_LOSS_DB, NOMINAL_FREQ_GHZ);
        if length_mm <= reliable {
            self.base_ber
        } else {
            self.base_ber * 10f64.powf(((length_mm - reliable) * 0.4).min(12.0))
        }
    }

    /// Per-hop link latency for a trace of `length_mm`: PHY latency when the
    /// trace fits the loss budget, FEC latency (from `cfg`) otherwise.
    pub fn hop_latency(&self, length_mm: f64, cfg: &WaferConfig) -> f64 {
        if self.is_reliable(length_mm) {
            PHY_LATENCY
        } else {
            cfg.fec_latency
        }
    }
}

/// Summary of link feasibility classes for a wafer, used by the Fig. 7
/// experiment binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFeasibility {
    /// Trace length between adjacent columns (mm).
    pub adjacent_x_mm: f64,
    /// Trace length between adjacent rows (mm).
    pub adjacent_y_mm: f64,
    /// Trace length of a row wrap-around (torus) link (mm).
    pub wrap_x_mm: f64,
    /// Whether adjacent links are FEC-free.
    pub adjacent_reliable: bool,
    /// Whether torus wrap links are even allowed (they never are at scale).
    pub wrap_disallowed: bool,
}

/// Evaluates link feasibility classes on a wafer configuration.
pub fn analyze_wafer(cfg: &WaferConfig, model: &SignalModel) -> LinkFeasibility {
    let adjacent_x = cfg.trace_length_mm(1, 0);
    let adjacent_y = cfg.trace_length_mm(0, 1);
    let wrap_x = cfg.trace_length_mm(cfg.mesh_width.saturating_sub(1), 0);
    LinkFeasibility {
        adjacent_x_mm: adjacent_x,
        adjacent_y_mm: adjacent_y,
        wrap_x_mm: wrap_x,
        adjacent_reliable: model.is_reliable(adjacent_x) && model.is_reliable(adjacent_y),
        wrap_disallowed: model.is_disallowed(wrap_x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_grows_with_length_and_frequency() {
        let m = SignalModel::default();
        assert!(m.loss_db(50.0, 8.0) > m.loss_db(30.0, 8.0));
        assert!(m.loss_db(50.0, 10.0) > m.loss_db(50.0, 2.0));
    }

    #[test]
    fn fifty_mm_is_the_reliability_knee() {
        let m = SignalModel::default();
        assert!(m.is_reliable(49.0));
        assert!(!m.is_reliable(55.0));
        // Paper's constraint: D2D links limited to ~50 mm.
        let max = m.max_length_mm(TOLERABLE_LOSS_DB, NOMINAL_FREQ_GHZ);
        assert!((45.0..55.0).contains(&max), "knee at {max} mm");
    }

    #[test]
    fn long_traces_are_disallowed() {
        let m = SignalModel::default();
        assert!(m.is_disallowed(100.0));
        assert!(m.is_disallowed(150.0));
        assert!(!m.is_disallowed(40.0));
    }

    #[test]
    fn ber_explodes_past_the_knee() {
        let m = SignalModel::default();
        let ratio = m.bit_error_rate(70.0) / m.bit_error_rate(40.0);
        assert!(ratio >= 1e7, "BER ratio {ratio}");
        // Capped growth keeps the number finite.
        assert!(m.bit_error_rate(500.0).is_finite());
    }

    #[test]
    fn fec_latency_is_14x_phy() {
        let cfg = WaferConfig::hpca();
        let m = SignalModel::default();
        let short = m.hop_latency(33.0, &cfg);
        let long = m.hop_latency(120.0, &cfg);
        assert!((short - PHY_LATENCY).abs() < 1e-15);
        assert!((long / short - 14.0).abs() < 0.01, "ratio {}", long / short);
    }

    #[test]
    fn hpca_wafer_adjacent_links_feasible_wraps_not() {
        let cfg = WaferConfig::hpca();
        let f = analyze_wafer(&cfg, &SignalModel::default());
        assert!(f.adjacent_reliable);
        assert!(f.wrap_disallowed);
        assert!(f.wrap_x_mm > 190.0); // 7 dies * 33.25 mm
    }
}
