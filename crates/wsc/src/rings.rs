//! Contiguous physical rings on the die mesh (Fig. 7(a), §V).
//!
//! TSPP's logical ring only avoids multi-hop transfers when its parallel
//! group embeds a *contiguous physical ring* — a Hamiltonian cycle through
//! the group's dies using only mesh links. This module provides:
//!
//! * [`ring_order`] — Hamiltonian-cycle search over an arbitrary die set;
//! * [`snake_order`] — Hamiltonian-*path* (boustrophedon) ordering used by
//!   naive ring mappings;
//! * [`allocate_groups`] — group tiling policies (naive row-major strips vs.
//!   topology-aware blocks) and contiguity statistics, reproducing the
//!   red/blue group classification of Fig. 7(a).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::topology::{Coord, DieId, Mesh};

/// How parallel groups are carved out of the die array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupPolicy {
    /// Row-major strips of consecutive dies (the naive allocation that
    /// produces "tetris-like" non-ring groups).
    RowMajorStrips,
    /// Topology-aware near-square blocks that embed physical rings whenever
    /// the group size allows (TATP's logical orchestration target).
    Blocks,
}

/// A parallel group's physical placement plus its ring diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupPlacement {
    /// The member dies, in allocation order.
    pub dies: Vec<DieId>,
    /// A Hamiltonian cycle order if the group embeds a contiguous physical
    /// ring, else `None`.
    pub ring: Option<Vec<DieId>>,
    /// Worst-case hop count between logical-ring neighbors when the group is
    /// used as a naive logical ring in allocation order (1 for true rings).
    pub max_logical_hop: u32,
}

impl GroupPlacement {
    /// Whether the group embeds a contiguous physical ring.
    pub fn is_physical_ring(&self) -> bool {
        self.ring.is_some()
    }
}

/// Searches for a Hamiltonian cycle through exactly `dies`, using only mesh
/// adjacencies. Returns the cycle order (without repeating the start) or
/// `None` when no contiguous physical ring exists.
///
/// Backtracking with degree-based pruning; practical for group sizes up to
/// the wafer scales used in the paper (≤ 96 dies) because mesh subgraphs are
/// sparse and the search prunes on connectivity.
pub fn ring_order(mesh: &Mesh, dies: &[DieId]) -> Option<Vec<DieId>> {
    let n = dies.len();
    if n < 4 {
        // A 2D mesh has no 3-cycles (it is bipartite) and cycles need >= 4.
        return None;
    }
    let set: BTreeSet<DieId> = dies.iter().copied().collect();
    if set.len() != n {
        return None;
    }
    // Parity argument: grid graphs are bipartite, so Hamiltonian cycles need
    // an even number of vertices with equal color counts.
    if n % 2 != 0 {
        return None;
    }
    let mut black = 0usize;
    for d in &set {
        let c = mesh.coord(*d).ok()?;
        if (c.x + c.y) % 2 == 0 {
            black += 1;
        }
    }
    if black * 2 != n {
        return None;
    }
    // Every vertex needs >= 2 in-set neighbors.
    let in_set_neighbors = |d: DieId| -> Vec<DieId> {
        mesh.neighbors(d)
            .into_iter()
            .filter(|x| set.contains(x))
            .collect()
    };
    for d in &set {
        if in_set_neighbors(*d).len() < 2 {
            return None;
        }
    }
    let start = *set.iter().next().expect("non-empty");
    let mut path = vec![start];
    let mut visited: BTreeSet<DieId> = BTreeSet::new();
    visited.insert(start);
    if hamiltonian_cycle(mesh, &set, &mut path, &mut visited, start, n) {
        Some(path)
    } else {
        None
    }
}

fn hamiltonian_cycle(
    mesh: &Mesh,
    set: &BTreeSet<DieId>,
    path: &mut Vec<DieId>,
    visited: &mut BTreeSet<DieId>,
    start: DieId,
    n: usize,
) -> bool {
    if path.len() == n {
        return mesh.adjacent(*path.last().expect("non-empty"), start);
    }
    let cur = *path.last().expect("non-empty");
    let mut next: Vec<DieId> = mesh
        .neighbors(cur)
        .into_iter()
        .filter(|d| set.contains(d) && !visited.contains(d))
        .collect();
    // Warnsdorff-style ordering: fewest onward options first.
    next.sort_by_key(|d| {
        mesh.neighbors(*d)
            .iter()
            .filter(|x| set.contains(x) && !visited.contains(x))
            .count()
    });
    for d in next {
        // Prune: any unvisited vertex stranded with zero unvisited neighbors
        // (other than through cur) cannot be completed.
        path.push(d);
        visited.insert(d);
        if !strands_vertex(mesh, set, visited, start, d)
            && hamiltonian_cycle(mesh, set, path, visited, start, n)
        {
            return true;
        }
        visited.remove(&d);
        path.pop();
    }
    false
}

/// Returns true when some unvisited vertex cannot possibly acquire the two
/// cycle edges it needs: its candidate cycle neighbors are unvisited
/// vertices, the start, or the current path end (which is still open).
fn strands_vertex(
    mesh: &Mesh,
    set: &BTreeSet<DieId>,
    visited: &BTreeSet<DieId>,
    start: DieId,
    path_end: DieId,
) -> bool {
    for d in set {
        if visited.contains(d) {
            continue;
        }
        let free = mesh
            .neighbors(*d)
            .into_iter()
            .filter(|x| set.contains(x) && (!visited.contains(x) || *x == start || *x == path_end))
            .count();
        if free < 2 {
            return true;
        }
    }
    false
}

/// Boustrophedon (snake) ordering of a rectangular region: left-to-right on
/// even rows, right-to-left on odd rows. Consecutive entries are always mesh
/// neighbors, making this the canonical Hamiltonian *path* for mapping a
/// linear/logical order onto the wafer.
pub fn snake_order(mesh: &Mesh) -> Vec<DieId> {
    let mut out = Vec::with_capacity(mesh.die_count());
    for y in 0..mesh.height() {
        if y % 2 == 0 {
            for x in 0..mesh.width() {
                out.push(mesh.die_at(Coord::new(x, y)).expect("in bounds"));
            }
        } else {
            for x in (0..mesh.width()).rev() {
                out.push(mesh.die_at(Coord::new(x, y)).expect("in bounds"));
            }
        }
    }
    out
}

/// Allocates `die_count / group_size` parallel groups under `policy` and
/// diagnoses each group's ring embeddability.
///
/// # Panics
///
/// Panics if `group_size` is zero or does not divide the die count.
pub fn allocate_groups(mesh: &Mesh, group_size: usize, policy: GroupPolicy) -> Vec<GroupPlacement> {
    assert!(group_size > 0, "group size must be positive");
    assert_eq!(
        mesh.die_count() % group_size,
        0,
        "group size {group_size} must divide die count {}",
        mesh.die_count()
    );
    let member_lists: Vec<Vec<DieId>> = match policy {
        GroupPolicy::RowMajorStrips => {
            let ids: Vec<DieId> = mesh.dies().collect();
            ids.chunks(group_size).map(|c| c.to_vec()).collect()
        }
        GroupPolicy::Blocks => block_groups(mesh, group_size),
    };
    member_lists
        .into_iter()
        .map(|dies| {
            let ring = ring_order(mesh, &dies);
            let max_logical_hop = max_ring_hop(mesh, &dies);
            GroupPlacement {
                dies,
                ring,
                max_logical_hop,
            }
        })
        .collect()
}

/// Worst single-step physical distance when `dies` (in the given order) is
/// used as a logical ring, including the wrap step from last to first.
pub fn max_ring_hop(mesh: &Mesh, dies: &[DieId]) -> u32 {
    if dies.len() < 2 {
        return 0;
    }
    let mut worst = 0;
    for i in 0..dies.len() {
        let a = dies[i];
        let b = dies[(i + 1) % dies.len()];
        worst = worst.max(mesh.manhattan(a, b));
    }
    worst
}

/// Partitions the mesh into near-square `group_size` blocks. Chooses the
/// factorization `gw x gh` of `group_size` whose dimensions divide the mesh
/// and are closest to square (preferring both >= 2 so the block embeds a
/// ring); falls back to row-major strips when no factorization tiles the
/// array.
fn block_groups(mesh: &Mesh, group_size: usize) -> Vec<Vec<DieId>> {
    let (w, h) = (mesh.width() as usize, mesh.height() as usize);
    let mut best: Option<(usize, usize)> = None;
    for gw in 1..=group_size {
        if group_size % gw != 0 {
            continue;
        }
        let gh = group_size / gw;
        if w % gw != 0 || h % gh != 0 {
            continue;
        }
        let ringable = gw >= 2 && gh >= 2;
        let squareness = gw.abs_diff(gh);
        let candidate = (gw, gh);
        best = match best {
            None => Some(candidate),
            Some((bw, bh)) => {
                let best_ringable = bw >= 2 && bh >= 2;
                let better = (ringable, std::cmp::Reverse(squareness))
                    > (best_ringable, std::cmp::Reverse(bw.abs_diff(bh)));
                if better {
                    Some(candidate)
                } else {
                    Some((bw, bh))
                }
            }
        };
    }
    let Some((gw, gh)) = best else {
        let ids: Vec<DieId> = mesh.dies().collect();
        return ids.chunks(group_size).map(|c| c.to_vec()).collect();
    };
    let mut groups = Vec::new();
    for by in (0..h).step_by(gh) {
        for bx in (0..w).step_by(gw) {
            let mut g = Vec::with_capacity(group_size);
            for dy in 0..gh {
                for dx in 0..gw {
                    g.push(
                        mesh.die_at(Coord::new((bx + dx) as u32, (by + dy) as u32))
                            .expect("in bounds"),
                    );
                }
            }
            groups.push(g);
        }
    }
    groups
}

/// Fraction of groups embedding a contiguous physical ring.
pub fn ring_fraction(groups: &[GroupPlacement]) -> f64 {
    if groups.is_empty() {
        return 0.0;
    }
    groups.iter().filter(|g| g.is_physical_ring()).count() as f64 / groups.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh;

    #[test]
    fn two_by_two_block_is_a_ring() {
        let m = Mesh::new(4, 4).unwrap();
        let dies = vec![DieId(0), DieId(1), DieId(4), DieId(5)];
        let ring = ring_order(&m, &dies).expect("2x2 block embeds a ring");
        assert_eq!(ring.len(), 4);
        // Consecutive ring entries (and the wrap) are adjacent.
        for i in 0..4 {
            assert!(m.adjacent(ring[i], ring[(i + 1) % 4]));
        }
    }

    #[test]
    fn straight_line_is_not_a_ring() {
        let m = Mesh::new(8, 4).unwrap();
        let dies: Vec<DieId> = (0..4).map(DieId).collect();
        assert!(ring_order(&m, &dies).is_none());
    }

    #[test]
    fn odd_sized_group_is_never_a_ring() {
        let m = Mesh::new(4, 4).unwrap();
        let dies = vec![DieId(0), DieId(1), DieId(4), DieId(5), DieId(2)];
        assert!(ring_order(&m, &dies).is_none());
    }

    #[test]
    fn l_shaped_tetris_group_has_no_ring() {
        // Fig. 8(a): dies 0-3 of a 3x4 array in row-major strip order —
        // a 1-wide L/strip shape with no cycle.
        let m = Mesh::new(4, 3).unwrap();
        let dies = vec![DieId(0), DieId(1), DieId(2), DieId(3)];
        assert!(ring_order(&m, &dies).is_none());
        assert_eq!(max_ring_hop(&m, &dies), 3);
    }

    #[test]
    fn two_by_three_block_is_a_ring() {
        let m = Mesh::new(6, 4).unwrap();
        let dies = vec![DieId(0), DieId(1), DieId(2), DieId(6), DieId(7), DieId(8)];
        let ring = ring_order(&m, &dies).expect("2x3 block embeds a ring");
        for i in 0..ring.len() {
            assert!(m.adjacent(ring[i], ring[(i + 1) % ring.len()]));
        }
    }

    #[test]
    fn snake_order_steps_are_all_neighbors() {
        let m = Mesh::new(8, 4).unwrap();
        let snake = snake_order(&m);
        assert_eq!(snake.len(), 32);
        for w in snake.windows(2) {
            assert!(m.adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn row_major_strips_break_rings_on_fig7_array() {
        // Fig. 7(a): 6x9 array (54 dies), parallel degree 6 => 9 groups;
        // naive strips leave most groups without contiguous rings.
        let m = Mesh::new(9, 6).unwrap();
        let naive = allocate_groups(&m, 6, GroupPolicy::RowMajorStrips);
        assert_eq!(naive.len(), 9);
        let naive_rings = naive.iter().filter(|g| g.is_physical_ring()).count();
        let aware = allocate_groups(&m, 6, GroupPolicy::Blocks);
        let aware_rings = aware.iter().filter(|g| g.is_physical_ring()).count();
        assert!(
            aware_rings > naive_rings,
            "aware {aware_rings} vs naive {naive_rings}"
        );
        assert_eq!(aware_rings, 9, "3x2 blocks tile 9x6 perfectly into rings");
    }

    #[test]
    fn block_groups_on_hpca_wafer_are_rings_for_degree_8() {
        let m = Mesh::new(8, 4).unwrap();
        let groups = allocate_groups(&m, 8, GroupPolicy::Blocks);
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert!(g.is_physical_ring(), "group {:?} not a ring", g.dies);
        }
    }

    #[test]
    fn naive_strip_logical_hop_grows_with_group_size() {
        let m = Mesh::new(8, 4).unwrap();
        let strips = allocate_groups(&m, 8, GroupPolicy::RowMajorStrips);
        // An 8-die row used as a logical ring needs a 7-hop wrap transfer.
        assert!(strips.iter().any(|g| g.max_logical_hop == 7));
    }

    #[test]
    fn ring_fraction_bounds() {
        let m = Mesh::new(8, 4).unwrap();
        let groups = allocate_groups(&m, 4, GroupPolicy::Blocks);
        let f = ring_fraction(&groups);
        assert!((0.0..=1.0).contains(&f));
        assert!((f - 1.0).abs() < 1e-12, "2x2 blocks all rings");
    }
}
