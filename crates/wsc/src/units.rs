//! Unit constants and formatting helpers used across the workspace.
//!
//! All latencies are `f64` seconds, all sizes `f64` bytes, all energies `f64`
//! joules, unless a type name says otherwise. The constants below keep call
//! sites legible (`4.0 * TB` instead of `4.0e12`).

/// One kilobyte (decimal, 10^3 bytes).
pub const KB: f64 = 1e3;
/// One megabyte (decimal, 10^6 bytes).
pub const MB: f64 = 1e6;
/// One gigabyte (decimal, 10^9 bytes).
pub const GB: f64 = 1e9;
/// One terabyte (decimal, 10^12 bytes).
pub const TB: f64 = 1e12;

/// One kibibyte (2^10 bytes).
pub const KIB: f64 = 1024.0;
/// One mebibyte (2^20 bytes).
pub const MIB: f64 = 1024.0 * 1024.0;
/// One gibibyte (2^30 bytes).
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// One nanosecond in seconds.
pub const NS: f64 = 1e-9;
/// One microsecond in seconds.
pub const US: f64 = 1e-6;
/// One millisecond in seconds.
pub const MS: f64 = 1e-3;

/// One teraflop/s.
pub const TFLOPS: f64 = 1e12;
/// One gigaflop/s.
pub const GFLOPS: f64 = 1e9;

/// One picojoule in joules.
pub const PJ: f64 = 1e-12;

/// Converts an energy-per-bit figure in pJ/bit into joules per *byte*.
///
/// ```
/// use temp_wsc::units::pj_per_bit_to_joules_per_byte;
/// let j = pj_per_bit_to_joules_per_byte(5.0);
/// assert!((j - 40.0e-12).abs() < 1e-18);
/// ```
pub fn pj_per_bit_to_joules_per_byte(pj_per_bit: f64) -> f64 {
    pj_per_bit * PJ * 8.0
}

/// Formats a byte count with a binary-prefix unit, for human-readable reports.
///
/// ```
/// use temp_wsc::units::fmt_bytes;
/// assert_eq!(fmt_bytes(0.0), "0 B");
/// assert_eq!(fmt_bytes(1536.0 * 1024.0 * 1024.0), "1.50 GiB");
/// ```
pub fn fmt_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs < 1024.0 {
        format!("{bytes:.0} B")
    } else if abs < MIB {
        format!("{:.2} KiB", bytes / KIB)
    } else if abs < GIB {
        format!("{:.2} MiB", bytes / MIB)
    } else {
        format!("{:.2} GiB", bytes / GIB)
    }
}

/// Formats a duration in the most natural sub-second unit.
///
/// ```
/// use temp_wsc::units::fmt_time;
/// assert_eq!(fmt_time(2.5e-9), "2.50 ns");
/// assert_eq!(fmt_time(0.0125), "12.50 ms");
/// ```
pub fn fmt_time(seconds: f64) -> String {
    let abs = seconds.abs();
    if abs < US {
        format!("{:.2} ns", seconds / NS)
    } else if abs < MS {
        format!("{:.2} us", seconds / US)
    } else if abs < 1.0 {
        format!("{:.2} ms", seconds / MS)
    } else {
        format!("{seconds:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(TB, 1000.0 * GB);
        assert_eq!(GIB, 1024.0 * MIB);
        assert!((NS * 1e9 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pj_per_bit_conversion() {
        // 6 pJ/bit (HBM) => 48 pJ per byte.
        let j = pj_per_bit_to_joules_per_byte(6.0);
        assert!((j - 48.0e-12).abs() < 1e-20);
    }

    #[test]
    fn byte_formatting_covers_ranges() {
        assert_eq!(fmt_bytes(100.0), "100 B");
        assert_eq!(fmt_bytes(2048.0), "2.00 KiB");
        assert_eq!(fmt_bytes(3.0 * MIB), "3.00 MiB");
        assert_eq!(fmt_bytes(72.0 * GIB), "72.00 GiB");
    }

    #[test]
    fn time_formatting_covers_ranges() {
        assert_eq!(fmt_time(200.0 * NS), "200.00 ns");
        assert_eq!(fmt_time(3.5 * US), "3.50 us");
        assert_eq!(fmt_time(1.25), "1.250 s");
    }
}
