//! Link and core fault models (Fig. 20, §VIII-F).
//!
//! Large wafer deployments never yield perfect meshes. TEMP adapts at the
//! framework level instead of demanding hardware redundancy: faults are
//! localized and classified, tensor partitions re-balanced, and
//! communication re-routed. This module provides the fault substrate:
//! seeded fault injection, surviving-topology queries, and fault-aware
//! shortest-path routing.

use std::collections::{BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::topology::{DieId, LinkId, Mesh};
use crate::{Result, WscError};

/// A wafer's fault state: dead D2D links and per-die dead-core fractions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    dead_links: BTreeSet<LinkId>,
    /// `core_fault[die]` = fraction of that die's compute cores that are
    /// dead, in `[0, 1]`.
    core_fault: Vec<f64>,
}

impl FaultMap {
    /// A fault-free map for a mesh.
    pub fn healthy(mesh: &Mesh) -> Self {
        FaultMap {
            dead_links: BTreeSet::new(),
            core_fault: vec![0.0; mesh.die_count()],
        }
    }

    /// Injects link faults: each *undirected* link dies with independent
    /// probability implied by `rate` (fraction of links to kill, rounded).
    /// Both directions of a dead link are removed. Deterministic in `seed`.
    pub fn inject_link_faults(mesh: &Mesh, rate: f64, seed: u64) -> Self {
        let mut map = FaultMap::healthy(mesh);
        let rate = rate.clamp(0.0, 1.0);
        // Collect undirected pairs once (src < dst).
        let mut pairs: Vec<(LinkId, LinkId)> = Vec::new();
        for (i, l) in mesh.links().iter().enumerate() {
            if l.src < l.dst {
                let back = mesh
                    .link_between(l.dst, l.src)
                    .expect("mesh links are symmetric");
                pairs.push((LinkId(i as u32), back));
            }
        }
        let kill_count = (pairs.len() as f64 * rate).round() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        pairs.shuffle(&mut rng);
        for (fwd, back) in pairs.into_iter().take(kill_count) {
            map.dead_links.insert(fwd);
            map.dead_links.insert(back);
        }
        map
    }

    /// Injects core faults: kills `rate` of all cores on the wafer, spread
    /// die-by-die with mild variance. Deterministic in `seed`.
    pub fn inject_core_faults(mesh: &Mesh, rate: f64, seed: u64) -> Self {
        let mut map = FaultMap::healthy(mesh);
        let rate = rate.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        for f in map.core_fault.iter_mut() {
            // Jitter each die's fault fraction around the global rate.
            let jitter: f64 = rng.gen_range(-0.5..0.5) * rate;
            *f = (rate + jitter).clamp(0.0, 1.0);
        }
        // Renormalize so the wafer-wide mean matches `rate` exactly.
        let mean: f64 = map.core_fault.iter().sum::<f64>() / mesh.die_count() as f64;
        if mean > 0.0 {
            let scale = rate / mean;
            for f in map.core_fault.iter_mut() {
                *f = (*f * scale).clamp(0.0, 1.0);
            }
        }
        map
    }

    /// Marks a single directed link (and its reverse) dead.
    pub fn kill_link(&mut self, mesh: &Mesh, link: LinkId) {
        self.dead_links.insert(link);
        let l = mesh.links()[link.index()];
        if let Ok(back) = mesh.link_between(l.dst, l.src) {
            self.dead_links.insert(back);
        }
    }

    /// Sets a die's dead-core fraction.
    ///
    /// # Panics
    ///
    /// Panics if the die index is out of range for the map.
    pub fn set_core_fault(&mut self, die: DieId, fraction: f64) {
        self.core_fault[die.index()] = fraction.clamp(0.0, 1.0);
    }

    /// Whether a directed link is dead.
    pub fn link_dead(&self, link: LinkId) -> bool {
        self.dead_links.contains(&link)
    }

    /// Number of dead directed links.
    pub fn dead_link_count(&self) -> usize {
        self.dead_links.len()
    }

    /// Fraction of a die's cores that survive (compute derating factor).
    pub fn surviving_compute(&self, die: DieId) -> f64 {
        1.0 - self.core_fault.get(die.index()).copied().unwrap_or(0.0)
    }

    /// Wafer-wide mean dead-core fraction.
    pub fn mean_core_fault(&self) -> f64 {
        if self.core_fault.is_empty() {
            return 0.0;
        }
        self.core_fault.iter().sum::<f64>() / self.core_fault.len() as f64
    }

    /// Surviving neighbors of a die (mesh neighbors reachable over live links).
    pub fn live_neighbors(&self, mesh: &Mesh, die: DieId) -> Vec<DieId> {
        mesh.neighbors(die)
            .into_iter()
            .filter(|n| {
                mesh.link_between(die, *n)
                    .map(|l| !self.link_dead(l))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// BFS shortest path from `src` to `dst` over live links, inclusive of
    /// endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::NoRoute`] when faults have disconnected the pair.
    pub fn route_around(&self, mesh: &Mesh, src: DieId, dst: DieId) -> Result<Vec<DieId>> {
        if src == dst {
            return Ok(vec![src]);
        }
        let n = mesh.die_count();
        let mut prev: Vec<Option<DieId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[src.index()] = true;
        q.push_back(src);
        while let Some(cur) = q.pop_front() {
            for nb in self.live_neighbors(mesh, cur) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    prev[nb.index()] = Some(cur);
                    if nb == dst {
                        let mut path = vec![dst];
                        let mut at = dst;
                        while let Some(p) = prev[at.index()] {
                            path.push(p);
                            at = p;
                        }
                        path.reverse();
                        return Ok(path);
                    }
                    q.push_back(nb);
                }
            }
        }
        Err(WscError::NoRoute {
            src: src.0,
            dst: dst.0,
        })
    }

    /// Whether all dies remain mutually reachable over live links.
    pub fn is_connected(&self, mesh: &Mesh) -> bool {
        let n = mesh.die_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[0] = true;
        q.push_back(DieId(0));
        let mut count = 1;
        while let Some(cur) = q.pop_front() {
            for nb in self.live_neighbors(mesh, cur) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    q.push_back(nb);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Coord, Mesh};

    fn mesh() -> Mesh {
        Mesh::new(8, 4).unwrap()
    }

    #[test]
    fn healthy_map_has_no_faults() {
        let m = mesh();
        let f = FaultMap::healthy(&m);
        assert_eq!(f.dead_link_count(), 0);
        assert!((f.mean_core_fault()).abs() < 1e-12);
        assert!(f.is_connected(&m));
    }

    #[test]
    fn link_injection_is_deterministic_and_proportional() {
        let m = mesh();
        let f1 = FaultMap::inject_link_faults(&m, 0.2, 42);
        let f2 = FaultMap::inject_link_faults(&m, 0.2, 42);
        assert_eq!(f1, f2);
        let undirected = m.link_count() / 2;
        let expected = ((undirected as f64) * 0.2).round() as usize * 2;
        assert_eq!(f1.dead_link_count(), expected);
    }

    #[test]
    fn different_seeds_differ() {
        let m = mesh();
        let f1 = FaultMap::inject_link_faults(&m, 0.3, 1);
        let f2 = FaultMap::inject_link_faults(&m, 0.3, 2);
        assert_ne!(f1, f2);
    }

    #[test]
    fn core_injection_hits_target_mean() {
        let m = mesh();
        let f = FaultMap::inject_core_faults(&m, 0.25, 7);
        assert!((f.mean_core_fault() - 0.25).abs() < 0.02);
        for die in m.dies() {
            let s = f.surviving_compute(die);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn route_around_single_dead_link() {
        let m = mesh();
        let a = m.die_at(Coord::new(0, 0)).unwrap();
        let b = m.die_at(Coord::new(1, 0)).unwrap();
        let mut f = FaultMap::healthy(&m);
        let l = m.link_between(a, b).unwrap();
        f.kill_link(&m, l);
        let path = f.route_around(&m, a, b).unwrap();
        assert!(path.len() > 2, "must detour, got {path:?}");
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        // Every step uses a live link.
        for w in path.windows(2) {
            let l = m.link_between(w[0], w[1]).unwrap();
            assert!(!f.link_dead(l));
        }
    }

    #[test]
    fn disconnection_is_detected() {
        let m = Mesh::new(2, 1).unwrap();
        let mut f = FaultMap::healthy(&m);
        let l = m.link_between(DieId(0), DieId(1)).unwrap();
        f.kill_link(&m, l);
        assert!(!f.is_connected(&m));
        assert!(matches!(
            f.route_around(&m, DieId(0), DieId(1)),
            Err(WscError::NoRoute { .. })
        ));
    }

    #[test]
    fn route_to_self_is_trivial() {
        let m = mesh();
        let f = FaultMap::inject_link_faults(&m, 0.5, 3);
        assert_eq!(
            f.route_around(&m, DieId(5), DieId(5)).unwrap(),
            vec![DieId(5)]
        );
    }

    #[test]
    fn full_rate_kills_every_link() {
        let m = mesh();
        let f = FaultMap::inject_link_faults(&m, 1.0, 9);
        assert_eq!(f.dead_link_count(), m.link_count());
        assert!(!f.is_connected(&m));
    }
}
