//! Link and core fault models (Fig. 20, §VIII-F).
//!
//! Large wafer deployments never yield perfect meshes. TEMP adapts at the
//! framework level instead of demanding hardware redundancy: faults are
//! localized and classified, tensor partitions re-balanced, and
//! communication re-routed. This module provides the fault substrate:
//! seeded fault injection, surviving-topology queries, and fault-aware
//! shortest-path routing.

use std::collections::{BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::topology::{DieId, LinkId, Mesh};
use crate::{Result, WscError};

/// A wafer's fault state: dead D2D links and per-die dead-core fractions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    dead_links: BTreeSet<LinkId>,
    /// `core_fault[die]` = fraction of that die's compute cores that are
    /// dead, in `[0, 1]`.
    core_fault: Vec<f64>,
}

impl FaultMap {
    /// A fault-free map for a mesh.
    pub fn healthy(mesh: &Mesh) -> Self {
        FaultMap {
            dead_links: BTreeSet::new(),
            core_fault: vec![0.0; mesh.die_count()],
        }
    }

    /// Injects link faults with **deterministic-count** semantics: exactly
    /// `round(undirected_links * rate)` undirected links die — not an
    /// independent per-link coin flip — chosen by a seeded shuffle. Both
    /// directions of a dead link are removed. Deterministic in `seed`, and
    /// monotone in `rate` for a fixed seed: the dead set at a higher rate
    /// is a superset of the dead set at a lower rate (the shuffle order is
    /// fixed, only the kill count grows), which is what makes per-seed
    /// degradation sweeps well-ordered.
    pub fn inject_link_faults(mesh: &Mesh, rate: f64, seed: u64) -> Self {
        let mut map = FaultMap::healthy(mesh);
        let rate = rate.clamp(0.0, 1.0);
        // Collect undirected pairs once (src < dst).
        let mut pairs: Vec<(LinkId, LinkId)> = Vec::new();
        for (i, l) in mesh.links().iter().enumerate() {
            if l.src < l.dst {
                let back = mesh
                    .link_between(l.dst, l.src)
                    .expect("mesh links are symmetric");
                pairs.push((LinkId(i as u32), back));
            }
        }
        let kill_count = (pairs.len() as f64 * rate).round() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        pairs.shuffle(&mut rng);
        for (fwd, back) in pairs.into_iter().take(kill_count) {
            map.dead_links.insert(fwd);
            map.dead_links.insert(back);
        }
        map
    }

    /// Injects core faults: kills `rate` of all cores on the wafer, spread
    /// die-by-die with mild variance. Deterministic in `seed`.
    pub fn inject_core_faults(mesh: &Mesh, rate: f64, seed: u64) -> Self {
        let mut map = FaultMap::healthy(mesh);
        let rate = rate.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        for f in map.core_fault.iter_mut() {
            // Jitter each die's fault fraction around the global rate.
            let jitter: f64 = rng.gen_range(-0.5..0.5) * rate;
            *f = (rate + jitter).clamp(0.0, 1.0);
        }
        // Renormalize so the wafer-wide mean matches `rate` exactly.
        let mean: f64 = map.core_fault.iter().sum::<f64>() / mesh.die_count() as f64;
        if mean > 0.0 {
            let scale = rate / mean;
            for f in map.core_fault.iter_mut() {
                *f = (*f * scale).clamp(0.0, 1.0);
            }
        }
        map
    }

    /// Marks a single directed link (and its reverse) dead.
    pub fn kill_link(&mut self, mesh: &Mesh, link: LinkId) {
        self.dead_links.insert(link);
        let l = mesh.links()[link.index()];
        if let Ok(back) = mesh.link_between(l.dst, l.src) {
            self.dead_links.insert(back);
        }
    }

    /// Sets a die's dead-core fraction.
    ///
    /// # Panics
    ///
    /// Panics if the die index is out of range for the map.
    pub fn set_core_fault(&mut self, die: DieId, fraction: f64) {
        self.core_fault[die.index()] = fraction.clamp(0.0, 1.0);
    }

    /// Whether a directed link is dead.
    pub fn link_dead(&self, link: LinkId) -> bool {
        self.dead_links.contains(&link)
    }

    /// Number of dead directed links.
    pub fn dead_link_count(&self) -> usize {
        self.dead_links.len()
    }

    /// Fraction of a die's cores that survive (compute derating factor).
    pub fn surviving_compute(&self, die: DieId) -> f64 {
        1.0 - self.core_fault.get(die.index()).copied().unwrap_or(0.0)
    }

    /// Wafer-wide mean dead-core fraction.
    pub fn mean_core_fault(&self) -> f64 {
        if self.core_fault.is_empty() {
            return 0.0;
        }
        self.core_fault.iter().sum::<f64>() / self.core_fault.len() as f64
    }

    /// Surviving neighbors of a die (mesh neighbors reachable over live links).
    pub fn live_neighbors(&self, mesh: &Mesh, die: DieId) -> Vec<DieId> {
        mesh.neighbors(die)
            .into_iter()
            .filter(|n| {
                mesh.link_between(die, *n)
                    .map(|l| !self.link_dead(l))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// BFS shortest path from `src` to `dst` over live links, inclusive of
    /// endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::NoRoute`] when faults have disconnected the pair.
    pub fn route_around(&self, mesh: &Mesh, src: DieId, dst: DieId) -> Result<Vec<DieId>> {
        if src == dst {
            return Ok(vec![src]);
        }
        let n = mesh.die_count();
        let mut prev: Vec<Option<DieId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[src.index()] = true;
        q.push_back(src);
        while let Some(cur) = q.pop_front() {
            for nb in self.live_neighbors(mesh, cur) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    prev[nb.index()] = Some(cur);
                    if nb == dst {
                        let mut path = vec![dst];
                        let mut at = dst;
                        while let Some(p) = prev[at.index()] {
                            path.push(p);
                            at = p;
                        }
                        path.reverse();
                        return Ok(path);
                    }
                    q.push_back(nb);
                }
            }
        }
        Err(WscError::NoRoute {
            src: src.0,
            dst: dst.0,
        })
    }

    /// Whether this map carries no faults at all (no dead links, no dead
    /// cores). A healthy map must behave exactly like no fault map: callers
    /// use this to route the fault-free case through the unmodified healthy
    /// code path so plans stay bit-for-bit identical.
    pub fn is_healthy(&self) -> bool {
        self.dead_links.is_empty() && self.core_fault.iter().all(|f| *f == 0.0)
    }

    /// The worst single die's surviving-core fraction (the binding
    /// constraint for uniform SPMD shard sizing: every die must hold its
    /// shard, so the most degraded die caps usable per-die memory).
    pub fn min_surviving_compute(&self) -> f64 {
        self.core_fault.iter().map(|f| 1.0 - *f).fold(1.0, f64::min)
    }

    /// Wafer-wide mean surviving-core fraction (the compute derating:
    /// partition re-balancing spreads work in proportion to surviving
    /// cores, so aggregate throughput tracks the mean, not the worst die).
    pub fn mean_surviving_compute(&self) -> f64 {
        1.0 - self.mean_core_fault()
    }

    /// Summarizes this fault map as the degraded-fabric factors the cost
    /// model consumes (see [`DegradedView`]). `O(links * dies)` — BFS per
    /// formerly-adjacent pair with at least one dead link touching it.
    pub fn degraded_view(&self, mesh: &Mesh) -> DegradedView {
        let connected = self.is_connected(mesh);
        let total_links = mesh.link_count();
        let link_survival = if total_links == 0 {
            1.0
        } else {
            (total_links - self.dead_links.len()) as f64 / total_links as f64
        };
        // Mean detour over formerly-adjacent pairs: how much longer the
        // shortest live path is than the original single hop. Live links
        // contribute 1.0; severed neighbor pairs contribute their BFS
        // length (only meaningful when the mesh stays connected).
        let mut detour_sum = 0.0;
        let mut pair_count = 0usize;
        for (i, l) in mesh.links().iter().enumerate() {
            if l.src >= l.dst {
                continue;
            }
            pair_count += 1;
            if !self.link_dead(LinkId(i as u32)) {
                detour_sum += 1.0;
            } else if let Ok(path) = self.route_around(mesh, l.src, l.dst) {
                detour_sum += (path.len() - 1) as f64;
            } else {
                // Disconnected pair: count the wafer diameter as a bound;
                // the `connected` flag is what marks the plan infeasible.
                detour_sum += (mesh.die_count()) as f64;
            }
        }
        let mean_detour = if pair_count == 0 {
            1.0
        } else {
            detour_sum / pair_count as f64
        };
        DegradedView {
            connected,
            compute_factor: self.mean_surviving_compute().max(0.0),
            memory_factor: self.min_surviving_compute().max(0.0),
            link_survival,
            mean_detour,
            dead_links: self.dead_links.len(),
        }
    }

    /// Whether all dies remain mutually reachable over live links.
    pub fn is_connected(&self, mesh: &Mesh) -> bool {
        let n = mesh.die_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[0] = true;
        q.push_back(DieId(0));
        let mut count = 1;
        while let Some(cur) = q.pop_front() {
            for nb in self.live_neighbors(mesh, cur) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    q.push_back(nb);
                }
            }
        }
        count == n
    }
}

/// The degraded-fabric factors a [`FaultMap`] induces on a [`Mesh`] — the
/// summary the solver's cost model derates with (Fig. 20, §VIII-F).
///
/// All factors are `1.0` (and `connected` true, `dead_links` zero) for a
/// healthy map, so a degraded cost model built from a healthy view prices
/// identically to the healthy one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedView {
    /// Whether all dies remain mutually reachable. A disconnected wafer
    /// cannot run lockstep SPMD collectives at all: no feasible plan.
    pub connected: bool,
    /// Wafer-wide mean surviving-core fraction in `[0, 1]`: scales
    /// aggregate compute throughput (re-balanced partitions track the
    /// mean).
    pub compute_factor: f64,
    /// Worst-die surviving fraction in `[0, 1]`: scales usable per-die
    /// memory (a uniform shard must fit the most degraded die).
    pub memory_factor: f64,
    /// Surviving directed links / total directed links, in `[0, 1]`:
    /// the wafer's bisection derating.
    pub link_survival: f64,
    /// Mean live-path length over formerly-adjacent die pairs (`>= 1`):
    /// how much longer rerouted neighbor traffic travels.
    pub mean_detour: f64,
    /// Number of dead *directed* links.
    pub dead_links: usize,
}

impl DegradedView {
    /// A healthy (identity) view.
    pub fn healthy() -> Self {
        DegradedView {
            connected: true,
            compute_factor: 1.0,
            memory_factor: 1.0,
            link_survival: 1.0,
            mean_detour: 1.0,
            dead_links: 0,
        }
    }

    /// The multiplicative slowdown on link-bound (collective / streaming)
    /// time: rerouted traffic travels `mean_detour` times farther over
    /// `link_survival` of the original bisection.
    pub fn link_time_factor(&self) -> f64 {
        if self.link_survival <= 0.0 {
            return f64::INFINITY;
        }
        self.mean_detour / self.link_survival
    }

    /// Whether this view is the identity (no derating anywhere).
    pub fn is_identity(&self) -> bool {
        self.connected
            && self.dead_links == 0
            && self.compute_factor == 1.0
            && self.memory_factor == 1.0
            && self.link_survival == 1.0
            && self.mean_detour == 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Coord, Mesh};

    fn mesh() -> Mesh {
        Mesh::new(8, 4).unwrap()
    }

    #[test]
    fn healthy_map_has_no_faults() {
        let m = mesh();
        let f = FaultMap::healthy(&m);
        assert_eq!(f.dead_link_count(), 0);
        assert!((f.mean_core_fault()).abs() < 1e-12);
        assert!(f.is_connected(&m));
    }

    #[test]
    fn link_injection_is_deterministic_and_proportional() {
        let m = mesh();
        let f1 = FaultMap::inject_link_faults(&m, 0.2, 42);
        let f2 = FaultMap::inject_link_faults(&m, 0.2, 42);
        assert_eq!(f1, f2);
        let undirected = m.link_count() / 2;
        let expected = ((undirected as f64) * 0.2).round() as usize * 2;
        assert_eq!(f1.dead_link_count(), expected);
    }

    #[test]
    fn link_injection_kills_an_exact_rounded_count_not_a_coin_flip() {
        // Deterministic-count semantics: for every rate the number of dead
        // undirected links is exactly `round(undirected * rate)` — there is
        // no binomial spread, which an independent-probability model would
        // show across seeds.
        let m = mesh();
        let undirected = m.link_count() / 2;
        for rate in [0.0, 0.05, 0.1, 0.25, 0.33, 0.5, 0.75, 1.0] {
            let expected = ((undirected as f64) * rate).round() as usize * 2;
            for seed in 0u64..8 {
                let f = FaultMap::inject_link_faults(&m, rate, seed);
                assert_eq!(
                    f.dead_link_count(),
                    expected,
                    "rate={rate} seed={seed}: count must be exact, not probabilistic"
                );
            }
        }
    }

    #[test]
    fn link_injection_is_monotone_in_rate_per_seed() {
        // Fixed seed, growing rate: the dead set only grows (the shuffle
        // order is fixed; only the kill prefix lengthens). Degradation
        // sweeps rely on this nesting.
        let m = mesh();
        for seed in 0u64..6 {
            let mut prev = FaultMap::inject_link_faults(&m, 0.0, seed);
            for rate in [0.1, 0.2, 0.35, 0.5, 0.8] {
                let next = FaultMap::inject_link_faults(&m, rate, seed);
                for link in m.links().iter().enumerate().filter_map(|(i, _)| {
                    let id = LinkId(i as u32);
                    prev.link_dead(id).then_some(id)
                }) {
                    assert!(next.link_dead(link), "seed={seed} rate={rate}");
                }
                prev = next;
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let m = mesh();
        let f1 = FaultMap::inject_link_faults(&m, 0.3, 1);
        let f2 = FaultMap::inject_link_faults(&m, 0.3, 2);
        assert_ne!(f1, f2);
    }

    #[test]
    fn core_injection_hits_target_mean() {
        let m = mesh();
        let f = FaultMap::inject_core_faults(&m, 0.25, 7);
        assert!((f.mean_core_fault() - 0.25).abs() < 0.02);
        for die in m.dies() {
            let s = f.surviving_compute(die);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn route_around_single_dead_link() {
        let m = mesh();
        let a = m.die_at(Coord::new(0, 0)).unwrap();
        let b = m.die_at(Coord::new(1, 0)).unwrap();
        let mut f = FaultMap::healthy(&m);
        let l = m.link_between(a, b).unwrap();
        f.kill_link(&m, l);
        let path = f.route_around(&m, a, b).unwrap();
        assert!(path.len() > 2, "must detour, got {path:?}");
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        // Every step uses a live link.
        for w in path.windows(2) {
            let l = m.link_between(w[0], w[1]).unwrap();
            assert!(!f.link_dead(l));
        }
    }

    #[test]
    fn disconnection_is_detected() {
        let m = Mesh::new(2, 1).unwrap();
        let mut f = FaultMap::healthy(&m);
        let l = m.link_between(DieId(0), DieId(1)).unwrap();
        f.kill_link(&m, l);
        assert!(!f.is_connected(&m));
        assert!(matches!(
            f.route_around(&m, DieId(0), DieId(1)),
            Err(WscError::NoRoute { .. })
        ));
    }

    #[test]
    fn route_to_self_is_trivial() {
        let m = mesh();
        let f = FaultMap::inject_link_faults(&m, 0.5, 3);
        assert_eq!(
            f.route_around(&m, DieId(5), DieId(5)).unwrap(),
            vec![DieId(5)]
        );
    }

    #[test]
    fn healthy_view_is_the_identity() {
        let m = mesh();
        let f = FaultMap::healthy(&m);
        assert!(f.is_healthy());
        let v = f.degraded_view(&m);
        assert!(v.is_identity());
        assert_eq!(v, DegradedView::healthy());
        assert_eq!(v.link_time_factor(), 1.0);
    }

    #[test]
    fn degraded_view_tracks_link_and_core_faults() {
        let m = mesh();
        let f = FaultMap::inject_link_faults(&m, 0.1, 11);
        let v = f.degraded_view(&m);
        assert!(!f.is_healthy());
        assert!(v.connected);
        assert!(v.link_survival < 1.0);
        assert!(v.mean_detour > 1.0);
        assert!(v.link_time_factor() > 1.0);
        assert_eq!(v.compute_factor, 1.0);
        assert_eq!(v.memory_factor, 1.0);

        let c = FaultMap::inject_core_faults(&m, 0.25, 11);
        let cv = c.degraded_view(&m);
        assert!(cv.connected);
        assert_eq!(cv.link_survival, 1.0);
        assert_eq!(cv.mean_detour, 1.0);
        assert!((cv.compute_factor - 0.75).abs() < 0.02);
        // The worst die is strictly more degraded than the mean (jittered
        // injection), so memory derates harder than compute.
        assert!(cv.memory_factor < cv.compute_factor);
        assert!(cv.memory_factor > 0.0);
    }

    #[test]
    fn degraded_view_monotone_in_link_rate_per_seed() {
        let m = mesh();
        for seed in [3u64, 17] {
            let mut last_survival = 1.0f64;
            let mut last_detour = 1.0f64;
            for rate in [0.0, 0.1, 0.2, 0.3] {
                let v = FaultMap::inject_link_faults(&m, rate, seed).degraded_view(&m);
                if !v.connected {
                    break;
                }
                assert!(v.link_survival <= last_survival + 1e-12, "seed={seed}");
                assert!(v.mean_detour + 1e-12 >= last_detour, "seed={seed}");
                last_survival = v.link_survival;
                last_detour = v.mean_detour;
            }
        }
    }

    #[test]
    fn full_rate_kills_every_link() {
        let m = mesh();
        let f = FaultMap::inject_link_faults(&m, 1.0, 9);
        assert_eq!(f.dead_link_count(), m.link_count());
        assert!(!f.is_connected(&m));
    }
}
