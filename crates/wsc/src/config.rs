//! Hardware configuration (Table I of the paper) and preset wafers.
//!
//! All parameters default to the paper's evaluation platform: a 4x8 die
//! array at 2 GHz, each die offering 1800 TFLOPS at 2 TFLOPS/W, 80 MB SRAM,
//! 72 GB HBM at 1 TB/s, and 4 TB/s D2D links at 200 ns / 5 pJ/bit.

use serde::{Deserialize, Serialize};

use crate::topology::Mesh;
use crate::units::{GB, MB, NS, TB, TFLOPS};
use crate::{Result, WscError};

/// Die-to-die interconnect parameters (Table I, "Die-to-Die Interconnect").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct D2dConfig {
    /// Peak per-link, per-direction bandwidth in bytes/s. Table I quotes
    /// "4 TB/s" for the die's D2D interconnect; read as the die's aggregate
    /// over its four mesh links, each direction sustains 1 TB/s — the only
    /// reading consistent with the paper's measured 35-55% link utilization
    /// and ~40% collective share (Fig. 4(b)).
    pub bandwidth: f64,
    /// Per-hop link latency in seconds (paper: 200 ns).
    pub latency: f64,
    /// Transfer energy in pJ per bit (paper: 5.0 pJ/bit).
    pub energy_pj_per_bit: f64,
    /// Minimum transfer granularity in bytes at which the link reaches peak
    /// efficiency (§III-B: "tens to hundreds of megabytes"). Transfers below
    /// this size see proportionally degraded effective bandwidth.
    pub efficient_granularity: f64,
}

impl Default for D2dConfig {
    fn default() -> Self {
        D2dConfig {
            bandwidth: 1.0 * TB,
            latency: 200.0 * NS,
            energy_pj_per_bit: 5.0,
            efficient_granularity: 32.0 * MB,
        }
    }
}

impl D2dConfig {
    /// Effective bandwidth for a transfer of `bytes`, accounting for the
    /// large-granularity requirement of on-wafer D2D links (§III-B).
    ///
    /// Small messages cannot amortize the link training/packetization
    /// overhead; effective bandwidth ramps linearly with message size up to
    /// [`D2dConfig::efficient_granularity`], floored at 5% of peak.
    pub fn effective_bandwidth(&self, bytes: f64) -> f64 {
        let frac = (bytes / self.efficient_granularity).clamp(0.05, 1.0);
        self.bandwidth * frac
    }

    /// Time to push `bytes` over one hop, excluding queueing/contention.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.effective_bandwidth(bytes)
    }
}

/// HBM stack parameters (Table I, "DRAM Die").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Capacity per die in bytes (paper: 72 GB).
    pub capacity: f64,
    /// Access bandwidth in bytes/s (paper: 1 TB/s).
    pub bandwidth: f64,
    /// Access latency in seconds (paper: 100 ns).
    pub latency: f64,
    /// Access energy in pJ per bit (paper: 6.0 pJ/bit).
    pub energy_pj_per_bit: f64,
}

impl Default for HbmConfig {
    fn default() -> Self {
        HbmConfig {
            capacity: 72.0 * GB,
            bandwidth: 1.0 * TB,
            latency: 100.0 * NS,
            energy_pj_per_bit: 6.0,
        }
    }
}

/// Per-die compute parameters (Table I, "Logic Die").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DieConfig {
    /// Logic die area in mm^2 (paper: 500 mm^2).
    pub area_mm2: f64,
    /// On-die SRAM in bytes (paper: 80 MB).
    pub sram: f64,
    /// Peak FP16 throughput in FLOP/s (paper: 1800 TFLOPS).
    pub peak_flops: f64,
    /// Compute power efficiency in FLOP/s per watt (paper: 2 TFLOPS/W).
    pub flops_per_watt: f64,
    /// Operating frequency in Hz (paper: 2 GHz).
    pub frequency: f64,
    /// Core array dimension (paper: 8x8 compute cores per die).
    pub core_array: (u32, u32),
    /// Physical die footprint in mm (width, height); paper: 33.25 x 24.99.
    pub footprint_mm: (f64, f64),
}

impl Default for DieConfig {
    fn default() -> Self {
        DieConfig {
            area_mm2: 500.0,
            sram: 80.0 * MB,
            peak_flops: 1800.0 * TFLOPS,
            flops_per_watt: 2.0 * TFLOPS,
            frequency: 2.0e9,
            core_array: (8, 8),
            footprint_mm: (33.25, 24.99),
        }
    }
}

impl DieConfig {
    /// Total cores on the die.
    pub fn core_count(&self) -> u32 {
        self.core_array.0 * self.core_array.1
    }

    /// Power draw at full compute utilization, in watts.
    pub fn peak_power(&self) -> f64 {
        self.peak_flops / self.flops_per_watt
    }

    /// Compute energy in joules per FLOP.
    pub fn joules_per_flop(&self) -> f64 {
        1.0 / self.flops_per_watt
    }
}

/// Full wafer-scale chip configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaferConfig {
    /// Die-array width (columns).
    pub mesh_width: u32,
    /// Die-array height (rows).
    pub mesh_height: u32,
    /// Per-die compute configuration.
    pub die: DieConfig,
    /// D2D interconnect configuration.
    pub d2d: D2dConfig,
    /// Per-die HBM configuration.
    pub hbm: HbmConfig,
    /// Maximum reliable interposer trace length in mm (§III-B: 50 mm).
    pub max_link_mm: f64,
    /// Latency of a forward-error-corrected over-length link (§I: 210 ns).
    pub fec_latency: f64,
}

impl Default for WaferConfig {
    fn default() -> Self {
        WaferConfig::hpca()
    }
}

impl WaferConfig {
    /// The paper's evaluation platform (§VIII-A): a 4x8 die array.
    pub fn hpca() -> Self {
        WaferConfig {
            mesh_width: 8,
            mesh_height: 4,
            die: DieConfig::default(),
            d2d: D2dConfig::default(),
            hbm: HbmConfig::default(),
            max_link_mm: 50.0,
            fec_latency: 210.0 * NS,
        }
    }

    /// The Fig. 3 reference wafer: a 6x8 array on a 215 mm x 215 mm substrate.
    pub fn fig3() -> Self {
        WaferConfig {
            mesh_width: 8,
            mesh_height: 6,
            ..WaferConfig::hpca()
        }
    }

    /// A custom array size with otherwise default (Table I) parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::InvalidConfig`] if either dimension is zero.
    pub fn with_array(width: u32, height: u32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(WscError::InvalidConfig(format!(
                "die array must be nonzero, got {width}x{height}"
            )));
        }
        Ok(WaferConfig {
            mesh_width: width,
            mesh_height: height,
            ..WaferConfig::hpca()
        })
    }

    /// Number of dies on the wafer.
    pub fn die_count(&self) -> usize {
        (self.mesh_width * self.mesh_height) as usize
    }

    /// Builds the mesh topology for this wafer.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(self.mesh_width, self.mesh_height).expect("validated dimensions")
    }

    /// Aggregate peak compute of the wafer in FLOP/s.
    pub fn total_peak_flops(&self) -> f64 {
        self.die.peak_flops * self.die_count() as f64
    }

    /// Aggregate HBM capacity of the wafer in bytes.
    pub fn total_hbm_capacity(&self) -> f64 {
        self.hbm.capacity * self.die_count() as f64
    }

    /// Physical wafer footprint in mm (width, height) implied by the die
    /// footprint — useful for the signal-integrity analysis where side
    /// lengths beyond ~190 mm preclude torus links.
    pub fn wafer_extent_mm(&self) -> (f64, f64) {
        (
            self.mesh_width as f64 * self.die.footprint_mm.0,
            self.mesh_height as f64 * self.die.footprint_mm.1,
        )
    }

    /// Physical center-to-center trace length between two die grid positions,
    /// in mm. Adjacent-column dies are `footprint.0` apart, adjacent-row dies
    /// `footprint.1`.
    pub fn trace_length_mm(&self, dx: u32, dy: u32) -> f64 {
        dx as f64 * self.die.footprint_mm.0 + dy as f64 * self.die.footprint_mm.1
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::InvalidConfig`] for non-positive bandwidths,
    /// capacities, or compute rates.
    pub fn validate(&self) -> Result<()> {
        if self.mesh_width == 0 || self.mesh_height == 0 {
            return Err(WscError::InvalidConfig("zero mesh dimension".into()));
        }
        if self.d2d.bandwidth <= 0.0 {
            return Err(WscError::InvalidConfig("non-positive D2D bandwidth".into()));
        }
        if self.hbm.capacity <= 0.0 || self.hbm.bandwidth <= 0.0 {
            return Err(WscError::InvalidConfig(
                "non-positive HBM parameters".into(),
            ));
        }
        if self.die.peak_flops <= 0.0 || self.die.flops_per_watt <= 0.0 {
            return Err(WscError::InvalidConfig(
                "non-positive compute parameters".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpca_preset_matches_table_one() {
        let c = WaferConfig::hpca();
        assert_eq!(c.die_count(), 32);
        assert!((c.d2d.bandwidth - 1.0e12).abs() < 1.0); // 4 TB/s per die / 4 links
        assert!((c.d2d.latency - 200.0e-9).abs() < 1e-15);
        assert!((c.d2d.energy_pj_per_bit - 5.0).abs() < 1e-12);
        assert!((c.hbm.capacity - 72.0e9).abs() < 1.0);
        assert!((c.hbm.bandwidth - 1.0e12).abs() < 1.0);
        assert!((c.die.peak_flops - 1.8e15).abs() < 1.0);
        assert!((c.die.sram - 80.0e6).abs() < 1.0);
        assert_eq!(c.die.core_count(), 64);
    }

    #[test]
    fn peak_power_is_900_watts_per_die() {
        let die = DieConfig::default();
        assert!((die.peak_power() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_wafer_has_48_dies() {
        assert_eq!(WaferConfig::fig3().die_count(), 48);
    }

    #[test]
    fn wafer_extent_exceeds_190mm_for_fig3() {
        // §III-B: "the side length typically exceeds 190 mm".
        let (w, h) = WaferConfig::fig3().wafer_extent_mm();
        assert!(w > 190.0, "width {w}");
        assert!(h > 140.0, "height {h}");
    }

    #[test]
    fn effective_bandwidth_ramps_with_message_size() {
        let d2d = D2dConfig::default();
        let small = d2d.effective_bandwidth(1.0 * MB);
        let large = d2d.effective_bandwidth(64.0 * MB);
        assert!(small < large);
        assert!((large - d2d.bandwidth).abs() < 1.0);
        // Floor at 5% of peak.
        assert!(d2d.effective_bandwidth(1.0) >= 0.05 * d2d.bandwidth - 1.0);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let d2d = D2dConfig::default();
        let t = d2d.transfer_time(32.0 * MB);
        assert!(t > d2d.latency);
        let serialization = 32.0 * MB / d2d.bandwidth;
        assert!((t - (d2d.latency + serialization)).abs() < 1e-12);
    }

    #[test]
    fn with_array_validates() {
        assert!(WaferConfig::with_array(0, 4).is_err());
        let c = WaferConfig::with_array(6, 9).unwrap();
        assert_eq!(c.die_count(), 54);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_parameters() {
        let mut c = WaferConfig::hpca();
        c.d2d.bandwidth = 0.0;
        assert!(matches!(c.validate(), Err(WscError::InvalidConfig(_))));
    }
}
