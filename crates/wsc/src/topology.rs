//! 2D-mesh die-array topology: dies, links, adjacency and deterministic
//! dimension-ordered routing.
//!
//! The wafer integrates a `width x height` array of dies connected in a 2D
//! mesh (Fig. 3 of the paper). Links exist only between physically adjacent
//! dies; an optional *torus* mode adds wrap-around links, which the paper
//! shows to be physically infeasible (§III-B) — it exists here so the
//! motivation experiments can quantify exactly why.

use serde::{Deserialize, Serialize};

use crate::{Result, WscError};

/// A die's (column, row) position in the array. `x` grows rightward,
/// `y` grows downward, matching the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl Coord {
    /// Creates a coordinate. No bounds are implied until used with a [`Mesh`].
    pub fn new(x: u32, y: u32) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to another coordinate (no wrap-around).
    pub fn manhattan(&self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Dense die identifier: `id = y * width + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DieId(pub u32);

impl DieId {
    /// The raw index, usable to index per-die vectors.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DieId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Dense identifier of a *directed* link in the mesh link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw index, usable to index per-link vectors.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A directed die-to-die link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Source die.
    pub src: DieId,
    /// Destination die.
    pub dst: DieId,
    /// Whether this is a torus wrap-around link (physically infeasible on
    /// real interposers; used only in motivation studies).
    pub wrap: bool,
}

/// Dimension-ordered routing direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RouteOrder {
    /// Route along X first, then Y (the classic deadlock-free default).
    #[default]
    XThenY,
    /// Route along Y first, then X (the alternate used by the traffic
    /// optimizer to dodge congested rows).
    YThenX,
}

/// A `width x height` 2D mesh (optionally torus) of dies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mesh {
    width: u32,
    height: u32,
    torus: bool,
    links: Vec<Link>,
    /// Link-index table: `link_table[die * 4 + dir]` is the outgoing link
    /// of `die` in direction `dir` (see [`Direction`]), or `NO_LINK`.
    /// Built once at construction so [`Mesh::link_between`] and
    /// [`Mesh::path_links`] are O(1) per hop instead of scanning the link
    /// list — route-to-link conversion sits on the hot path of every
    /// contention simulation.
    link_table: Vec<u32>,
}

/// Sentinel in [`Mesh`]'s link-index table for "no link this direction".
const NO_LINK: u32 = u32::MAX;

/// Outgoing-link direction slots of the link-index table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Left = 0,
    Right = 1,
    Up = 2,
    Down = 3,
}

impl Mesh {
    /// Creates a mesh without wrap-around links.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::InvalidConfig`] if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Result<Self> {
        Self::with_mode(width, height, false)
    }

    /// Creates a torus (wrap-around) variant. Real wafers cannot build these
    /// links (§III-B); this exists for the motivation experiments.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::InvalidConfig`] if either dimension is zero.
    pub fn torus(width: u32, height: u32) -> Result<Self> {
        Self::with_mode(width, height, true)
    }

    fn with_mode(width: u32, height: u32, torus: bool) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(WscError::InvalidConfig(format!(
                "mesh dimensions must be nonzero, got {width}x{height}"
            )));
        }
        let mut links = Vec::new();
        for y in 0..height {
            for x in 0..width {
                let src = DieId(y * width + x);
                // Right neighbor.
                if x + 1 < width {
                    let dst = DieId(y * width + x + 1);
                    links.push(Link {
                        src,
                        dst,
                        wrap: false,
                    });
                    links.push(Link {
                        src: dst,
                        dst: src,
                        wrap: false,
                    });
                } else if torus && width > 2 {
                    let dst = DieId(y * width);
                    links.push(Link {
                        src,
                        dst,
                        wrap: true,
                    });
                    links.push(Link {
                        src: dst,
                        dst: src,
                        wrap: true,
                    });
                }
                // Down neighbor.
                if y + 1 < height {
                    let dst = DieId((y + 1) * width + x);
                    links.push(Link {
                        src,
                        dst,
                        wrap: false,
                    });
                    links.push(Link {
                        src: dst,
                        dst: src,
                        wrap: false,
                    });
                } else if torus && height > 2 {
                    let dst = DieId(x);
                    links.push(Link {
                        src,
                        dst,
                        wrap: true,
                    });
                    links.push(Link {
                        src: dst,
                        dst: src,
                        wrap: true,
                    });
                }
            }
        }
        let mut link_table = vec![NO_LINK; (width * height) as usize * 4];
        for (i, link) in links.iter().enumerate() {
            let (sx, sy) = (link.src.0 % width, link.src.0 / width);
            let (dx, dy) = (link.dst.0 % width, link.dst.0 / width);
            let dir = if dy == sy {
                // Horizontal: a wrap link leaves the edge it sits on.
                if dx == sx + 1 || (link.wrap && sx == width - 1) {
                    Direction::Right
                } else {
                    Direction::Left
                }
            } else if dy == sy + 1 || (link.wrap && sy == height - 1) {
                Direction::Down
            } else {
                Direction::Up
            };
            link_table[link.src.index() * 4 + dir as usize] = i as u32;
        }
        Ok(Mesh {
            width,
            height,
            torus,
            links,
            link_table,
        })
    }

    /// Array width (columns).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Array height (rows).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Whether wrap-around links are present.
    pub fn is_torus(&self) -> bool {
        self.torus
    }

    /// Total number of dies.
    pub fn die_count(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Total number of *directed* links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All dies in row-major order.
    pub fn dies(&self) -> impl Iterator<Item = DieId> + '_ {
        (0..self.width * self.height).map(DieId)
    }

    /// The directed link table. [`LinkId`] indexes into this slice.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Looks up a die by coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::CoordOutOfBounds`] when outside the array.
    pub fn die_at(&self, c: Coord) -> Result<DieId> {
        if c.x >= self.width || c.y >= self.height {
            return Err(WscError::CoordOutOfBounds {
                x: c.x,
                y: c.y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(DieId(c.y * self.width + c.x))
    }

    /// The coordinate of a die.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::UnknownDie`] for out-of-range ids.
    pub fn coord(&self, die: DieId) -> Result<Coord> {
        if die.0 >= self.width * self.height {
            return Err(WscError::UnknownDie(die.0));
        }
        Ok(Coord {
            x: die.0 % self.width,
            y: die.0 / self.width,
        })
    }

    /// Manhattan distance between two dies, honoring torus wrap if enabled.
    pub fn manhattan(&self, a: DieId, b: DieId) -> u32 {
        let (ca, cb) = (
            self.coord(a).expect("die in mesh"),
            self.coord(b).expect("die in mesh"),
        );
        let dx = ca.x.abs_diff(cb.x);
        let dy = ca.y.abs_diff(cb.y);
        if self.torus {
            dx.min(self.width - dx) + dy.min(self.height - dy)
        } else {
            dx + dy
        }
    }

    /// Mesh neighbors of a die (2-4 dies; more never exist in a 2D mesh).
    pub fn neighbors(&self, die: DieId) -> Vec<DieId> {
        let c = match self.coord(die) {
            Ok(c) => c,
            Err(_) => return Vec::new(),
        };
        let mut out = Vec::with_capacity(4);
        if c.x > 0 {
            out.push(DieId(die.0 - 1));
        } else if self.torus && self.width > 2 {
            out.push(DieId(c.y * self.width + self.width - 1));
        }
        if c.x + 1 < self.width {
            out.push(DieId(die.0 + 1));
        } else if self.torus && self.width > 2 {
            out.push(DieId(c.y * self.width));
        }
        if c.y > 0 {
            out.push(DieId(die.0 - self.width));
        } else if self.torus && self.height > 2 {
            out.push(DieId((self.height - 1) * self.width + c.x));
        }
        if c.y + 1 < self.height {
            out.push(DieId(die.0 + self.width));
        } else if self.torus && self.height > 2 {
            out.push(DieId(c.x));
        }
        out
    }

    /// Whether two dies are directly connected.
    pub fn adjacent(&self, a: DieId, b: DieId) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// The directed link from `a` to `b`, answered from the precomputed
    /// link-index table in O(1).
    ///
    /// # Errors
    ///
    /// Returns [`WscError::NotAdjacent`] if no direct link exists.
    pub fn link_between(&self, a: DieId, b: DieId) -> Result<LinkId> {
        self.link_lookup(a, b)
            .ok_or(WscError::NotAdjacent(a.0, b.0))
    }

    /// As [`Mesh::link_between`] without the error wrapping (the hot-path
    /// form used by flow construction).
    pub fn link_lookup(&self, a: DieId, b: DieId) -> Option<LinkId> {
        let base = a.index().checked_mul(4)?;
        let slots = self.link_table.get(base..base + 4)?;
        for &slot in slots {
            if slot != NO_LINK && self.links[slot as usize].dst == b {
                return Some(LinkId(slot));
            }
        }
        None
    }

    /// Dimension-ordered route from `src` to `dst`, inclusive of endpoints.
    ///
    /// With [`RouteOrder::XThenY`] the path first walks columns, then rows;
    /// [`RouteOrder::YThenX`] is the transpose. On a torus the shorter wrap
    /// direction is taken per dimension.
    pub fn route(&self, src: DieId, dst: DieId, order: RouteOrder) -> Vec<DieId> {
        let (cs, cd) = (
            self.coord(src).expect("src in mesh"),
            self.coord(dst).expect("dst in mesh"),
        );
        let mut path = vec![src];
        let mut cur = cs;
        let walk_x = |cur: &mut Coord, path: &mut Vec<DieId>| {
            while cur.x != cd.x {
                let step_right = if self.torus {
                    let fwd = (cd.x + self.width - cur.x) % self.width;
                    let bwd = (cur.x + self.width - cd.x) % self.width;
                    fwd <= bwd
                } else {
                    cd.x > cur.x
                };
                cur.x = if step_right {
                    (cur.x + 1) % self.width
                } else {
                    (cur.x + self.width - 1) % self.width
                };
                path.push(DieId(cur.y * self.width + cur.x));
            }
        };
        let walk_y = |cur: &mut Coord, path: &mut Vec<DieId>| {
            while cur.y != cd.y {
                let step_down = if self.torus {
                    let fwd = (cd.y + self.height - cur.y) % self.height;
                    let bwd = (cur.y + self.height - cd.y) % self.height;
                    fwd <= bwd
                } else {
                    cd.y > cur.y
                };
                cur.y = if step_down {
                    (cur.y + 1) % self.height
                } else {
                    (cur.y + self.height - 1) % self.height
                };
                path.push(DieId(cur.y * self.width + cur.x));
            }
        };
        match order {
            RouteOrder::XThenY => {
                walk_x(&mut cur, &mut path);
                walk_y(&mut cur, &mut path);
            }
            RouteOrder::YThenX => {
                walk_y(&mut cur, &mut path);
                walk_x(&mut cur, &mut path);
            }
        }
        path
    }

    /// Converts a die path (as returned by [`Mesh::route`]) into its directed
    /// link sequence.
    ///
    /// # Errors
    ///
    /// Returns [`WscError::NotAdjacent`] if consecutive dies in the path are
    /// not neighbors.
    pub fn path_links(&self, path: &[DieId]) -> Result<Vec<LinkId>> {
        let mut out = Vec::with_capacity(path.len().saturating_sub(1));
        for w in path.windows(2) {
            out.push(self.link_between(w[0], w[1])?);
        }
        Ok(out)
    }

    /// Number of physical hops between two dies along dimension-ordered
    /// routing (equals the Manhattan distance).
    pub fn hops(&self, a: DieId, b: DieId) -> u32 {
        self.manhattan(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_rejects_empty_dimensions() {
        assert!(Mesh::new(0, 4).is_err());
        assert!(Mesh::new(4, 0).is_err());
    }

    #[test]
    fn die_and_coord_roundtrip() {
        let m = Mesh::new(8, 4).unwrap();
        for die in m.dies() {
            let c = m.coord(die).unwrap();
            assert_eq!(m.die_at(c).unwrap(), die);
        }
    }

    #[test]
    fn out_of_bounds_coord_is_error() {
        let m = Mesh::new(8, 4).unwrap();
        assert!(matches!(
            m.die_at(Coord::new(8, 0)),
            Err(WscError::CoordOutOfBounds { .. })
        ));
        assert!(matches!(m.coord(DieId(32)), Err(WscError::UnknownDie(32))));
    }

    #[test]
    fn interior_die_has_four_neighbors() {
        let m = Mesh::new(8, 4).unwrap();
        let d = m.die_at(Coord::new(3, 1)).unwrap();
        assert_eq!(m.neighbors(d).len(), 4);
    }

    #[test]
    fn corner_die_has_two_neighbors() {
        let m = Mesh::new(8, 4).unwrap();
        let d = m.die_at(Coord::new(0, 0)).unwrap();
        let n = m.neighbors(d);
        assert_eq!(n.len(), 2);
        assert!(n.contains(&DieId(1)));
        assert!(n.contains(&DieId(8)));
    }

    #[test]
    fn mesh_link_count_matches_formula() {
        // Directed links in a w x h mesh: 2 * (h*(w-1) + w*(h-1)).
        let m = Mesh::new(8, 4).unwrap();
        assert_eq!(m.link_count(), 2 * (4 * 7 + 8 * 3));
    }

    #[test]
    fn torus_link_count_matches_formula() {
        // Torus: every die has degree 4 => 4 * w * h directed links.
        let m = Mesh::torus(8, 4).unwrap();
        assert_eq!(m.link_count(), 4 * 32);
    }

    #[test]
    fn torus_corner_has_four_neighbors() {
        let m = Mesh::torus(8, 4).unwrap();
        let d = m.die_at(Coord::new(0, 0)).unwrap();
        assert_eq!(m.neighbors(d).len(), 4);
    }

    #[test]
    fn xy_route_is_manhattan_length() {
        let m = Mesh::new(8, 4).unwrap();
        let a = m.die_at(Coord::new(1, 1)).unwrap();
        let b = m.die_at(Coord::new(6, 3)).unwrap();
        let path = m.route(a, b, RouteOrder::XThenY);
        assert_eq!(path.len() as u32 - 1, m.manhattan(a, b));
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
    }

    #[test]
    fn xy_and_yx_routes_differ_in_corner() {
        let m = Mesh::new(4, 4).unwrap();
        let a = m.die_at(Coord::new(0, 0)).unwrap();
        let b = m.die_at(Coord::new(2, 2)).unwrap();
        let xy = m.route(a, b, RouteOrder::XThenY);
        let yx = m.route(a, b, RouteOrder::YThenX);
        assert_ne!(xy, yx);
        assert_eq!(xy.len(), yx.len());
    }

    #[test]
    fn torus_route_takes_wrap_shortcut() {
        let m = Mesh::torus(8, 4).unwrap();
        let a = m.die_at(Coord::new(0, 0)).unwrap();
        let b = m.die_at(Coord::new(7, 0)).unwrap();
        // Non-torus distance is 7; the wrap makes it 1.
        assert_eq!(m.manhattan(a, b), 1);
        let path = m.route(a, b, RouteOrder::XThenY);
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn path_links_are_directed_and_sequential() {
        let m = Mesh::new(8, 4).unwrap();
        let a = m.die_at(Coord::new(0, 0)).unwrap();
        let b = m.die_at(Coord::new(2, 0)).unwrap();
        let path = m.route(a, b, RouteOrder::XThenY);
        let links = m.path_links(&path).unwrap();
        assert_eq!(links.len(), 2);
        let l0 = m.links()[links[0].index()];
        assert_eq!(l0.src, a);
    }

    #[test]
    fn link_between_rejects_non_neighbors() {
        let m = Mesh::new(8, 4).unwrap();
        assert!(matches!(
            m.link_between(DieId(0), DieId(2)),
            Err(WscError::NotAdjacent(0, 2))
        ));
    }

    #[test]
    fn link_table_agrees_with_link_scan() {
        // The O(1) table must answer exactly like a linear scan of the
        // directed link list, for both mesh and torus variants.
        for m in [Mesh::new(8, 4).unwrap(), Mesh::torus(8, 4).unwrap()] {
            for a in m.dies() {
                for b in m.dies() {
                    let scanned = m
                        .links()
                        .iter()
                        .position(|l| l.src == a && l.dst == b)
                        .map(|i| LinkId(i as u32));
                    assert_eq!(m.link_lookup(a, b), scanned, "{a} -> {b}");
                }
            }
        }
    }

    #[test]
    fn route_to_self_is_singleton() {
        let m = Mesh::new(8, 4).unwrap();
        let a = DieId(5);
        assert_eq!(m.route(a, a, RouteOrder::XThenY), vec![a]);
    }
}
