//! The three mapping engines compared in the paper (§VIII-A).
//!
//! * **SMap** — "a baseline sequential mapper with a fixed parallel strategy
//!   order": naive row-major strip layout, XY routing, no contention
//!   awareness.
//! * **GMap** — "a WSC-adapted implementation of the Gemini mapper": picks
//!   better (blocked) layouts per group but "lacks contention-aware
//!   optimization".
//! * **Tcme** — TEMP's engine: topology-aware layout *plus* the
//!   traffic-conscious optimizer.

use serde::{Deserialize, Serialize};

use temp_graph::models::ModelConfig;
use temp_graph::workload::Workload;
use temp_parallel::groups::{LayoutPolicy, WaferLayout};
use temp_parallel::strategy::HybridConfig;
use temp_sim::network::{ContentionSim, Flow, SimCache};
use temp_wsc::config::WaferConfig;

use crate::comm::{extract_comm_ops, layer_flows, CommOp, TaggedFlow};
use crate::optimizer::TrafficOptimizer;
use crate::{MappingError, Result};

/// Mapping engine choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingEngine {
    /// Sequential mapper: fixed order, strip layout, no optimization.
    SMap,
    /// Gemini-adapted mapper: blocked layout, no contention optimization.
    GMap,
    /// TEMP's traffic-conscious mapping engine.
    Tcme,
}

impl std::fmt::Display for MappingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingEngine::SMap => write!(f, "SMap"),
            MappingEngine::GMap => write!(f, "GMap"),
            MappingEngine::Tcme => write!(f, "TCME"),
        }
    }
}

/// Result of mapping one configuration onto the wafer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingOutcome {
    /// Engine used.
    pub engine: MappingEngine,
    /// The physical layout.
    pub layout: WaferLayout,
    /// The communication ops of one layer.
    pub comm_ops: Vec<CommOp>,
    /// One layer's flows after (possible) optimization.
    pub flows: Vec<TaggedFlow>,
    /// Simulated time for one layer's communication under contention,
    /// scaled by per-layer op counts and ring rounds.
    pub comm_time_per_layer: f64,
    /// Max per-link byte load of one layer's traffic.
    pub max_link_load: f64,
    /// Contention-free (isolated) communication time for the same traffic —
    /// the gap to `comm_time_per_layer` is the congestion cost.
    pub isolated_comm_time: f64,
}

impl MappingOutcome {
    /// Contention inflation factor (>= 1): simulated under load vs isolated.
    pub fn contention_factor(&self) -> f64 {
        if self.isolated_comm_time <= 0.0 {
            1.0
        } else {
            (self.comm_time_per_layer / self.isolated_comm_time).max(1.0)
        }
    }
}

/// Maps a hybrid configuration with the chosen engine and evaluates its
/// per-layer communication cost under mesh contention.
///
/// # Errors
///
/// Returns [`MappingError::Layout`] when the configuration cannot be laid
/// out on the wafer.
pub fn map_hybrid(
    engine: MappingEngine,
    wafer: &WaferConfig,
    model: &ModelConfig,
    workload: &Workload,
    cfg: &HybridConfig,
) -> Result<MappingOutcome> {
    let candidates: &[LayoutPolicy] = match engine {
        // SMap's fixed strategy order pins it to the naive strip layout.
        MappingEngine::SMap => &[LayoutPolicy::RowMajorStrips],
        // GMap varies ordering/placement but judges candidates without
        // contention awareness; TCME judges them with it and then runs the
        // traffic optimizer on the winner.
        MappingEngine::GMap | MappingEngine::Tcme => {
            &[LayoutPolicy::TopologyAware, LayoutPolicy::RowMajorStrips]
        }
    };
    let mut best: Option<MappingOutcome> = None;
    for policy in candidates {
        let outcome = map_with_policy(engine, wafer, model, workload, cfg, *policy)?;
        let metric = match engine {
            // Contention-agnostic ranking: isolated time only.
            MappingEngine::GMap => outcome.isolated_comm_time,
            // Contention-aware ranking.
            _ => outcome.comm_time_per_layer,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                let bm = match engine {
                    MappingEngine::GMap => b.isolated_comm_time,
                    _ => b.comm_time_per_layer,
                };
                metric < bm
            }
        };
        if better {
            best = Some(outcome);
        }
    }
    best.ok_or_else(|| MappingError::Layout("no candidate layout".into()))
}

thread_local! {
    /// Exact-match memo of contention solves shared by every mapping this
    /// thread performs. Serves are bit-identical to cold solves (the cache
    /// verifies the full flow set and link parameters on hit), so plans do
    /// not depend on cache history or thread count.
    static SIM_CACHE: std::cell::RefCell<SimCache> = std::cell::RefCell::new(SimCache::new());
}

/// Soft bound on memoized contention solves per thread; the cache resets
/// once it grows past this, keeping long campaigns memory-stable.
const SIM_CACHE_CAP: usize = 8192;

fn map_with_policy(
    engine: MappingEngine,
    wafer: &WaferConfig,
    model: &ModelConfig,
    workload: &Workload,
    cfg: &HybridConfig,
    policy: LayoutPolicy,
) -> Result<MappingOutcome> {
    let mesh = wafer.mesh();
    let layout =
        WaferLayout::build(&mesh, cfg, policy).map_err(|e| MappingError::Layout(e.to_string()))?;
    let comm_ops = extract_comm_ops(&layout, model, workload);
    let mut flows = layer_flows(&mesh, &comm_ops);

    if engine == MappingEngine::Tcme {
        let optimizer = TrafficOptimizer::new(mesh.clone());
        let outcome = optimizer.optimize(std::mem::take(&mut flows));
        flows = outcome.flows;
    }

    // Time one representative round of all concurrent group traffic, then
    // scale by each op's round count and per-layer multiplicity.
    let sim = ContentionSim::new(wafer);
    let raw: Vec<Flow> = flows.iter().map(|tf| tf.flow.clone()).collect();
    let round_makespan = SIM_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() > SIM_CACHE_CAP {
            *cache = SimCache::new();
        }
        if raw.is_empty() {
            0.0
        } else {
            sim.simulate_cached(&raw, &mut cache).makespan
        }
    });
    // Lone flows bypass the fluid event loop entirely: the scalar fast
    // path is bit-identical to simulating each flow on its own.
    let isolated_round = raw
        .iter()
        .map(|f| sim.isolated_makespan(f))
        .fold(0.0, f64::max);
    let scale = comm_rounds_scale(&comm_ops);
    let loads = TrafficOptimizer::new(mesh).link_loads(&flows);
    let max_link_load = loads.values().fold(0.0f64, |a, b| a.max(*b));

    Ok(MappingOutcome {
        engine,
        layout,
        comm_ops,
        flows,
        comm_time_per_layer: round_makespan * scale,
        max_link_load,
        isolated_comm_time: isolated_round * scale,
    })
}

/// Weighted ring-round count across ops: each op runs
/// `rounds x per_layer_count` rounds per layer; concurrent ops share the
/// simulated round, so we scale by the maximum schedule length.
fn comm_rounds_scale(ops: &[CommOp]) -> f64 {
    ops.iter()
        .map(|op| op.collective().round_count() as f64 * op.per_layer_count)
        .fold(0.0, f64::max)
        .max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;

    fn setup() -> (WaferConfig, ModelConfig, Workload) {
        let wafer = WaferConfig::hpca();
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        (wafer, model, workload)
    }

    #[test]
    fn all_engines_map_a_hybrid_config() {
        let (wafer, model, workload) = setup();
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        for engine in [
            MappingEngine::SMap,
            MappingEngine::GMap,
            MappingEngine::Tcme,
        ] {
            let out = map_hybrid(engine, &wafer, &model, &workload, &cfg)
                .unwrap_or_else(|e| panic!("{engine}: {e}"));
            assert!(out.comm_time_per_layer > 0.0, "{engine}");
            assert!(out.contention_factor() >= 1.0);
        }
    }

    #[test]
    fn tcme_never_loses_to_gmap_on_link_load() {
        let (wafer, model, workload) = setup();
        for cfg in [
            HybridConfig::tuple(2, 2, 1, 8),
            HybridConfig {
                dp: 4,
                fsdp: true,
                tatp: 8,
                ..Default::default()
            },
            HybridConfig::tuple(4, 2, 2, 2),
        ] {
            let gmap = map_hybrid(MappingEngine::GMap, &wafer, &model, &workload, &cfg).unwrap();
            let tcme = map_hybrid(MappingEngine::Tcme, &wafer, &model, &workload, &cfg).unwrap();
            assert!(
                tcme.max_link_load <= gmap.max_link_load * 1.001,
                "{}: tcme {} vs gmap {}",
                cfg.label(),
                tcme.max_link_load,
                gmap.max_link_load
            );
        }
    }

    #[test]
    fn smap_strips_cost_at_least_as_much_as_tcme() {
        let (wafer, model, workload) = setup();
        let cfg = HybridConfig {
            dp: 4,
            fsdp: true,
            tatp: 8,
            ..Default::default()
        };
        let smap = map_hybrid(MappingEngine::SMap, &wafer, &model, &workload, &cfg).unwrap();
        let tcme = map_hybrid(MappingEngine::Tcme, &wafer, &model, &workload, &cfg).unwrap();
        assert!(
            tcme.comm_time_per_layer <= smap.comm_time_per_layer * 1.01,
            "tcme {} vs smap {}",
            tcme.comm_time_per_layer,
            smap.comm_time_per_layer
        );
    }

    #[test]
    fn pure_dp_generates_gradient_traffic_only() {
        let (wafer, model, workload) = setup();
        let cfg = HybridConfig::tuple(32, 1, 1, 1);
        let out = map_hybrid(MappingEngine::Tcme, &wafer, &model, &workload, &cfg).unwrap();
        assert!(!out.comm_ops.is_empty());
        assert!(out
            .comm_ops
            .iter()
            .all(|o| o.source == temp_parallel::strategy::ParallelKind::Dp));
    }
}
