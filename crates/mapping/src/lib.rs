//! # temp-mapping — the Traffic-Conscious Mapping Engine (TCME, §VI)
//!
//! TCME turns a hybrid-parallel plan into concrete traffic on the wafer and
//! then removes the contention that hybrid parallelism creates:
//!
//! * [`comm`] — the unified parallelism representation's communication side:
//!   extracts every collective/P2P operation each strategy requires per
//!   training step, with volumes and groups bound to physical dies;
//! * [`optimizer`] — the five-phase traffic-conscious communication
//!   optimizer of Fig. 11: path initialization, bottleneck identification,
//!   congested-path collection, duplicate merging + congestion-aware
//!   rerouting, and global update with convergence check;
//! * [`engines`] — the three mapping engines compared in the paper:
//!   `SMap` (fixed order, naive strips, contention-agnostic), `GMap`
//!   (Gemini-adapted: better layouts, still contention-agnostic) and `Tcme`
//!   (topology-aware layout + traffic optimization).
//!
//! # Example
//!
//! ```
//! use temp_mapping::engines::{map_hybrid, MappingEngine};
//! use temp_parallel::strategy::HybridConfig;
//! use temp_graph::models::ModelZoo;
//! use temp_graph::workload::Workload;
//! use temp_wsc::config::WaferConfig;
//!
//! let wafer = WaferConfig::hpca();
//! let model = ModelZoo::gpt3_6_7b();
//! let workload = Workload::for_model(&model);
//! let cfg = HybridConfig::tuple(2, 2, 1, 8);
//! let outcome = map_hybrid(MappingEngine::Tcme, &wafer, &model, &workload, &cfg).unwrap();
//! assert!(outcome.comm_time_per_layer > 0.0);
//! ```

pub mod comm;
pub mod engines;
pub mod optimizer;

pub use comm::{CommOp, CommPattern, TaggedFlow};
pub use engines::{map_hybrid, MappingEngine, MappingOutcome};
pub use optimizer::{OptimizationOutcome, TrafficOptimizer};

/// Errors produced by the mapping engine.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// The layout could not be constructed (degree mismatch, tiling).
    Layout(String),
    /// A flow could not be routed.
    Routing(String),
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::Layout(msg) => write!(f, "layout error: {msg}"),
            MappingError::Routing(msg) => write!(f, "routing error: {msg}"),
        }
    }
}

impl std::error::Error for MappingError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MappingError>;
