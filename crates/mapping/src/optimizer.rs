//! The five-phase traffic-conscious communication optimizer (Fig. 11).
//!
//! Phases, as in the paper's flowchart:
//!
//! 1. **Communication pattern analysis & path initialization** — flows come
//!    in routed with contention-agnostic XY paths;
//! 2. **Bottleneck identification & load recording** — find the most
//!    congested link (`mcl`) and its load (`cur`);
//! 3. **Congested path identification** — collect the flows crossing `mcl`;
//! 4. **Path merging & routing optimization** — merge duplicate payloads
//!    into multicast (shared links carry one copy) and reroute remaining
//!    hot flows over congestion-aware detours;
//! 5. **Global update & termination check** — recompute `mcl`; stop when
//!    improvement stagnates or `MAX_ITER` is reached.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use temp_sim::network::Flow;
use temp_wsc::topology::{DieId, LinkId, Mesh, RouteOrder};

use crate::comm::TaggedFlow;

/// Default iteration cap (the paper's `MAX_ITER`).
pub const MAX_ITER: usize = 32;

/// Outcome of a traffic optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationOutcome {
    /// Flows with optimized routes.
    pub flows: Vec<TaggedFlow>,
    /// Max per-link load (bytes) before optimization.
    pub initial_max_load: f64,
    /// Max per-link load (bytes) after optimization.
    pub final_max_load: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Flows rerouted.
    pub rerouted: usize,
}

impl OptimizationOutcome {
    /// Contention reduction factor (`initial / final`), >= 1 on success.
    pub fn improvement(&self) -> f64 {
        if self.final_max_load <= 0.0 {
            1.0
        } else {
            self.initial_max_load / self.final_max_load
        }
    }
}

/// The traffic-conscious communication optimizer.
#[derive(Debug, Clone)]
pub struct TrafficOptimizer {
    mesh: Mesh,
    max_iter: usize,
}

impl TrafficOptimizer {
    /// Creates an optimizer for a mesh with the default iteration cap.
    pub fn new(mesh: Mesh) -> Self {
        TrafficOptimizer {
            mesh,
            max_iter: MAX_ITER,
        }
    }

    /// Overrides the iteration cap.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// Per-link loads with multicast dedup: a payload crossing a link in
    /// multiple flows is carried once.
    pub fn link_loads(&self, flows: &[TaggedFlow]) -> HashMap<LinkId, f64> {
        let mut seen: std::collections::HashSet<(u64, LinkId)> = std::collections::HashSet::new();
        let mut loads: HashMap<LinkId, f64> = HashMap::new();
        for tf in flows {
            for l in &tf.flow.route {
                if seen.insert((tf.payload, *l)) {
                    *loads.entry(*l).or_insert(0.0) += tf.flow.bytes;
                }
            }
        }
        loads
    }

    fn max_load(&self, flows: &[TaggedFlow]) -> (Option<LinkId>, f64) {
        Self::max_of(&self.link_loads(flows))
    }

    /// Most-loaded link of an already-built load map.
    fn max_of(loads: &HashMap<LinkId, f64>) -> (Option<LinkId>, f64) {
        loads
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(l, v)| (Some(*l), *v))
            .unwrap_or((None, 0.0))
    }

    /// Runs the five-phase optimization loop.
    pub fn optimize(&self, mut flows: Vec<TaggedFlow>) -> OptimizationOutcome {
        // Phase 1 happened upstream (XY-initialized routes).
        // Phase 2: bottleneck identification.
        let (mut mcl, initial) = self.max_load(&flows);
        let mut cur = initial;
        let mut prev = 2.0 * cur;
        let mut iterations = 0;
        let mut rerouted = 0;

        while cur < prev && cur > 0.0 {
            if iterations >= self.max_iter {
                break;
            }
            prev = cur;
            iterations += 1;
            let Some(bottleneck) = mcl else { break };
            // Phase 3: congested path identification.
            let hot: Vec<usize> = flows
                .iter()
                .enumerate()
                .filter(|(_, tf)| tf.flow.route.contains(&bottleneck))
                .map(|(i, _)| i)
                .collect();
            // Phase 4: reroute hot flows over load-aware detours.
            // (Duplicate merging is implicit in `link_loads`' multicast
            // dedup; rerouting must therefore beat the deduped load.)
            // The load map only changes when a reroute is accepted, so it
            // is rebuilt on acceptance instead of once per hot flow — the
            // values every candidate is judged against are identical.
            let mut loads = self.link_loads(&flows);
            for i in hot {
                let candidate = self.best_alternative(&flows, &loads, i, bottleneck);
                if let Some(new_flow) = candidate {
                    flows[i].flow = new_flow;
                    rerouted += 1;
                    loads = self.link_loads(&flows);
                }
            }
            // Phase 5: global update & termination check. `loads` is
            // rebuilt after every accepted reroute, so it is current here.
            let (new_mcl, new_cur) = Self::max_of(&loads);
            mcl = new_mcl;
            cur = new_cur;
        }
        // `cur` always holds the max load of the final flow set: every
        // path that mutates `flows` refreshes it in phase 5.
        OptimizationOutcome {
            flows,
            initial_max_load: initial,
            final_max_load: cur,
            iterations,
            rerouted,
        }
    }

    /// Best alternative route for flow `i` avoiding `bottleneck`: tries the
    /// transposed dimension order and a load-aware Dijkstra detour; returns
    /// the route that lowers the flow's own bottleneck load, if any.
    /// `loads` must be the current flow set's [`TrafficOptimizer::link_loads`].
    fn best_alternative(
        &self,
        flows: &[TaggedFlow],
        loads: &HashMap<LinkId, f64>,
        i: usize,
        bottleneck: LinkId,
    ) -> Option<Flow> {
        let tf = &flows[i];
        let current_worst = self.route_worst_load(loads, &tf.flow.route, 0.0);
        let mut best: Option<(f64, Flow)> = None;
        // Candidate 1: transposed dimension order.
        let yx = Flow::routed(
            &self.mesh,
            tf.flow.src,
            tf.flow.dst,
            tf.flow.bytes,
            RouteOrder::YThenX,
        );
        // Candidate 2: load-aware shortest path.
        let dijkstra = self.load_aware_route(loads, tf.flow.src, tf.flow.dst, tf.flow.bytes);
        for cand in std::iter::once(yx).chain(dijkstra) {
            if cand.route == tf.flow.route || cand.route.contains(&bottleneck) {
                continue;
            }
            // Detours pay store-and-forward per extra hop; cap the stretch
            // so the reroute cannot trade congestion for raw path length.
            if cand.route.len() > tf.flow.route.len() + 2 {
                continue;
            }
            // Load as seen by this flow after moving: subtract itself from
            // its old links, add to new.
            let worst = self.route_worst_load(loads, &cand.route, tf.flow.bytes);
            if worst < current_worst && best.as_ref().map(|(w, _)| worst < *w).unwrap_or(true) {
                best = Some((worst, cand));
            }
        }
        best.map(|(_, f)| f)
    }

    fn route_worst_load(&self, loads: &HashMap<LinkId, f64>, route: &[LinkId], add: f64) -> f64 {
        route
            .iter()
            .map(|l| loads.get(l).copied().unwrap_or(0.0) + add)
            .fold(0.0f64, f64::max)
    }

    /// Dijkstra over dies with link weight `1 + load/bytes` (hop count plus
    /// normalized congestion), producing a detour candidate.
    fn load_aware_route(
        &self,
        loads: &HashMap<LinkId, f64>,
        src: DieId,
        dst: DieId,
        bytes: f64,
    ) -> Option<Flow> {
        if src == dst {
            return None;
        }
        let n = self.mesh.die_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<DieId>> = vec![None; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[src.index()] = 0.0;
        heap.push(std::cmp::Reverse((ordered_float(0.0), src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            let d = d.0;
            if d > dist[u.index()] {
                continue;
            }
            if u == dst {
                break;
            }
            for v in self.mesh.neighbors(u) {
                let link = self.mesh.link_between(u, v).expect("neighbors have links");
                let load = loads.get(&link).copied().unwrap_or(0.0);
                let w = 1.0 + load / bytes.max(1.0);
                let nd = d + w;
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    prev[v.index()] = Some(u);
                    heap.push(std::cmp::Reverse((ordered_float(nd), v)));
                }
            }
        }
        if dist[dst.index()].is_infinite() {
            return None;
        }
        let mut path = vec![dst];
        let mut at = dst;
        while let Some(p) = prev[at.index()] {
            path.push(p);
            at = p;
            if at == src {
                break;
            }
        }
        path.reverse();
        Flow::with_path(&self.mesh, &path, bytes).ok()
    }
}

/// Total-ordering wrapper for f64 heap keys (loads are always finite).
fn ordered_float(v: f64) -> OrderedF64 {
    OrderedF64(v)
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite weights")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_sim::network::ContentionSim;
    use temp_wsc::config::WaferConfig;
    use temp_wsc::units::MB;

    fn setup() -> (Mesh, TrafficOptimizer) {
        let mesh = WaferConfig::hpca().mesh();
        (mesh.clone(), TrafficOptimizer::new(mesh))
    }

    fn tagged(mesh: &Mesh, src: u32, dst: u32, bytes: f64, payload: u64) -> TaggedFlow {
        TaggedFlow {
            flow: Flow::xy(mesh, DieId(src), DieId(dst), bytes),
            payload,
        }
    }

    #[test]
    fn fig5b_contention_is_removed_by_rerouting() {
        // Two flows forced through Link 1->2 by XY routing; a detour exists
        // through the row below.
        let (mesh, opt) = setup();
        let flows = vec![
            tagged(&mesh, 0, 2, 64.0 * MB, 1),
            tagged(&mesh, 1, 3, 64.0 * MB, 2),
        ];
        let out = opt.optimize(flows);
        assert!(
            out.final_max_load < out.initial_max_load,
            "final {} vs initial {}",
            out.final_max_load,
            out.initial_max_load
        );
        assert!(out.rerouted >= 1);
        assert!(out.improvement() > 1.2);
    }

    #[test]
    fn contention_free_traffic_is_untouched() {
        let (mesh, opt) = setup();
        let flows = vec![
            tagged(&mesh, 0, 1, 32.0 * MB, 1),
            tagged(&mesh, 16, 17, 32.0 * MB, 2),
        ];
        let out = opt.optimize(flows);
        assert_eq!(out.rerouted, 0);
        assert!((out.final_max_load - out.initial_max_load).abs() < 1.0);
    }

    #[test]
    fn multicast_dedup_counts_shared_payload_once() {
        let (mesh, opt) = setup();
        // The same payload broadcast from die 0 to dies 2 and 3: links
        // shared by both routes carry it once.
        let flows = vec![
            tagged(&mesh, 0, 2, 10.0 * MB, 7),
            tagged(&mesh, 0, 3, 10.0 * MB, 7),
        ];
        let loads = opt.link_loads(&flows);
        let l01 = mesh.link_between(DieId(0), DieId(1)).unwrap();
        assert!(
            (loads[&l01] - 10.0 * MB).abs() < 1.0,
            "multicast carries one copy"
        );
        // Distinct payloads over the same links double the load.
        let flows2 = vec![
            tagged(&mesh, 0, 2, 10.0 * MB, 7),
            tagged(&mesh, 0, 3, 10.0 * MB, 8),
        ];
        let loads2 = opt.link_loads(&flows2);
        assert!((loads2[&l01] - 20.0 * MB).abs() < 1.0);
    }

    #[test]
    fn optimization_reduces_simulated_makespan() {
        // End to end: optimized routes must also help the fluid simulator.
        let cfg = WaferConfig::hpca();
        let (mesh, opt) = setup();
        let sim = ContentionSim::new(&cfg);
        let flows: Vec<TaggedFlow> = (0..4)
            .map(|i| tagged(&mesh, i, i + 2, 64.0 * MB, i as u64))
            .collect();
        let before: Vec<Flow> = flows.iter().map(|tf| tf.flow.clone()).collect();
        let out = opt.optimize(flows);
        let after: Vec<Flow> = out.flows.iter().map(|tf| tf.flow.clone()).collect();
        let t_before = sim.simulate(&before).makespan;
        let t_after = sim.simulate(&after).makespan;
        // Rerouting targets static link load; the fluid makespan must not
        // regress materially (small store-and-forward slack allowed).
        assert!(
            t_after <= t_before * 1.05,
            "after {t_after} vs before {t_before}"
        );
    }

    #[test]
    fn iteration_cap_is_honored() {
        let (mesh, opt) = setup();
        let opt = opt.with_max_iter(1);
        let flows: Vec<TaggedFlow> = (0..8)
            .map(|i| tagged(&mesh, 0, 7, 8.0 * MB, i as u64))
            .collect();
        let out = opt.optimize(flows);
        assert!(out.iterations <= 1);
    }

    #[test]
    fn empty_flow_set_is_trivial() {
        let (_, opt) = setup();
        let out = opt.optimize(Vec::new());
        assert_eq!(out.iterations, 0);
        assert_eq!(out.final_max_load, 0.0);
    }
}
