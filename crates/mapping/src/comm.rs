//! Communication extraction: what each parallel strategy moves per layer and
//! per step (the traffic side of the unified parallelism representation).
//!
//! Per Transformer layer and training step:
//!
//! | strategy | traffic |
//! |----------|---------|
//! | TP       | 4 all-reduces of the layer activation over each TP group (2 fwd + 2 bwd) |
//! | SP       | 2 all-gathers + 2 reduce-scatters of the (sequence-sharded) activation |
//! | CP       | 1 KV all-gather per attention |
//! | FSDP     | per-layer weight all-gather (fwd + bwd) + gradient reduce-scatter |
//! | DP       | per-step gradient all-reduce (amortized per layer here) |
//! | TATP     | the bidirectional 1-hop stream (handled by the orchestration; tagged P2P flows for contention analysis) |

use serde::{Deserialize, Serialize};

use temp_graph::models::ModelConfig;
use temp_graph::workload::Workload;
use temp_parallel::groups::WaferLayout;
use temp_parallel::strategy::ParallelKind;
use temp_sim::collectives::{Collective, CollectiveKind};
use temp_sim::network::Flow;
use temp_wsc::topology::{DieId, Mesh};

/// Communication pattern classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommPattern {
    /// Ring all-reduce.
    AllReduce,
    /// Ring all-gather.
    AllGather,
    /// Ring reduce-scatter.
    ReduceScatter,
    /// Neighbor-to-neighbor stream (TATP).
    P2pStream,
}

impl CommPattern {
    /// Number of pattern classes (the bound for per-pattern fixed arrays).
    pub const COUNT: usize = 4;

    /// Canonical small-integer code in `0..CommPattern::COUNT`, stable
    /// across runs.
    pub fn index(self) -> usize {
        match self {
            CommPattern::AllReduce => 0,
            CommPattern::AllGather => 1,
            CommPattern::ReduceScatter => 2,
            CommPattern::P2pStream => 3,
        }
    }
}

/// One communication operation of the plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommOp {
    /// Which strategy generated it.
    pub source: ParallelKind,
    /// Pattern class.
    pub pattern: CommPattern,
    /// Member dies in logical order.
    pub group: Vec<DieId>,
    /// Full payload bytes (per rank).
    pub bytes: f64,
    /// How many times the op runs per layer (fwd+bwd combined); DP gradient
    /// all-reduce is amortized to `1 / layers`.
    pub per_layer_count: f64,
}

impl CommOp {
    /// Total distinct `(source, pattern)` traffic-class codes.
    pub const CLASS_COUNT: usize = ParallelKind::COUNT * CommPattern::COUNT;

    /// Canonical `(source, pattern)` traffic-class code in
    /// `0..CommOp::CLASS_COUNT` — the index of this op's per-class
    /// accumulator slot in the costing hot path.
    pub fn class_code(&self) -> usize {
        self.source.index() * CommPattern::COUNT + self.pattern.index()
    }

    /// The collective kind this op times as (P2P streams map to one shift).
    pub fn collective_kind(&self) -> CollectiveKind {
        match self.pattern {
            CommPattern::AllReduce => CollectiveKind::AllReduce,
            CommPattern::AllGather => CollectiveKind::AllGather,
            CommPattern::ReduceScatter => CollectiveKind::ReduceScatter,
            CommPattern::P2pStream => CollectiveKind::P2pShift,
        }
    }

    /// The collective equivalent for timing. Timing-only callers that
    /// would discard the group can skip this allocation:
    /// [`Collective::analytic_time_for`] with
    /// [`CommOp::collective_kind`] and `group.len()` prices identically.
    pub fn collective(&self) -> Collective {
        Collective::new(self.collective_kind(), self.group.clone(), self.bytes)
    }
}

/// A flow tagged with a payload identity, so the optimizer can detect and
/// merge duplicate data moving over shared links (multicast).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedFlow {
    /// The routed flow.
    pub flow: Flow,
    /// Payload identity: flows with equal ids carry identical data.
    pub payload: u64,
}

/// Extracts every communication op of one training step, per layer, for a
/// laid-out hybrid configuration.
pub fn extract_comm_ops(
    layout: &WaferLayout,
    model: &ModelConfig,
    workload: &Workload,
) -> Vec<CommOp> {
    let cfg = layout.config();
    let mut ops = Vec::new();
    let e = workload.compute_dtype.bytes() as f64;
    let (dp, tp, sp, cp, tatp) = (
        cfg.dp as f64,
        cfg.tp as f64,
        cfg.sp as f64,
        cfg.cp as f64,
        cfg.tatp as f64,
    );
    // Local activation tensor of one layer boundary (per die).
    let local_tokens =
        workload.micro_batch_size() as f64 / dp * workload.seq_len as f64 / (sp * cp);
    let act_bytes = local_tokens * model.hidden as f64 * e;
    // Per-die weight shard of one layer.
    let layer_weight_bytes =
        model.params_per_layer() as f64 * e / (tp * tatp * if cfg.fsdp { dp } else { 1.0 });

    if cfg.tp > 1 {
        for group in layout.groups_of(ParallelKind::Tp) {
            ops.push(CommOp {
                source: ParallelKind::Tp,
                pattern: CommPattern::AllReduce,
                group,
                bytes: act_bytes,
                per_layer_count: 4.0,
            });
        }
    }
    if cfg.sp > 1 {
        for group in layout.groups_of(ParallelKind::Sp) {
            ops.push(CommOp {
                source: ParallelKind::Sp,
                pattern: CommPattern::AllGather,
                group: group.clone(),
                bytes: act_bytes * sp,
                per_layer_count: 2.0,
            });
            ops.push(CommOp {
                source: ParallelKind::Sp,
                pattern: CommPattern::ReduceScatter,
                group,
                bytes: act_bytes * sp,
                per_layer_count: 2.0,
            });
        }
    }
    if cfg.cp > 1 {
        for group in layout.groups_of(ParallelKind::Cp) {
            ops.push(CommOp {
                source: ParallelKind::Cp,
                pattern: CommPattern::AllGather,
                group,
                bytes: 2.0 * act_bytes * cp / model.heads as f64 * model.kv_heads as f64,
                per_layer_count: 1.0,
            });
        }
    }
    if cfg.fsdp && cfg.dp > 1 {
        for group in layout.groups_of(ParallelKind::Dp) {
            ops.push(CommOp {
                source: ParallelKind::Fsdp,
                pattern: CommPattern::AllGather,
                group: group.clone(),
                bytes: layer_weight_bytes * cfg.dp as f64,
                per_layer_count: 2.0,
            });
            ops.push(CommOp {
                source: ParallelKind::Fsdp,
                pattern: CommPattern::ReduceScatter,
                group,
                bytes: layer_weight_bytes * cfg.dp as f64,
                per_layer_count: 1.0,
            });
        }
    } else if cfg.dp > 1 {
        for group in layout.groups_of(ParallelKind::Dp) {
            ops.push(CommOp {
                source: ParallelKind::Dp,
                pattern: CommPattern::AllReduce,
                group,
                bytes: layer_weight_bytes,
                // Vanilla DDP semantics: gradients synchronize every
                // micro-batch (no gradient-accumulation fusion), which is
                // what makes DP-heavy configurations communication-bound on
                // the wafer (§VIII-D).
                per_layer_count: 1.0,
            });
        }
    }
    if cfg.tatp > 1 {
        for group in layout.groups_of(ParallelKind::Tatp) {
            // Bidirectional redundant stream: ~2x the streamed tensor per
            // layer, all 1-hop between logical neighbors.
            ops.push(CommOp {
                source: ParallelKind::Tatp,
                pattern: CommPattern::P2pStream,
                group,
                bytes: 2.0 * layer_weight_bytes * tatp,
                per_layer_count: 3.0, // fwd + bwd + grad stages (Eq. 1)
            });
        }
    }
    ops
}

/// Expands comm ops into tagged flows (one round's worth per op) routed XY,
/// for static contention analysis of a layer.
pub fn layer_flows(mesh: &Mesh, ops: &[CommOp]) -> Vec<TaggedFlow> {
    let mut flows = Vec::new();
    let mut payload: u64 = 0;
    for op in ops {
        let n = op.group.len();
        if n < 2 {
            continue;
        }
        match op.pattern {
            CommPattern::P2pStream => {
                // Neighbor exchanges in both directions, one chunk each.
                let chunk = op.bytes / n as f64;
                for w in op.group.windows(2) {
                    payload += 1;
                    flows.push(TaggedFlow {
                        flow: Flow::xy(mesh, w[0], w[1], chunk),
                        payload,
                    });
                    payload += 1;
                    flows.push(TaggedFlow {
                        flow: Flow::xy(mesh, w[1], w[0], chunk),
                        payload,
                    });
                }
            }
            _ => {
                // One ring round: every rank ships a shard to its successor.
                // Ranks forward *the same logical shard set*, but each
                // rank's message is distinct data: unique payload per flow.
                let shard = op.bytes / n as f64;
                for i in 0..n {
                    payload += 1;
                    flows.push(TaggedFlow {
                        flow: Flow::xy(mesh, op.group[i], op.group[(i + 1) % n], shard),
                        payload,
                    });
                }
            }
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;
    use temp_parallel::groups::LayoutPolicy;
    use temp_parallel::strategy::HybridConfig;
    use temp_wsc::config::WaferConfig;

    fn setup(cfg: HybridConfig) -> (Mesh, WaferLayout, ModelConfig, Workload) {
        let wafer = WaferConfig::hpca();
        let mesh = wafer.mesh();
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        let layout = WaferLayout::build(&mesh, &cfg, LayoutPolicy::TopologyAware).unwrap();
        (mesh, layout, model, workload)
    }

    #[test]
    fn tp_generates_four_allreduces_per_group() {
        let (_, layout, model, workload) = setup(HybridConfig::tuple(4, 8, 1, 1));
        let ops = extract_comm_ops(&layout, &model, &workload);
        let tp_ops: Vec<&CommOp> = ops
            .iter()
            .filter(|o| o.source == ParallelKind::Tp)
            .collect();
        assert_eq!(tp_ops.len(), 4, "one op per TP group");
        assert!(tp_ops.iter().all(|o| o.pattern == CommPattern::AllReduce));
        assert!(tp_ops
            .iter()
            .all(|o| (o.per_layer_count - 4.0).abs() < 1e-12));
    }

    #[test]
    fn fsdp_gathers_weights_dp_reduces_gradients() {
        let (_, layout, model, workload) = setup(HybridConfig {
            dp: 32,
            fsdp: true,
            ..Default::default()
        });
        let ops = extract_comm_ops(&layout, &model, &workload);
        assert!(ops
            .iter()
            .any(|o| o.source == ParallelKind::Fsdp && o.pattern == CommPattern::AllGather));
        let (_, layout, model, workload) = setup(HybridConfig::tuple(32, 1, 1, 1));
        let ops = extract_comm_ops(&layout, &model, &workload);
        assert!(ops
            .iter()
            .all(|o| o.source == ParallelKind::Dp && o.pattern == CommPattern::AllReduce));
    }

    #[test]
    fn tatp_streams_are_single_hop_neighbor_flows() {
        let (mesh, layout, model, workload) = setup(HybridConfig::tuple(2, 2, 1, 8));
        let ops = extract_comm_ops(&layout, &model, &workload);
        let flows = layer_flows(&mesh, &ops);
        for tf in flows.iter().filter(|tf| tf.flow.bytes > 0.0) {
            // TATP flows between logical neighbors are 1 hop under the
            // topology-aware layout; collective rounds may be longer.
            assert!(tf.flow.hops() >= 1);
        }
        let stream_ops: Vec<&CommOp> = ops
            .iter()
            .filter(|o| o.pattern == CommPattern::P2pStream)
            .collect();
        assert_eq!(stream_ops.len(), 4, "one stream per TATP group");
    }

    #[test]
    fn sp_volume_equals_tp_volume() {
        // The all-gather + reduce-scatter pair moves the same bytes as an
        // all-reduce — SP's advantage is memory, not volume.
        let (_, l_tp, model, w) = setup(HybridConfig::tuple(4, 8, 1, 1));
        let (_, l_sp, _, _) = setup(HybridConfig::tuple(4, 1, 8, 1));
        let tp_total: f64 = extract_comm_ops(&l_tp, &model, &w)
            .iter()
            .filter(|o| o.source == ParallelKind::Tp)
            .map(|o| o.bytes * o.per_layer_count * 2.0) // all-reduce ~ 2x volume
            .sum();
        let sp_total: f64 = extract_comm_ops(&l_sp, &model, &w)
            .iter()
            .filter(|o| o.source == ParallelKind::Sp)
            .map(|o| o.bytes * o.per_layer_count)
            .sum();
        let ratio = sp_total / tp_total;
        assert!((0.4..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pure_config_generates_no_foreign_ops() {
        let (_, layout, model, workload) = setup(HybridConfig::tuple(1, 1, 1, 32));
        let ops = extract_comm_ops(&layout, &model, &workload);
        assert!(ops.iter().all(|o| o.source == ParallelKind::Tatp));
    }
}
