//! Collective communication as flow programs on the mesh.
//!
//! The cost model (§VII-A) covers "inter-die communication primitives like
//! P2P and collective algorithms". Collectives here run ring algorithms over
//! a *logical* group order; when that order does not embed a contiguous
//! physical ring, the generated flows take multi-hop mesh routes and the
//! contention simulator charges the resulting congestion — exactly the
//! failure mode TATP's orchestration removes.

use serde::{Deserialize, Serialize};

use temp_wsc::config::D2dConfig;
use temp_wsc::topology::{DieId, Mesh};

use crate::network::{ContentionSim, Flow};

/// Collective operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Every rank ends with the concatenation of all shards.
    AllGather,
    /// Every rank ends with the elementwise reduction of all buffers.
    AllReduce,
    /// Every rank ends with one reduced shard.
    ReduceScatter,
    /// Rank 0's buffer is replicated to all ranks (pipelined chain).
    Broadcast,
    /// Every rank sends a distinct `1/n` shard to every other rank (MoE
    /// expert dispatch/combine). Scheduled as `n - 1` shift rounds: in
    /// round `r`, rank `i` sends its shard for rank `i + r + 1` — each
    /// round is a disjoint permutation, so a well-embedded group keeps
    /// every link busy without self-contention.
    AllToAll,
    /// Each rank forwards its buffer one step along the group (TSPP/TATP
    /// streaming primitive).
    P2pShift,
}

/// A collective over a logical group order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Collective {
    /// Operation kind.
    pub kind: CollectiveKind,
    /// Participating dies in logical-ring order.
    pub group: Vec<DieId>,
    /// Full per-rank payload in bytes (the tensor size each rank holds or
    /// receives, *not* the shard size).
    pub bytes: f64,
}

impl Collective {
    /// Creates a collective.
    pub fn new(kind: CollectiveKind, group: Vec<DieId>, bytes: f64) -> Self {
        Collective { kind, group, bytes }
    }

    /// Number of ring rounds the collective takes.
    pub fn round_count(&self) -> usize {
        let n = self.group.len();
        if n < 2 {
            return 0;
        }
        match self.kind {
            CollectiveKind::AllGather | CollectiveKind::ReduceScatter => n - 1,
            CollectiveKind::AllReduce => 2 * (n - 1),
            CollectiveKind::Broadcast | CollectiveKind::AllToAll => n - 1,
            CollectiveKind::P2pShift => 1,
        }
    }

    /// Bytes each rank sends per round.
    pub fn bytes_per_round(&self) -> f64 {
        let n = self.group.len().max(1) as f64;
        match self.kind {
            CollectiveKind::AllGather
            | CollectiveKind::ReduceScatter
            | CollectiveKind::AllReduce
            | CollectiveKind::AllToAll => self.bytes / n,
            CollectiveKind::Broadcast | CollectiveKind::P2pShift => self.bytes,
        }
    }

    /// Generates the per-round flows of the ring algorithm. Every round,
    /// each rank sends its shard to the next rank in logical order (XY mesh
    /// routes; non-adjacent logical neighbors become multi-hop flows).
    pub fn rounds(&self, mesh: &Mesh) -> Vec<Vec<Flow>> {
        let n = self.group.len();
        if n < 2 {
            return Vec::new();
        }
        let shard = self.bytes_per_round();
        let mut rounds = Vec::with_capacity(self.round_count());
        for round in 0..self.round_count() {
            let mut flows = Vec::with_capacity(n);
            match self.kind {
                CollectiveKind::Broadcast => {
                    // Pipelined chain: in round r, rank r forwards to r+1.
                    let i = round % n;
                    if i + 1 < n {
                        flows.push(Flow::xy(mesh, self.group[i], self.group[i + 1], shard));
                    }
                }
                CollectiveKind::AllToAll => {
                    // Round r: rank i sends its shard for rank i + r + 1 —
                    // a disjoint permutation per round.
                    for i in 0..n {
                        let dst = (i + round + 1) % n;
                        flows.push(Flow::xy(mesh, self.group[i], self.group[dst], shard));
                    }
                }
                _ => {
                    for i in 0..n {
                        let next = (i + 1) % n;
                        flows.push(Flow::xy(mesh, self.group[i], self.group[next], shard));
                    }
                }
            }
            rounds.push(flows);
        }
        rounds
    }

    /// All flows of every round, flattened (for static link-load analysis).
    pub fn all_flows(&self, mesh: &Mesh) -> Vec<Flow> {
        self.rounds(mesh).into_iter().flatten().collect()
    }

    /// Idealized latency assuming every logical neighbor is one physical hop
    /// and links are contention-free (the textbook ring-collective formula).
    pub fn analytic_time(&self, d2d: &D2dConfig) -> f64 {
        Self::analytic_time_for(self.kind, self.group.len(), self.bytes, d2d)
    }

    /// [`Collective::analytic_time`] as a pure function of the group
    /// *size*: the idealized formula never looks at which dies
    /// participate, only how many, so callers that would otherwise build
    /// a throwaway group vector (or memoize timings by `(kind, n,
    /// bytes)`) can use this directly.
    pub fn analytic_time_for(kind: CollectiveKind, n: usize, bytes: f64, d2d: &D2dConfig) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let rounds = match kind {
            CollectiveKind::AllGather | CollectiveKind::ReduceScatter => n - 1,
            CollectiveKind::AllReduce => 2 * (n - 1),
            CollectiveKind::Broadcast | CollectiveKind::AllToAll => n - 1,
            CollectiveKind::P2pShift => 1,
        } as f64;
        let shard = match kind {
            CollectiveKind::AllGather
            | CollectiveKind::ReduceScatter
            | CollectiveKind::AllReduce
            | CollectiveKind::AllToAll => bytes / n as f64,
            CollectiveKind::Broadcast | CollectiveKind::P2pShift => bytes,
        };
        rounds * d2d.transfer_time(shard)
    }

    /// Simulated latency on the real mesh: per-round contention makespans,
    /// summed over rounds (rounds are barriers in ring algorithms). Routed
    /// through the batch entry point: ring rounds repeat one flow shape,
    /// so every round after the first is warm-started from the first
    /// round's solved equilibrium instead of re-running progressive
    /// filling (all-to-all rounds are distinct permutations and each
    /// seeds its own shape).
    pub fn simulate(&self, sim: &ContentionSim, mesh: &Mesh) -> f64 {
        let rounds = self.rounds(mesh);
        sim.simulate_many(&rounds).iter().map(|r| r.makespan).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_wsc::config::WaferConfig;
    use temp_wsc::units::MB;

    fn setup() -> (Mesh, ContentionSim, D2dConfig) {
        let cfg = WaferConfig::hpca();
        (cfg.mesh(), ContentionSim::new(&cfg), cfg.d2d)
    }

    /// A contiguous 2x2 physical ring on the 8x4 mesh.
    fn ring_group() -> Vec<DieId> {
        vec![DieId(0), DieId(1), DieId(9), DieId(8)]
    }

    /// A 4-die row used as a logical ring: the wrap step is 3 hops.
    fn strip_group() -> Vec<DieId> {
        vec![DieId(0), DieId(1), DieId(2), DieId(3)]
    }

    #[test]
    fn round_counts_match_textbook() {
        let g = ring_group();
        assert_eq!(
            Collective::new(CollectiveKind::AllGather, g.clone(), 1.0).round_count(),
            3
        );
        assert_eq!(
            Collective::new(CollectiveKind::AllReduce, g.clone(), 1.0).round_count(),
            6
        );
        assert_eq!(
            Collective::new(CollectiveKind::ReduceScatter, g.clone(), 1.0).round_count(),
            3
        );
        assert_eq!(
            Collective::new(CollectiveKind::P2pShift, g, 1.0).round_count(),
            1
        );
    }

    #[test]
    fn allgather_moves_n_minus_1_shards() {
        let c = Collective::new(CollectiveKind::AllGather, ring_group(), 64.0 * MB);
        assert!((c.bytes_per_round() - 16.0 * MB).abs() < 1.0);
        let rounds = c.rounds(&setup().0);
        assert_eq!(rounds.len(), 3);
        assert!(rounds.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn physical_ring_flows_are_single_hop() {
        let (mesh, _, _) = setup();
        let c = Collective::new(CollectiveKind::AllGather, ring_group(), 64.0 * MB);
        for round in c.rounds(&mesh) {
            for f in round {
                assert_eq!(f.hops(), 1, "{:?} -> {:?}", f.src, f.dst);
            }
        }
    }

    #[test]
    fn strip_group_wrap_step_is_multi_hop() {
        let (mesh, _, _) = setup();
        let c = Collective::new(CollectiveKind::AllGather, strip_group(), 64.0 * MB);
        let max_hops = c.all_flows(&mesh).iter().map(Flow::hops).max().unwrap();
        assert_eq!(max_hops, 3, "wrap from D3 back to D0");
    }

    #[test]
    fn simulated_ring_beats_strip() {
        let (mesh, sim, _) = setup();
        let ring = Collective::new(CollectiveKind::AllGather, ring_group(), 128.0 * MB);
        let strip = Collective::new(CollectiveKind::AllGather, strip_group(), 128.0 * MB);
        let t_ring = ring.simulate(&sim, &mesh);
        let t_strip = strip.simulate(&sim, &mesh);
        assert!(
            t_strip > 1.5 * t_ring,
            "strip {t_strip} should be much slower than ring {t_ring}"
        );
    }

    #[test]
    fn analytic_time_matches_simulated_on_physical_ring() {
        let (mesh, sim, d2d) = setup();
        let c = Collective::new(CollectiveKind::AllReduce, ring_group(), 256.0 * MB);
        let analytic = c.analytic_time(&d2d);
        let simulated = c.simulate(&sim, &mesh);
        // On a contention-free physical ring the two should agree closely
        // (the analytic path uses effective bandwidth, sim uses peak).
        let ratio = simulated / analytic;
        assert!((0.5..1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn all_to_all_rounds_are_disjoint_permutations() {
        let (mesh, _, _) = setup();
        let c = Collective::new(CollectiveKind::AllToAll, ring_group(), 64.0 * MB);
        assert_eq!(c.round_count(), 3);
        assert!((c.bytes_per_round() - 16.0 * MB).abs() < 1.0);
        let rounds = c.rounds(&mesh);
        // Every round: each rank sends exactly once and receives exactly
        // once (a permutation with no fixed points).
        for round in &rounds {
            assert_eq!(round.len(), 4);
            let mut srcs: Vec<_> = round.iter().map(|f| f.src).collect();
            let mut dsts: Vec<_> = round.iter().map(|f| f.dst).collect();
            srcs.sort_by_key(|d| d.0);
            dsts.sort_by_key(|d| d.0);
            assert_eq!(srcs, dsts);
            assert!(round.iter().all(|f| f.src != f.dst));
        }
        // Across all rounds every ordered pair appears exactly once.
        let pairs: std::collections::HashSet<(u32, u32)> = rounds
            .iter()
            .flatten()
            .map(|f| (f.src.0, f.dst.0))
            .collect();
        assert_eq!(pairs.len(), 4 * 3);
    }

    #[test]
    fn all_to_all_analytic_tracks_contention_sim_on_a_compact_group() {
        // The closed-form all-to-all ((n-1) rounds of 1/n shards) must
        // stay within a small factor of the contention-simulated makespan
        // on a compact 2x2 group — that factor is what the mesh's
        // multi-hop rounds cost, and it must be bounded, not divergent.
        let (mesh, sim, d2d) = setup();
        let c = Collective::new(CollectiveKind::AllToAll, ring_group(), 256.0 * MB);
        let analytic = c.analytic_time(&d2d);
        let simulated = c.simulate(&sim, &mesh);
        assert!(analytic > 0.0);
        let ratio = simulated / analytic;
        assert!(
            (0.4..3.0).contains(&ratio),
            "analytic {analytic} vs simulated {simulated} (ratio {ratio})"
        );
        // A strip-embedded group pays real contention: the simulator must
        // charge it more than the compact square.
        let strip = Collective::new(CollectiveKind::AllToAll, strip_group(), 256.0 * MB);
        assert!(strip.simulate(&sim, &mesh) > simulated);
    }

    #[test]
    fn singleton_group_is_free() {
        let (mesh, sim, d2d) = setup();
        let c = Collective::new(CollectiveKind::AllReduce, vec![DieId(0)], 1.0 * MB);
        assert_eq!(c.round_count(), 0);
        assert_eq!(c.analytic_time(&d2d), 0.0);
        assert_eq!(c.simulate(&sim, &mesh), 0.0);
    }

    #[test]
    fn broadcast_is_a_chain() {
        let (mesh, _, _) = setup();
        let c = Collective::new(CollectiveKind::Broadcast, strip_group(), 32.0 * MB);
        let rounds = c.rounds(&mesh);
        assert_eq!(rounds.len(), 3);
        for r in &rounds {
            assert!(r.len() <= 1);
        }
    }
}
