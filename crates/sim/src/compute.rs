//! Roofline operator-latency model.
//!
//! GEMM-like operators run on the PE arrays at a size-dependent fraction of
//! peak (small tiles cannot fill the systolic pipeline); bandwidth-bound
//! operators (softmax, norms, elementwise) are limited by HBM/SRAM traffic.
//! The model is the compute half of the paper's wafer-centric cost model
//! (Eq. 2: `Comp(Op)`).

use serde::{Deserialize, Serialize};

use temp_graph::op::Operator;
use temp_graph::tensor::DType;
use temp_wsc::config::WaferConfig;

/// Per-die compute latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Peak FP16 FLOP/s of one die.
    pub peak_flops: f64,
    /// HBM bandwidth in bytes/s feeding the die.
    pub hbm_bandwidth: f64,
    /// HBM access latency in seconds (charged once per operator).
    pub hbm_latency: f64,
    /// Maximum achievable fraction of peak for large GEMMs.
    pub max_efficiency: f64,
    /// FLOP count at which GEMM efficiency reaches half of
    /// [`ComputeModel::max_efficiency`].
    pub half_saturation_flops: f64,
    /// Fixed per-operator launch overhead in seconds (instruction dispatch
    /// by the die's top controller).
    pub launch_overhead: f64,
}

impl ComputeModel {
    /// Builds the model from a wafer configuration.
    pub fn new(cfg: &WaferConfig) -> Self {
        ComputeModel {
            peak_flops: cfg.die.peak_flops,
            hbm_bandwidth: cfg.hbm.bandwidth,
            hbm_latency: cfg.hbm.latency,
            max_efficiency: 0.85,
            half_saturation_flops: 5.0e8,
            launch_overhead: 2.0e-6,
        }
    }

    /// Achieved fraction of peak for a GEMM of `flops` total work.
    ///
    /// Saturating curve: `eff = max_eff * flops / (flops + half_sat)` — tiny
    /// GEMMs (fine-grained TATP sub-tensors at very high parallel degrees)
    /// see degraded utilization, which produces the diminishing-returns tail
    /// of the Fig. 9 sweet-spot analysis.
    pub fn gemm_efficiency(&self, flops: f64) -> f64 {
        if flops <= 0.0 {
            return 0.0;
        }
        self.max_efficiency * flops / (flops + self.half_saturation_flops)
    }

    /// Forward latency of one operator on one die, derated by the die's
    /// surviving compute fraction (`1.0` = healthy; see
    /// [`temp_wsc::fault::FaultMap::surviving_compute`]).
    pub fn op_latency(&self, op: &Operator, surviving_compute: f64) -> f64 {
        self.latency_of(op.flops(), op, surviving_compute)
    }

    /// Training-step latency (forward + backward) of one operator.
    pub fn training_latency(&self, op: &Operator, surviving_compute: f64) -> f64 {
        self.latency_of(op.training_flops(), op, surviving_compute)
    }

    fn latency_of(&self, flops: f64, op: &Operator, surviving_compute: f64) -> f64 {
        let surviving = surviving_compute.clamp(1e-6, 1.0);
        let dtype = DType::F16;
        // Memory traffic scales with the work ratio: backward passes re-read
        // activations/weights and write gradients.
        let work_ratio = if op.flops() > 0.0 {
            flops / op.flops()
        } else {
            1.0
        };
        let bytes = work_ratio
            * (op.kind.input_bytes(dtype)
                + op.kind.output_bytes(dtype)
                + op.kind.weight_bytes(dtype));
        let mem_time = self.hbm_latency + bytes / self.hbm_bandwidth;
        let compute_time = if op.kind.is_compute_bound() {
            let eff = self.gemm_efficiency(flops).max(1e-3);
            flops / (self.peak_flops * surviving * eff)
        } else {
            // Vector units: bandwidth-bound; count a nominal 10% of peak.
            flops / (self.peak_flops * surviving * 0.1)
        };
        self.launch_overhead + compute_time.max(mem_time)
    }

    /// Latency of a raw GEMM expressed by FLOPs and bytes touched (used by
    /// the surrogate dataset generator, which sweeps dimensions directly).
    pub fn gemm_latency_raw(&self, flops: f64, bytes: f64) -> f64 {
        let eff = self.gemm_efficiency(flops).max(1e-3);
        let compute = flops / (self.peak_flops * eff);
        let mem = self.hbm_latency + bytes / self.hbm_bandwidth;
        self.launch_overhead + compute.max(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::op::OpKind;
    use temp_graph::tensor::LinearDims;

    fn model() -> ComputeModel {
        ComputeModel::new(&WaferConfig::hpca())
    }

    fn gemm(b: u64, m: u64, n: u64, k: u64) -> Operator {
        Operator::new("g", OpKind::Gemm(LinearDims::new(b, m, n, k)))
    }

    #[test]
    fn efficiency_is_monotone_and_bounded() {
        let m = model();
        let mut prev = 0.0;
        for exp in 6..14 {
            let e = m.gemm_efficiency(10f64.powi(exp));
            assert!(e >= prev);
            assert!(e <= m.max_efficiency);
            prev = e;
        }
        assert_eq!(m.gemm_efficiency(0.0), 0.0);
    }

    #[test]
    fn large_gemm_approaches_peak() {
        let m = model();
        let op = gemm(1, 8192, 8192, 8192);
        let t = m.op_latency(&op, 1.0);
        let ideal = op.flops() / (m.peak_flops * m.max_efficiency);
        assert!(t < 1.5 * ideal, "t={t}, ideal={ideal}");
    }

    #[test]
    fn small_gemm_is_overhead_dominated() {
        let m = model();
        let op = gemm(1, 32, 32, 32);
        let t = m.op_latency(&op, 1.0);
        assert!(t >= m.launch_overhead);
        // Achieved FLOP/s far below peak.
        let achieved = op.flops() / t;
        assert!(achieved < 0.01 * m.peak_flops);
    }

    #[test]
    fn fault_derating_slows_compute() {
        let m = model();
        // Large enough to be compute-bound even after derating.
        let op = gemm(1, 8192, 8192, 8192);
        let healthy = m.op_latency(&op, 1.0);
        let degraded = m.op_latency(&op, 0.75);
        assert!(degraded > healthy);
        let ratio = degraded / healthy;
        assert!(ratio > 1.2 && ratio < 1.45, "ratio {ratio}");
    }

    #[test]
    fn softmax_is_bandwidth_bound() {
        let m = model();
        let op = Operator::new(
            "s",
            OpKind::Softmax {
                rows: 1 << 20,
                cols: 128,
            },
        );
        let t = m.op_latency(&op, 1.0);
        let bytes = op.kind.input_bytes(DType::F16) + op.kind.output_bytes(DType::F16);
        let mem_floor = bytes / m.hbm_bandwidth;
        assert!(t >= mem_floor, "t={t} floor={mem_floor}");
    }

    #[test]
    fn training_latency_exceeds_forward() {
        let m = model();
        let op = gemm(1, 2048, 4096, 4096);
        assert!(m.training_latency(&op, 1.0) > 2.0 * m.op_latency(&op, 1.0));
    }

    #[test]
    fn raw_gemm_latency_matches_operator_path() {
        let m = model();
        let d = LinearDims::new(1, 1024, 1024, 1024);
        let op = gemm(1, 1024, 1024, 1024);
        let bytes =
            d.input_bytes(DType::F16) + d.weight_bytes(DType::F16) + d.output_bytes(DType::F16);
        let raw = m.gemm_latency_raw(d.flops(), bytes);
        let viaop = m.op_latency(&op, 1.0);
        assert!((raw - viaop).abs() / viaop < 1e-9);
    }
}
