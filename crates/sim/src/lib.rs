//! # temp-sim — wafer-scale chip simulator
//!
//! The paper evaluates TEMP on ASTRA-sim 2.0 extended with Ramulator and a
//! network-on-wafer model (§VII-A, §VIII-A). This crate is the Rust
//! substitute: an analytic + link-level-contention simulator producing the
//! same quantities the paper's figures consume — operator latencies,
//! collective/P2P communication times under mesh contention, per-link load
//! and utilization, memory occupancy (OOM detection) and energy.
//!
//! Modules:
//!
//! * [`compute`] — roofline operator-latency model (GEMM efficiency curve,
//!   bandwidth-bound vector ops);
//! * [`network`] — flows, routing and the max–min fair-share contention
//!   model over mesh links;
//! * [`collectives`] — ring/chain implementations of all-gather, all-reduce,
//!   reduce-scatter, broadcast and P2P chains as flow programs;
//! * [`memory`] — HBM3-lite capacity/bandwidth model with OOM detection;
//! * [`power`] — energy ledger and throughput-per-watt accounting;
//! * [`engine`] — round-based schedule execution with communication/
//!   computation overlap (Eq. 2 of the paper).
//!
//! # Example
//!
//! ```
//! use temp_sim::compute::ComputeModel;
//! use temp_graph::op::{OpKind, Operator};
//! use temp_graph::tensor::LinearDims;
//! use temp_wsc::config::WaferConfig;
//!
//! let cfg = WaferConfig::hpca();
//! let model = ComputeModel::new(&cfg);
//! let gemm = Operator::new("g", OpKind::Gemm(LinearDims::new(1, 2048, 4096, 4096)));
//! let t = model.op_latency(&gemm, 1.0);
//! assert!(t > 0.0);
//! ```

pub mod collectives;
pub mod compute;
pub mod engine;
pub mod memory;
pub mod network;
pub mod power;

pub use compute::ComputeModel;
pub use engine::{Round, RoundReport, RoundSchedule, ScheduleEngine};
pub use memory::MemoryLedger;
pub use network::{ContentionSim, Flow};
pub use power::EnergyLedger;

/// Errors produced by simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A die ran out of HBM capacity.
    OutOfMemory {
        /// The die that overflowed.
        die: u32,
        /// Bytes requested beyond capacity.
        needed: f64,
        /// Die capacity in bytes.
        capacity: f64,
    },
    /// A flow referenced a route with no links (distinct endpoints but an
    /// empty path).
    EmptyRoute {
        /// Source die.
        src: u32,
        /// Destination die.
        dst: u32,
    },
    /// An invalid parameter reached the simulator.
    InvalidParameter(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OutOfMemory {
                die,
                needed,
                capacity,
            } => write!(
                f,
                "die {die} out of memory: needs {needed:.3e} B beyond capacity {capacity:.3e} B"
            ),
            SimError::EmptyRoute { src, dst } => {
                write!(f, "flow {src} -> {dst} has an empty route")
            }
            SimError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
