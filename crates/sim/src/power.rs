//! Energy and power accounting (§VII-A: "total power as the sum of
//! contributions from computing units, memory components, and communication
//! interfaces", each derived from operation counts times energy per
//! operation).

use serde::{Deserialize, Serialize};

use temp_wsc::config::WaferConfig;
use temp_wsc::units::pj_per_bit_to_joules_per_byte;

/// Accumulated energy per subsystem, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Compute (PE array + vector unit) energy.
    pub compute: f64,
    /// D2D interconnect energy.
    pub d2d: f64,
    /// HBM/DRAM access energy.
    pub hbm: f64,
}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Adds compute energy for `flops` executed at the wafer's J/FLOP.
    pub fn add_compute(&mut self, flops: f64, cfg: &WaferConfig) {
        self.compute += flops * cfg.die.joules_per_flop();
    }

    /// Adds D2D energy for `bytes` traversing `hops` links.
    pub fn add_d2d(&mut self, bytes: f64, hops: f64, cfg: &WaferConfig) {
        self.d2d += bytes * hops * pj_per_bit_to_joules_per_byte(cfg.d2d.energy_pj_per_bit);
    }

    /// Adds HBM energy for `bytes` of DRAM traffic.
    pub fn add_hbm(&mut self, bytes: f64, cfg: &WaferConfig) {
        self.hbm += bytes * pj_per_bit_to_joules_per_byte(cfg.hbm.energy_pj_per_bit);
    }

    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.compute + self.d2d + self.hbm
    }

    /// Fractional breakdown `(compute, d2d, hbm)`; all zeros when empty.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (self.compute / t, self.d2d / t, self.hbm / t)
    }

    /// Average power in watts over a wall-clock duration.
    pub fn average_power(&self, duration: f64) -> f64 {
        if duration <= 0.0 {
            return 0.0;
        }
        self.total() / duration
    }

    /// Power efficiency: work per joule, e.g. tokens per joule when `work`
    /// is a token count (Fig. 14's "throughput per watt" normalizes this).
    pub fn efficiency(&self, work: f64) -> f64 {
        if self.total() <= 0.0 {
            return 0.0;
        }
        work / self.total()
    }

    /// Elementwise sum of two ledgers.
    pub fn merged(&self, other: &EnergyLedger) -> EnergyLedger {
        EnergyLedger {
            compute: self.compute + other.compute,
            d2d: self.d2d + other.d2d,
            hbm: self.hbm + other.hbm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_energy_uses_flops_per_watt() {
        let cfg = WaferConfig::hpca();
        let mut e = EnergyLedger::new();
        e.add_compute(2.0e12, &cfg); // 2 TFLOP at 2 TFLOPS/W => 1 J
        assert!((e.compute - 1.0).abs() < 1e-9);
    }

    #[test]
    fn d2d_energy_scales_with_hops() {
        let cfg = WaferConfig::hpca();
        let mut e1 = EnergyLedger::new();
        let mut e3 = EnergyLedger::new();
        e1.add_d2d(1.0e9, 1.0, &cfg);
        e3.add_d2d(1.0e9, 3.0, &cfg);
        assert!((e3.d2d / e1.d2d - 3.0).abs() < 1e-9);
        // 1 GB over 1 hop at 5 pJ/bit = 8e9 bits * 5e-12 = 0.04 J.
        assert!((e1.d2d - 0.04).abs() < 1e-6);
    }

    #[test]
    fn hbm_energy_uses_6pj_per_bit() {
        let cfg = WaferConfig::hpca();
        let mut e = EnergyLedger::new();
        e.add_hbm(1.0e9, &cfg);
        assert!((e.hbm - 0.048).abs() < 1e-6);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let cfg = WaferConfig::hpca();
        let mut e = EnergyLedger::new();
        e.add_compute(1.0e12, &cfg);
        e.add_d2d(1.0e9, 2.0, &cfg);
        e.add_hbm(1.0e9, &cfg);
        let (c, d, h) = e.breakdown();
        assert!((c + d + h - 1.0).abs() < 1e-12);
        assert!(c > d && c > h, "compute dominates (paper: >50%)");
    }

    #[test]
    fn power_and_efficiency() {
        let cfg = WaferConfig::hpca();
        let mut e = EnergyLedger::new();
        e.add_compute(4.0e12, &cfg); // 2 J
        assert!((e.average_power(2.0) - 1.0).abs() < 1e-9);
        assert!((e.efficiency(100.0) - 50.0).abs() < 1e-9);
        assert_eq!(EnergyLedger::new().average_power(1.0), 0.0);
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = EnergyLedger {
            compute: 1.0,
            d2d: 2.0,
            hbm: 3.0,
        };
        let b = EnergyLedger {
            compute: 0.5,
            d2d: 0.5,
            hbm: 0.5,
        };
        let m = a.merged(&b);
        assert_eq!(m.total(), 7.5);
    }
}
