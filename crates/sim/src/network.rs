//! Network-on-wafer flows and the max–min fair-share contention model.
//!
//! A [`Flow`] is a point-to-point transfer with an explicit link route
//! (dimension-ordered by default; the TCME optimizer rewrites routes).
//! [`ContentionSim`] runs a set of concurrent flows to completion under
//! *max–min fair sharing*: at every instant, link bandwidth is divided
//! fairly among the flows crossing it, and each flow progresses at the rate
//! of its most contended link. This is the standard fluid approximation of
//! input-queued mesh routers and reproduces the ">2x transfer latency"
//! contention effect of Fig. 5(b).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use temp_wsc::config::WaferConfig;
use temp_wsc::fault::FaultMap;
use temp_wsc::topology::{DieId, LinkId, Mesh, RouteOrder};

use crate::{Result, SimError};

/// A point-to-point transfer with an explicit route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Source die.
    pub src: DieId,
    /// Destination die.
    pub dst: DieId,
    /// Payload size in bytes.
    pub bytes: f64,
    /// Directed links traversed, in order. Empty iff `src == dst`.
    pub route: Vec<LinkId>,
}

impl Flow {
    /// Creates a flow routed with dimension-ordered XY routing.
    pub fn xy(mesh: &Mesh, src: DieId, dst: DieId, bytes: f64) -> Self {
        Self::routed(mesh, src, dst, bytes, RouteOrder::XThenY)
    }

    /// Creates a flow routed with the given dimension order.
    pub fn routed(mesh: &Mesh, src: DieId, dst: DieId, bytes: f64, order: RouteOrder) -> Self {
        let path = mesh.route(src, dst, order);
        let route = mesh
            .path_links(&path)
            .expect("dimension-ordered routes are valid");
        Flow {
            src,
            dst,
            bytes,
            route,
        }
    }

    /// Creates a flow with an explicit die path (used by the traffic
    /// optimizer's detour routes and fault-aware rerouting).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when consecutive dies in the
    /// path are not mesh neighbors.
    pub fn with_path(mesh: &Mesh, path: &[DieId], bytes: f64) -> Result<Self> {
        if path.is_empty() {
            return Err(SimError::InvalidParameter("empty die path".into()));
        }
        let route = mesh
            .path_links(path)
            .map_err(|e| SimError::InvalidParameter(e.to_string()))?;
        Ok(Flow {
            src: path[0],
            dst: *path.last().expect("non-empty"),
            bytes,
            route,
        })
    }

    /// Number of physical hops.
    pub fn hops(&self) -> usize {
        self.route.len()
    }

    /// Whether this flow's route crosses any link the fault map marks dead.
    pub fn crosses_dead_link(&self, faults: &FaultMap) -> bool {
        self.route.iter().any(|l| faults.link_dead(*l))
    }
}

/// One flow per formerly-adjacent (undirected) die pair, each routed over
/// the fault map's *surviving* links — the canonical degraded-fabric
/// traffic pattern. Ring collectives exchange with logical neighbors; on a
/// degraded wafer those single-hop exchanges travel the rerouted paths
/// this returns, so simulating the set against the healthy one-hop
/// baseline measures the rerouting + congestion inflation the fault
/// induces. Every returned flow avoids dead links by construction.
///
/// Returns `None` when the faults disconnect any pair (no lockstep
/// collective can complete on a partitioned wafer).
pub fn rerouted_neighbor_flows(mesh: &Mesh, faults: &FaultMap, bytes: f64) -> Option<Vec<Flow>> {
    let mut flows = Vec::new();
    for l in mesh.links() {
        if l.src >= l.dst {
            continue;
        }
        let path = faults.route_around(mesh, l.src, l.dst).ok()?;
        let flow = Flow::with_path(mesh, &path, bytes).expect("BFS paths step over mesh neighbors");
        debug_assert!(!flow.crosses_dead_link(faults));
        flows.push(flow);
    }
    Some(flows)
}

/// Completion report of a contention simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Per-flow completion times (same order as the input flows), including
    /// per-hop latency.
    pub completion: Vec<f64>,
    /// Time at which the last flow finishes.
    pub makespan: f64,
    /// Bytes carried per link over the whole run.
    pub link_bytes: HashMap<LinkId, f64>,
    /// The most-loaded link and its byte count, if any traffic flowed.
    pub max_loaded_link: Option<(LinkId, f64)>,
}

impl ContentionReport {
    /// Aggregate bandwidth utilization: carried bytes over
    /// `links_used * bandwidth * makespan`.
    pub fn bandwidth_utilization(&self, link_bandwidth: f64) -> f64 {
        if self.makespan <= 0.0 || self.link_bytes.is_empty() {
            return 0.0;
        }
        let carried: f64 = self.link_bytes.values().sum();
        let capacity = self.link_bytes.len() as f64 * link_bandwidth * self.makespan;
        (carried / capacity).clamp(0.0, 1.0)
    }
}

/// Max–min fair-share contention simulator over a mesh.
#[derive(Debug, Clone)]
pub struct ContentionSim {
    /// Per-link bandwidth in bytes/s.
    pub link_bandwidth: f64,
    /// Per-hop latency in seconds.
    pub hop_latency: f64,
}

/// Reusable dense per-link state for the water-filling inner loop.
///
/// The reference implementation rebuilds `HashMap<LinkId, f64>` rate maps
/// on every progressive-filling iteration; this scratch indexes flat
/// `Vec`s by [`LinkId::index`] and uses a generation stamp so per-round
/// resets touch only the links the active flows actually cross.
struct DenseScratch {
    /// Remaining capacity per link (valid where `stamp == generation`).
    cap: Vec<f64>,
    /// Unassigned active flows crossing each link.
    count: Vec<u32>,
    /// Active-flow positions crossing each link.
    flows_at: Vec<Vec<u32>>,
    /// Generation stamp per link.
    stamp: Vec<u64>,
    /// Current generation.
    generation: u64,
    /// Links touched this generation.
    used: Vec<usize>,
}

impl DenseScratch {
    fn new(link_count: usize) -> Self {
        DenseScratch {
            cap: vec![0.0; link_count],
            count: vec![0; link_count],
            flows_at: (0..link_count).map(|_| Vec::new()).collect(),
            stamp: vec![0; link_count],
            generation: 0,
            used: Vec::with_capacity(link_count),
        }
    }

    fn grow_to(&mut self, links: usize) {
        if links > self.cap.len() {
            self.cap.resize(links, 0.0);
            self.count.resize(links, 0);
            self.flows_at.resize_with(links, Vec::new);
            self.stamp.resize(links, 0);
        }
    }

    /// Max–min fair rates for the active flows, dense-array water-filling.
    fn fair_rates(&mut self, bandwidth: f64, flows: &[Flow], active: &[usize]) -> Vec<f64> {
        self.generation += 1;
        self.used.clear();
        for (pos, &i) in active.iter().enumerate() {
            for l in &flows[i].route {
                let idx = l.index();
                self.grow_to(idx + 1);
                if self.stamp[idx] != self.generation {
                    self.stamp[idx] = self.generation;
                    self.cap[idx] = bandwidth;
                    self.count[idx] = 0;
                    self.flows_at[idx].clear();
                    self.used.push(idx);
                }
                self.count[idx] += 1;
                self.flows_at[idx].push(pos as u32);
            }
        }
        let mut rate = vec![0.0f64; active.len()];
        let mut assigned = vec![false; active.len()];
        let mut unassigned = active.len();
        while unassigned > 0 {
            // Bottleneck link: smallest fair share among links that still
            // carry unassigned flows.
            let mut best: Option<(usize, f64)> = None;
            for &idx in &self.used {
                if self.count[idx] == 0 {
                    continue;
                }
                let share = self.cap[idx] / self.count[idx] as f64;
                if best.map(|(_, s)| share < s).unwrap_or(true) {
                    best = Some((idx, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                break;
            };
            // Freeze every unassigned flow crossing the bottleneck at the
            // bottleneck share; subtract it along their routes.
            for fp in 0..self.flows_at[bottleneck].len() {
                let p = self.flows_at[bottleneck][fp] as usize;
                if assigned[p] {
                    continue;
                }
                rate[p] = share;
                assigned[p] = true;
                unassigned -= 1;
                for l in &flows[active[p]].route {
                    let idx = l.index();
                    self.cap[idx] = (self.cap[idx] - share).max(0.0);
                    self.count[idx] -= 1;
                }
            }
        }
        rate
    }
}

impl ContentionSim {
    /// Builds the simulator from a wafer configuration.
    pub fn new(cfg: &WaferConfig) -> Self {
        ContentionSim {
            link_bandwidth: cfg.d2d.bandwidth,
            hop_latency: cfg.d2d.latency,
        }
    }

    /// Static per-link byte loads of a flow set (the quantity the TCME
    /// optimizer minimizes the maximum of).
    pub fn link_loads(&self, flows: &[Flow]) -> HashMap<LinkId, f64> {
        let mut loads: HashMap<LinkId, f64> = HashMap::new();
        for f in flows {
            for l in &f.route {
                *loads.entry(*l).or_insert(0.0) += f.bytes;
            }
        }
        loads
    }

    /// Lower bound on the time to drain the flow set: the byte load of the
    /// most congested link divided by link bandwidth.
    pub fn congestion_lower_bound(&self, flows: &[Flow]) -> f64 {
        self.link_loads(flows)
            .values()
            .fold(0.0f64, |a, b| a.max(*b))
            / self.link_bandwidth
    }

    /// Runs all flows concurrently under max–min fair sharing.
    ///
    /// Progressive-filling algorithm: repeatedly compute each active flow's
    /// max–min fair rate, advance time until the next flow drains, repeat.
    /// Local (src == dst) flows complete at t=0.
    ///
    /// Multi-hop flows are **store-and-forward**: on-wafer D2D links need
    /// tens-of-MB granularity to reach peak efficiency (§III-B), so a k-hop
    /// transfer cannot be wormhole-pipelined and pays k sequential
    /// serializations — the root cause of the "7x communication disparity"
    /// of Fig. 5(a). A flow's effective drain volume is therefore
    /// `bytes * hops` at its max–min rate, while each crossed link is loaded
    /// with `bytes`.
    pub fn simulate(&self, flows: &[Flow]) -> ContentionReport {
        self.run(flows, false)
    }

    /// As [`ContentionSim::simulate`] but computing fair rates with the
    /// original `HashMap`-keyed water-filling. Retained as the reference
    /// implementation the dense fast path is regression-tested against
    /// (see `tests/two_tier.rs`); not intended for production use.
    pub fn simulate_reference(&self, flows: &[Flow]) -> ContentionReport {
        self.run(flows, true)
    }

    fn run(&self, flows: &[Flow], reference: bool) -> ContentionReport {
        let n = flows.len();
        let mut remaining: Vec<f64> = flows
            .iter()
            .map(|f| f.bytes.max(0.0) * f.hops().max(1) as f64)
            .collect();
        let mut completion = vec![0.0f64; n];
        let mut active: Vec<usize> = (0..n)
            .filter(|i| !flows[*i].route.is_empty() && remaining[*i] > 0.0)
            .collect();
        // Size the dense scratch by the links the flows actually touch —
        // no mesh lookup needed, and single-flow runs allocate nothing.
        let scratch_links = if reference || active.len() <= 1 {
            0
        } else {
            flows
                .iter()
                .flat_map(|f| &f.route)
                .map(|l| l.index() + 1)
                .max()
                .unwrap_or(0)
        };
        let mut scratch = DenseScratch::new(scratch_links);
        // Zero-route flows (local) and zero-byte flows complete immediately.
        let mut now = 0.0f64;
        let mut guard = 0usize;
        while !active.is_empty() {
            guard += 1;
            assert!(guard < 100_000, "contention sim failed to converge");
            let rates = if active.len() == 1 {
                // A lone flow is never contended: every link it crosses
                // serves exactly one flow, so its max–min rate is the full
                // link bandwidth (identical in both formulations).
                vec![self.link_bandwidth]
            } else if reference {
                self.fair_rates_reference(flows, &active)
            } else {
                scratch.fair_rates(self.link_bandwidth, flows, &active)
            };
            // Time until the first active flow drains.
            let mut dt = f64::INFINITY;
            for (idx, &i) in active.iter().enumerate() {
                let r = rates[idx].max(1e-9);
                dt = dt.min(remaining[i] / r);
            }
            if !dt.is_finite() {
                break;
            }
            now += dt;
            let mut still_active = Vec::with_capacity(active.len());
            for (idx, &i) in active.iter().enumerate() {
                remaining[i] -= rates[idx] * dt;
                if remaining[i] <= 1e-6 {
                    remaining[i] = 0.0;
                    completion[i] = now;
                } else {
                    still_active.push(i);
                }
            }
            active = still_active;
        }
        // Charge per-hop pipeline latency on top of the fluid time.
        for (i, f) in flows.iter().enumerate() {
            completion[i] += f.hops() as f64 * self.hop_latency;
        }
        let link_bytes = self.link_loads(flows);
        let max_loaded_link = link_bytes
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(l, b)| (*l, *b));
        let makespan = completion.iter().fold(0.0f64, |a, b| a.max(*b));
        ContentionReport {
            completion,
            makespan,
            link_bytes,
            max_loaded_link,
        }
    }

    /// Max–min fair rates for the active flows (indices into `flows`) —
    /// the `HashMap`-keyed reference formulation of the water-filling that
    /// [`DenseScratch::fair_rates`] reimplements over flat link arrays.
    ///
    /// Water-filling: repeatedly find the link whose fair share
    /// (remaining capacity / unassigned flows crossing it) is smallest,
    /// freeze those flows at that rate, subtract, continue.
    fn fair_rates_reference(&self, flows: &[Flow], active: &[usize]) -> Vec<f64> {
        let mut rate = vec![0.0f64; active.len()];
        let mut assigned = vec![false; active.len()];
        // Link -> (capacity left, unassigned flow positions crossing it).
        let mut link_cap: HashMap<LinkId, f64> = HashMap::new();
        let mut link_flows: HashMap<LinkId, Vec<usize>> = HashMap::new();
        for (pos, &i) in active.iter().enumerate() {
            for l in &flows[i].route {
                link_cap.entry(*l).or_insert(self.link_bandwidth);
                link_flows.entry(*l).or_default().push(pos);
            }
        }
        let mut unassigned = active.len();
        while unassigned > 0 {
            // Find the bottleneck link.
            let mut best: Option<(LinkId, f64)> = None;
            for (l, cap) in &link_cap {
                let count = link_flows[l].iter().filter(|p| !assigned[**p]).count();
                if count == 0 {
                    continue;
                }
                let share = *cap / count as f64;
                if best.map(|(_, s)| share < s).unwrap_or(true) {
                    best = Some((*l, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                break;
            };
            // Freeze all unassigned flows crossing the bottleneck.
            let positions: Vec<usize> = link_flows[&bottleneck]
                .iter()
                .copied()
                .filter(|p| !assigned[*p])
                .collect();
            for p in positions {
                rate[p] = share;
                assigned[p] = true;
                unassigned -= 1;
                // Subtract this flow's rate from every link it crosses.
                for l in &flows[active[p]].route {
                    if let Some(c) = link_cap.get_mut(l) {
                        *c = (*c - share).max(0.0);
                    }
                }
            }
        }
        rate
    }

    /// Convenience: the contention-free time of a single flow
    /// (store-and-forward over its hops).
    pub fn solo_time(&self, flow: &Flow) -> f64 {
        if flow.route.is_empty() {
            return 0.0;
        }
        let hops = flow.hops() as f64;
        hops * (flow.bytes / self.link_bandwidth + self.hop_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_wsc::topology::Coord;
    use temp_wsc::units::MB;

    fn setup() -> (Mesh, ContentionSim) {
        let cfg = WaferConfig::hpca();
        (cfg.mesh(), ContentionSim::new(&cfg))
    }

    #[test]
    fn solo_flow_matches_serialization_plus_latency() {
        let (mesh, sim) = setup();
        let f = Flow::xy(&mesh, DieId(0), DieId(1), 64.0 * MB);
        let r = sim.simulate(std::slice::from_ref(&f));
        let expected = 64.0 * MB / sim.link_bandwidth + sim.hop_latency;
        assert!((r.completion[0] - expected).abs() / expected < 1e-6);
        assert!((sim.solo_time(&f) - expected).abs() < 1e-12);
    }

    #[test]
    fn local_flow_completes_instantly() {
        let (mesh, sim) = setup();
        let f = Flow::xy(&mesh, DieId(3), DieId(3), 64.0 * MB);
        let r = sim.simulate(&[f]);
        assert_eq!(r.completion[0], 0.0);
    }

    #[test]
    fn two_flows_sharing_a_link_take_twice_as_long() {
        let (mesh, sim) = setup();
        // Fig. 5(b): two transfers forced through the same link more than
        // double the latency versus contention-free.
        let a = mesh.die_at(Coord::new(0, 0)).unwrap();
        let b = mesh.die_at(Coord::new(2, 0)).unwrap();
        let c = mesh.die_at(Coord::new(1, 0)).unwrap();
        let d = mesh.die_at(Coord::new(3, 0)).unwrap();
        let f1 = Flow::xy(&mesh, a, b, 128.0 * MB);
        let f2 = Flow::xy(&mesh, c, d, 128.0 * MB);
        let solo = sim.simulate(std::slice::from_ref(&f1)).makespan;
        let both = sim.simulate(&[f1, f2]).makespan;
        // Shared middle link (1->2) halves each flow's rate for its duration.
        assert!(both > 1.4 * solo, "both={both}, solo={solo}");
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let (mesh, sim) = setup();
        let f1 = Flow::xy(&mesh, DieId(0), DieId(1), 32.0 * MB);
        let f2 = Flow::xy(&mesh, DieId(16), DieId(17), 32.0 * MB);
        let solo = sim.simulate(std::slice::from_ref(&f1)).makespan;
        let both = sim.simulate(&[f1, f2]).makespan;
        assert!((both - solo).abs() / solo < 1e-6);
    }

    #[test]
    fn link_loads_accumulate_over_shared_links() {
        let (mesh, sim) = setup();
        let f1 = Flow::xy(&mesh, DieId(0), DieId(2), 10.0 * MB);
        let f2 = Flow::xy(&mesh, DieId(1), DieId(3), 10.0 * MB);
        let loads = sim.link_loads(&[f1, f2]);
        // Link 1->2 carries both flows.
        let l12 = mesh.link_between(DieId(1), DieId(2)).unwrap();
        assert!((loads[&l12] - 20.0 * MB).abs() < 1.0);
    }

    #[test]
    fn max_min_fairness_respects_bottleneck() {
        let (mesh, sim) = setup();
        // Three flows across the same single link: each gets 1/3 bandwidth.
        let flows: Vec<Flow> = (0..3)
            .map(|_| Flow::xy(&mesh, DieId(0), DieId(1), 30.0 * MB))
            .collect();
        let r = sim.simulate(&flows);
        let expected = 3.0 * 30.0 * MB / sim.link_bandwidth + sim.hop_latency;
        assert!((r.makespan - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn congestion_lower_bound_matches_max_link_load() {
        let (mesh, sim) = setup();
        let f1 = Flow::xy(&mesh, DieId(0), DieId(2), 10.0 * MB);
        let f2 = Flow::xy(&mesh, DieId(1), DieId(3), 10.0 * MB);
        let lb = sim.congestion_lower_bound(&[f1, f2]);
        assert!((lb - 20.0 * MB / sim.link_bandwidth).abs() < 1e-12);
    }

    #[test]
    fn multi_hop_flow_charges_latency_per_hop() {
        let (mesh, sim) = setup();
        let f = Flow::xy(&mesh, DieId(0), DieId(7), 1.0);
        let r = sim.simulate(&[f]);
        assert!(r.completion[0] >= 7.0 * sim.hop_latency);
    }

    #[test]
    fn with_path_rejects_non_adjacent_steps() {
        let (mesh, _) = setup();
        let res = Flow::with_path(&mesh, &[DieId(0), DieId(2)], 1.0);
        assert!(matches!(res, Err(SimError::InvalidParameter(_))));
    }

    #[test]
    fn dense_and_reference_fair_sharing_agree() {
        let (mesh, sim) = setup();
        // A contended mix: row traffic sharing links, column crossings and
        // a long diagonal flow, all concurrent.
        let mut flows = Vec::new();
        for i in 0..4 {
            flows.push(Flow::xy(&mesh, DieId(i), DieId(i + 2), 64.0 * MB));
            flows.push(Flow::xy(&mesh, DieId(i), DieId(i + 16), 32.0 * MB));
        }
        flows.push(Flow::xy(&mesh, DieId(0), DieId(31), 128.0 * MB));
        let dense = sim.simulate(&flows);
        let reference = sim.simulate_reference(&flows);
        assert!((dense.makespan - reference.makespan).abs() <= 1e-9 * reference.makespan);
        for (d, r) in dense.completion.iter().zip(&reference.completion) {
            assert!((d - r).abs() <= 1e-9 * r.abs().max(1e-12), "{d} vs {r}");
        }
        assert_eq!(dense.link_bytes, reference.link_bytes);
    }

    #[test]
    fn rerouted_neighbor_flows_avoid_dead_links_and_inflate_makespan() {
        let (mesh, sim) = setup();
        let healthy = FaultMap::healthy(&mesh);
        let base = rerouted_neighbor_flows(&mesh, &healthy, 16.0 * MB).unwrap();
        // Healthy: every neighbor exchange is its own single-hop flow.
        assert_eq!(base.len(), mesh.link_count() / 2);
        assert!(base.iter().all(|f| f.hops() == 1));

        let faults = FaultMap::inject_link_faults(&mesh, 0.2, 5);
        assert!(faults.is_connected(&mesh));
        let rerouted = rerouted_neighbor_flows(&mesh, &faults, 16.0 * MB).unwrap();
        assert_eq!(rerouted.len(), base.len());
        for f in &rerouted {
            assert!(!f.crosses_dead_link(&faults), "{f:?}");
        }
        // Detours share surviving links: strictly slower than healthy.
        let t_healthy = sim.simulate(&base).makespan;
        let t_degraded = sim.simulate(&rerouted).makespan;
        assert!(t_degraded > t_healthy, "{t_degraded} vs {t_healthy}");
    }

    #[test]
    fn rerouted_neighbor_flows_detect_disconnection() {
        let mesh = Mesh::new(2, 1).unwrap();
        let mut faults = FaultMap::healthy(&mesh);
        let l = mesh.link_between(DieId(0), DieId(1)).unwrap();
        faults.kill_link(&mesh, l);
        assert!(rerouted_neighbor_flows(&mesh, &faults, 1.0).is_none());
    }

    #[test]
    fn bandwidth_utilization_is_bounded() {
        let (mesh, sim) = setup();
        let flows: Vec<Flow> = (0..4)
            .map(|i| Flow::xy(&mesh, DieId(i), DieId(i + 8), 64.0 * MB))
            .collect();
        let r = sim.simulate(&flows);
        let u = r.bandwidth_utilization(sim.link_bandwidth);
        assert!(u > 0.0 && u <= 1.0, "{u}");
    }
}
