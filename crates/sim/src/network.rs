//! Network-on-wafer flows and the max–min fair-share contention model.
//!
//! A [`Flow`] is a point-to-point transfer with an explicit link route
//! (dimension-ordered by default; the TCME optimizer rewrites routes).
//! [`ContentionSim`] runs a set of concurrent flows to completion under
//! *max–min fair sharing*: at every instant, link bandwidth is divided
//! fairly among the flows crossing it, and each flow progresses at the rate
//! of its most contended link. This is the standard fluid approximation of
//! input-queued mesh routers and reproduces the ">2x transfer latency"
//! contention effect of Fig. 5(b).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use temp_wsc::config::WaferConfig;
use temp_wsc::fault::FaultMap;
use temp_wsc::topology::{DieId, LinkId, Mesh, RouteOrder};

use crate::{Result, SimError};

/// Process-wide warm-start hit counter (exact-match cache serves and
/// proportional rescales both count — each one replaced a full fluid
/// solve).
static WARM_HITS: AtomicU64 = AtomicU64::new(0);
/// Process-wide warm-start miss counter (cold fluid solves performed on
/// behalf of a warm-capable entry point).
static WARM_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of every warm-start-capable simulation entry point
/// ([`ContentionSim::simulate_warm`], [`ContentionSim::simulate_many`],
/// [`ContentionSim::simulate_cached`]) since process start. Callers that
/// want a per-phase rate snapshot the pair before and after.
pub fn contention_warm_stats() -> (u64, u64) {
    (
        WARM_HITS.load(Ordering::Relaxed),
        WARM_MISSES.load(Ordering::Relaxed),
    )
}

/// A point-to-point transfer with an explicit route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Source die.
    pub src: DieId,
    /// Destination die.
    pub dst: DieId,
    /// Payload size in bytes.
    pub bytes: f64,
    /// Directed links traversed, in order. Empty iff `src == dst`.
    pub route: Vec<LinkId>,
}

impl Flow {
    /// Creates a flow routed with dimension-ordered XY routing.
    pub fn xy(mesh: &Mesh, src: DieId, dst: DieId, bytes: f64) -> Self {
        Self::routed(mesh, src, dst, bytes, RouteOrder::XThenY)
    }

    /// Creates a flow routed with the given dimension order.
    pub fn routed(mesh: &Mesh, src: DieId, dst: DieId, bytes: f64, order: RouteOrder) -> Self {
        let path = mesh.route(src, dst, order);
        let route = mesh
            .path_links(&path)
            .expect("dimension-ordered routes are valid");
        Flow {
            src,
            dst,
            bytes,
            route,
        }
    }

    /// Creates a flow with an explicit die path (used by the traffic
    /// optimizer's detour routes and fault-aware rerouting).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when consecutive dies in the
    /// path are not mesh neighbors.
    pub fn with_path(mesh: &Mesh, path: &[DieId], bytes: f64) -> Result<Self> {
        if path.is_empty() {
            return Err(SimError::InvalidParameter("empty die path".into()));
        }
        let route = mesh
            .path_links(path)
            .map_err(|e| SimError::InvalidParameter(e.to_string()))?;
        Ok(Flow {
            src: path[0],
            dst: *path.last().expect("non-empty"),
            bytes,
            route,
        })
    }

    /// Number of physical hops.
    pub fn hops(&self) -> usize {
        self.route.len()
    }

    /// Whether this flow's route crosses any link the fault map marks dead.
    pub fn crosses_dead_link(&self, faults: &FaultMap) -> bool {
        self.route.iter().any(|l| faults.link_dead(*l))
    }
}

/// One flow per formerly-adjacent (undirected) die pair, each routed over
/// the fault map's *surviving* links — the canonical degraded-fabric
/// traffic pattern. Ring collectives exchange with logical neighbors; on a
/// degraded wafer those single-hop exchanges travel the rerouted paths
/// this returns, so simulating the set against the healthy one-hop
/// baseline measures the rerouting + congestion inflation the fault
/// induces. Every returned flow avoids dead links by construction.
///
/// Returns `None` when the faults disconnect any pair (no lockstep
/// collective can complete on a partitioned wafer).
pub fn rerouted_neighbor_flows(mesh: &Mesh, faults: &FaultMap, bytes: f64) -> Option<Vec<Flow>> {
    let mut flows = Vec::new();
    for l in mesh.links() {
        if l.src >= l.dst {
            continue;
        }
        let path = faults.route_around(mesh, l.src, l.dst).ok()?;
        let flow = Flow::with_path(mesh, &path, bytes).expect("BFS paths step over mesh neighbors");
        debug_assert!(!flow.crosses_dead_link(faults));
        flows.push(flow);
    }
    Some(flows)
}

/// Completion report of a contention simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Per-flow completion times (same order as the input flows), including
    /// per-hop latency.
    pub completion: Vec<f64>,
    /// Time at which the last flow finishes.
    pub makespan: f64,
    /// Bytes carried per link over the whole run.
    pub link_bytes: HashMap<LinkId, f64>,
    /// The most-loaded link and its byte count, if any traffic flowed.
    pub max_loaded_link: Option<(LinkId, f64)>,
}

impl ContentionReport {
    /// Aggregate bandwidth utilization: carried bytes over
    /// `links_used * bandwidth * makespan`.
    pub fn bandwidth_utilization(&self, link_bandwidth: f64) -> f64 {
        if self.makespan <= 0.0 || self.link_bytes.is_empty() {
            return 0.0;
        }
        let carried: f64 = self.link_bytes.values().sum();
        let capacity = self.link_bytes.len() as f64 * link_bandwidth * self.makespan;
        (carried / capacity).clamp(0.0, 1.0)
    }
}

/// Max–min fair-share contention simulator over a mesh.
#[derive(Debug, Clone)]
pub struct ContentionSim {
    /// Per-link bandwidth in bytes/s.
    pub link_bandwidth: f64,
    /// Per-hop latency in seconds.
    pub hop_latency: f64,
}

/// Reusable dense per-link state for the water-filling inner loop.
///
/// The reference implementation rebuilds `HashMap<LinkId, f64>` rate maps
/// on every progressive-filling iteration; this scratch indexes flat
/// `Vec`s by [`LinkId::index`] and uses a generation stamp so per-round
/// resets touch only the links the active flows actually cross.
struct DenseScratch {
    /// Remaining capacity per link (valid where `stamp == generation`).
    cap: Vec<f64>,
    /// Unassigned active flows crossing each link.
    count: Vec<u32>,
    /// Active-flow positions crossing each link.
    flows_at: Vec<Vec<u32>>,
    /// Generation stamp per link.
    stamp: Vec<u64>,
    /// Current generation.
    generation: u64,
    /// Links touched this generation.
    used: Vec<usize>,
    /// Per-active-flow assigned rates (output of the water-filling).
    rate: Vec<f64>,
    /// Per-active-flow frozen markers.
    assigned: Vec<bool>,
}

/// Reusable per-thread buffers for the fluid loop: remaining volumes,
/// the active set and the dense water-filling scratch. The generation
/// stamps inside [`DenseScratch`] make reuse across runs safe without
/// clearing, so the steady-state simulation path performs no heap
/// allocation beyond the returned report.
struct RunArena {
    scratch: DenseScratch,
    remaining: Vec<f64>,
    active: Vec<usize>,
    next_active: Vec<usize>,
}

thread_local! {
    static RUN_ARENA: RefCell<RunArena> = RefCell::new(RunArena {
        scratch: DenseScratch::new(0),
        remaining: Vec::new(),
        active: Vec::new(),
        next_active: Vec::new(),
    });
}

impl DenseScratch {
    fn new(link_count: usize) -> Self {
        DenseScratch {
            cap: vec![0.0; link_count],
            count: vec![0; link_count],
            flows_at: (0..link_count).map(|_| Vec::new()).collect(),
            stamp: vec![0; link_count],
            generation: 0,
            used: Vec::with_capacity(link_count),
            rate: Vec::new(),
            assigned: Vec::new(),
        }
    }

    fn grow_to(&mut self, links: usize) {
        if links > self.cap.len() {
            self.cap.resize(links, 0.0);
            self.count.resize(links, 0);
            self.flows_at.resize_with(links, Vec::new);
            self.stamp.resize(links, 0);
        }
    }

    /// Max–min fair rates for the active flows, dense-array water-filling.
    /// The rates land in `self.rate` (indexed by active-set position) so
    /// the fluid loop's per-iteration buffers come from the arena instead
    /// of fresh allocations.
    fn fair_rates(&mut self, bandwidth: f64, flows: &[Flow], active: &[usize]) {
        self.generation += 1;
        self.used.clear();
        for (pos, &i) in active.iter().enumerate() {
            for l in &flows[i].route {
                let idx = l.index();
                self.grow_to(idx + 1);
                if self.stamp[idx] != self.generation {
                    self.stamp[idx] = self.generation;
                    self.cap[idx] = bandwidth;
                    self.count[idx] = 0;
                    self.flows_at[idx].clear();
                    self.used.push(idx);
                }
                self.count[idx] += 1;
                self.flows_at[idx].push(pos as u32);
            }
        }
        self.rate.clear();
        self.rate.resize(active.len(), 0.0);
        self.assigned.clear();
        self.assigned.resize(active.len(), false);
        let mut unassigned = active.len();
        while unassigned > 0 {
            // Bottleneck link: smallest fair share among links that still
            // carry unassigned flows.
            let mut best: Option<(usize, f64)> = None;
            for &idx in &self.used {
                if self.count[idx] == 0 {
                    continue;
                }
                let share = self.cap[idx] / self.count[idx] as f64;
                if best.map(|(_, s)| share < s).unwrap_or(true) {
                    best = Some((idx, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                break;
            };
            // Freeze every unassigned flow crossing the bottleneck at the
            // bottleneck share; subtract it along their routes.
            for fp in 0..self.flows_at[bottleneck].len() {
                let p = self.flows_at[bottleneck][fp] as usize;
                if self.assigned[p] {
                    continue;
                }
                self.rate[p] = share;
                self.assigned[p] = true;
                unassigned -= 1;
                for l in &flows[active[p]].route {
                    let idx = l.index();
                    self.cap[idx] = (self.cap[idx] - share).max(0.0);
                    self.count[idx] -= 1;
                }
            }
        }
    }
}

impl ContentionSim {
    /// Builds the simulator from a wafer configuration.
    pub fn new(cfg: &WaferConfig) -> Self {
        ContentionSim {
            link_bandwidth: cfg.d2d.bandwidth,
            hop_latency: cfg.d2d.latency,
        }
    }

    /// Static per-link byte loads of a flow set (the quantity the TCME
    /// optimizer minimizes the maximum of).
    pub fn link_loads(&self, flows: &[Flow]) -> HashMap<LinkId, f64> {
        let mut loads: HashMap<LinkId, f64> = HashMap::new();
        for f in flows {
            for l in &f.route {
                *loads.entry(*l).or_insert(0.0) += f.bytes;
            }
        }
        loads
    }

    /// Lower bound on the time to drain the flow set: the byte load of the
    /// most congested link divided by link bandwidth.
    pub fn congestion_lower_bound(&self, flows: &[Flow]) -> f64 {
        self.link_loads(flows)
            .values()
            .fold(0.0f64, |a, b| a.max(*b))
            / self.link_bandwidth
    }

    /// Runs all flows concurrently under max–min fair sharing.
    ///
    /// Progressive-filling algorithm: repeatedly compute each active flow's
    /// max–min fair rate, advance time until the next flow drains, repeat.
    /// Local (src == dst) flows complete at t=0.
    ///
    /// Multi-hop flows are **store-and-forward**: on-wafer D2D links need
    /// tens-of-MB granularity to reach peak efficiency (§III-B), so a k-hop
    /// transfer cannot be wormhole-pipelined and pays k sequential
    /// serializations — the root cause of the "7x communication disparity"
    /// of Fig. 5(a). A flow's effective drain volume is therefore
    /// `bytes * hops` at its max–min rate, while each crossed link is loaded
    /// with `bytes`.
    pub fn simulate(&self, flows: &[Flow]) -> ContentionReport {
        self.run(flows, false)
    }

    /// As [`ContentionSim::simulate`] but computing fair rates with the
    /// original `HashMap`-keyed water-filling. Retained as the reference
    /// implementation the dense fast path is regression-tested against
    /// (see `tests/two_tier.rs`); not intended for production use.
    pub fn simulate_reference(&self, flows: &[Flow]) -> ContentionReport {
        self.run(flows, true)
    }

    fn run(&self, flows: &[Flow], reference: bool) -> ContentionReport {
        RUN_ARENA.with(|arena| self.run_in(&mut arena.borrow_mut(), flows, reference))
    }

    fn run_in(&self, arena: &mut RunArena, flows: &[Flow], reference: bool) -> ContentionReport {
        let RunArena {
            scratch,
            remaining,
            active,
            next_active,
        } = arena;
        let n = flows.len();
        remaining.clear();
        remaining.extend(
            flows
                .iter()
                .map(|f| f.bytes.max(0.0) * f.hops().max(1) as f64),
        );
        let mut completion = vec![0.0f64; n];
        active.clear();
        active.extend((0..n).filter(|i| !flows[*i].route.is_empty() && remaining[*i] > 0.0));
        // Zero-route flows (local) and zero-byte flows complete immediately.
        let mut now = 0.0f64;
        let mut guard = 0usize;
        while !active.is_empty() {
            guard += 1;
            assert!(guard < 100_000, "contention sim failed to converge");
            let single = [self.link_bandwidth];
            let ref_rates: Vec<f64>;
            let rates: &[f64] = if active.len() == 1 {
                // A lone flow is never contended: every link it crosses
                // serves exactly one flow, so its max–min rate is the full
                // link bandwidth (identical in both formulations).
                &single
            } else if reference {
                ref_rates = self.fair_rates_reference(flows, active);
                &ref_rates
            } else {
                scratch.fair_rates(self.link_bandwidth, flows, active);
                &scratch.rate
            };
            // Time until the first active flow drains.
            let mut dt = f64::INFINITY;
            for (idx, &i) in active.iter().enumerate() {
                let r = rates[idx].max(1e-9);
                dt = dt.min(remaining[i] / r);
            }
            if !dt.is_finite() {
                break;
            }
            now += dt;
            next_active.clear();
            for (idx, &i) in active.iter().enumerate() {
                remaining[i] -= rates[idx] * dt;
                if remaining[i] <= 1e-6 {
                    remaining[i] = 0.0;
                    completion[i] = now;
                } else {
                    next_active.push(i);
                }
            }
            std::mem::swap(active, next_active);
        }
        // Charge per-hop pipeline latency on top of the fluid time.
        for (i, f) in flows.iter().enumerate() {
            completion[i] += f.hops() as f64 * self.hop_latency;
        }
        let link_bytes = self.link_loads(flows);
        let max_loaded_link = link_bytes
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(l, b)| (*l, *b));
        let makespan = completion.iter().fold(0.0f64, |a, b| a.max(*b));
        ContentionReport {
            completion,
            makespan,
            link_bytes,
            max_loaded_link,
        }
    }

    /// Max–min fair rates for the active flows (indices into `flows`) —
    /// the `HashMap`-keyed reference formulation of the water-filling that
    /// [`DenseScratch::fair_rates`] reimplements over flat link arrays.
    ///
    /// Water-filling: repeatedly find the link whose fair share
    /// (remaining capacity / unassigned flows crossing it) is smallest,
    /// freeze those flows at that rate, subtract, continue.
    fn fair_rates_reference(&self, flows: &[Flow], active: &[usize]) -> Vec<f64> {
        let mut rate = vec![0.0f64; active.len()];
        let mut assigned = vec![false; active.len()];
        // Link -> (capacity left, unassigned flow positions crossing it).
        let mut link_cap: HashMap<LinkId, f64> = HashMap::new();
        let mut link_flows: HashMap<LinkId, Vec<usize>> = HashMap::new();
        for (pos, &i) in active.iter().enumerate() {
            for l in &flows[i].route {
                link_cap.entry(*l).or_insert(self.link_bandwidth);
                link_flows.entry(*l).or_default().push(pos);
            }
        }
        let mut unassigned = active.len();
        while unassigned > 0 {
            // Find the bottleneck link.
            let mut best: Option<(LinkId, f64)> = None;
            for (l, cap) in &link_cap {
                let count = link_flows[l].iter().filter(|p| !assigned[**p]).count();
                if count == 0 {
                    continue;
                }
                let share = *cap / count as f64;
                if best.map(|(_, s)| share < s).unwrap_or(true) {
                    best = Some((*l, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                break;
            };
            // Freeze all unassigned flows crossing the bottleneck.
            let positions: Vec<usize> = link_flows[&bottleneck]
                .iter()
                .copied()
                .filter(|p| !assigned[*p])
                .collect();
            for p in positions {
                rate[p] = share;
                assigned[p] = true;
                unassigned -= 1;
                // Subtract this flow's rate from every link it crosses.
                for l in &flows[active[p]].route {
                    if let Some(c) = link_cap.get_mut(l) {
                        *c = (*c - share).max(0.0);
                    }
                }
            }
        }
        rate
    }

    /// Convenience: the contention-free time of a single flow
    /// (store-and-forward over its hops).
    pub fn solo_time(&self, flow: &Flow) -> f64 {
        if flow.route.is_empty() {
            return 0.0;
        }
        let hops = flow.hops() as f64;
        hops * (flow.bytes / self.link_bandwidth + self.hop_latency)
    }

    /// Makespan of a lone flow, **bit-identical** to
    /// `simulate(&[flow]).makespan` but without building a report: a
    /// single flow is never contended, so its max–min rate is the full
    /// link bandwidth and the event loop reduces to a scalar replay of
    /// the same float operations (drain volume, `dt` division, residue
    /// subtraction, drain epsilon). This is the isolated-time fast path
    /// of the mapping engines, where every flow of a round is timed solo.
    pub fn isolated_makespan(&self, flow: &Flow) -> f64 {
        let hops_latency = flow.hops() as f64 * self.hop_latency;
        let mut remaining = flow.bytes.max(0.0) * flow.hops().max(1) as f64;
        if flow.route.is_empty() || remaining <= 0.0 {
            return hops_latency;
        }
        let rate = self.link_bandwidth;
        let mut now = 0.0f64;
        let mut guard = 0usize;
        loop {
            guard += 1;
            assert!(guard < 100_000, "contention sim failed to converge");
            let dt = remaining / rate.max(1e-9);
            if !dt.is_finite() {
                break;
            }
            now += dt;
            remaining -= rate * dt;
            if remaining <= 1e-6 {
                break;
            }
        }
        now + hops_latency
    }

    /// Order-sensitive signature of the flow set's *routes* plus this
    /// simulator's link parameters — the shape key warm starts match on.
    fn route_signature(&self, flows: &[Flow]) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv1a_extend(h, &self.link_bandwidth.to_bits().to_le_bytes());
        h = fnv1a_extend(h, &self.hop_latency.to_bits().to_le_bytes());
        h = fnv1a_extend(h, &(flows.len() as u64).to_le_bytes());
        for f in flows {
            h = fnv1a_extend(h, &(f.route.len() as u64).to_le_bytes());
            for l in &f.route {
                h = fnv1a_extend(h, &(l.index() as u64).to_le_bytes());
            }
        }
        h
    }

    /// [`ContentionSim::route_signature`] extended with the payload bytes:
    /// the exact-match key of [`ContentionSim::simulate_cached`].
    fn flow_set_signature(&self, flows: &[Flow]) -> u64 {
        let mut h = self.route_signature(flows);
        for f in flows {
            h = fnv1a_extend(h, &f.bytes.to_bits().to_le_bytes());
        }
        h
    }

    /// [`ContentionSim::simulate`] seeded from the previous equilibrium.
    ///
    /// The fluid phase of the max–min model is positively homogeneous in
    /// the payload sizes: scaling every flow's bytes by `s` scales every
    /// fluid completion time by `s` while the per-hop latency term stays
    /// additive. So when `flows` has the *same shape* as the solve stored
    /// in `warm` (identical routes, payloads proportional by one common
    /// factor), the fixed point is recovered by rescaling the stored
    /// equilibrium instead of re-running progressive filling. Any other
    /// flow set falls back to a cold solve, which re-seeds `warm`.
    ///
    /// Rescaled fixed points match cold solves to ~1e-9 relative (the
    /// fluid loop's absolute drain epsilon breaks exact homogeneity;
    /// regression-tested against [`ContentionSim::simulate_reference`]).
    /// Paths that must stay bit-identical to cold simulation use
    /// [`ContentionSim::simulate_cached`] instead.
    pub fn simulate_warm(&self, flows: &[Flow], warm: &mut WarmStart) -> ContentionReport {
        let sig = self.route_signature(flows);
        if warm.valid && warm.routes_sig == sig && warm.bytes.len() == flows.len() {
            if let Some(scale) = proportional_scale(&warm.bytes, flows) {
                WARM_HITS.fetch_add(1, Ordering::Relaxed);
                return warm.rescaled(self, scale);
            }
        }
        WARM_MISSES.fetch_add(1, Ordering::Relaxed);
        let report = self.simulate(flows);
        warm.store(self, flows, sig, &report);
        report
    }

    /// Batch entry point: simulates every flow set, chaining warm starts
    /// per route shape — consecutive (or interleaved) sets sharing routes
    /// reuse each other's equilibria, which is the common case for
    /// per-layer collective rounds swept over payload scales.
    pub fn simulate_many(&self, sets: &[Vec<Flow>]) -> Vec<ContentionReport> {
        let mut warm: HashMap<u64, WarmStart> = HashMap::new();
        sets.iter()
            .map(|flows| {
                let sig = self.route_signature(flows);
                self.simulate_warm(flows, warm.entry(sig).or_default())
            })
            .collect()
    }

    /// Exact-match memoized simulation: a hit returns a clone of the
    /// stored report, which is **bit-identical** to re-running the solve
    /// (the simulation is a pure function of the flow set and the link
    /// parameters — both are part of the match). This is the warm-start
    /// flavor the planning paths use, where plans must not depend on
    /// simulation history or thread count.
    pub fn simulate_cached(&self, flows: &[Flow], cache: &mut SimCache) -> ContentionReport {
        let sig = self.flow_set_signature(flows);
        let bandwidth_bits = self.link_bandwidth.to_bits();
        let latency_bits = self.hop_latency.to_bits();
        if let Some(bucket) = cache.entries.get(&sig) {
            for e in bucket {
                if e.bandwidth_bits == bandwidth_bits
                    && e.latency_bits == latency_bits
                    && e.flows.as_slice() == flows
                {
                    WARM_HITS.fetch_add(1, Ordering::Relaxed);
                    return e.report.clone();
                }
            }
        }
        WARM_MISSES.fetch_add(1, Ordering::Relaxed);
        let report = self.simulate(flows);
        cache.entries.entry(sig).or_default().push(SimCacheEntry {
            bandwidth_bits,
            latency_bits,
            flows: flows.to_vec(),
            report: report.clone(),
        });
        report
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The common payload scale factor between a stored solve and a new flow
/// set, if one exists: `flows[i].bytes == s * prev[i]` for every `i` (to
/// ~1e-12 relative — tighter than the 1e-9 warm-start contract).
fn proportional_scale(prev: &[f64], flows: &[Flow]) -> Option<f64> {
    let pivot = prev
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite payloads"))
        .map(|(i, _)| i)?;
    if prev[pivot] == 0.0 {
        return flows.iter().all(|f| f.bytes == 0.0).then_some(1.0);
    }
    let s = flows[pivot].bytes / prev[pivot];
    if !(s.is_finite() && s > 0.0) {
        return None;
    }
    for (p, f) in prev.iter().zip(flows) {
        let scaled = p * s;
        if (f.bytes - scaled).abs() > 1e-12 * f.bytes.abs().max(scaled.abs()) {
            return None;
        }
    }
    Some(s)
}

/// Stored fluid equilibrium of one solved flow set, reusable across
/// payload rescales of the same route shape (see
/// [`ContentionSim::simulate_warm`]).
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    valid: bool,
    routes_sig: u64,
    /// Payload bytes of the stored solve, per flow.
    bytes: Vec<f64>,
    /// Fluid completion times (per-hop latency excluded), per flow.
    fluid: Vec<f64>,
    /// Hop counts, per flow.
    hops: Vec<f64>,
    /// Link loads of the stored solve.
    link_bytes: Vec<(LinkId, f64)>,
}

impl WarmStart {
    /// An empty warm start (first use falls back to a cold solve).
    pub fn new() -> Self {
        WarmStart::default()
    }

    /// Whether a previous equilibrium is stored.
    pub fn is_seeded(&self) -> bool {
        self.valid
    }

    fn rescaled(&self, sim: &ContentionSim, s: f64) -> ContentionReport {
        let completion: Vec<f64> = self
            .fluid
            .iter()
            .zip(&self.hops)
            .map(|(f, h)| f * s + h * sim.hop_latency)
            .collect();
        let makespan = completion.iter().fold(0.0f64, |a, b| a.max(*b));
        let link_bytes: HashMap<LinkId, f64> =
            self.link_bytes.iter().map(|&(l, b)| (l, b * s)).collect();
        let max_loaded_link = link_bytes
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(l, b)| (*l, *b));
        ContentionReport {
            completion,
            makespan,
            link_bytes,
            max_loaded_link,
        }
    }

    fn store(&mut self, sim: &ContentionSim, flows: &[Flow], sig: u64, report: &ContentionReport) {
        self.valid = true;
        self.routes_sig = sig;
        self.bytes.clear();
        self.bytes.extend(flows.iter().map(|f| f.bytes));
        self.hops.clear();
        self.hops.extend(flows.iter().map(|f| f.hops() as f64));
        self.fluid.clear();
        self.fluid.extend(
            report
                .completion
                .iter()
                .zip(flows)
                .map(|(c, f)| c - f.hops() as f64 * sim.hop_latency),
        );
        self.link_bytes.clear();
        self.link_bytes
            .extend(report.link_bytes.iter().map(|(&l, &b)| (l, b)));
    }
}

/// Exact-match memo of fully-solved flow sets (see
/// [`ContentionSim::simulate_cached`]). Entries verify the full flow set
/// and link parameters on hit, so one cache may serve simulators with
/// different wafer configurations.
#[derive(Debug, Default)]
pub struct SimCache {
    entries: HashMap<u64, Vec<SimCacheEntry>>,
}

#[derive(Debug)]
struct SimCacheEntry {
    bandwidth_bits: u64,
    latency_bits: u64,
    flows: Vec<Flow>,
    report: ContentionReport,
}

impl SimCache {
    /// An empty cache.
    pub fn new() -> Self {
        SimCache::default()
    }

    /// Number of stored solves.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the cache holds no solves.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use temp_wsc::topology::Coord;
    use temp_wsc::units::MB;

    fn setup() -> (Mesh, ContentionSim) {
        let cfg = WaferConfig::hpca();
        (cfg.mesh(), ContentionSim::new(&cfg))
    }

    #[test]
    fn solo_flow_matches_serialization_plus_latency() {
        let (mesh, sim) = setup();
        let f = Flow::xy(&mesh, DieId(0), DieId(1), 64.0 * MB);
        let r = sim.simulate(std::slice::from_ref(&f));
        let expected = 64.0 * MB / sim.link_bandwidth + sim.hop_latency;
        assert!((r.completion[0] - expected).abs() / expected < 1e-6);
        assert!((sim.solo_time(&f) - expected).abs() < 1e-12);
    }

    #[test]
    fn local_flow_completes_instantly() {
        let (mesh, sim) = setup();
        let f = Flow::xy(&mesh, DieId(3), DieId(3), 64.0 * MB);
        let r = sim.simulate(&[f]);
        assert_eq!(r.completion[0], 0.0);
    }

    #[test]
    fn two_flows_sharing_a_link_take_twice_as_long() {
        let (mesh, sim) = setup();
        // Fig. 5(b): two transfers forced through the same link more than
        // double the latency versus contention-free.
        let a = mesh.die_at(Coord::new(0, 0)).unwrap();
        let b = mesh.die_at(Coord::new(2, 0)).unwrap();
        let c = mesh.die_at(Coord::new(1, 0)).unwrap();
        let d = mesh.die_at(Coord::new(3, 0)).unwrap();
        let f1 = Flow::xy(&mesh, a, b, 128.0 * MB);
        let f2 = Flow::xy(&mesh, c, d, 128.0 * MB);
        let solo = sim.simulate(std::slice::from_ref(&f1)).makespan;
        let both = sim.simulate(&[f1, f2]).makespan;
        // Shared middle link (1->2) halves each flow's rate for its duration.
        assert!(both > 1.4 * solo, "both={both}, solo={solo}");
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let (mesh, sim) = setup();
        let f1 = Flow::xy(&mesh, DieId(0), DieId(1), 32.0 * MB);
        let f2 = Flow::xy(&mesh, DieId(16), DieId(17), 32.0 * MB);
        let solo = sim.simulate(std::slice::from_ref(&f1)).makespan;
        let both = sim.simulate(&[f1, f2]).makespan;
        assert!((both - solo).abs() / solo < 1e-6);
    }

    #[test]
    fn link_loads_accumulate_over_shared_links() {
        let (mesh, sim) = setup();
        let f1 = Flow::xy(&mesh, DieId(0), DieId(2), 10.0 * MB);
        let f2 = Flow::xy(&mesh, DieId(1), DieId(3), 10.0 * MB);
        let loads = sim.link_loads(&[f1, f2]);
        // Link 1->2 carries both flows.
        let l12 = mesh.link_between(DieId(1), DieId(2)).unwrap();
        assert!((loads[&l12] - 20.0 * MB).abs() < 1.0);
    }

    #[test]
    fn max_min_fairness_respects_bottleneck() {
        let (mesh, sim) = setup();
        // Three flows across the same single link: each gets 1/3 bandwidth.
        let flows: Vec<Flow> = (0..3)
            .map(|_| Flow::xy(&mesh, DieId(0), DieId(1), 30.0 * MB))
            .collect();
        let r = sim.simulate(&flows);
        let expected = 3.0 * 30.0 * MB / sim.link_bandwidth + sim.hop_latency;
        assert!((r.makespan - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn congestion_lower_bound_matches_max_link_load() {
        let (mesh, sim) = setup();
        let f1 = Flow::xy(&mesh, DieId(0), DieId(2), 10.0 * MB);
        let f2 = Flow::xy(&mesh, DieId(1), DieId(3), 10.0 * MB);
        let lb = sim.congestion_lower_bound(&[f1, f2]);
        assert!((lb - 20.0 * MB / sim.link_bandwidth).abs() < 1e-12);
    }

    #[test]
    fn multi_hop_flow_charges_latency_per_hop() {
        let (mesh, sim) = setup();
        let f = Flow::xy(&mesh, DieId(0), DieId(7), 1.0);
        let r = sim.simulate(&[f]);
        assert!(r.completion[0] >= 7.0 * sim.hop_latency);
    }

    #[test]
    fn with_path_rejects_non_adjacent_steps() {
        let (mesh, _) = setup();
        let res = Flow::with_path(&mesh, &[DieId(0), DieId(2)], 1.0);
        assert!(matches!(res, Err(SimError::InvalidParameter(_))));
    }

    #[test]
    fn dense_and_reference_fair_sharing_agree() {
        let (mesh, sim) = setup();
        // A contended mix: row traffic sharing links, column crossings and
        // a long diagonal flow, all concurrent.
        let mut flows = Vec::new();
        for i in 0..4 {
            flows.push(Flow::xy(&mesh, DieId(i), DieId(i + 2), 64.0 * MB));
            flows.push(Flow::xy(&mesh, DieId(i), DieId(i + 16), 32.0 * MB));
        }
        flows.push(Flow::xy(&mesh, DieId(0), DieId(31), 128.0 * MB));
        let dense = sim.simulate(&flows);
        let reference = sim.simulate_reference(&flows);
        assert!((dense.makespan - reference.makespan).abs() <= 1e-9 * reference.makespan);
        for (d, r) in dense.completion.iter().zip(&reference.completion) {
            assert!((d - r).abs() <= 1e-9 * r.abs().max(1e-12), "{d} vs {r}");
        }
        assert_eq!(dense.link_bytes, reference.link_bytes);
    }

    #[test]
    fn rerouted_neighbor_flows_avoid_dead_links_and_inflate_makespan() {
        let (mesh, sim) = setup();
        let healthy = FaultMap::healthy(&mesh);
        let base = rerouted_neighbor_flows(&mesh, &healthy, 16.0 * MB).unwrap();
        // Healthy: every neighbor exchange is its own single-hop flow.
        assert_eq!(base.len(), mesh.link_count() / 2);
        assert!(base.iter().all(|f| f.hops() == 1));

        let faults = FaultMap::inject_link_faults(&mesh, 0.2, 5);
        assert!(faults.is_connected(&mesh));
        let rerouted = rerouted_neighbor_flows(&mesh, &faults, 16.0 * MB).unwrap();
        assert_eq!(rerouted.len(), base.len());
        for f in &rerouted {
            assert!(!f.crosses_dead_link(&faults), "{f:?}");
        }
        // Detours share surviving links: strictly slower than healthy.
        let t_healthy = sim.simulate(&base).makespan;
        let t_degraded = sim.simulate(&rerouted).makespan;
        assert!(t_degraded > t_healthy, "{t_degraded} vs {t_healthy}");
    }

    #[test]
    fn rerouted_neighbor_flows_detect_disconnection() {
        let mesh = Mesh::new(2, 1).unwrap();
        let mut faults = FaultMap::healthy(&mesh);
        let l = mesh.link_between(DieId(0), DieId(1)).unwrap();
        faults.kill_link(&mesh, l);
        assert!(rerouted_neighbor_flows(&mesh, &faults, 1.0).is_none());
    }

    #[test]
    fn bandwidth_utilization_is_bounded() {
        let (mesh, sim) = setup();
        let flows: Vec<Flow> = (0..4)
            .map(|i| Flow::xy(&mesh, DieId(i), DieId(i + 8), 64.0 * MB))
            .collect();
        let r = sim.simulate(&flows);
        let u = r.bandwidth_utilization(sim.link_bandwidth);
        assert!(u > 0.0 && u <= 1.0, "{u}");
    }

    fn contended_mix(mesh: &Mesh, scale: f64) -> Vec<Flow> {
        let mut flows = Vec::new();
        for i in 0..4 {
            flows.push(Flow::xy(mesh, DieId(i), DieId(i + 2), scale * 64.0 * MB));
            flows.push(Flow::xy(mesh, DieId(i), DieId(i + 16), scale * 32.0 * MB));
        }
        flows.push(Flow::xy(mesh, DieId(0), DieId(31), scale * 128.0 * MB));
        flows
    }

    #[test]
    fn warm_start_rescale_matches_cold_and_reference() {
        let (mesh, sim) = setup();
        let mut warm = WarmStart::new();
        // Cold seed.
        let base = contended_mix(&mesh, 1.0);
        let seeded = sim.simulate_warm(&base, &mut warm);
        assert!(warm.is_seeded());
        assert_eq!(seeded.completion, sim.simulate(&base).completion);
        // Rescaled payloads over the same routes: warm fixed point must
        // match both a cold dense solve and the reference solver to 1e-9.
        for scale in [0.25, 3.0, 17.5] {
            let scaled = contended_mix(&mesh, scale);
            let hot = sim.simulate_warm(&scaled, &mut warm);
            let cold = sim.simulate(&scaled);
            let reference = sim.simulate_reference(&scaled);
            for (w, c) in hot.completion.iter().zip(&cold.completion) {
                assert!((w - c).abs() <= 1e-9 * c.abs().max(1e-12), "{w} vs {c}");
            }
            for (w, r) in hot.completion.iter().zip(&reference.completion) {
                assert!((w - r).abs() <= 1e-9 * r.abs().max(1e-12), "{w} vs {r}");
            }
            assert!((hot.makespan - cold.makespan).abs() <= 1e-9 * cold.makespan);
        }
    }

    #[test]
    fn warm_start_rejects_non_proportional_payloads() {
        let (mesh, sim) = setup();
        let mut warm = WarmStart::new();
        let base = contended_mix(&mesh, 1.0);
        sim.simulate_warm(&base, &mut warm);
        // Perturb one payload off-scale: must fall back to a cold solve
        // (and re-seed), not serve a stale rescale.
        let mut skewed = contended_mix(&mesh, 2.0);
        skewed[3].bytes *= 1.5;
        let hot = sim.simulate_warm(&skewed, &mut warm);
        let cold = sim.simulate(&skewed);
        assert_eq!(hot.completion, cold.completion);
    }

    #[test]
    fn simulate_many_agrees_with_individual_solves() {
        let (mesh, sim) = setup();
        let sets: Vec<Vec<Flow>> = [1.0, 2.0, 0.5, 8.0]
            .iter()
            .map(|&s| contended_mix(&mesh, s))
            .collect();
        let batch = sim.simulate_many(&sets);
        for (flows, report) in sets.iter().zip(&batch) {
            let cold = sim.simulate(flows);
            assert!((report.makespan - cold.makespan).abs() <= 1e-9 * cold.makespan);
            for (b, c) in report.completion.iter().zip(&cold.completion) {
                assert!((b - c).abs() <= 1e-9 * c.abs().max(1e-12), "{b} vs {c}");
            }
        }
    }

    #[test]
    fn cached_simulation_serves_are_bit_identical() {
        let (mesh, sim) = setup();
        let mut cache = SimCache::new();
        let flows = contended_mix(&mesh, 1.0);
        let first = sim.simulate_cached(&flows, &mut cache);
        assert_eq!(cache.len(), 1);
        let second = sim.simulate_cached(&flows, &mut cache);
        assert_eq!(cache.len(), 1);
        assert_eq!(first.completion, second.completion);
        assert_eq!(first.makespan.to_bits(), second.makespan.to_bits());
        assert_eq!(first.link_bytes, second.link_bytes);
        // A different payload on the same routes is a distinct entry.
        let other = contended_mix(&mesh, 2.0);
        let third = sim.simulate_cached(&other, &mut cache);
        assert_eq!(cache.len(), 2);
        assert_eq!(third.completion, sim.simulate(&other).completion);
    }

    #[test]
    fn isolated_makespan_is_bit_identical_to_a_lone_simulation() {
        let (mesh, sim) = setup();
        let mut rng = StdRng::seed_from_u64(0x150);
        let n = mesh.die_count() as u32;
        for _ in 0..256 {
            let flow = Flow::xy(
                &mesh,
                DieId(rng.gen_range(0u32..n)),
                DieId(rng.gen_range(0u32..n)),
                rng.gen_range(0.0..512.0e6),
            );
            let fast = sim.isolated_makespan(&flow);
            let full = sim.simulate(std::slice::from_ref(&flow)).makespan;
            assert_eq!(
                fast.to_bits(),
                full.to_bits(),
                "{:?}->{:?} {} bytes: fast {fast} vs full {full}",
                flow.src,
                flow.dst,
                flow.bytes
            );
        }
        // Degenerate shapes: local (zero-route) and zero-byte flows.
        let local = Flow::xy(&mesh, DieId(3), DieId(3), 1.0e6);
        assert_eq!(
            sim.isolated_makespan(&local).to_bits(),
            sim.simulate(std::slice::from_ref(&local))
                .makespan
                .to_bits()
        );
        let empty = Flow::xy(&mesh, DieId(0), DieId(5), 0.0);
        assert_eq!(
            sim.isolated_makespan(&empty).to_bits(),
            sim.simulate(std::slice::from_ref(&empty))
                .makespan
                .to_bits()
        );
    }
}
