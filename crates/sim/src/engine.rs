//! Round-based schedule execution with communication/computation overlap.
//!
//! TATP, TSPP and the baseline parallelisms all reduce to *rounds*: in each
//! round every die runs some compute while flows stream sub-tensors (Eq. 2:
//! `T_intra = Collective + max(Comp, P2P)`). The engine executes a
//! [`RoundSchedule`], charging per round either `max(comp, comm)` when the
//! round overlaps communication with computation, or `comp + comm` when the
//! communication is exposed (blocking collectives).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use temp_wsc::config::WaferConfig;
use temp_wsc::topology::{DieId, LinkId};

use crate::network::{ContentionSim, Flow};
use crate::power::EnergyLedger;

/// One die's compute work within a round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeTask {
    /// Executing die.
    pub die: DieId,
    /// Wall-clock seconds of compute.
    pub seconds: f64,
    /// FLOPs executed (for energy accounting).
    pub flops: f64,
    /// HBM bytes touched (for energy accounting).
    pub hbm_bytes: f64,
}

impl ComputeTask {
    /// A compute task with explicit energy counters.
    pub fn new(die: DieId, seconds: f64, flops: f64, hbm_bytes: f64) -> Self {
        ComputeTask {
            die,
            seconds,
            flops,
            hbm_bytes,
        }
    }

    /// A timing-only task (no energy accounting).
    pub fn timed(die: DieId, seconds: f64) -> Self {
        ComputeTask {
            die,
            seconds,
            flops: 0.0,
            hbm_bytes: 0.0,
        }
    }
}

/// One schedule round: concurrent compute plus flows.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Round {
    /// Per-die compute in this round.
    pub compute: Vec<ComputeTask>,
    /// Flows streaming during this round.
    pub flows: Vec<Flow>,
    /// Whether communication overlaps compute (`max`) or is exposed (`+`).
    pub overlap: bool,
    /// Human-readable label for traces.
    pub label: String,
}

impl Round {
    /// An overlapped (streaming) round.
    pub fn overlapped(label: impl Into<String>) -> Self {
        Round {
            overlap: true,
            label: label.into(),
            ..Round::default()
        }
    }

    /// An exposed (blocking) round.
    pub fn exposed(label: impl Into<String>) -> Self {
        Round {
            overlap: false,
            label: label.into(),
            ..Round::default()
        }
    }

    /// Adds a compute task (builder style).
    pub fn with_compute(mut self, task: ComputeTask) -> Self {
        self.compute.push(task);
        self
    }

    /// Adds a flow (builder style).
    pub fn with_flow(mut self, flow: Flow) -> Self {
        self.flows.push(flow);
        self
    }
}

/// A sequence of rounds (rounds are barriers).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RoundSchedule {
    /// The rounds, executed in order.
    pub rounds: Vec<Round>,
}

impl RoundSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        RoundSchedule::default()
    }

    /// Appends a round.
    pub fn push(&mut self, round: Round) {
        self.rounds.push(round);
    }

    /// Concatenates another schedule after this one.
    pub fn extend(&mut self, other: RoundSchedule) {
        self.rounds.extend(other.rounds);
    }

    /// Number of rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the schedule has no rounds.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

/// Execution report of a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// End-to-end wall-clock time.
    pub total_time: f64,
    /// Sum over rounds of the slowest die's compute time.
    pub compute_time: f64,
    /// Sum over rounds of communication makespans (overlapped or not).
    pub comm_time: f64,
    /// Communication time *not* hidden behind compute.
    pub exposed_comm_time: f64,
    /// Per-die total busy (compute) seconds.
    pub die_busy: HashMap<DieId, f64>,
    /// Total bytes carried per link.
    pub link_bytes: HashMap<LinkId, f64>,
    /// Energy ledger (compute + D2D + HBM).
    pub energy: EnergyLedger,
    /// Number of dies the engine was configured with.
    pub die_count: usize,
}

impl RoundReport {
    /// Mean compute utilization: average die busy time over total time.
    pub fn compute_utilization(&self) -> f64 {
        if self.total_time <= 0.0 || self.die_count == 0 {
            return 0.0;
        }
        let busy: f64 = self.die_busy.values().sum();
        (busy / (self.die_count as f64 * self.total_time)).clamp(0.0, 1.0)
    }

    /// D2D bandwidth utilization over the links that carried traffic.
    pub fn bandwidth_utilization(&self, link_bandwidth: f64) -> f64 {
        if self.total_time <= 0.0 || self.link_bytes.is_empty() {
            return 0.0;
        }
        let carried: f64 = self.link_bytes.values().sum();
        let capacity = self.link_bytes.len() as f64 * link_bandwidth * self.total_time;
        (carried / capacity).clamp(0.0, 1.0)
    }

    /// Fraction of total time spent on exposed communication.
    pub fn comm_fraction(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        (self.exposed_comm_time / self.total_time).clamp(0.0, 1.0)
    }
}

/// Executes [`RoundSchedule`]s against a wafer configuration.
#[derive(Debug, Clone)]
pub struct ScheduleEngine {
    cfg: WaferConfig,
    contention: ContentionSim,
    /// Directed-link count, computed once (building a mesh per run would
    /// put a fresh link-index table on the hot path).
    link_count: usize,
}

impl ScheduleEngine {
    /// Creates an engine for a wafer.
    pub fn new(cfg: &WaferConfig) -> Self {
        ScheduleEngine {
            cfg: cfg.clone(),
            contention: ContentionSim::new(cfg),
            link_count: cfg.mesh().link_count(),
        }
    }

    /// The underlying contention simulator.
    pub fn contention(&self) -> &ContentionSim {
        &self.contention
    }

    /// Runs a schedule to completion.
    pub fn run(&self, schedule: &RoundSchedule) -> RoundReport {
        let mut total_time = 0.0;
        let mut compute_time = 0.0;
        let mut comm_time = 0.0;
        let mut exposed = 0.0;
        // Accumulate per-die / per-link totals in dense arrays (ids are
        // dense indices); the report's maps are built once at the end.
        // `touched` preserves the HashMap semantics exactly: an entry
        // exists iff some task/flow referenced the die/link, even with a
        // zero value (bandwidth_utilization divides by the entry count).
        let mut die_busy_dense = vec![0.0f64; self.cfg.die_count()];
        let mut die_touched = vec![false; self.cfg.die_count()];
        let mut link_bytes_dense = vec![0.0f64; self.link_count];
        let mut link_touched = vec![false; self.link_count];
        let mut energy = EnergyLedger::new();

        for round in &schedule.rounds {
            let comp_max = round
                .compute
                .iter()
                .map(|t| t.seconds)
                .fold(0.0f64, f64::max);
            let comm = if round.flows.is_empty() {
                0.0
            } else {
                self.contention.simulate(&round.flows).makespan
            };
            let round_time = if round.overlap {
                comp_max.max(comm)
            } else {
                comp_max + comm
            };
            total_time += round_time;
            compute_time += comp_max;
            comm_time += comm;
            exposed += (round_time - comp_max).max(0.0);

            for t in &round.compute {
                if t.die.index() >= die_busy_dense.len() {
                    die_busy_dense.resize(t.die.index() + 1, 0.0);
                    die_touched.resize(t.die.index() + 1, false);
                }
                die_busy_dense[t.die.index()] += t.seconds;
                die_touched[t.die.index()] = true;
                energy.add_compute(t.flops, &self.cfg);
                energy.add_hbm(t.hbm_bytes, &self.cfg);
            }
            for f in &round.flows {
                energy.add_d2d(f.bytes, f.hops() as f64, &self.cfg);
                for l in &f.route {
                    if l.index() >= link_bytes_dense.len() {
                        link_bytes_dense.resize(l.index() + 1, 0.0);
                        link_touched.resize(l.index() + 1, false);
                    }
                    link_bytes_dense[l.index()] += f.bytes;
                    link_touched[l.index()] = true;
                }
            }
        }

        let die_busy: HashMap<DieId, f64> = die_busy_dense
            .into_iter()
            .enumerate()
            .filter(|(i, _)| die_touched[*i])
            .map(|(i, v)| (DieId(i as u32), v))
            .collect();
        let link_bytes: HashMap<LinkId, f64> = link_bytes_dense
            .into_iter()
            .enumerate()
            .filter(|(i, _)| link_touched[*i])
            .map(|(i, v)| (LinkId(i as u32), v))
            .collect();
        RoundReport {
            total_time,
            compute_time,
            comm_time,
            exposed_comm_time: exposed,
            die_busy,
            link_bytes,
            energy,
            die_count: self.cfg.die_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_wsc::units::MB;

    fn engine() -> ScheduleEngine {
        ScheduleEngine::new(&WaferConfig::hpca())
    }

    fn mesh() -> temp_wsc::topology::Mesh {
        WaferConfig::hpca().mesh()
    }

    #[test]
    fn empty_schedule_is_free() {
        let r = engine().run(&RoundSchedule::new());
        assert_eq!(r.total_time, 0.0);
        assert_eq!(r.compute_utilization(), 0.0);
    }

    #[test]
    fn overlapped_round_takes_max_of_comp_and_comm() {
        let e = engine();
        let m = mesh();
        let flow = Flow::xy(&m, DieId(0), DieId(1), 400.0 * MB); // 100 us serialization
        let comm_alone = e.contention.simulate(std::slice::from_ref(&flow)).makespan;
        let round = Round::overlapped("r")
            .with_compute(ComputeTask::timed(DieId(0), 2.0 * comm_alone))
            .with_flow(flow);
        let mut s = RoundSchedule::new();
        s.push(round);
        let r = e.run(&s);
        assert!((r.total_time - 2.0 * comm_alone).abs() / r.total_time < 1e-9);
        assert_eq!(r.exposed_comm_time, 0.0);
    }

    #[test]
    fn exposed_round_adds_comm_to_comp() {
        let e = engine();
        let m = mesh();
        let flow = Flow::xy(&m, DieId(0), DieId(1), 400.0 * MB);
        let comm = e.contention.simulate(std::slice::from_ref(&flow)).makespan;
        let round = Round::exposed("r")
            .with_compute(ComputeTask::timed(DieId(0), 1.0e-3))
            .with_flow(flow);
        let mut s = RoundSchedule::new();
        s.push(round);
        let r = e.run(&s);
        assert!((r.total_time - (1.0e-3 + comm)).abs() < 1e-9);
        assert!((r.exposed_comm_time - comm).abs() < 1e-9);
    }

    #[test]
    fn partially_hidden_comm_counts_only_excess() {
        let e = engine();
        let m = mesh();
        let flow = Flow::xy(&m, DieId(0), DieId(1), 400.0 * MB);
        let comm = e.contention.simulate(std::slice::from_ref(&flow)).makespan;
        let comp = 0.5 * comm;
        let round = Round::overlapped("r")
            .with_compute(ComputeTask::timed(DieId(0), comp))
            .with_flow(flow);
        let mut s = RoundSchedule::new();
        s.push(round);
        let r = e.run(&s);
        assert!((r.exposed_comm_time - 0.5 * comm).abs() / comm < 1e-9);
    }

    #[test]
    fn utilization_accounts_all_dies() {
        let e = engine();
        let mut s = RoundSchedule::new();
        let mut round = Round::overlapped("r");
        // Half the dies busy for the full round.
        for i in 0..16 {
            round.compute.push(ComputeTask::timed(DieId(i), 1.0e-3));
        }
        s.push(round);
        let r = e.run(&s);
        assert!((r.compute_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_valued_entries_survive_the_dense_accumulation() {
        // A zero-byte flow and a zero-second task must still appear in
        // the report maps (bandwidth_utilization divides by entry count).
        let e = engine();
        let m = mesh();
        let mut s = RoundSchedule::new();
        s.push(
            Round::overlapped("r")
                .with_compute(ComputeTask::timed(DieId(5), 0.0))
                .with_compute(ComputeTask::timed(DieId(0), 1.0e-3))
                .with_flow(Flow::xy(&m, DieId(0), DieId(1), 0.0))
                .with_flow(Flow::xy(&m, DieId(2), DieId(3), 1.0 * MB)),
        );
        let r = e.run(&s);
        assert_eq!(r.die_busy.len(), 2);
        assert_eq!(r.die_busy[&DieId(5)], 0.0);
        assert_eq!(r.link_bytes.len(), 2);
        let l01 = m.link_between(DieId(0), DieId(1)).unwrap();
        assert_eq!(r.link_bytes[&l01], 0.0);
    }

    #[test]
    fn energy_accumulates_across_rounds() {
        let e = engine();
        let m = mesh();
        let mut s = RoundSchedule::new();
        for _ in 0..3 {
            s.push(
                Round::overlapped("r")
                    .with_compute(ComputeTask::new(DieId(0), 1e-3, 2.0e12, 1.0e9))
                    .with_flow(Flow::xy(&m, DieId(0), DieId(1), 1.0e9)),
            );
        }
        let r = e.run(&s);
        // 3 * (1 J compute + 0.048 J HBM + 0.04 J D2D).
        assert!((r.energy.compute - 3.0).abs() < 1e-9);
        assert!((r.energy.hbm - 0.144).abs() < 1e-9);
        assert!((r.energy.d2d - 0.12).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_utilization_reflects_overlap() {
        let e = engine();
        let m = mesh();
        let flow = Flow::xy(&m, DieId(0), DieId(1), 400.0 * MB);
        let comm = e.contention.simulate(std::slice::from_ref(&flow)).makespan;
        let mut s = RoundSchedule::new();
        s.push(
            Round::overlapped("r")
                .with_compute(ComputeTask::timed(DieId(0), comm)) // fully hidden
                .with_flow(flow),
        );
        let r = e.run(&s);
        let u = r.bandwidth_utilization(e.contention.link_bandwidth);
        assert!(u > 0.9, "link kept busy the whole round: {u}");
    }
}
