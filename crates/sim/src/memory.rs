//! HBM3-lite memory model: capacity ledger with OOM detection plus an
//! access-granularity bandwidth model (the Ramulator substitute).
//!
//! The paper integrates Ramulator "to simulate memory occupancy" (§VII-A);
//! the evaluation consumes two quantities — peak per-die occupancy against
//! the 72 GB capacity line (Figs. 4(c), 13) and effective bandwidth feeding
//! the compute roofline. Both are modeled here.

use serde::{Deserialize, Serialize};

use temp_wsc::config::HbmConfig;
use temp_wsc::topology::DieId;

use crate::{Result, SimError};

/// Effective-bandwidth model for an HBM3 stack.
///
/// DRAM delivers peak bandwidth only for row-buffer-friendly access streams;
/// each row activation costs `row_miss_penalty` seconds amortized over
/// `row_bytes` of data. Small or scattered accesses therefore see lower
/// effective bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmModel {
    /// Stack configuration (capacity, peak bandwidth, latency, energy).
    pub config: HbmConfig,
    /// Bytes per DRAM row (per pseudo-channel burst window).
    pub row_bytes: f64,
    /// Row activation + precharge penalty in seconds.
    pub row_miss_penalty: f64,
}

impl HbmModel {
    /// Builds the model with HBM3-typical row parameters.
    pub fn new(config: HbmConfig) -> Self {
        HbmModel {
            config,
            row_bytes: 1024.0,
            row_miss_penalty: 45.0e-9,
        }
    }

    /// Effective bandwidth for an access stream with the given average
    /// contiguous run length (`granularity`, bytes) and row-hit fraction.
    ///
    /// `hit_rate` 1.0 = perfectly sequential; 0.0 = every `row_bytes`
    /// touches a new row.
    pub fn effective_bandwidth(&self, granularity: f64, hit_rate: f64) -> f64 {
        let hit_rate = hit_rate.clamp(0.0, 1.0);
        let granularity = granularity.max(1.0);
        // Time to stream `granularity` bytes: transfer + row misses.
        let transfer = granularity / self.config.bandwidth;
        let rows_touched = (granularity / self.row_bytes).ceil();
        let misses = rows_touched * (1.0 - hit_rate);
        let total = transfer + misses * self.row_miss_penalty;
        granularity / total
    }

    /// Time to read or write `bytes` with the given access pattern.
    pub fn access_time(&self, bytes: f64, granularity: f64, hit_rate: f64) -> f64 {
        self.config.latency + bytes / self.effective_bandwidth(granularity, hit_rate)
    }
}

/// Per-die capacity ledger with peak tracking and OOM detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryLedger {
    capacity: f64,
    used: Vec<f64>,
    peak: Vec<f64>,
}

impl MemoryLedger {
    /// Creates a ledger for `die_count` dies of `capacity` bytes each.
    pub fn new(die_count: usize, capacity: f64) -> Self {
        MemoryLedger {
            capacity,
            used: vec![0.0; die_count],
            peak: vec![0.0; die_count],
        }
    }

    /// Per-die capacity in bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Allocates `bytes` on a die.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the die would exceed capacity;
    /// the allocation is *not* applied in that case.
    pub fn allocate(&mut self, die: DieId, bytes: f64) -> Result<()> {
        let u = &mut self.used[die.index()];
        if *u + bytes > self.capacity {
            return Err(SimError::OutOfMemory {
                die: die.0,
                needed: *u + bytes - self.capacity,
                capacity: self.capacity,
            });
        }
        *u += bytes;
        if *u > self.peak[die.index()] {
            self.peak[die.index()] = *u;
        }
        Ok(())
    }

    /// Frees `bytes` on a die (clamped at zero).
    pub fn free(&mut self, die: DieId, bytes: f64) {
        let u = &mut self.used[die.index()];
        *u = (*u - bytes).max(0.0);
    }

    /// Current usage of a die in bytes.
    pub fn used(&self, die: DieId) -> f64 {
        self.used[die.index()]
    }

    /// Peak usage of a die in bytes.
    pub fn peak(&self, die: DieId) -> f64 {
        self.peak[die.index()]
    }

    /// Highest per-die peak across the wafer — the quantity plotted against
    /// the capacity line in Figs. 4(c)/13.
    pub fn max_peak(&self) -> f64 {
        self.peak.iter().fold(0.0f64, |a, b| a.max(*b))
    }

    /// Peak utilization fraction of the most loaded die.
    pub fn peak_utilization(&self) -> f64 {
        self.max_peak() / self.capacity
    }

    /// Whether a hypothetical per-die footprint fits without allocation.
    pub fn would_fit(&self, bytes: f64) -> bool {
        bytes <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_wsc::units::{GB, MB};

    fn hbm() -> HbmModel {
        HbmModel::new(HbmConfig::default())
    }

    #[test]
    fn sequential_access_reaches_peak() {
        let m = hbm();
        let bw = m.effective_bandwidth(64.0 * MB, 1.0);
        assert!((bw - m.config.bandwidth).abs() / m.config.bandwidth < 1e-9);
    }

    #[test]
    fn random_access_degrades_bandwidth() {
        let m = hbm();
        let seq = m.effective_bandwidth(64.0 * MB, 1.0);
        let rand = m.effective_bandwidth(64.0 * MB, 0.0);
        assert!(rand < 0.25 * seq, "rand {rand:.3e} vs seq {seq:.3e}");
    }

    #[test]
    fn access_time_includes_latency() {
        let m = hbm();
        let t = m.access_time(1.0, 1.0, 1.0);
        assert!(t >= m.config.latency);
    }

    #[test]
    fn ledger_tracks_peak_and_oom() {
        let mut l = MemoryLedger::new(2, 72.0 * GB);
        let d = DieId(0);
        l.allocate(d, 50.0 * GB).unwrap();
        l.allocate(d, 10.0 * GB).unwrap();
        l.free(d, 30.0 * GB);
        assert!((l.used(d) - 30.0 * GB).abs() < 1.0);
        assert!((l.peak(d) - 60.0 * GB).abs() < 1.0);
        // 50 GB more would exceed capacity from 30 GB used.
        let err = l.allocate(d, 50.0 * GB).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { die: 0, .. }));
        // Failed allocation must not change state.
        assert!((l.used(d) - 30.0 * GB).abs() < 1.0);
    }

    #[test]
    fn max_peak_spans_dies() {
        let mut l = MemoryLedger::new(3, 72.0 * GB);
        l.allocate(DieId(0), 10.0 * GB).unwrap();
        l.allocate(DieId(2), 40.0 * GB).unwrap();
        assert!((l.max_peak() - 40.0 * GB).abs() < 1.0);
        assert!((l.peak_utilization() - 40.0 / 72.0).abs() < 1e-9);
    }

    #[test]
    fn free_clamps_at_zero() {
        let mut l = MemoryLedger::new(1, GB);
        l.allocate(DieId(0), 0.5 * GB).unwrap();
        l.free(DieId(0), 2.0 * GB);
        assert_eq!(l.used(DieId(0)), 0.0);
    }
}
