//! The selective transfer policy (§V): stream whichever tensor is smaller.
//!
//! TATP can stream either the sub-weights or the sub-inputs during parallel
//! execution. For long sequences, activations dwarf weights ("in Llama2-7B
//! with a sequence length over 14k, activations are approximately 3x larger
//! than weight tensors"), so TATP streams weights; for wide layers on short
//! sequences the reverse holds.

use serde::{Deserialize, Serialize};

use temp_graph::tensor::{DType, LinearDims};

/// Which tensor the stream carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamChoice {
    /// Stream sub-weights; inputs stay resident.
    Weights,
    /// Stream sub-inputs (activations); weights stay resident.
    Activations,
}

impl std::fmt::Display for StreamChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamChoice::Weights => write!(f, "weights"),
            StreamChoice::Activations => write!(f, "activations"),
        }
    }
}

/// The outcome of the selective policy for one linear operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamPlan {
    /// What is streamed.
    pub choice: StreamChoice,
    /// Bytes of one streamed sub-tensor (per round, per die).
    pub sub_tensor_bytes: f64,
    /// Bytes of the full streamed tensor.
    pub streamed_total_bytes: f64,
    /// Bytes of the resident (non-streamed) tensor per die.
    pub resident_bytes_per_die: f64,
}

/// Chooses the smaller tensor to stream for a linear operator split
/// `tatp` ways.
///
/// # Panics
///
/// Panics if `tatp` is zero.
pub fn choose_stream(dims: &LinearDims, dtype: DType, tatp: usize) -> StreamPlan {
    assert!(tatp > 0, "TATP degree must be positive");
    let n = tatp as f64;
    let weight_bytes = dims.weight_bytes(dtype);
    let input_bytes = dims.input_bytes(dtype);
    if weight_bytes <= input_bytes {
        StreamPlan {
            choice: StreamChoice::Weights,
            sub_tensor_bytes: weight_bytes / n,
            streamed_total_bytes: weight_bytes,
            resident_bytes_per_die: input_bytes / n,
        }
    } else {
        StreamPlan {
            choice: StreamChoice::Activations,
            sub_tensor_bytes: input_bytes / n,
            streamed_total_bytes: input_bytes,
            resident_bytes_per_die: weight_bytes / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_sequences_stream_weights() {
        // Llama2-7B-like linear with a 16k sequence: activations >> weights.
        let dims = LinearDims::new(8, 16_384, 4096, 4096);
        let plan = choose_stream(&dims, DType::F16, 8);
        assert_eq!(plan.choice, StreamChoice::Weights);
        assert!(plan.streamed_total_bytes < dims.input_bytes(DType::F16));
    }

    #[test]
    fn tiny_batch_streams_activations() {
        // One short row against a huge weight matrix.
        let dims = LinearDims::new(1, 16, 8192, 8192);
        let plan = choose_stream(&dims, DType::F16, 4);
        assert_eq!(plan.choice, StreamChoice::Activations);
    }

    #[test]
    fn sub_tensor_is_total_over_degree() {
        let dims = LinearDims::new(4, 2048, 4096, 4096);
        let plan = choose_stream(&dims, DType::F16, 16);
        assert!((plan.sub_tensor_bytes * 16.0 - plan.streamed_total_bytes).abs() < 1.0);
    }

    #[test]
    fn choice_always_minimizes_streamed_volume() {
        for (b, m, n, k) in [
            (1u64, 128, 1024, 1024),
            (8, 8192, 1024, 64),
            (2, 64, 64, 8192),
        ] {
            let dims = LinearDims::new(b, m, n, k);
            let plan = choose_stream(&dims, DType::F16, 4);
            let streamed = plan.streamed_total_bytes;
            let other = match plan.choice {
                StreamChoice::Weights => dims.input_bytes(DType::F16),
                StreamChoice::Activations => dims.weight_bytes(DType::F16),
            };
            assert!(streamed <= other, "({b},{m},{n},{k})");
        }
    }

    #[test]
    fn paper_example_14k_sequence_ratio() {
        // §V: Llama2-7B with seq > 14k => activations ~3x weights.
        let dims = LinearDims::new(1, 14_336 * 3, 4096, 4096); // batched rows folded in M
        let act = dims.input_bytes(DType::F16);
        let w = dims.weight_bytes(DType::F16);
        assert!(act / w > 2.5, "ratio {}", act / w);
        assert_eq!(
            choose_stream(&dims, DType::F16, 8).choice,
            StreamChoice::Weights
        );
    }
}
