//! TATP: bidirectional tensor-stream orchestration (Algorithm 1, §V).
//!
//! The naive TSPP logical ring needs a wrap-around transfer that traverses
//! O(N) physical hops on a mesh. TATP removes it with a *bidirectional
//! redundant-transfer orchestration*: sub-tensors stream simultaneously in
//! both directions along the die path, with delayed relay waves covering
//! the "wrapped" accesses, so that
//!
//! * every transfer is a **single logical hop** (physically adjacent dies
//!   when the group is laid out on any Hamiltonian path — no ring needed);
//! * each die computes exactly **one sub-output per round**, finishing all
//!   `N` rounds with no tail latency;
//! * transient buffers stay at a **constant few sub-tensors** per die.
//!
//! The compute rule follows Algorithm 1: at time `t`, die `i < N/2` computes
//! with `subT[(i + t) mod N]`, die `i >= N/2` with `subT[(i - t) mod N]`.
//! Deliveries are derived *just in time*: sub-tensor `j` reaches consumer
//! `i` exactly at its need round via a relay chain departing the resident
//! holder (die `j`) at `need(i, j) - |i - j|`; overlapping chains share
//! physical sends (the on-time waves of lines 6–7), while wrapped accesses
//! become the delayed waves of lines 8–9.

use serde::{Deserialize, Serialize};

use crate::stream::{StreamOrchestration, StreamRound, StreamSend};
use crate::Result;

/// The TATP orchestration for one parallel group of `n` dies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TatpOrchestration {
    inner: StreamOrchestration,
}

impl TatpOrchestration {
    /// Builds the Algorithm 1 orchestration for `n` logical positions.
    ///
    /// The compute rule is the paper's verbatim (lines 3–4). The
    /// communication phase realizes lines 6–9 as *just-in-time relay
    /// chains*: every (consumer, sub-tensor) pair is served by a chain of
    /// single-hop relays departing the sub-tensor's resident die exactly
    /// `|i - j|` rounds before the consumer's need round, so each delivery
    /// lands precisely when it is computed with. On-time chains coincide
    /// and share sends (the paper's lines 6–7 waves); wrapped accesses get
    /// delayed chains (lines 8–9). We derive the chains from the need
    /// schedule rather than transcribing the paper's printed index
    /// conditions, which are inconsistent at the boundaries (e.g. no valid
    /// sender exists for `N = 2` as printed); the replayed invariants —
    /// 1-hop transfers, one sub-output per die per round, constant transient
    /// buffers, ~2x ring volume — are exactly the paper's claims.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build(n: usize) -> Self {
        assert!(n > 0, "TATP group must be non-empty");
        let mut rounds: Vec<StreamRound> = (0..n).map(|_| StreamRound::default()).collect();

        // Compute assignments per Algorithm 1.
        for (t, round) in rounds.iter_mut().enumerate() {
            for i in 0..n {
                round.computes.push((i, Self::needed_sub(n, i, t)));
            }
        }

        // Four wave families per sub-tensor j (all single-hop, all
        // just-in-time at their consumers):
        //
        //  L  — on-time leftward (line 6): departs die j at round 0, one hop
        //       per round down to die 0; lower consumers i < j receive at
        //       their need round j - i. Die n-1's needs are the mirror case.
        //  R  — on-time rightward (line 7): departs die j at round 0 up to
        //       die n-1; upper consumers i > j receive at i - j.
        //  WL — wrapped-lower (line 8): serves lower dies i in (j, n/2) that
        //       need j late (round n - (i-j)). A feed chain carries j
        //       rightward to the pivot die n/2 - 1, arriving exactly at its
        //       need round; the wave then reverses and consumes leftward,
        //       reaching each die at its need round.
        //  WU — wrapped-upper (line 9): mirror of WL for upper dies i in
        //       [n/2, j) via the pivot die n/2.
        //
        // Each directed link carries at most ~3 waves per round and every
        // die buffers only a constant number of sub-tensors.
        let mut send_set: std::collections::BTreeSet<(usize, StreamSend)> =
            std::collections::BTreeSet::new();
        let mut emit = |t: usize, from: usize, to: usize, sub: usize| {
            if t + 1 < n {
                send_set.insert((t, StreamSend { from, to, sub }));
            }
        };
        let half = n / 2;
        for j in 0..n {
            // L wave: hop k moves j from die j-k to die j-k-1 at round k.
            for k in 0..j {
                emit(k, j - k, j - k - 1, j);
            }
            // R wave: hop k moves j from die j+k to die j+k+1 at round k.
            for k in 0..n.saturating_sub(j + 1) {
                emit(k, j + k, j + k + 1, j);
            }
            // WL waves: consumers i in (j, half); pivot = half - 1.
            if half >= 1 && j < half - 1 {
                let pivot = half - 1;
                let arrive_pivot = n - pivot + j; // need round of the pivot
                let depart = arrive_pivot - (pivot - j);
                // Feed: j -> pivot, rightward.
                for k in 0..(pivot - j) {
                    emit(depart + k, j + k, j + k + 1, j);
                }
                // Consume: pivot -> j+1, leftward; die p sends at its own
                // need round n - p + j (receivers pivot-1 down to j+1).
                for p in (j + 2..=pivot).rev() {
                    emit(n - p + j, p, p - 1, j);
                }
            }
            // WU waves: consumers i in [half, j); pivot = half.
            if j > half && half < n {
                let pivot = half;
                let arrive_pivot = n - j + pivot;
                let depart = arrive_pivot - (j - pivot);
                // Feed: j -> pivot, leftward.
                for k in 0..(j - pivot) {
                    emit(depart + k, j - k, j - k - 1, j);
                }
                // Consume: pivot -> j-1, rightward; die p sends at its own
                // need round n - j + p.
                for p in pivot..=j.saturating_sub(2) {
                    emit(n - j + p, p, p + 1, j);
                }
            }
        }
        for (t, send) in send_set {
            rounds[t].sends.push(send);
        }
        TatpOrchestration {
            inner: StreamOrchestration::new(n, rounds),
        }
    }

    /// The sub-tensor die `i` computes with at round `t` (Algorithm 1,
    /// lines 3–4).
    pub fn needed_sub(n: usize, i: usize, t: usize) -> usize {
        if i < n / 2 {
            (i + t) % n
        } else {
            (i + n - (t % n)) % n
        }
    }

    /// The round at which die `i` needs sub-tensor `j` (inverse of
    /// [`TatpOrchestration::needed_sub`]).
    pub fn need_round(n: usize, i: usize, j: usize) -> usize {
        if i < n / 2 {
            (j + n - i) % n
        } else {
            (i + n - j) % n
        }
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// The rounds.
    pub fn rounds(&self) -> &[StreamRound] {
        self.inner.rounds()
    }

    /// The underlying stream orchestration (for lowering).
    pub fn stream(&self) -> &StreamOrchestration {
        &self.inner
    }

    /// Largest logical hop distance of any send — always 1 for TATP.
    pub fn max_hop_distance(&self) -> usize {
        self.inner.max_hop_distance()
    }

    /// Total sends (the bidirectional redundancy shows up here: roughly 2x
    /// the naive ring's `n * (n-1)` sends).
    pub fn total_sends(&self) -> usize {
        self.inner.total_sends()
    }

    /// Validates all orchestration invariants.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ParallelError::InvariantViolation`] when Algorithm 1
    /// is mis-assembled (this is exercised heavily in tests and fuzzing).
    pub fn validate(&self) -> Result<crate::stream::StreamStats> {
        let stats = self.inner.validate()?;
        if stats.max_hop_distance > 1 {
            return Err(crate::ParallelError::InvariantViolation(format!(
                "TATP send crossed {} logical hops",
                stats.max_hop_distance
            )));
        }
        Ok(stats)
    }

    /// Maximum concurrent sends crossing any single adjacent-pair boundary
    /// in one round (drives per-round link occupancy when lowered).
    pub fn peak_link_multiplicity(&self) -> usize {
        let mut peak = 0;
        for round in self.inner.rounds() {
            let mut per_pair: std::collections::HashMap<(usize, usize), usize> =
                std::collections::HashMap::new();
            for s in &round.sends {
                *per_pair.entry((s.from, s.to)).or_insert(0) += 1;
            }
            peak = peak.max(per_pair.values().copied().max().unwrap_or(0));
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_group_sizes_validate() {
        for n in 1..=32 {
            let orch = TatpOrchestration::build(n);
            let stats = orch.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(orch.rounds().len(), n);
            assert!(stats.max_hop_distance <= 1, "n={n}");
        }
    }

    #[test]
    fn fig8_example_matches_paper() {
        // N=4, Round 1: "Dies 0–3 process W1, W2, W1, W2".
        let n = 4;
        assert_eq!(TatpOrchestration::needed_sub(n, 0, 1), 1);
        assert_eq!(TatpOrchestration::needed_sub(n, 1, 1), 2);
        assert_eq!(TatpOrchestration::needed_sub(n, 2, 1), 1);
        assert_eq!(TatpOrchestration::needed_sub(n, 3, 1), 2);
        // Die 1 computes O13 in Round 2 (sub-tensor 3).
        assert_eq!(TatpOrchestration::needed_sub(n, 1, 2), 3);
        // Die 3 computes O33, O32, O31, O30 across rounds 0..3.
        for t in 0..4 {
            assert_eq!(TatpOrchestration::needed_sub(n, 3, t), (3 + 4 - t) % 4);
        }
    }

    #[test]
    fn one_sub_output_per_die_per_round() {
        let orch = TatpOrchestration::build(8);
        for round in orch.rounds() {
            assert_eq!(round.computes.len(), 8);
            let mut dies: Vec<usize> = round.computes.iter().map(|c| c.0).collect();
            dies.sort_unstable();
            dies.dedup();
            assert_eq!(dies.len(), 8, "each die computes exactly once per round");
        }
    }

    #[test]
    fn buffers_stay_small_as_n_grows() {
        // The memory-efficiency claim: transient buffers are a small
        // constant number of sub-tensors, not O(N). Since sub-tensors
        // shrink as 1/N, even a fixed count means the buffered *bytes*
        // shrink with N.
        let b8 = TatpOrchestration::build(8).validate().unwrap().peak_buffer;
        let b16 = TatpOrchestration::build(16).validate().unwrap().peak_buffer;
        let b32 = TatpOrchestration::build(32).validate().unwrap().peak_buffer;
        let b64 = TatpOrchestration::build(64).validate().unwrap().peak_buffer;
        assert!(b8 <= 8, "b8={b8}");
        assert!(b16 <= 8, "b16={b16}");
        assert!(b32 <= 8, "b32={b32}");
        assert!(b64 <= 8, "b64={b64}");
        // Doubling N must not grow the buffer (sub-linear guarantee).
        assert!(b64 <= b32, "buffers must not grow with N: {b32} -> {b64}");
        // Buffered *fraction* of the streamed tensor shrinks with N.
        assert!((b64 as f64) / 64.0 < (b8 as f64) / 8.0);
    }

    #[test]
    fn redundancy_is_about_twice_the_naive_ring() {
        for n in [4usize, 8, 16] {
            let sends = TatpOrchestration::build(n).total_sends();
            let naive = n * (n - 1);
            let ratio = sends as f64 / naive as f64;
            assert!(
                (0.8..=2.2).contains(&ratio),
                "n={n}: {sends} sends vs naive {naive} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn need_round_inverts_needed_sub() {
        for n in [3usize, 4, 7, 8, 16] {
            for i in 0..n {
                for t in 0..n {
                    let j = TatpOrchestration::needed_sub(n, i, t);
                    assert_eq!(
                        TatpOrchestration::need_round(n, i, j),
                        t,
                        "n={n} i={i} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn need_round_is_at_least_distance() {
        // Feasibility of 1-hop-per-round delivery.
        for n in [2usize, 5, 8, 16, 31] {
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        assert!(
                            TatpOrchestration::need_round(n, i, j) >= i.abs_diff(j),
                            "n={n} i={i} j={j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn singleton_group_is_trivial() {
        let orch = TatpOrchestration::build(1);
        let stats = orch.validate().unwrap();
        assert_eq!(stats.total_sends, 0);
        assert_eq!(orch.rounds().len(), 1);
    }

    #[test]
    fn link_multiplicity_is_small() {
        // A few concurrent waves may share an adjacent pair, but the count
        // must stay a small constant rather than O(N). Since each wave's
        // chunk shrinks as 1/N, per-round link bytes stay bounded.
        let m8 = TatpOrchestration::build(8).peak_link_multiplicity();
        let m16 = TatpOrchestration::build(16).peak_link_multiplicity();
        let m32 = TatpOrchestration::build(32).peak_link_multiplicity();
        let m64 = TatpOrchestration::build(64).peak_link_multiplicity();
        assert!(m8 <= 6, "m8={m8}");
        assert!(m16 <= 6, "m16={m16}");
        assert!(m32 <= 6, "m32={m32}");
        assert!(m64 <= 6, "m64={m64}");
        assert!(
            m64 <= m32 + 1,
            "multiplicity must not grow with N: {m32} -> {m64}"
        );
    }
}
