//! Physical group formation on the wafer mesh.
//!
//! A hybrid configuration partitions the die array into nested groups, one
//! dimension per strategy. The *layout policy* decides how group coordinates
//! map onto physical die coordinates:
//!
//! * [`LayoutPolicy::TopologyAware`] — TEMP's layout: strategies are nested
//!   innermost-first (`TATP` → `TP` → `SP` → `CP` → `DP`), each taking a
//!   contiguous 2D sub-block, so inner groups (the ones streaming every
//!   round) lie on snake-orderable blocks with 1-hop neighbors;
//! * [`LayoutPolicy::RowMajorStrips`] — the naive flat assignment used by
//!   SMap-style baselines: groups become row-major index ranges, whose
//!   members straddle row boundaries (the "tetris" groups of Fig. 7(a)).

use serde::{Deserialize, Serialize};

use temp_wsc::rings;
use temp_wsc::topology::{Coord, DieId, Mesh};

use crate::strategy::{HybridConfig, ParallelKind};
use crate::{ParallelError, Result};

/// How group coordinates map onto the physical die array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayoutPolicy {
    /// Nested contiguous blocks, innermost strategy first (TEMP).
    TopologyAware,
    /// Flat row-major strips (naive baseline).
    RowMajorStrips,
}

/// The nesting order used by the topology-aware layout (innermost first).
pub const NESTING_ORDER: [ParallelKind; 5] = [
    ParallelKind::Tatp,
    ParallelKind::Tp,
    ParallelKind::Sp,
    ParallelKind::Cp,
    ParallelKind::Dp,
];

/// A die's coordinates in every strategy dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct StrategyCoord {
    /// Index within the TATP group.
    pub tatp: usize,
    /// Index within the TP group.
    pub tp: usize,
    /// Index within the SP group.
    pub sp: usize,
    /// Index within the CP group.
    pub cp: usize,
    /// Index within the DP group.
    pub dp: usize,
}

impl StrategyCoord {
    /// Coordinate of one strategy dimension.
    pub fn get(&self, kind: ParallelKind) -> usize {
        match kind {
            ParallelKind::Tatp => self.tatp,
            ParallelKind::Tp => self.tp,
            ParallelKind::Sp => self.sp,
            ParallelKind::Cp => self.cp,
            ParallelKind::Dp | ParallelKind::Fsdp => self.dp,
            // EP folds into the DP dimension for layout purposes (the
            // mapping boundary normalizes `ep` into `dp` before building a
            // layout); PP lives across wafers.
            ParallelKind::Ep | ParallelKind::Pp => 0,
        }
    }

    fn set(&mut self, kind: ParallelKind, v: usize) {
        match kind {
            ParallelKind::Tatp => self.tatp = v,
            ParallelKind::Tp => self.tp = v,
            ParallelKind::Sp => self.sp = v,
            ParallelKind::Cp => self.cp = v,
            ParallelKind::Dp | ParallelKind::Fsdp => self.dp = v,
            ParallelKind::Ep | ParallelKind::Pp => {}
        }
    }
}

/// The physical layout of a hybrid configuration on a wafer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaferLayout {
    policy: LayoutPolicy,
    config: HybridConfig,
    /// Per-die strategy coordinates, indexed by die id.
    coords: Vec<StrategyCoord>,
    /// Die id per flat layout position (inverse map).
    dies: Vec<DieId>,
}

impl WaferLayout {
    /// Lays out a configuration on the mesh.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::DegreeMismatch`] if the configuration does
    /// not cover the die count, or [`ParallelError::InvalidParameter`] when
    /// no block factorization fits the mesh (topology-aware policy).
    pub fn build(mesh: &Mesh, config: &HybridConfig, policy: LayoutPolicy) -> Result<Self> {
        config.validate(mesh.die_count())?;
        match policy {
            LayoutPolicy::TopologyAware => Self::build_blocks(mesh, config),
            LayoutPolicy::RowMajorStrips => Self::build_strips(mesh, config),
        }
    }

    /// Topology-aware nested blocks: factor each strategy degree into a
    /// `gx x gy` tile dividing the remaining grid, innermost first.
    fn build_blocks(mesh: &Mesh, config: &HybridConfig) -> Result<Self> {
        let mut rem_w = mesh.width() as usize;
        let mut rem_h = mesh.height() as usize;
        // (kind, gx, gy, stride_x, stride_y)
        let mut tiles: Vec<(ParallelKind, usize, usize, usize, usize)> = Vec::new();
        let mut stride_x = 1usize;
        let mut stride_y = 1usize;
        for kind in NESTING_ORDER {
            let g = config.degree(kind);
            let (gx, gy) = factor_tile(g, rem_w, rem_h).ok_or_else(|| {
                ParallelError::InvalidParameter(format!(
                    "cannot tile degree {g} of {kind} into remaining {rem_w}x{rem_h} grid"
                ))
            })?;
            tiles.push((kind, gx, gy, stride_x, stride_y));
            stride_x *= gx;
            stride_y *= gy;
            rem_w /= gx;
            rem_h /= gy;
        }
        let mut coords = vec![StrategyCoord::default(); mesh.die_count()];
        for die in mesh.dies() {
            let c = mesh.coord(die).expect("die in mesh");
            let mut sc = StrategyCoord::default();
            for (kind, gx, gy, sx, sy) in &tiles {
                let cx = (c.x as usize / sx) % gx;
                let cy = (c.y as usize / sy) % gy;
                // Snake order within the tile so consecutive indices are
                // physically adjacent (Hamiltonian path).
                let idx = if cy % 2 == 0 {
                    cy * gx + cx
                } else {
                    cy * gx + (gx - 1 - cx)
                };
                sc.set(*kind, idx);
            }
            coords[die.index()] = sc;
        }
        let dies: Vec<DieId> = mesh.dies().collect();
        Ok(WaferLayout {
            policy: LayoutPolicy::TopologyAware,
            config: *config,
            coords,
            dies,
        })
    }

    /// Naive flat strips: row-major flat index decomposed mixed-radix with
    /// DP outermost and TATP innermost.
    fn build_strips(mesh: &Mesh, config: &HybridConfig) -> Result<Self> {
        let mut coords = vec![StrategyCoord::default(); mesh.die_count()];
        for die in mesh.dies() {
            let mut rest = die.index();
            let mut sc = StrategyCoord::default();
            // Innermost (fastest-varying) first.
            for kind in NESTING_ORDER {
                let g = config.degree(kind);
                sc.set(kind, rest % g);
                rest /= g;
            }
            coords[die.index()] = sc;
        }
        let dies: Vec<DieId> = mesh.dies().collect();
        Ok(WaferLayout {
            policy: LayoutPolicy::RowMajorStrips,
            config: *config,
            coords,
            dies,
        })
    }

    /// The layout policy.
    pub fn policy(&self) -> LayoutPolicy {
        self.policy
    }

    /// The configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// A die's strategy coordinates.
    pub fn coord_of(&self, die: DieId) -> StrategyCoord {
        self.coords[die.index()]
    }

    /// All groups of one strategy. Each group lists member dies ordered by
    /// their index within the group (the logical stream/ring order).
    pub fn groups_of(&self, kind: ParallelKind) -> Vec<Vec<DieId>> {
        let degree = self.config.degree(kind);
        if degree <= 1 {
            return Vec::new();
        }
        use std::collections::BTreeMap;
        let mut buckets: BTreeMap<Vec<usize>, Vec<(usize, DieId)>> = BTreeMap::new();
        for die in &self.dies {
            let sc = self.coord_of(*die);
            let key: Vec<usize> = NESTING_ORDER
                .iter()
                .filter(|k| **k != kind)
                .map(|k| sc.get(*k))
                .collect();
            buckets.entry(key).or_default().push((sc.get(kind), *die));
        }
        buckets
            .into_values()
            .map(|mut members| {
                members.sort_by_key(|(idx, _)| *idx);
                members.into_iter().map(|(_, d)| d).collect()
            })
            .collect()
    }

    /// Fraction of `kind`'s groups whose consecutive logical members are all
    /// physically adjacent (1-hop streaming paths).
    pub fn path_contiguity(&self, mesh: &Mesh, kind: ParallelKind) -> f64 {
        let groups = self.groups_of(kind);
        if groups.is_empty() {
            return 1.0;
        }
        let good = groups
            .iter()
            .filter(|g| g.windows(2).all(|w| mesh.adjacent(w[0], w[1])))
            .count();
        good as f64 / groups.len() as f64
    }

    /// Fraction of `kind`'s groups embedding a contiguous physical ring.
    pub fn ring_contiguity(&self, mesh: &Mesh, kind: ParallelKind) -> f64 {
        let groups = self.groups_of(kind);
        if groups.is_empty() {
            return 1.0;
        }
        let good = groups
            .iter()
            .filter(|g| rings::ring_order(mesh, g).is_some())
            .count();
        good as f64 / groups.len() as f64
    }
}

/// Factors `g` into `(gx, gy)` with `gx | rem_w`, `gy | rem_h`, preferring
/// near-square tiles (and `gx >= gy` ties toward wide tiles, matching row
/// dominance of the 8x4 wafer).
fn factor_tile(g: usize, rem_w: usize, rem_h: usize) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    for gx in 1..=g {
        if g % gx != 0 {
            continue;
        }
        let gy = g / gx;
        if rem_w % gx != 0 || rem_h % gy != 0 {
            continue;
        }
        let score = (gx as isize - gy as isize).abs();
        let better = match best {
            None => true,
            Some((bx, by)) => score < (bx as isize - by as isize).abs(),
        };
        if better {
            best = Some((gx, gy));
        }
    }
    best
}

/// Convenience: coordinates of a die as `(x, y)` for tests/reports.
pub fn die_xy(mesh: &Mesh, die: DieId) -> Coord {
    mesh.coord(die).expect("die in mesh")
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_wsc::config::WaferConfig;

    fn mesh() -> Mesh {
        WaferConfig::hpca().mesh() // 8x4
    }

    #[test]
    fn topology_aware_tatp_groups_are_paths() {
        let m = mesh();
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let layout = WaferLayout::build(&m, &cfg, LayoutPolicy::TopologyAware).unwrap();
        assert_eq!(layout.groups_of(ParallelKind::Tatp).len(), 4);
        assert!((layout.path_contiguity(&m, ParallelKind::Tatp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strips_layout_breaks_tatp_adjacency_at_row_wraps() {
        // TATP=16 groups: row-major strips span two rows and the step from
        // (7, y) to (0, y+1) is 7 hops; topology-aware 4x4 blocks with snake
        // ordering stay 1-hop.
        let m = mesh();
        let cfg = HybridConfig::tuple(2, 1, 1, 16);
        let aware = WaferLayout::build(&m, &cfg, LayoutPolicy::TopologyAware).unwrap();
        let strips = WaferLayout::build(&m, &cfg, LayoutPolicy::RowMajorStrips).unwrap();
        let aware_tatp = aware.path_contiguity(&m, ParallelKind::Tatp);
        let strips_tatp = strips.path_contiguity(&m, ParallelKind::Tatp);
        assert!((aware_tatp - 1.0).abs() < 1e-12, "aware {aware_tatp}");
        assert!(strips_tatp < 0.5, "strips {strips_tatp}");
    }

    #[test]
    fn groups_partition_all_dies() {
        let m = mesh();
        let cfg = HybridConfig::tuple(2, 2, 2, 4);
        for policy in [LayoutPolicy::TopologyAware, LayoutPolicy::RowMajorStrips] {
            let layout = WaferLayout::build(&m, &cfg, policy).unwrap();
            for kind in [
                ParallelKind::Dp,
                ParallelKind::Tp,
                ParallelKind::Sp,
                ParallelKind::Tatp,
            ] {
                let degree = cfg.degree(kind);
                let groups = layout.groups_of(kind);
                assert_eq!(groups.len(), 32 / degree, "{kind} groups under {policy:?}");
                assert!(groups.iter().all(|g| g.len() == degree));
                let mut all: Vec<DieId> = groups.into_iter().flatten().collect();
                all.sort();
                all.dedup();
                assert_eq!(all.len(), 32);
            }
        }
    }

    #[test]
    fn group_members_share_other_coords() {
        let m = mesh();
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let layout = WaferLayout::build(&m, &cfg, LayoutPolicy::TopologyAware).unwrap();
        for group in layout.groups_of(ParallelKind::Tatp) {
            let first = layout.coord_of(group[0]);
            for d in &group {
                let c = layout.coord_of(*d);
                assert_eq!(c.dp, first.dp);
                assert_eq!(c.tp, first.tp);
                assert_eq!(c.sp, first.sp);
            }
            // Within the group, TATP indices are 0..n.
            let mut idx: Vec<usize> = group.iter().map(|d| layout.coord_of(*d).tatp).collect();
            idx.sort_unstable();
            assert_eq!(idx, (0..group.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn degree_one_strategies_have_no_groups() {
        let m = mesh();
        let cfg = HybridConfig::tuple(1, 1, 1, 32);
        let layout = WaferLayout::build(&m, &cfg, LayoutPolicy::TopologyAware).unwrap();
        assert!(layout.groups_of(ParallelKind::Dp).is_empty());
        assert_eq!(layout.groups_of(ParallelKind::Tatp).len(), 1);
    }

    #[test]
    fn full_wafer_tatp_group_is_a_snake_path() {
        let m = mesh();
        let cfg = HybridConfig::tuple(1, 1, 1, 32);
        let layout = WaferLayout::build(&m, &cfg, LayoutPolicy::TopologyAware).unwrap();
        assert!((layout.path_contiguity(&m, ParallelKind::Tatp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn impossible_tiling_is_rejected() {
        // Degree 3 cannot tile an 8x4 grid.
        let m = mesh();
        let cfg = HybridConfig {
            dp: 3,
            tatp: 1,
            tp: 1,
            sp: 1,
            cp: 1,
            ep: 1,
            pp: 1,
            fsdp: false,
        };
        // 3 does not divide 32, so validation fails first with mismatch.
        assert!(WaferLayout::build(&m, &cfg, LayoutPolicy::TopologyAware).is_err());
    }

    #[test]
    fn fig7_array_block_groups_ring_fraction() {
        // 9x6 wafer, degree-6 groups: topology-aware blocks all embed rings.
        let m = Mesh::new(9, 6).unwrap();
        let cfg = HybridConfig {
            dp: 9,
            tatp: 6,
            ..Default::default()
        };
        let layout = WaferLayout::build(&m, &cfg, LayoutPolicy::TopologyAware).unwrap();
        let frac = layout.ring_contiguity(&m, ParallelKind::Tatp);
        assert!(frac > 0.99, "block 6-groups embed rings, got {frac}");
        let strips = WaferLayout::build(&m, &cfg, LayoutPolicy::RowMajorStrips).unwrap();
        let sfrac = strips.ring_contiguity(&m, ParallelKind::Tatp);
        assert!(sfrac < frac, "strips {sfrac} vs blocks {frac}");
    }
}
