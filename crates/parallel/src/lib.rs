//! # temp-parallel — parallelism strategies and tensor-stream orchestration
//!
//! Implements the paper's parallelization layer:
//!
//! * [`strategy`] — the hybrid-parallelism configuration lattice
//!   (DP/FSDP/TP/SP/CP/PP/TATP degrees whose product covers the die array)
//!   and its enumeration;
//! * [`groups`] — physical group formation on the mesh (topology-aware
//!   blocks vs. naive strips) with ring/snake diagnostics;
//! * [`tspp`] — the naive tensor-stream partition strawman (logical ring
//!   with O(N)-hop wrap transfers — the Fig. 5(a) failure mode);
//! * [`tatp`] — Algorithm 1: bidirectional redundant-transfer orchestration
//!   where every transfer is a single hop and each die computes exactly one
//!   sub-output per round;
//! * [`selective`] — the selective transfer policy (stream weights or
//!   activations, whichever is smaller);
//! * [`memory`] — per-die memory footprints under any hybrid configuration
//!   (the replication accounting behind Figs. 4(c) and 13);
//! * [`schedule`] — lowering stream orchestrations onto physical dies as
//!   simulator-ready [`temp_sim::RoundSchedule`]s.
//!
//! # Example
//!
//! ```
//! use temp_parallel::tatp::TatpOrchestration;
//!
//! let orch = TatpOrchestration::build(8);
//! orch.validate().expect("Algorithm 1 invariants hold");
//! assert_eq!(orch.rounds().len(), 8);
//! assert!(orch.max_hop_distance() <= 1);
//! ```

pub mod groups;
pub mod memory;
pub mod schedule;
pub mod selective;
pub mod strategy;
pub mod stream;
pub mod tatp;
pub mod tspp;

pub use memory::FootprintBreakdown;
pub use strategy::{HybridConfig, ParallelKind};
pub use tatp::TatpOrchestration;
pub use tspp::TsppOrchestration;

/// Errors produced by parallel-plan construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError {
    /// Parallel degrees do not multiply to the die count.
    DegreeMismatch {
        /// Product of configured degrees.
        product: usize,
        /// Dies available.
        dies: usize,
    },
    /// An orchestration invariant failed (payload describes which).
    InvariantViolation(String),
    /// An invalid parameter reached the planner.
    InvalidParameter(String),
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::DegreeMismatch { product, dies } => {
                write!(
                    f,
                    "parallel degrees multiply to {product}, but wafer has {dies} dies"
                )
            }
            ParallelError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
            ParallelError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for ParallelError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ParallelError>;
