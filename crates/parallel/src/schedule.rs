//! Lowering stream orchestrations onto physical dies.
//!
//! A [`StreamOrchestration`](crate::stream::StreamOrchestration) talks about
//! *logical positions*; this module binds logical positions to physical dies
//! (the group's member list, in logical order) and emits a simulator-ready
//! [`RoundSchedule`]: one overlapped round per stream round, flows routed on
//! the mesh. Non-adjacent logical neighbors (naive strips, TSPP wrap edges)
//! become multi-hop flows, which the contention simulator charges with
//! store-and-forward cost — making tail latency measurable.

use temp_sim::engine::{ComputeTask, Round, RoundSchedule};
use temp_sim::network::Flow;
use temp_wsc::topology::{DieId, Mesh};

use crate::stream::StreamOrchestration;
use crate::{ParallelError, Result};

/// Per-chunk cost parameters for lowering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamCost {
    /// Bytes of one streamed sub-tensor.
    pub chunk_bytes: f64,
    /// Compute seconds per sub-computation (one sub-output).
    pub compute_seconds: f64,
    /// FLOPs per sub-computation (energy accounting).
    pub flops: f64,
    /// HBM bytes touched per sub-computation (energy accounting).
    pub hbm_bytes: f64,
}

/// Lowers an orchestration onto the mesh.
///
/// `group` lists the physical die of each logical position, in logical
/// order.
///
/// # Errors
///
/// Returns [`ParallelError::InvalidParameter`] if the group size does not
/// match the orchestration.
pub fn lower_stream(
    orch: &StreamOrchestration,
    mesh: &Mesh,
    group: &[DieId],
    cost: &StreamCost,
) -> Result<RoundSchedule> {
    if group.len() != orch.n() {
        return Err(ParallelError::InvalidParameter(format!(
            "group has {} dies but orchestration spans {} positions",
            group.len(),
            orch.n()
        )));
    }
    let mut schedule = RoundSchedule::new();
    for (t, round) in orch.rounds().iter().enumerate() {
        let mut r = Round::overlapped(format!("stream round {t}"));
        for &(pos, _sub) in &round.computes {
            r.compute.push(ComputeTask::new(
                group[pos],
                cost.compute_seconds,
                cost.flops,
                cost.hbm_bytes,
            ));
        }
        for s in &round.sends {
            r.flows
                .push(Flow::xy(mesh, group[s.from], group[s.to], cost.chunk_bytes));
        }
        schedule.push(r);
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_sim::engine::ScheduleEngine;
    use temp_wsc::config::WaferConfig;
    use temp_wsc::rings::snake_order;
    use temp_wsc::units::MB;

    use crate::tatp::TatpOrchestration;
    use crate::tspp::TsppOrchestration;

    fn cost() -> StreamCost {
        StreamCost {
            chunk_bytes: 16.0 * MB,
            compute_seconds: 50.0e-6,
            flops: 1.0e10,
            hbm_bytes: 32.0 * MB,
        }
    }

    #[test]
    fn group_size_mismatch_is_rejected() {
        let cfg = WaferConfig::hpca();
        let mesh = cfg.mesh();
        let orch = TatpOrchestration::build(8);
        let group: Vec<DieId> = mesh.dies().take(4).collect();
        assert!(lower_stream(orch.stream(), &mesh, &group, &cost()).is_err());
    }

    #[test]
    fn tatp_on_snake_path_has_single_hop_flows() {
        let cfg = WaferConfig::hpca();
        let mesh = cfg.mesh();
        let group: Vec<DieId> = snake_order(&mesh).into_iter().take(8).collect();
        let orch = TatpOrchestration::build(8);
        let sched = lower_stream(orch.stream(), &mesh, &group, &cost()).unwrap();
        for round in &sched.rounds {
            for f in &round.flows {
                assert_eq!(f.hops(), 1);
            }
        }
    }

    #[test]
    fn tatp_beats_naive_tspp_on_a_path_group() {
        // The headline effect of §V: on a non-ring physical group, the naive
        // TSPP ring pays an O(N)-hop wrap transfer every round while TATP's
        // transfers all stay single-hop.
        let cfg = WaferConfig::hpca();
        let mesh = cfg.mesh();
        let engine = ScheduleEngine::new(&cfg);
        // An 8-die row: a path, not a physical ring. Communication-heavy
        // regime (small compute chunks) so routing differences surface.
        let group: Vec<DieId> = (0..8).map(DieId).collect();
        let c = StreamCost {
            compute_seconds: 2.0e-6,
            ..cost()
        };

        let tatp = TatpOrchestration::build(8);
        let tspp = TsppOrchestration::build(8);
        let t_tatp = engine
            .run(&lower_stream(tatp.stream(), &mesh, &group, &c).unwrap())
            .total_time;
        let t_tspp = engine
            .run(&lower_stream(tspp.stream(), &mesh, &group, &c).unwrap())
            .total_time;
        assert!(
            t_tspp > 1.5 * t_tatp,
            "naive ring {t_tspp:.6} should trail TATP {t_tatp:.6}"
        );
    }

    #[test]
    fn big_chunks_overlap_fully_when_compute_dominates() {
        let cfg = WaferConfig::hpca();
        let mesh = cfg.mesh();
        let engine = ScheduleEngine::new(&cfg);
        let group: Vec<DieId> = snake_order(&mesh).into_iter().take(8).collect();
        let orch = TatpOrchestration::build(8);
        // Compute far slower than communication: total == compute.
        let c = StreamCost {
            compute_seconds: 10.0e-3,
            ..cost()
        };
        let rep = engine.run(&lower_stream(orch.stream(), &mesh, &group, &c).unwrap());
        assert!((rep.total_time - 8.0 * 10.0e-3).abs() / rep.total_time < 1e-6);
        assert_eq!(rep.exposed_comm_time, 0.0);
    }

    #[test]
    fn energy_scales_with_rounds() {
        let cfg = WaferConfig::hpca();
        let mesh = cfg.mesh();
        let engine = ScheduleEngine::new(&cfg);
        let group: Vec<DieId> = snake_order(&mesh).into_iter().take(4).collect();
        let orch = TatpOrchestration::build(4);
        let rep = engine.run(&lower_stream(orch.stream(), &mesh, &group, &cost()).unwrap());
        // 4 rounds x 4 dies x 1e10 flops at 0.5 pJ/flop = 0.08 J.
        assert!((rep.energy.compute - 16.0 * 1.0e10 / 2.0e12).abs() < 1e-9);
        assert!(rep.energy.d2d > 0.0);
    }
}
