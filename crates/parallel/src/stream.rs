//! Stream-orchestration IR shared by TSPP and TATP, with replay validation.
//!
//! An orchestration is a sequence of rounds over `n` logical positions
//! (dies on a path/ring). Each round names which sub-tensor every position
//! computes with and which sub-tensors move between positions. The replay
//! validator checks the paper's correctness claims: every operand is present
//! when used, every sender holds its payload, every (die, sub-tensor) pair
//! is computed exactly once, and transient buffers stay small.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::{ParallelError, Result};

/// A sub-tensor transfer between logical positions during a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamSend {
    /// Sending logical position.
    pub from: usize,
    /// Receiving logical position.
    pub to: usize,
    /// Sub-tensor index.
    pub sub: usize,
}

impl StreamSend {
    /// Logical hop distance of the send.
    pub fn distance(&self) -> usize {
        self.from.abs_diff(self.to)
    }
}

/// One orchestration round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamRound {
    /// `(position, sub-tensor)` compute assignments.
    pub computes: Vec<(usize, usize)>,
    /// Transfers issued during this round (payload usable from the next).
    pub sends: Vec<StreamSend>,
}

/// A full stream orchestration over `n` positions and `n` sub-tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamOrchestration {
    n: usize,
    rounds: Vec<StreamRound>,
}

/// Replay statistics gathered by [`StreamOrchestration::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Largest number of sub-tensors any position held at once (including
    /// its resident shard).
    pub peak_buffer: usize,
    /// Total sends across all rounds.
    pub total_sends: usize,
    /// Largest logical hop distance of any send.
    pub max_hop_distance: usize,
}

impl StreamOrchestration {
    /// Builds an orchestration from rounds.
    pub fn new(n: usize, rounds: Vec<StreamRound>) -> Self {
        StreamOrchestration { n, rounds }
    }

    /// Number of logical positions / sub-tensors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The rounds.
    pub fn rounds(&self) -> &[StreamRound] {
        &self.rounds
    }

    /// Largest logical hop distance of any send.
    pub fn max_hop_distance(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| r.sends.iter())
            .map(StreamSend::distance)
            .max()
            .unwrap_or(0)
    }

    /// Total number of sends.
    pub fn total_sends(&self) -> usize {
        self.rounds.iter().map(|r| r.sends.len()).sum()
    }

    /// Replays the orchestration, checking all invariants; returns buffer
    /// statistics.
    ///
    /// Invariants checked:
    /// 1. every compute's operand is held by the computing position;
    /// 2. every send's payload is held by the sender;
    /// 3. every (position, sub-tensor) pair is computed exactly once;
    /// 4. position indices are within range.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::InvariantViolation`] describing the first
    /// failure.
    pub fn validate(&self) -> Result<StreamStats> {
        let n = self.n;
        // holdings[p] = sub-tensors available at position p at round start.
        let mut holdings: Vec<BTreeSet<usize>> = (0..n)
            .map(|p| {
                let mut s = BTreeSet::new();
                s.insert(p); // resident shard
                s
            })
            .collect();
        let mut computed: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        // Future uses and future arrivals per (pos, sub), for the drop
        // policy: a copy may be dropped when every future use is covered by
        // a later (re-)delivery — this is what keeps TATP buffers constant.
        let uses = self.use_table();
        let arrivals = self.arrival_table();
        let mut peak_buffer = holdings.iter().map(BTreeSet::len).max().unwrap_or(0);

        for (t, round) in self.rounds.iter().enumerate() {
            for &(p, sub) in &round.computes {
                if p >= n || sub >= n {
                    return Err(ParallelError::InvariantViolation(format!(
                        "round {t}: compute ({p}, {sub}) out of range for n={n}"
                    )));
                }
                if !holdings[p].contains(&sub) {
                    return Err(ParallelError::InvariantViolation(format!(
                        "round {t}: position {p} computes sub {sub} it does not hold \
                         (holds {:?})",
                        holdings[p]
                    )));
                }
                if !computed[p].insert(sub) {
                    return Err(ParallelError::InvariantViolation(format!(
                        "round {t}: position {p} computes sub {sub} twice"
                    )));
                }
            }
            // Sends read this round's holdings; deliveries land next round.
            let mut deliveries: Vec<(usize, usize)> = Vec::new();
            for s in &round.sends {
                if s.from >= n || s.to >= n || s.sub >= n {
                    return Err(ParallelError::InvariantViolation(format!(
                        "round {t}: send {s:?} out of range for n={n}"
                    )));
                }
                if !holdings[s.from].contains(&s.sub) {
                    return Err(ParallelError::InvariantViolation(format!(
                        "round {t}: position {} sends sub {} it does not hold",
                        s.from, s.sub
                    )));
                }
                deliveries.push((s.to, s.sub));
            }
            // Drop foreign sub-tensors whose every future use is covered by
            // a later arrival (or that have no future use), then deliver.
            for (p, h) in holdings.iter_mut().enumerate() {
                h.retain(|sub| {
                    if *sub == p {
                        return true; // resident shard
                    }
                    // Keep iff some future use is NOT covered by a future
                    // arrival occurring before it.
                    uses[p][*sub]
                        .iter()
                        .any(|&u| u > t && !arrivals[p][*sub].iter().any(|&a| a > t && a <= u))
                });
            }
            for (to, sub) in deliveries {
                holdings[to].insert(sub);
            }
            peak_buffer = peak_buffer.max(holdings.iter().map(BTreeSet::len).max().unwrap_or(0));
        }
        // Completeness: every position computed every sub-tensor.
        for (p, set) in computed.iter().enumerate() {
            if set.len() != n {
                return Err(ParallelError::InvariantViolation(format!(
                    "position {p} computed {} of {n} sub-tensors",
                    set.len()
                )));
            }
        }
        Ok(StreamStats {
            peak_buffer,
            total_sends: self.total_sends(),
            max_hop_distance: self.max_hop_distance(),
        })
    }

    /// `uses[p][sub]` = sorted rounds at which position `p` computes with or
    /// forwards `sub`.
    fn use_table(&self) -> Vec<Vec<Vec<usize>>> {
        let mut uses = vec![vec![Vec::new(); self.n]; self.n];
        for (t, round) in self.rounds.iter().enumerate() {
            for &(p, sub) in &round.computes {
                if p < self.n && sub < self.n {
                    uses[p][sub].push(t);
                }
            }
            for s in &round.sends {
                if s.from < self.n && s.sub < self.n {
                    uses[s.from][s.sub].push(t);
                }
            }
        }
        uses
    }

    /// `arrivals[p][sub]` = sorted rounds at which `sub` becomes available
    /// at `p` via a delivery (send at round `t` ⇒ available at `t + 1`).
    fn arrival_table(&self) -> Vec<Vec<Vec<usize>>> {
        let mut arr = vec![vec![Vec::new(); self.n]; self.n];
        for (t, round) in self.rounds.iter().enumerate() {
            for s in &round.sends {
                if s.to < self.n && s.sub < self.n {
                    arr[s.to][s.sub].push(t + 1);
                }
            }
        }
        arr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built 2-position exchange: each computes its own shard, swaps,
    /// computes the other's.
    fn two_way() -> StreamOrchestration {
        StreamOrchestration::new(
            2,
            vec![
                StreamRound {
                    computes: vec![(0, 0), (1, 1)],
                    sends: vec![
                        StreamSend {
                            from: 0,
                            to: 1,
                            sub: 0,
                        },
                        StreamSend {
                            from: 1,
                            to: 0,
                            sub: 1,
                        },
                    ],
                },
                StreamRound {
                    computes: vec![(0, 1), (1, 0)],
                    sends: vec![],
                },
            ],
        )
    }

    #[test]
    fn valid_exchange_passes() {
        let stats = two_way().validate().unwrap();
        assert_eq!(stats.total_sends, 2);
        assert_eq!(stats.max_hop_distance, 1);
        assert!(stats.peak_buffer <= 2);
    }

    #[test]
    fn compute_without_operand_fails() {
        let bad = StreamOrchestration::new(
            2,
            vec![StreamRound {
                computes: vec![(0, 1)],
                sends: vec![],
            }],
        );
        let err = bad.validate().unwrap_err();
        assert!(matches!(err, ParallelError::InvariantViolation(_)), "{err}");
    }

    #[test]
    fn send_without_payload_fails() {
        let bad = StreamOrchestration::new(
            2,
            vec![StreamRound {
                computes: vec![],
                sends: vec![StreamSend {
                    from: 0,
                    to: 1,
                    sub: 1,
                }],
            }],
        );
        assert!(bad.validate().is_err());
    }

    #[test]
    fn duplicate_compute_fails() {
        let bad = StreamOrchestration::new(
            1,
            vec![
                StreamRound {
                    computes: vec![(0, 0)],
                    sends: vec![],
                },
                StreamRound {
                    computes: vec![(0, 0)],
                    sends: vec![],
                },
            ],
        );
        assert!(bad.validate().is_err());
    }

    #[test]
    fn incomplete_coverage_fails() {
        let bad = StreamOrchestration::new(
            2,
            vec![StreamRound {
                computes: vec![(0, 0), (1, 1)],
                sends: vec![],
            }],
        );
        assert!(bad.validate().is_err());
    }

    #[test]
    fn out_of_range_send_fails() {
        let bad = StreamOrchestration::new(
            2,
            vec![StreamRound {
                computes: vec![],
                sends: vec![StreamSend {
                    from: 0,
                    to: 5,
                    sub: 0,
                }],
            }],
        );
        assert!(bad.validate().is_err());
    }
}
