//! Naive TSPP: the unidirectional logical-ring strawman (§III, Fig. 5(a)).
//!
//! Each die holds one sub-tensor; every round it computes with its current
//! sub-tensor and forwards it one step around the *logical* ring. On a
//! physical mesh path, the ring's wrap edge spans `N-1` hops — the tail
//! latency TATP eliminates.

use serde::{Deserialize, Serialize};

use crate::stream::{StreamOrchestration, StreamRound, StreamSend};
use crate::Result;

/// The naive ring orchestration for one parallel group of `n` dies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsppOrchestration {
    inner: StreamOrchestration,
}

impl TsppOrchestration {
    /// Builds the naive logical-ring orchestration.
    ///
    /// Round `t`: die `i` computes with `subT[(i + t) mod N]`, then receives
    /// `subT[(i + t + 1) mod N]` from logical neighbor `i + 1` (the die
    /// holding it), i.e. every die forwards its current sub-tensor to `i-1`
    /// around the ring.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build(n: usize) -> Self {
        assert!(n > 0, "TSPP group must be non-empty");
        let mut rounds = Vec::with_capacity(n);
        for t in 0..n {
            let mut round = StreamRound::default();
            for i in 0..n {
                round.computes.push((i, (i + t) % n));
            }
            // Forward current sub-tensors for the next round (skip last).
            if t + 1 < n {
                for i in 0..n {
                    let holder = i; // die i holds subT[(i + t) % n] now
                    let receiver = (i + n - 1) % n;
                    round.sends.push(StreamSend {
                        from: holder,
                        to: receiver,
                        sub: (i + t) % n,
                    });
                }
            }
            rounds.push(round);
        }
        TsppOrchestration {
            inner: StreamOrchestration::new(n, rounds),
        }
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// The rounds.
    pub fn rounds(&self) -> &[StreamRound] {
        self.inner.rounds()
    }

    /// The underlying stream orchestration (for lowering).
    pub fn stream(&self) -> &StreamOrchestration {
        &self.inner
    }

    /// Largest logical hop distance — `n - 1` (the wrap edge) for `n >= 2`.
    pub fn max_hop_distance(&self) -> usize {
        self.inner.max_hop_distance()
    }

    /// Validates ring-orchestration invariants (operand availability,
    /// exactly-once computes).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ParallelError::InvariantViolation`] on any replay
    /// failure.
    pub fn validate(&self) -> Result<crate::stream::StreamStats> {
        self.inner.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_validates_for_all_sizes() {
        for n in 1..=24 {
            let orch = TsppOrchestration::build(n);
            let stats = orch.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            // Ring holds at most own + one incoming.
            assert!(
                stats.peak_buffer <= 2,
                "n={n}: buffer {}",
                stats.peak_buffer
            );
        }
    }

    #[test]
    fn wrap_edge_spans_n_minus_1_logical_hops() {
        let orch = TsppOrchestration::build(8);
        assert_eq!(orch.max_hop_distance(), 7);
    }

    #[test]
    fn send_volume_matches_ring_formula() {
        // n sends per round for n-1 rounds.
        let orch = TsppOrchestration::build(8);
        assert_eq!(orch.stream().total_sends(), 8 * 7);
    }

    #[test]
    fn every_die_sees_every_subtensor() {
        let orch = TsppOrchestration::build(6);
        orch.validate().unwrap(); // completeness is part of validation
        for round in orch.rounds() {
            assert_eq!(round.computes.len(), 6);
        }
    }
}
