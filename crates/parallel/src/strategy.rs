//! Hybrid-parallelism configurations and their enumeration.
//!
//! A configuration assigns a degree to each strategy; degrees multiply to
//! the number of dies (per wafer; pipeline stages multiply across wafers in
//! multi-WSC deployments). The paper writes configurations as tuples like
//! `(DP=2, TP=1, SP=2, TATP=8)` (Figs. 17/18).

use serde::{Deserialize, Serialize};

use crate::{ParallelError, Result};

/// The parallelization strategies TEMP composes (§II-A, §VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelKind {
    /// Data parallelism (replicated model, split batch).
    Dp,
    /// Fully-sharded data parallelism (ZeRO-3-style DP).
    Fsdp,
    /// Megatron tensor parallelism (stationary weight slices).
    Tp,
    /// Sequence parallelism (split along tokens for norms/residuals).
    Sp,
    /// Context parallelism (split attention context).
    Cp,
    /// Expert parallelism (MoE experts sharded across die groups; tokens
    /// reach their experts via all-to-all dispatch).
    Ep,
    /// Pipeline parallelism (split layers into stages).
    Pp,
    /// Topology-aware tensor-stream partitioning — the paper's contribution.
    Tatp,
}

impl ParallelKind {
    /// Number of strategy kinds (the bound for per-kind fixed arrays).
    pub const COUNT: usize = 8;

    /// Canonical small-integer code in `0..ParallelKind::COUNT`, stable
    /// across runs; lets hot paths index fixed-size per-kind accumulators
    /// instead of hashing the enum.
    pub fn index(self) -> usize {
        match self {
            ParallelKind::Dp => 0,
            ParallelKind::Fsdp => 1,
            ParallelKind::Tp => 2,
            ParallelKind::Sp => 3,
            ParallelKind::Cp => 4,
            ParallelKind::Pp => 5,
            ParallelKind::Tatp => 6,
            ParallelKind::Ep => 7,
        }
    }
}

impl std::fmt::Display for ParallelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParallelKind::Dp => "DP",
            ParallelKind::Fsdp => "FSDP",
            ParallelKind::Tp => "TP",
            ParallelKind::Sp => "SP",
            ParallelKind::Cp => "CP",
            ParallelKind::Ep => "EP",
            ParallelKind::Pp => "PP",
            ParallelKind::Tatp => "TATP",
        };
        write!(f, "{s}")
    }
}

/// A hybrid parallel configuration. Intra-wafer degrees (`dp·tp·sp·cp·tatp`)
/// must cover the die array; `pp` spans wafers (or splits one wafer into
/// stages when `pp_intra_wafer` planning is used by baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Data-parallel degree.
    pub dp: usize,
    /// Whether DP shards parameter/optimizer states (FSDP) instead of
    /// replicating them (Megatron-style DP).
    pub fsdp: bool,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Sequence-parallel degree.
    pub sp: usize,
    /// Context-parallel degree.
    pub cp: usize,
    /// TATP (tensor-stream) degree.
    pub tatp: usize,
    /// Expert-parallel degree. A separate factor of the die array:
    /// `intra_wafer_degree() x ep` must cover the dies exactly, so `ep`
    /// never exceeds the die budget left by the dense-path degrees. MoE
    /// segments shard their experts across the `ep` groups (all-to-all
    /// dispatch/combine); dense segments see the groups as replicas —
    /// which is why `ep > 1` only ever wins on expert-bearing segments.
    pub ep: usize,
    /// Pipeline-parallel degree (stages).
    pub pp: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            dp: 1,
            fsdp: false,
            tp: 1,
            sp: 1,
            cp: 1,
            tatp: 1,
            ep: 1,
            pp: 1,
        }
    }
}

impl HybridConfig {
    /// A pure-DP configuration.
    pub fn dp(degree: usize) -> Self {
        HybridConfig {
            dp: degree,
            ..Default::default()
        }
    }

    /// A pure-TATP configuration.
    pub fn tatp(degree: usize) -> Self {
        HybridConfig {
            tatp: degree,
            ..Default::default()
        }
    }

    /// The Fig. 17/18 tuple constructor `(dp, tp, sp, tatp)`.
    pub fn tuple(dp: usize, tp: usize, sp: usize, tatp: usize) -> Self {
        HybridConfig {
            dp,
            tp,
            sp,
            tatp,
            ..Default::default()
        }
    }

    /// Product of the dense-path intra-wafer degrees (excludes `ep` and
    /// `pp`). Together with `ep` this must cover the die array:
    /// `intra_wafer_degree() x ep == dies`.
    pub fn intra_wafer_degree(&self) -> usize {
        self.dp * self.tp * self.sp * self.cp * self.tatp
    }

    /// Product of all degrees.
    pub fn total_degree(&self) -> usize {
        self.intra_wafer_degree() * self.ep * self.pp
    }

    /// Degree of one strategy.
    pub fn degree(&self, kind: ParallelKind) -> usize {
        match kind {
            ParallelKind::Dp | ParallelKind::Fsdp => self.dp,
            ParallelKind::Tp => self.tp,
            ParallelKind::Sp => self.sp,
            ParallelKind::Cp => self.cp,
            ParallelKind::Ep => self.ep,
            ParallelKind::Pp => self.pp,
            ParallelKind::Tatp => self.tatp,
        }
    }

    /// Validates that the intra-wafer degrees and the expert-parallel
    /// degree together cover exactly `dies` dies
    /// (`intra_wafer_degree() x ep == dies`) and all degrees are positive.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::DegreeMismatch`] or
    /// [`ParallelError::InvalidParameter`].
    pub fn validate(&self, dies: usize) -> Result<()> {
        if self.dp == 0
            || self.tp == 0
            || self.sp == 0
            || self.cp == 0
            || self.tatp == 0
            || self.ep == 0
            || self.pp == 0
        {
            return Err(ParallelError::InvalidParameter(
                "zero parallel degree".into(),
            ));
        }
        let product = self.intra_wafer_degree() * self.ep;
        if product != dies {
            return Err(ParallelError::DegreeMismatch { product, dies });
        }
        Ok(())
    }

    /// Enumerates every `(dp, tp, sp, tatp)` tuple with power-of-two degrees
    /// whose product equals `dies` (the Fig. 17/18 sweep space). `cp`/`pp`
    /// stay 1; `fsdp` as given.
    pub fn enumerate_tuples(dies: usize, fsdp: bool) -> Vec<HybridConfig> {
        let mut out = Vec::new();
        let divisors: Vec<usize> = (0..)
            .map(|e| 1usize << e)
            .take_while(|d| *d <= dies)
            .collect();
        for &dp in &divisors {
            if dies % dp != 0 {
                continue;
            }
            for &tp in &divisors {
                if (dies / dp) % tp != 0 {
                    continue;
                }
                for &sp in &divisors {
                    if (dies / dp / tp) % sp != 0 {
                        continue;
                    }
                    let tatp = dies / dp / tp / sp;
                    if !tatp.is_power_of_two() && tatp != 1 {
                        continue;
                    }
                    out.push(HybridConfig {
                        dp,
                        fsdp,
                        tp,
                        sp,
                        tatp,
                        ..Default::default()
                    });
                }
            }
        }
        out
    }

    /// Enumerates every tuple of [`HybridConfig::enumerate_tuples`] shape
    /// extended with an expert-parallel degree: power-of-two `ep` up to
    /// `max_ep`, with `(dp, tp, sp, tatp)` covering the remaining
    /// `dies / ep` dies. `ep = 1` reproduces the dense enumeration
    /// exactly (same tuples, same order), so dense models lose nothing by
    /// never calling this.
    pub fn enumerate_tuples_ep(dies: usize, fsdp: bool, max_ep: usize) -> Vec<HybridConfig> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut ep = 1usize;
        while ep <= max_ep.min(dies) {
            if dies % ep == 0 {
                // Keep-first dedup on the full configuration (the eval
                // cache key): overlapping `(ep, remaining-dies)` splits
                // must never hand the same candidate to bounds/exact
                // costing twice.
                out.extend(
                    Self::enumerate_tuples(dies / ep, fsdp)
                        .into_iter()
                        .map(|c| HybridConfig { ep, ..c })
                        .filter(|c| seen.insert(*c)),
                );
            }
            ep *= 2;
        }
        out
    }

    /// Short tuple label, e.g. `(2,1,2,8)` = (DP, TP, SP, TATP); an
    /// expert-parallel degree is appended as `(2,1,2,4|ep4)` when > 1.
    pub fn label(&self) -> String {
        if self.ep > 1 {
            format!(
                "({},{},{},{}|ep{})",
                self.dp, self.tp, self.sp, self.tatp, self.ep
            )
        } else {
            format!("({},{},{},{})", self.dp, self.tp, self.sp, self.tatp)
        }
    }
}

impl std::fmt::Display for HybridConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DP={}{} TP={} SP={} CP={} TATP={} EP={} PP={}",
            self.dp,
            if self.fsdp { "(FSDP)" } else { "" },
            self.tp,
            self.sp,
            self.cp,
            self.tatp,
            self.ep,
            self.pp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_requires_exact_cover() {
        let c = HybridConfig::tuple(2, 2, 2, 4);
        assert!(c.validate(32).is_ok());
        assert!(matches!(
            c.validate(64),
            Err(ParallelError::DegreeMismatch {
                product: 32,
                dies: 64
            })
        ));
    }

    #[test]
    fn zero_degree_rejected() {
        let c = HybridConfig {
            dp: 0,
            ..Default::default()
        };
        assert!(matches!(
            c.validate(1),
            Err(ParallelError::InvalidParameter(_))
        ));
    }

    #[test]
    fn enumerate_covers_all_power_of_two_tuples() {
        let configs = HybridConfig::enumerate_tuples(32, false);
        // Number of ordered 4-tuples of powers of two with product 32 = C(5+3,3).
        assert_eq!(configs.len(), 56);
        assert!(configs.iter().all(|c| c.intra_wafer_degree() == 32));
        // The paper's Fig. 17 winners are present.
        assert!(configs.iter().any(|c| c.label() == "(2,1,1,16)"));
        assert!(configs.iter().any(|c| c.label() == "(1,4,1,8)"));
    }

    #[test]
    fn degree_lookup_is_consistent() {
        let c = HybridConfig {
            dp: 2,
            tp: 4,
            sp: 1,
            cp: 1,
            tatp: 4,
            ep: 1,
            pp: 2,
            fsdp: true,
        };
        assert_eq!(c.degree(ParallelKind::Dp), 2);
        assert_eq!(c.degree(ParallelKind::Tp), 4);
        assert_eq!(c.degree(ParallelKind::Tatp), 4);
        assert_eq!(c.degree(ParallelKind::Pp), 2);
        assert_eq!(c.total_degree(), 64);
        assert_eq!(c.intra_wafer_degree(), 32);
    }

    #[test]
    fn tuple_label_matches_paper_notation() {
        assert_eq!(HybridConfig::tuple(1, 1, 2, 16).label(), "(1,1,2,16)");
        let moe = HybridConfig {
            ep: 4,
            ..HybridConfig::tuple(2, 1, 1, 4)
        };
        assert_eq!(moe.label(), "(2,1,1,4|ep4)");
    }

    #[test]
    fn expert_parallel_degree_shares_the_die_budget() {
        // ep is a proper factor of the array: intra x ep == dies.
        let cfg = HybridConfig {
            ep: 4,
            ..HybridConfig::tuple(2, 1, 1, 4)
        };
        assert_eq!(cfg.intra_wafer_degree(), 8);
        assert!(cfg.validate(32).is_ok());
        assert!(cfg.validate(8).is_err(), "ep must not be ignored");
        assert_eq!(cfg.total_degree(), 32);
        assert_eq!(cfg.degree(ParallelKind::Ep), 4);
        // A zero ep is rejected like any other zero degree.
        let zero = HybridConfig {
            ep: 0,
            ..Default::default()
        };
        assert!(matches!(
            zero.validate(1),
            Err(ParallelError::InvalidParameter(_))
        ));
    }

    #[test]
    fn ep_enumeration_extends_the_dense_tuples() {
        let dense = HybridConfig::enumerate_tuples(32, false);
        let moe = HybridConfig::enumerate_tuples_ep(32, false, 8);
        // The ep = 1 prefix is exactly the dense enumeration.
        assert_eq!(&moe[..dense.len()], &dense[..]);
        assert!(moe.len() > dense.len());
        for cfg in &moe {
            assert_eq!(cfg.intra_wafer_degree() * cfg.ep, 32, "{cfg}");
            assert!(cfg.validate(32).is_ok(), "{cfg}");
            assert!(cfg.ep <= 8);
        }
        // Every power-of-two ep up to the cap appears.
        for ep in [1usize, 2, 4, 8] {
            assert!(moe.iter().any(|c| c.ep == ep), "ep={ep} missing");
        }
        // Capping at 1 reproduces the dense enumeration exactly.
        assert_eq!(HybridConfig::enumerate_tuples_ep(32, false, 1), dense);
    }
}
