//! Per-die memory footprints under hybrid parallelism.
//!
//! This is the accounting behind Fig. 4(c) and the memory rows of Fig. 13:
//! which strategies replicate what, and when the 72 GB/die capacity line is
//! crossed.
//!
//! Replication rules (mixed-precision Adam, §VIII-A):
//!
//! | state      | divisor                                     |
//! |------------|---------------------------------------------|
//! | weights    | `tp · tatp · (dp if FSDP else 1)`, layers `/pp` |
//! | gradients  | same as weights                             |
//! | optimizer  | same as weights (Megatron-style DP *replicates*) |
//! | activations| `dp` (batch), `sp·cp` (sequence), `tatp` (M); TP divides only the linear-internal terms |
//!
//! TATP additionally needs a small constant streaming buffer (a few
//! sub-tensors), while FSDP needs a transient unsharded-layer buffer during
//! compute — both are charged.

use serde::{Deserialize, Serialize};

use temp_graph::models::ModelConfig;
use temp_graph::workload::{RecomputeMode, Workload};

use crate::strategy::HybridConfig;

/// Per-die memory footprint, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FootprintBreakdown {
    /// FP16 weights.
    pub weights: f64,
    /// FP16 gradients.
    pub gradients: f64,
    /// FP32 Adam states (m + v).
    pub optimizer: f64,
    /// Activation storage for in-flight micro-batches.
    pub activations: f64,
    /// Transient buffers (TATP stream buffers, FSDP unsharded layer).
    pub buffers: f64,
}

impl FootprintBreakdown {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.weights + self.gradients + self.optimizer + self.activations + self.buffers
    }

    /// Whether the footprint fits a per-die capacity.
    pub fn fits(&self, capacity: f64) -> bool {
        self.total() <= capacity
    }
}

/// Computes the per-die footprint of a model/workload under a configuration.
pub fn per_die_footprint(
    model: &ModelConfig,
    workload: &Workload,
    cfg: &HybridConfig,
) -> FootprintBreakdown {
    let (dp, tp, sp, cp, tatp, pp) = (
        cfg.dp as f64,
        cfg.tp as f64,
        cfg.sp as f64,
        cfg.cp as f64,
        cfg.tatp as f64,
        cfg.pp as f64,
    );

    // ---- Parameter states -------------------------------------------------
    // Expert parallelism folds into the data dimension for the dense
    // path: the `dp x ep` groups are batch replicas of the attention /
    // dense-FFN / embedding weights (FSDP shards across all of them),
    // while the expert weights shard over the `ep` groups — each group
    // stores only its `E / ep` experts. This is the per-expert-shard term
    // of the memory verdict: without it, `ep` could never pay for its
    // all-to-all.
    let ep = cfg.ep.max(1) as f64;
    let dp_eff = dp * ep;
    let weight_dtype = workload.compute_dtype.bytes() as f64;
    let layer_params = model.params_per_layer() as f64;
    let moe_layer_share = model.moe_layer_count() as f64 / model.layers.max(1) as f64;
    let dense_layer_params = (1.0 - moe_layer_share) * layer_params
        + moe_layer_share * model.attn_params_per_layer() as f64;
    let expert_layer_params = moe_layer_share
        * (model.moe_params_per_layer() as f64 - model.attn_params_per_layer() as f64);
    let embed_params = (model.vocab * model.hidden) as f64;
    let local_layers = model.layers as f64 / pp;
    let param_shard = tp * tatp * if cfg.fsdp { dp_eff } else { 1.0 };
    let expert_shard = tp * tatp * ep * if cfg.fsdp { dp } else { 1.0 };
    let local_params = (local_layers * dense_layer_params + embed_params / pp) / param_shard
        + local_layers * expert_layer_params / expert_shard;

    let weights = local_params * weight_dtype;
    let gradients = local_params * weight_dtype;
    let optimizer = local_params * 2.0 * workload.optimizer_dtype.bytes() as f64;

    // ---- Activations -------------------------------------------------------
    let local_batch = (workload.micro_batch_size() as f64 / dp_eff).max(1.0);
    let local_seq = (workload.seq_len as f64 / (sp * cp)).max(1.0);
    let h = model.hidden as f64;
    let a = model.heads as f64;
    let sbh = local_seq * local_batch * h;
    let act_per_layer = match workload.recompute {
        RecomputeMode::Full => 2.0 * sbh / tatp,
        RecomputeMode::Selective => {
            // Norm/residual path (10) is split by TATP (M-split); linear
            // internals (24) additionally by TP.
            10.0 * sbh / tatp + 24.0 * sbh / (tp * tatp)
        }
        RecomputeMode::None => {
            let score = if workload.flash_attention {
                0.0
            } else {
                5.0 * a * local_seq / h * sbh / (tp * tatp)
            };
            10.0 * sbh / tatp + 24.0 * sbh / (tp * tatp) + score
        }
    };
    // MoE layers keep the routed expert copies for the backward pass
    // (dispatched inputs + expert intermediates, FP16 like the 34sbh
    // terms), sharded over TATP on top of the batch split (`local_batch`
    // already folds the ep groups in — the all-to-all rebalances tokens,
    // it does not duplicate them). Full recompute drops them with
    // everything else.
    let expert_act_per_layer = match (model.moe, workload.recompute) {
        (Some(moe), RecomputeMode::Selective | RecomputeMode::None) => {
            moe_layer_share
                * local_batch
                * local_seq
                * 2.0
                * moe.routed_activation_elems_per_token(model.hidden)
                / tatp
        }
        _ => 0.0,
    };
    // Pipeline stages hold up to `pp` in-flight micro-batches (1F1B).
    let in_flight = pp.min(workload.micro_batches as f64).max(1.0);
    let activations = local_layers * (act_per_layer + expert_act_per_layer) * in_flight;

    // ---- Transient buffers -------------------------------------------------
    let mut buffers = 0.0;
    if cfg.tatp > 1 {
        // Constant stream buffer: ~3 sub-tensors of one layer's streamed
        // weight shard (see TatpOrchestration::validate peak_buffer tests).
        let layer_weight = layer_params * weight_dtype;
        buffers += 3.0 * layer_weight / (tp * tatp);
    }
    if cfg.fsdp {
        // One unsharded layer (current) + one prefetched.
        buffers += 2.0 * layer_params * weight_dtype / (tp * tatp);
    }

    FootprintBreakdown {
        weights,
        gradients,
        optimizer,
        activations,
        buffers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;
    use temp_wsc::units::GB;

    fn workload(model: &ModelConfig) -> Workload {
        Workload::for_model(model)
    }

    #[test]
    fn dp_replicates_optimizer_fsdp_shards_it() {
        let m = ModelZoo::gpt3_6_7b();
        let w = workload(&m);
        let dp = per_die_footprint(
            &m,
            &w,
            &HybridConfig {
                dp: 32,
                ..Default::default()
            },
        );
        let fsdp = per_die_footprint(
            &m,
            &w,
            &HybridConfig {
                dp: 32,
                fsdp: true,
                ..Default::default()
            },
        );
        assert!(
            dp.optimizer > 30.0 * fsdp.optimizer,
            "FSDP shards optimizer 32x"
        );
        assert!(dp.weights > 30.0 * fsdp.weights);
        // DP still splits activations.
        assert!((dp.activations / fsdp.activations - 1.0).abs() < 1e-9);
    }

    #[test]
    fn megatron_70b_ooms_but_fsdp_fits() {
        // Fig. 4(c)/§III-A: Llama 70B with TP=8, DP=4 OOMs on 72 GB dies
        // because DP replicates optimizer states; FSDP (with full layer
        // recompute, as real systems enable at this scale) fits.
        let m = ModelZoo::llama3_70b();
        let w = workload(&m);
        let mega = per_die_footprint(
            &m,
            &w,
            &HybridConfig {
                dp: 4,
                tp: 8,
                ..Default::default()
            },
        );
        assert!(
            !mega.fits(72.0 * GB),
            "Megatron DP4xTP8: {:.1} GB",
            mega.total() / GB
        );
        let fsdp = per_die_footprint(
            &m,
            &w.clone().with_recompute(RecomputeMode::Full),
            &HybridConfig {
                dp: 32,
                fsdp: true,
                ..Default::default()
            },
        );
        assert!(fsdp.fits(72.0 * GB), "FSDP-32: {:.1} GB", fsdp.total() / GB);
    }

    #[test]
    fn tatp_eliminates_replication() {
        // TSPP/TATP partitions both inputs and weights: per-die footprint
        // under pure TATP is close to total/N.
        let m = ModelZoo::gpt3_6_7b();
        let w = workload(&m);
        let tatp = per_die_footprint(&m, &w, &HybridConfig::tatp(32));
        let ideal_params = w.param_state_bytes(&m) / 32.0;
        let actual_params = tatp.weights + tatp.gradients + tatp.optimizer;
        assert!(
            (actual_params / ideal_params) < 1.1,
            "TATP params {actual_params:.3e} vs ideal {ideal_params:.3e}"
        );
    }

    #[test]
    fn tp_divides_linear_activations_only() {
        let m = ModelZoo::gpt3_6_7b();
        let w = workload(&m);
        let tp8 = per_die_footprint(&m, &w, &HybridConfig::tuple(4, 8, 1, 1));
        let tp1 = per_die_footprint(&m, &w, &HybridConfig::tuple(32, 1, 1, 1));
        // TP=8 shards the 24-term but replicates the 10-term; activation
        // ratio must be between 1x and 8x of the fully-sharded case.
        let ratio = tp8.activations / tp1.activations;
        // tp1 has dp=32 (batch/32); tp8 has dp=4 (batch/4 = 8x batch) but
        // divides linear terms by 8.
        assert!(ratio > 1.0, "norm path replicated under TP: ratio {ratio}");
        assert!(ratio < 8.0);
    }

    #[test]
    fn sp_shards_sequence_dimension() {
        let m = ModelZoo::gpt3_6_7b();
        let w = workload(&m);
        let sp = per_die_footprint(&m, &w, &HybridConfig::tuple(4, 1, 8, 1));
        let dp = per_die_footprint(&m, &w, &HybridConfig::tuple(32, 1, 1, 1));
        // Both divide sbh by 32 overall; footprints should be comparable.
        let ratio = sp.activations / dp.activations;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pipeline_divides_layers_but_multiplies_in_flight() {
        let m = ModelZoo::gpt3_175b();
        let w = workload(&m);
        let flat = per_die_footprint(&m, &w, &HybridConfig::tuple(1, 1, 1, 32));
        let pp4 = per_die_footprint(
            &m,
            &w,
            &HybridConfig {
                pp: 4,
                tatp: 32,
                ..Default::default()
            },
        );
        assert!(pp4.weights < flat.weights, "PP shards layers");
        // Activations: layers/4 but 4 in-flight micro-batches => comparable.
        let ratio = pp4.activations / flat.activations;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn recompute_modes_shrink_activations() {
        let m = ModelZoo::gpt3_175b();
        let base = Workload::for_model(&m);
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let none = per_die_footprint(
            &m,
            &Workload {
                recompute: RecomputeMode::None,
                flash_attention: false,
                ..base.clone()
            },
            &cfg,
        );
        let sel = per_die_footprint(
            &m,
            &Workload {
                recompute: RecomputeMode::Selective,
                ..base.clone()
            },
            &cfg,
        );
        let full = per_die_footprint(
            &m,
            &Workload {
                recompute: RecomputeMode::Full,
                ..base
            },
            &cfg,
        );
        assert!(none.activations > sel.activations);
        assert!(sel.activations > full.activations);
    }

    #[test]
    fn buffers_are_small_fraction() {
        let m = ModelZoo::gpt3_76b();
        let w = workload(&m);
        let f = per_die_footprint(&m, &w, &HybridConfig::tuple(2, 2, 1, 8));
        assert!(
            f.buffers < 0.2 * f.total(),
            "buffers {:.1}%",
            100.0 * f.buffers / f.total()
        );
    }
}
