//! The A100 GPU-cluster reference system of Fig. 15.
//!
//! §VIII-B: "a 32-die WSC system [is configured] to match the theoretical
//! FP16 peak performance of a 4-node A100 GPU cluster (32 GPUs total, at
//! 312 TFLOPS per GPU)", running Megatron-3 (MeSP). GPUs enjoy a switched
//! all-to-all fabric (no mesh contention, any ring is "physical") but far
//! lower per-accelerator interconnect bandwidth than the wafer's D2D links.

use serde::{Deserialize, Serialize};

use temp_graph::models::ModelConfig;
use temp_graph::workload::{RecomputeMode, Workload};

/// A switched GPU cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuCluster {
    /// Number of GPUs.
    pub gpus: usize,
    /// Peak FP16 FLOP/s per GPU (A100: 312 TFLOPS).
    pub peak_flops: f64,
    /// HBM capacity per GPU in bytes (A100-80G).
    pub hbm_capacity: f64,
    /// Effective per-GPU collective bandwidth in bytes/s (NVLink/NVSwitch
    /// ring bandwidth; A100 NVLink3: 300 GB/s usable).
    pub collective_bandwidth: f64,
    /// Achievable fraction of peak on large GEMMs.
    pub efficiency: f64,
}

impl Default for GpuCluster {
    fn default() -> Self {
        GpuCluster {
            gpus: 32,
            peak_flops: 312.0e12,
            hbm_capacity: 80.0e9,
            collective_bandwidth: 300.0e9,
            efficiency: 0.5,
        }
    }
}

/// A GPU cluster evaluation result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuReport {
    /// Step time in seconds.
    pub step_time: f64,
    /// Compute portion.
    pub compute_time: f64,
    /// Exposed communication portion.
    pub comm_time: f64,
    /// Training throughput in tokens/s.
    pub throughput: f64,
    /// Chosen (dp, tp, sp) degrees.
    pub config: (usize, usize, usize),
}

impl GpuCluster {
    /// Evaluates MeSP (Megatron-3) on the cluster: searches (DP, TP, SP)
    /// power-of-two splits, prices ring collectives at NVLink bandwidth
    /// (switch topology: every ring is contention-free), and returns the
    /// best feasible configuration.
    pub fn evaluate_mesp(&self, model: &ModelConfig, workload: &Workload) -> GpuReport {
        let mut best: Option<GpuReport> = None;
        let n = self.gpus;
        for dp_exp in 0.. {
            let dp = 1usize << dp_exp;
            if dp > n {
                break;
            }
            if n % dp != 0 {
                continue;
            }
            for tp_exp in 0.. {
                let tp = 1usize << tp_exp;
                if dp * tp > n {
                    break;
                }
                let sp = n / dp / tp;
                if !sp.is_power_of_two() {
                    continue;
                }
                for recompute in [RecomputeMode::Selective, RecomputeMode::Full] {
                    let w = workload.clone().with_recompute(recompute);
                    if let Some(r) = self.eval_config(model, &w, dp, tp, sp) {
                        if best.map(|b| r.step_time < b.step_time).unwrap_or(true) {
                            best = Some(r);
                        }
                        break; // feasible at this recompute level
                    }
                }
            }
        }
        best.expect("at least full-recompute FSDP-free config exists for evaluated models")
    }

    fn eval_config(
        &self,
        model: &ModelConfig,
        workload: &Workload,
        dp: usize,
        tp: usize,
        sp: usize,
    ) -> Option<GpuReport> {
        let micro = workload.micro_batches as f64;
        // Memory: Megatron-style replication (DP replicates states).
        let params = model.total_params() as f64;
        let state_bytes = params * workload.bytes_per_param() / (tp * sp) as f64;
        let local_batch = (workload.micro_batch_size() as f64 / dp as f64).max(1.0);
        let local_seq = workload.seq_len as f64 / sp as f64;
        let act = workload.activation_bytes_per_layer_with(
            model,
            local_batch.ceil() as u64,
            local_seq.ceil() as u64,
        ) / tp as f64
            * model.layers as f64;
        if state_bytes + act > self.hbm_capacity {
            return None;
        }
        // Compute: per-GPU share of step FLOPs.
        let recompute_factor = match workload.recompute {
            RecomputeMode::Full => 4.0 / 3.0,
            _ => 1.0,
        };
        let flops = workload.step_flops(model) * recompute_factor / self.gpus as f64;
        let compute_time = flops / (self.peak_flops * self.efficiency);
        // Communication per layer per micro-batch: TP/SP all-reduce-volume
        // equivalents + DP gradient sync, at NVLink ring bandwidth.
        let e = workload.compute_dtype.bytes() as f64;
        let act_tensor = local_batch * workload.seq_len as f64 * model.hidden as f64 * e;
        let tp_factor = if tp > 1 {
            2.0 * (tp - 1) as f64 / tp as f64
        } else {
            0.0
        };
        let per_layer_comm = 4.0 * act_tensor * tp_factor / self.collective_bandwidth;
        let grad_bytes = params * e / (tp * sp) as f64;
        let dp_factor = if dp > 1 {
            2.0 * (dp - 1) as f64 / dp as f64
        } else {
            0.0
        };
        let dp_comm = grad_bytes * dp_factor / self.collective_bandwidth;
        let comm_time = per_layer_comm * model.layers as f64 * micro + dp_comm * micro;
        let step_time = compute_time + comm_time;
        Some(GpuReport {
            step_time,
            compute_time,
            comm_time,
            throughput: workload.tokens_per_step() as f64 / step_time,
            config: (dp, tp, sp),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;

    #[test]
    fn cluster_matches_wafer_peak() {
        // 32 x 312 TFLOPS ~ 10 PFLOPS vs 32-die wafer at 1800 TFLOPS...
        // the paper scales the WSC to match the GPU peak; our Fig. 15 bench
        // derates the wafer instead (see the bench binary).
        let c = GpuCluster::default();
        assert!((c.gpus as f64 * c.peak_flops - 9.984e15).abs() < 1e12);
    }

    #[test]
    fn evaluates_all_table2_models() {
        let c = GpuCluster::default();
        for model in ModelZoo::table2() {
            let w = Workload::for_model(&model);
            let r = c.evaluate_mesp(&model, &w);
            assert!(
                r.step_time.is_finite() && r.step_time > 0.0,
                "{}",
                model.name
            );
            let (dp, tp, sp) = r.config;
            assert_eq!(dp * tp * sp, 32);
        }
    }

    #[test]
    fn small_models_prefer_dp_large_models_need_tp_sp() {
        let c = GpuCluster::default();
        let small = c.evaluate_mesp(
            &ModelZoo::gpt3_6_7b(),
            &Workload::for_model(&ModelZoo::gpt3_6_7b()),
        );
        let large = c.evaluate_mesp(
            &ModelZoo::gpt3_175b(),
            &Workload::for_model(&ModelZoo::gpt3_175b()),
        );
        assert!(
            small.config.0 >= large.config.0,
            "DP degree shrinks with model size"
        );
        assert!(
            large.config.1 * large.config.2 > 1,
            "175B needs model parallelism"
        );
    }
}
