//! The [`Temp`] framework facade: plan, evaluate and compare systems.

use serde::{Deserialize, Serialize};

use temp_graph::models::ModelConfig;
use temp_graph::workload::Workload;
use temp_solver::cost::CostReport;
use temp_solver::dlws::{Dlws, ExecutionPlan};
use temp_solver::pool::ContextPool;
use temp_solver::search::SearchStats;
use temp_solver::stage::MultiWaferPlan;
use temp_wsc::config::WaferConfig;
use temp_wsc::multiwafer::MultiWaferSystem;

use crate::baselines::BaselineSystem;
use crate::{Result, TempError};

/// One system's evaluation on a workload (or its OOM verdict).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// System label ("Mega+SMap", ..., "TEMP").
    pub system: String,
    /// The plan, when one fits memory.
    pub plan: Option<ExecutionPlan>,
    /// Whether every legal configuration ran out of memory.
    pub oom: bool,
}

impl SystemReport {
    /// Step time, or `f64::INFINITY` on OOM.
    pub fn step_time(&self) -> f64 {
        self.plan
            .as_ref()
            .map(|p| p.report.step_time)
            .unwrap_or(f64::INFINITY)
    }

    /// The heterogeneous-chain objective (segment costs + resharding
    /// transitions), or `f64::INFINITY` on OOM. At or below
    /// [`SystemReport::step_time`]; strictly below when the chain DP
    /// assigned the embedding/head a different strategy than the blocks.
    pub fn chain_cost(&self) -> f64 {
        self.plan
            .as_ref()
            .map(|p| p.chain_cost)
            .unwrap_or(f64::INFINITY)
    }

    /// The inner cost report, if planned.
    pub fn report(&self) -> Option<&CostReport> {
        self.plan.as_ref().map(|p| &p.report)
    }
}

/// One system's stage-partitioned multi-wafer evaluation (or its OOM
/// verdict): pipeline stages are contiguous [`temp_graph::segment`] chain
/// slices with per-stage strategies and priced inter-wafer handoffs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiWaferReport {
    /// System label ("Mega+SMap", ..., "TEMP").
    pub system: String,
    /// The stage-partitioned plan, when one fits memory.
    pub plan: Option<MultiWaferPlan>,
    /// Whether every legal configuration ran out of memory.
    pub oom: bool,
}

impl MultiWaferReport {
    /// Pipelined step time, or `f64::INFINITY` on OOM.
    pub fn step_time(&self) -> f64 {
        self.plan
            .as_ref()
            .map(|p| p.step_time)
            .unwrap_or(f64::INFINITY)
    }

    /// The pipeline body's exact cost report, if planned.
    pub fn report(&self) -> Option<&CostReport> {
        self.plan.as_ref().map(|p| &p.body.report)
    }

    /// Training throughput of the pipelined execution in tokens/s (the
    /// body report's throughput describes the uniform-multiplier costing,
    /// not the stage-partitioned step).
    pub fn throughput(&self, workload: &Workload) -> f64 {
        let t = self.step_time();
        if t.is_finite() && t > 0.0 {
            workload.tokens_per_step() as f64 / t
        } else {
            0.0
        }
    }
}

/// One `(wafer count, pipeline multiplier)` point of a multi-wafer sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiWaferSweepEntry {
    /// Wafers in the chain.
    pub wafer_count: usize,
    /// Pipeline stages per wafer.
    pub pp_multiplier: usize,
    /// The planned (or OOM) outcome for this point.
    pub report: MultiWaferReport,
}

/// The TEMP framework: inputs (architecture, model, workload) in; optimal
/// partition + mapping + performance reports out (Fig. 6).
///
/// One [`Dlws`] solver — and therefore one
/// [`temp_solver::search::SearchContext`] with its candidate enumeration
/// and evaluation cache — is shared across every planning entry point, so
/// [`Temp::compare_all`] performs a single candidate-costing pass instead
/// of one per compared system, and repeated [`Temp::evaluate_multiwafer`]
/// calls re-cost nothing. (Multi-wafer keys embed their pipeline degree,
/// so they are distinct from the intra-wafer sweep's `pp = 1` keys.)
/// Clones share the cache.
#[derive(Debug, Clone)]
pub struct Temp {
    solver: Dlws,
}

impl Temp {
    /// Creates a framework instance.
    pub fn new(wafer: WaferConfig, model: ModelConfig, workload: Workload) -> Self {
        Temp {
            solver: Dlws::new(wafer, model, workload),
        }
    }

    /// Convenience: the paper's 4x8 wafer with the model's Table II workload.
    pub fn hpca(model: ModelConfig) -> Self {
        let workload = Workload::for_model(&model);
        Temp::new(WaferConfig::hpca(), model, workload)
    }

    /// A framework instance over a [`ContextPool`]'s shared context: zoo
    /// sweeps (fig13/fig18) build one pool and route every model through
    /// it, so wafer-level state (candidate enumeration) is shared across
    /// models and repeated sweeps over one model replay from its warm
    /// evaluation cache.
    pub fn pooled(pool: &ContextPool, model: ModelConfig) -> Self {
        let workload = Workload::for_model(&model);
        Temp {
            solver: pool.solver(&model, &workload),
        }
    }

    /// Enables the surrogate gate on the shared search context (see
    /// [`Dlws::with_surrogate_gate`]).
    ///
    /// The cost tier is **context-scoped** state: every solver holding
    /// the same context — clones of this framework, and in particular
    /// other [`Temp::pooled`] instances built from the same pool entry —
    /// switches tier with it. Gate a pooled framework only when every
    /// holder of that `(model, workload)` context wants gated costing.
    pub fn with_surrogate_gate(self) -> Self {
        Temp {
            solver: self.solver.with_surrogate_gate(),
        }
    }

    /// Wraps an existing solver (and its shared search context) in a
    /// framework instance — tests and tools that need direct control of
    /// the context (cost tier, gate parameters) build through here.
    pub fn from_solver(solver: Dlws) -> Self {
        Temp { solver }
    }

    /// The wafer configuration.
    pub fn wafer(&self) -> &WaferConfig {
        self.solver.cost_model().wafer()
    }

    /// The model.
    pub fn model(&self) -> &ModelConfig {
        self.solver.cost_model().model()
    }

    /// The workload.
    pub fn workload(&self) -> &Workload {
        self.solver.cost_model().workload()
    }

    /// Cache counters of the shared search context (hits/misses across
    /// every solve this framework instance has run).
    pub fn search_stats(&self) -> SearchStats {
        self.solver.search_stats()
    }

    /// Solves for TEMP's optimal plan (full DLWS search with TCME).
    ///
    /// # Errors
    ///
    /// Returns [`TempError::Planning`] when nothing fits memory.
    pub fn solve(&self) -> Result<ExecutionPlan> {
        self.solver()
            .solve()
            .map_err(|e| TempError::Planning(e.to_string()))
    }

    /// Plans one compared system over its legal configuration space.
    ///
    /// The admission filter is [`crate::baselines::Partitioner::admits_intra`]
    /// — the same convention every multi-wafer path uses, so the two
    /// cannot drift on how pipeline degrees interact with admission.
    pub fn evaluate_system(&self, system: &BaselineSystem) -> SystemReport {
        let solver = self.solver();
        let partitioner = system.partitioner;
        let outcome =
            solver.solve_with_engine(system.engine, move |cfg| partitioner.admits_intra(cfg));
        match outcome {
            Ok(plan) => SystemReport {
                system: system.label(),
                plan: Some(plan),
                oom: false,
            },
            Err(_) => SystemReport {
                system: system.label(),
                plan: None,
                oom: true,
            },
        }
    }

    /// Evaluates all seven systems (A–F + TEMP) — the Fig. 13/14 sweep.
    ///
    /// Thanks to the shared evaluation cache this costs each distinct
    /// `(configuration, engine, recompute)` key at most once across all
    /// seven systems, instead of re-enumerating and re-costing the space
    /// per system.
    pub fn compare_all(&self) -> Vec<SystemReport> {
        BaselineSystem::all_systems()
            .iter()
            .map(|s| self.evaluate_system(s))
            .collect()
    }

    /// Plans a stage-partitioned multi-wafer deployment (Fig. 19):
    /// pipeline stages are contiguous slices of the segment chain, cut
    /// positions and per-stage strategies are solved jointly (the first
    /// stage owns the embedding, the last the LM head), and inter-wafer
    /// handoffs are priced from the boundary activation tensors at the
    /// actual cuts. With one wafer and one stage per wafer this
    /// reproduces [`Temp::evaluate_system`]'s single-wafer plan
    /// bit-for-bit.
    pub fn evaluate_multiwafer(
        &self,
        system: &BaselineSystem,
        wafers: &MultiWaferSystem,
        pp_multiplier: usize,
    ) -> MultiWaferReport {
        let partitioner = system.partitioner;
        let outcome = self.solver().solve_stage_partitioned(
            system.engine,
            wafers,
            pp_multiplier,
            move |cfg| partitioner.admits_intra(cfg),
        );
        match outcome {
            Ok(plan) => MultiWaferReport {
                system: system.label(),
                plan: Some(plan),
                oom: false,
            },
            Err(_) => MultiWaferReport {
                system: system.label(),
                plan: None,
                oom: true,
            },
        }
    }

    /// The pre-refactor uniform-multiplier costing, kept as the reference
    /// baseline the stage-partitioned planner is measured against: one
    /// uniform intra-wafer solve at `pp = wafers x multiplier`, the
    /// embedding/head charged outside the pipeline, and every stage
    /// border billed a full inter-wafer handoff.
    pub fn evaluate_multiwafer_uniform(
        &self,
        system: &BaselineSystem,
        wafers: &MultiWaferSystem,
        pp_multiplier: usize,
    ) -> SystemReport {
        let pp = wafers.wafer_count * pp_multiplier.max(1);
        let partitioner = system.partitioner;
        let outcome = self
            .solver()
            .solve_with_engine_pp(system.engine, pp, move |cfg| partitioner.admits_intra(cfg));
        match outcome {
            Ok(mut plan) => {
                let workload = self.workload();
                // The residual-stream boundary tensor, from the same
                // canonical source the stage-partitioned path prices
                // handoffs with (every dense-chain cut carries it).
                let act = self
                    .solver
                    .context()
                    .chain()
                    .boundary_activation_bytes(1)
                    .unwrap_or(0.0);
                let handoff = wafers.inter_wafer_transfer_time(act)
                    * (pp.saturating_sub(1)) as f64
                    * workload.micro_batches as f64;
                plan.report.step_time += handoff;
                // The chain objective pays the same inter-wafer handoff so
                // it stays comparable to the step time.
                plan.chain_cost += handoff;
                SystemReport {
                    system: system.label(),
                    plan: Some(plan),
                    oom: false,
                }
            }
            Err(_) => SystemReport {
                system: system.label(),
                plan: None,
                oom: true,
            },
        }
    }

    /// Sweeps wafer counts and pipeline multipliers inside this
    /// framework's one shared search context. The union of every distinct
    /// pipeline degree's admitted candidates is pre-costed up front —
    /// under the exact tier as **one** parallel batch (best load
    /// balancing), under the surrogate gate in **per-degree batch mode**
    /// (each degree ranked and shortlisted on its own, preserving the
    /// winner-retention guarantee per solve) — so the per-combination
    /// stage solves that follow replay from the warm cache. Combinations
    /// sharing a pipeline degree (2 wafers x 2 stages, 4 wafers x 1)
    /// share all candidate costing and differ only in wafer placement and
    /// handoff pricing.
    pub fn evaluate_multiwafer_sweep(
        &self,
        system: &BaselineSystem,
        wafer_counts: &[usize],
        pp_multipliers: &[usize],
    ) -> Vec<MultiWaferSweepEntry> {
        use std::collections::BTreeSet;

        let combos: Vec<(usize, usize)> = wafer_counts
            .iter()
            .filter(|c| **c > 0)
            .flat_map(|&c| pp_multipliers.iter().map(move |&m| (c, m.max(1))))
            .collect();
        // The pipeline degree each combo actually solves at: one wafer
        // has no pipeline boundaries, so the planner collapses it to a
        // single stage (`pp = 1`) regardless of the multiplier.
        let distinct_pps: BTreeSet<usize> = combos
            .iter()
            .map(|&(c, m)| if c == 1 { 1 } else { c * m })
            .collect();

        // Pre-cost every degree's admitted batch. No dedup needed across
        // degrees: every candidate carries its pipeline degree, so the
        // batches are disjoint by construction.
        let ctx = self.solver.context();
        let partitioner = system.partitioner;
        let groups: Vec<Vec<temp_parallel::strategy::HybridConfig>> = distinct_pps
            .iter()
            .map(|&pp| {
                ctx.candidates_with_pp(pp)
                    .into_iter()
                    .filter(|cfg| partitioner.admits_intra(cfg))
                    .collect()
            })
            .collect();
        match ctx.cost_tier() {
            // Exact: route each group down the same path the per-combo
            // solve takes, so the pre-cost fills exactly the cache
            // entries the solves will read back. The single-stage group
            // (`pp = 1`) goes through the bound-pruned chain path like
            // `Dlws::solve_with_engine_pp` (its body row is the `ep = 1`
            // subset; the full group prices the MoE row); partitioned
            // degrees keep the exhaustive batch their stage DP needs.
            temp_solver::search::CostTier::Exact => {
                let mut flat: Vec<temp_parallel::strategy::HybridConfig> = Vec::new();
                for group in &groups {
                    if group.iter().all(|c| c.pp == 1) {
                        let dense: Vec<temp_parallel::strategy::HybridConfig> =
                            group.iter().filter(|c| c.ep == 1).copied().collect();
                        let _ = ctx.cost_candidates_chain(&dense, group, system.engine);
                    } else {
                        flat.extend_from_slice(group);
                    }
                }
                let _ = ctx.cost_candidates_exact(&flat, system.engine);
            }
            temp_solver::search::CostTier::SurrogateGated => {
                let _ = ctx.cost_candidate_groups(&groups, system.engine);
            }
        }

        combos
            .into_iter()
            .map(|(wafer_count, pp_multiplier)| {
                let wafers = MultiWaferSystem::new(self.wafer().clone(), wafer_count)
                    .expect("positive wafer count");
                let report = self.evaluate_multiwafer(system, &wafers, pp_multiplier);
                MultiWaferSweepEntry {
                    wafer_count,
                    pp_multiplier,
                    report,
                }
            })
            .collect()
    }

    /// The smallest wafer count whose aggregate HBM can hold this
    /// model's parameter state — a necessary lower bound on deployment
    /// size (Fig. 19 sizes its chains from this).
    pub fn min_wafer_count(&self) -> usize {
        MultiWaferSystem::minimum_wafers_for(
            self.wafer(),
            self.workload().param_state_bytes(self.model()),
        )
    }

    /// The shared DLWS solver (one search context for every entry point).
    pub fn solver(&self) -> &Dlws {
        &self.solver
    }
}

/// Normalizes a metric series to its first finite entry (the paper's
/// "normalized" axes). OOM (infinite) entries stay infinite.
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let base = values
        .iter()
        .copied()
        .find(|v| v.is_finite())
        .unwrap_or(1.0);
    values.iter().map(|v| v / base).collect()
}

/// Geometric-mean speedup of `a` over `b` across paired finite entries.
pub fn geomean_speedup(reference: &[f64], improved: &[f64]) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for (r, i) in reference.iter().zip(improved) {
        if r.is_finite() && i.is_finite() && *i > 0.0 {
            log_sum += (r / i).ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Partitioner;
    use temp_graph::models::ModelZoo;
    use temp_mapping::engines::MappingEngine;

    #[test]
    fn temp_beats_every_baseline_on_small_model() {
        let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
        let reports = temp.compare_all();
        assert_eq!(reports.len(), 7);
        let temp_time = reports.last().unwrap().step_time();
        for r in &reports[..6] {
            assert!(
                temp_time <= r.step_time() * 1.001,
                "TEMP {} vs {} {}",
                temp_time,
                r.system,
                r.step_time()
            );
        }
    }

    #[test]
    fn temp_report_carries_the_heterogeneous_chain() {
        let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
        let report = temp.evaluate_system(&BaselineSystem::temp());
        let plan = report.plan.as_ref().expect("TEMP plans 6.7B");
        assert_eq!(plan.segments.len(), 3);
        assert!(report.chain_cost().is_finite());
        assert!(report.chain_cost() <= report.step_time());
        // 6.7B diverges at the embedding (tested in depth in the solver);
        // the framework must surface that, not flatten it.
        assert!(plan.is_heterogeneous(), "{:?}", plan.segments);
        // OOM reports carry an infinite chain cost.
        let oom = SystemReport {
            system: "x".into(),
            plan: None,
            oom: true,
        };
        assert!(oom.chain_cost().is_infinite());
    }

    #[test]
    fn megatron_ooms_on_large_models() {
        // Fig. 13: Megatron-1 hits OOM on the biggest models; TEMP plans.
        let temp = Temp::hpca(ModelZoo::gpt3_175b());
        let mega = temp.evaluate_system(&BaselineSystem {
            partitioner: Partitioner::Megatron1,
            engine: MappingEngine::SMap,
        });
        assert!(mega.oom, "Megatron should OOM on 175B, one wafer");
        let t = temp.evaluate_system(&BaselineSystem::temp());
        assert!(!t.oom, "TEMP must plan 175B");
    }

    #[test]
    fn compare_all_reuses_one_costing_pass() {
        let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
        let first = temp.compare_all();
        let after_first = temp.search_stats();
        assert!(after_first.misses > 0);
        // Megatron's space is a subset of MeSP's and TEMP costs the full
        // space, so overlapping systems must already produce cache hits.
        assert!(after_first.hits > 0, "{after_first:?}");
        let second = temp.compare_all();
        let after_second = temp.search_stats();
        assert_eq!(
            after_first.misses, after_second.misses,
            "a second sweep must be answered entirely from the cache"
        );
        assert_eq!(first, second);
    }

    #[test]
    fn multiwafer_sweep_matches_individual_calls_and_shares_solves() {
        let temp = Temp::hpca(ModelZoo::gpt3_76b());
        let system = BaselineSystem::temp();
        let entries = temp.evaluate_multiwafer_sweep(&system, &[2, 4], &[1, 2]);
        assert_eq!(entries.len(), 4);
        let after_sweep = temp.search_stats();

        // Each point equals the one-off API's answer...
        for e in &entries {
            let wafers = MultiWaferSystem::new(temp.wafer().clone(), e.wafer_count).unwrap();
            let single = temp.evaluate_multiwafer(&system, &wafers, e.pp_multiplier);
            assert_eq!(e.report, single, "{}x{}", e.wafer_count, e.pp_multiplier);
        }
        // ...and replaying every point costs nothing new: the sweep's
        // up-front batched pass already covered all distinct pipeline
        // degrees.
        assert_eq!(temp.search_stats().misses, after_sweep.misses);

        // 2x2 and 4x1 share the pp = 4 candidate costing but differ in
        // wafer placement: four wafers halve the per-wafer load (faster
        // pace) at the price of three inter-wafer handoffs instead of
        // one.
        let e22 = entries
            .iter()
            .find(|e| (e.wafer_count, e.pp_multiplier) == (2, 2))
            .unwrap();
        let e41 = entries
            .iter()
            .find(|e| (e.wafer_count, e.pp_multiplier) == (4, 1))
            .unwrap();
        let p22 = e22.report.plan.as_ref().unwrap();
        let p41 = e41.report.plan.as_ref().unwrap();
        assert_eq!(p22.stage_count(), 4);
        assert_eq!(p41.stage_count(), 4);
        assert!(p41.bottleneck_time < p22.bottleneck_time);
        assert!(p41.handoff_time > p22.handoff_time);
        let layers = temp.model().layers;
        assert_eq!(p22.blocks_per_stage().iter().sum::<u64>(), layers);
        assert_eq!(p41.blocks_per_stage().iter().sum::<u64>(), layers);
    }

    #[test]
    fn multiwafer_stage_plans_are_embedding_and_head_aware() {
        use temp_graph::segment::SegmentKind;
        let temp = Temp::hpca(ModelZoo::gpt3_76b());
        let wafers = MultiWaferSystem::new(temp.wafer().clone(), 2).unwrap();
        let report = temp.evaluate_multiwafer(&BaselineSystem::temp(), &wafers, 1);
        let plan = report.plan.as_ref().expect("76B plans on two wafers");
        assert_eq!(plan.stage_count(), 2);
        // First stage owns the embedding, last the head, blocks partition.
        assert_eq!(
            plan.stages[0].chain.segments()[0].kind,
            SegmentKind::Embedding
        );
        assert_eq!(
            plan.stages[1].chain.segments().last().unwrap().kind,
            SegmentKind::Head
        );
        let blocks: u64 = plan.blocks_per_stage().iter().sum();
        assert_eq!(blocks, temp.model().layers);
        // The single inter-wafer boundary is priced from the boundary
        // tensor, not assumed.
        assert!(plan.stages[1].inter_wafer_inbound);
        assert!(plan.stages[1].inbound_bytes > 0.0);
        assert!(plan.handoff_time > 0.0);
        assert!(report.step_time().is_finite());
        assert!(report.throughput(temp.workload()) > 0.0);
    }

    #[test]
    fn single_wafer_multiwafer_report_is_the_single_wafer_plan() {
        let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
        let wafers = MultiWaferSystem::new(temp.wafer().clone(), 1).unwrap();
        let multi = temp.evaluate_multiwafer(&BaselineSystem::temp(), &wafers, 1);
        let single = temp.evaluate_system(&BaselineSystem::temp());
        let plan = multi.plan.as_ref().unwrap();
        assert_eq!(Some(&plan.body), single.plan.as_ref());
        assert_eq!(multi.step_time(), single.step_time());
    }

    #[test]
    fn sweeping_a_single_wafer_point_pre_costs_the_degree_it_solves_at() {
        // One wafer collapses to a single stage (`pp = 1`) whatever the
        // multiplier; the sweep's up-front batch must cost that degree,
        // not `1 x multiplier` — no wasted batch, no cold solve.
        let swept = Temp::hpca(ModelZoo::gpt3_6_7b());
        let entries = swept.evaluate_multiwafer_sweep(&BaselineSystem::temp(), &[1], &[2]);
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].report.oom);
        let sweep_misses = swept.search_stats().misses;

        let direct = Temp::hpca(ModelZoo::gpt3_6_7b());
        let _ = direct.evaluate_system(&BaselineSystem::temp());
        assert_eq!(
            sweep_misses,
            direct.search_stats().misses,
            "the sweep must cost exactly the pp = 1 batch the point solves at"
        );
    }

    #[test]
    fn normalize_and_geomean_helpers() {
        let v = vec![2.0, 4.0, f64::INFINITY];
        let n = normalize(&v);
        assert_eq!(n[0], 1.0);
        assert_eq!(n[1], 2.0);
        assert!(n[2].is_infinite());
        let s = geomean_speedup(&[2.0, 8.0], &[1.0, 2.0]);
        assert!((s - (2.0f64 * 4.0).sqrt()).abs() < 1e-12);
    }
}
