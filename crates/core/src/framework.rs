//! The [`Temp`] framework facade: plan, evaluate and compare systems.

use serde::{Deserialize, Serialize};

use temp_graph::models::ModelConfig;
use temp_graph::workload::Workload;
use temp_solver::cost::CostReport;
use temp_solver::dlws::{Dlws, ExecutionPlan};
use temp_solver::search::SearchStats;
use temp_wsc::config::WaferConfig;
use temp_wsc::multiwafer::MultiWaferSystem;

use crate::baselines::BaselineSystem;
use crate::{Result, TempError};

/// One system's evaluation on a workload (or its OOM verdict).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// System label ("Mega+SMap", ..., "TEMP").
    pub system: String,
    /// The plan, when one fits memory.
    pub plan: Option<ExecutionPlan>,
    /// Whether every legal configuration ran out of memory.
    pub oom: bool,
}

impl SystemReport {
    /// Step time, or `f64::INFINITY` on OOM.
    pub fn step_time(&self) -> f64 {
        self.plan
            .as_ref()
            .map(|p| p.report.step_time)
            .unwrap_or(f64::INFINITY)
    }

    /// The heterogeneous-chain objective (segment costs + resharding
    /// transitions), or `f64::INFINITY` on OOM. At or below
    /// [`SystemReport::step_time`]; strictly below when the chain DP
    /// assigned the embedding/head a different strategy than the blocks.
    pub fn chain_cost(&self) -> f64 {
        self.plan
            .as_ref()
            .map(|p| p.chain_cost)
            .unwrap_or(f64::INFINITY)
    }

    /// The inner cost report, if planned.
    pub fn report(&self) -> Option<&CostReport> {
        self.plan.as_ref().map(|p| &p.report)
    }
}

/// One `(wafer count, pipeline multiplier)` point of a multi-wafer sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiWaferSweepEntry {
    /// Wafers in the chain.
    pub wafer_count: usize,
    /// Pipeline stages per wafer.
    pub pp_multiplier: usize,
    /// The planned (or OOM) outcome for this point.
    pub report: SystemReport,
}

/// The TEMP framework: inputs (architecture, model, workload) in; optimal
/// partition + mapping + performance reports out (Fig. 6).
///
/// One [`Dlws`] solver — and therefore one
/// [`temp_solver::search::SearchContext`] with its candidate enumeration
/// and evaluation cache — is shared across every planning entry point, so
/// [`Temp::compare_all`] performs a single candidate-costing pass instead
/// of one per compared system, and repeated [`Temp::evaluate_multiwafer`]
/// calls re-cost nothing. (Multi-wafer keys embed their pipeline degree,
/// so they are distinct from the intra-wafer sweep's `pp = 1` keys.)
/// Clones share the cache.
#[derive(Debug, Clone)]
pub struct Temp {
    solver: Dlws,
}

impl Temp {
    /// Creates a framework instance.
    pub fn new(wafer: WaferConfig, model: ModelConfig, workload: Workload) -> Self {
        Temp {
            solver: Dlws::new(wafer, model, workload),
        }
    }

    /// Convenience: the paper's 4x8 wafer with the model's Table II workload.
    pub fn hpca(model: ModelConfig) -> Self {
        let workload = Workload::for_model(&model);
        Temp::new(WaferConfig::hpca(), model, workload)
    }

    /// The wafer configuration.
    pub fn wafer(&self) -> &WaferConfig {
        self.solver.cost_model().wafer()
    }

    /// The model.
    pub fn model(&self) -> &ModelConfig {
        self.solver.cost_model().model()
    }

    /// The workload.
    pub fn workload(&self) -> &Workload {
        self.solver.cost_model().workload()
    }

    /// Cache counters of the shared search context (hits/misses across
    /// every solve this framework instance has run).
    pub fn search_stats(&self) -> SearchStats {
        self.solver.search_stats()
    }

    /// Solves for TEMP's optimal plan (full DLWS search with TCME).
    ///
    /// # Errors
    ///
    /// Returns [`TempError::Planning`] when nothing fits memory.
    pub fn solve(&self) -> Result<ExecutionPlan> {
        self.solver()
            .solve()
            .map_err(|e| TempError::Planning(e.to_string()))
    }

    /// Plans one compared system over its legal configuration space.
    pub fn evaluate_system(&self, system: &BaselineSystem) -> SystemReport {
        let solver = self.solver();
        let partitioner = system.partitioner;
        let outcome = solver.solve_with_engine(system.engine, move |cfg| partitioner.admits(cfg));
        match outcome {
            Ok(plan) => SystemReport {
                system: system.label(),
                plan: Some(plan),
                oom: false,
            },
            Err(_) => SystemReport {
                system: system.label(),
                plan: None,
                oom: true,
            },
        }
    }

    /// Evaluates all seven systems (A–F + TEMP) — the Fig. 13/14 sweep.
    ///
    /// Thanks to the shared evaluation cache this costs each distinct
    /// `(configuration, engine, recompute)` key at most once across all
    /// seven systems, instead of re-enumerating and re-costing the space
    /// per system.
    pub fn compare_all(&self) -> Vec<SystemReport> {
        BaselineSystem::all_systems()
            .iter()
            .map(|s| self.evaluate_system(s))
            .collect()
    }

    /// Plans a multi-wafer deployment (Fig. 19): pipeline stages span the
    /// wafers of `system`; each stage runs this framework's intra-wafer plan
    /// for the given compared system. Returns the per-step report of the
    /// pipelined execution.
    pub fn evaluate_multiwafer(
        &self,
        system: &BaselineSystem,
        wafers: &MultiWaferSystem,
        pp_multiplier: usize,
    ) -> SystemReport {
        let pp = wafers.wafer_count * pp_multiplier.max(1);
        let outcome = self.solve_multiwafer_pp(system, pp);
        self.multiwafer_report(system, wafers, pp, outcome)
    }

    /// Sweeps wafer counts and pipeline multipliers inside this
    /// framework's one shared search context: every distinct pipeline
    /// degree is solved exactly once (combinations like 2 wafers x 2
    /// stages and 4 wafers x 1 stage share the `pp = 4` solve), and under
    /// the exact cost tier the union of all admitted candidates across
    /// degrees is pre-costed in a single parallel batch before any solve
    /// runs. The seed behavior — one context rebuild and one costing pass
    /// per `(wafer count, multiplier)` combination — becomes one batched
    /// pass for the whole sweep.
    pub fn evaluate_multiwafer_sweep(
        &self,
        system: &BaselineSystem,
        wafer_counts: &[usize],
        pp_multipliers: &[usize],
    ) -> Vec<MultiWaferSweepEntry> {
        use std::collections::{BTreeSet, HashMap};

        let combos: Vec<(usize, usize)> = wafer_counts
            .iter()
            .filter(|c| **c > 0)
            .flat_map(|&c| pp_multipliers.iter().map(move |&m| (c, m.max(1))))
            .collect();
        let distinct_pps: BTreeSet<usize> = combos.iter().map(|&(c, m)| c * m).collect();

        // Pre-cost the union of every degree's admitted candidates in one
        // batch, so the parallel map load-balances across the whole sweep
        // instead of per-degree slices. Skipped under the surrogate gate:
        // gating must rank each degree's batch on its own for the
        // winner-retention guarantee to hold per solve.
        // No dedup needed: every candidate carries its pipeline degree, so
        // batches from distinct degrees are disjoint by construction.
        let ctx = self.solver.context();
        if ctx.cost_tier() == temp_solver::search::CostTier::Exact {
            let partitioner = system.partitioner;
            let batch: Vec<temp_parallel::strategy::HybridConfig> = distinct_pps
                .iter()
                .flat_map(|&pp| ctx.candidates_with_pp(pp))
                .filter(|cfg| {
                    partitioner.admits(&temp_parallel::strategy::HybridConfig { pp: 1, ..*cfg })
                })
                .collect();
            let _ = ctx.cost_candidates(&batch, system.engine);
        }

        let mut solved: HashMap<usize, std::result::Result<ExecutionPlan, String>> = HashMap::new();
        combos
            .into_iter()
            .map(|(wafer_count, pp_multiplier)| {
                let pp = wafer_count * pp_multiplier;
                let outcome = solved
                    .entry(pp)
                    .or_insert_with(|| {
                        self.solve_multiwafer_pp(system, pp)
                            .map_err(|e| e.to_string())
                    })
                    .clone()
                    .map_err(temp_solver::SolverError::NoFeasiblePlan);
                let wafers = MultiWaferSystem::new(self.wafer().clone(), wafer_count)
                    .expect("positive wafer count");
                let report = self.multiwafer_report(system, &wafers, pp, outcome);
                MultiWaferSweepEntry {
                    wafer_count,
                    pp_multiplier,
                    report,
                }
            })
            .collect()
    }

    /// The intra-wafer solve of a multi-wafer deployment: the pipeline
    /// degree is fixed, layers divide across stages, shrinking per-die
    /// weights and activations.
    fn solve_multiwafer_pp(
        &self,
        system: &BaselineSystem,
        pp: usize,
    ) -> temp_solver::Result<ExecutionPlan> {
        let partitioner = system.partitioner;
        self.solver()
            .solve_with_engine_pp(system.engine, pp, move |cfg| {
                partitioner.admits(&temp_parallel::strategy::HybridConfig { pp: 1, ..*cfg })
            })
    }

    /// Wraps a multi-wafer solve outcome into a [`SystemReport`], charging
    /// the inter-wafer activation handoff per stage border.
    fn multiwafer_report(
        &self,
        system: &BaselineSystem,
        wafers: &MultiWaferSystem,
        pp: usize,
        outcome: temp_solver::Result<ExecutionPlan>,
    ) -> SystemReport {
        match outcome {
            Ok(mut plan) => {
                let workload = self.workload();
                let act = workload.micro_batch_size() as f64
                    * workload.seq_len as f64
                    * self.model().hidden as f64
                    * workload.compute_dtype.bytes() as f64;
                let handoff = wafers.inter_wafer_transfer_time(act)
                    * (pp.saturating_sub(1)) as f64
                    * workload.micro_batches as f64;
                plan.report.step_time += handoff;
                // The chain objective pays the same inter-wafer handoff so
                // it stays comparable to the step time.
                plan.chain_cost += handoff;
                SystemReport {
                    system: system.label(),
                    plan: Some(plan),
                    oom: false,
                }
            }
            Err(_) => SystemReport {
                system: system.label(),
                plan: None,
                oom: true,
            },
        }
    }

    /// The shared DLWS solver (one search context for every entry point).
    pub fn solver(&self) -> &Dlws {
        &self.solver
    }
}

/// Normalizes a metric series to its first finite entry (the paper's
/// "normalized" axes). OOM (infinite) entries stay infinite.
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let base = values
        .iter()
        .copied()
        .find(|v| v.is_finite())
        .unwrap_or(1.0);
    values.iter().map(|v| v / base).collect()
}

/// Geometric-mean speedup of `a` over `b` across paired finite entries.
pub fn geomean_speedup(reference: &[f64], improved: &[f64]) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for (r, i) in reference.iter().zip(improved) {
        if r.is_finite() && i.is_finite() && *i > 0.0 {
            log_sum += (r / i).ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Partitioner;
    use temp_graph::models::ModelZoo;
    use temp_mapping::engines::MappingEngine;

    #[test]
    fn temp_beats_every_baseline_on_small_model() {
        let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
        let reports = temp.compare_all();
        assert_eq!(reports.len(), 7);
        let temp_time = reports.last().unwrap().step_time();
        for r in &reports[..6] {
            assert!(
                temp_time <= r.step_time() * 1.001,
                "TEMP {} vs {} {}",
                temp_time,
                r.system,
                r.step_time()
            );
        }
    }

    #[test]
    fn temp_report_carries_the_heterogeneous_chain() {
        let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
        let report = temp.evaluate_system(&BaselineSystem::temp());
        let plan = report.plan.as_ref().expect("TEMP plans 6.7B");
        assert_eq!(plan.segments.len(), 3);
        assert!(report.chain_cost().is_finite());
        assert!(report.chain_cost() <= report.step_time());
        // 6.7B diverges at the embedding (tested in depth in the solver);
        // the framework must surface that, not flatten it.
        assert!(plan.is_heterogeneous(), "{:?}", plan.segments);
        // OOM reports carry an infinite chain cost.
        let oom = SystemReport {
            system: "x".into(),
            plan: None,
            oom: true,
        };
        assert!(oom.chain_cost().is_infinite());
    }

    #[test]
    fn megatron_ooms_on_large_models() {
        // Fig. 13: Megatron-1 hits OOM on the biggest models; TEMP plans.
        let temp = Temp::hpca(ModelZoo::gpt3_175b());
        let mega = temp.evaluate_system(&BaselineSystem {
            partitioner: Partitioner::Megatron1,
            engine: MappingEngine::SMap,
        });
        assert!(mega.oom, "Megatron should OOM on 175B, one wafer");
        let t = temp.evaluate_system(&BaselineSystem::temp());
        assert!(!t.oom, "TEMP must plan 175B");
    }

    #[test]
    fn compare_all_reuses_one_costing_pass() {
        let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
        let first = temp.compare_all();
        let after_first = temp.search_stats();
        assert!(after_first.misses > 0);
        // Megatron's space is a subset of MeSP's and TEMP costs the full
        // space, so overlapping systems must already produce cache hits.
        assert!(after_first.hits > 0, "{after_first:?}");
        let second = temp.compare_all();
        let after_second = temp.search_stats();
        assert_eq!(
            after_first.misses, after_second.misses,
            "a second sweep must be answered entirely from the cache"
        );
        assert_eq!(first, second);
    }

    #[test]
    fn multiwafer_sweep_matches_individual_calls_and_shares_solves() {
        let temp = Temp::hpca(ModelZoo::gpt3_76b());
        let system = BaselineSystem::temp();
        let entries = temp.evaluate_multiwafer_sweep(&system, &[2, 4], &[1, 2]);
        assert_eq!(entries.len(), 4);
        let after_sweep = temp.search_stats();

        // Each point equals the one-off API's answer...
        for e in &entries {
            let wafers = MultiWaferSystem::new(temp.wafer().clone(), e.wafer_count).unwrap();
            let single = temp.evaluate_multiwafer(&system, &wafers, e.pp_multiplier);
            assert_eq!(e.report, single, "{}x{}", e.wafer_count, e.pp_multiplier);
        }
        // ...and replaying every point costs nothing new: the sweep's one
        // batched pass already covered all distinct pipeline degrees.
        assert_eq!(temp.search_stats().misses, after_sweep.misses);

        // 2x2 and 4x1 share the pp = 4 solve, so their underlying plans
        // coincide (same per-step report after the same handoff charge).
        let e22 = entries
            .iter()
            .find(|e| (e.wafer_count, e.pp_multiplier) == (2, 2))
            .unwrap();
        let e41 = entries
            .iter()
            .find(|e| (e.wafer_count, e.pp_multiplier) == (4, 1))
            .unwrap();
        assert_eq!(
            e22.report.plan.as_ref().map(|p| p.config),
            e41.report.plan.as_ref().map(|p| p.config)
        );
    }

    #[test]
    fn normalize_and_geomean_helpers() {
        let v = vec![2.0, 4.0, f64::INFINITY];
        let n = normalize(&v);
        assert_eq!(n[0], 1.0);
        assert_eq!(n[1], 2.0);
        assert!(n[2].is_infinite());
        let s = geomean_speedup(&[2.0, 8.0], &[1.0, 2.0]);
        assert!((s - (2.0f64 * 4.0).sqrt()).abs() < 1e-12);
    }
}
