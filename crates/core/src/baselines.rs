//! The six baseline systems of §VIII-A, and TEMP itself.
//!
//! Baselines combine three partitioning schemes with two mapping engines:
//!
//! | label | partitioner | mapper |
//! |-------|-------------|--------|
//! | A | Megatron-1 (DP+TP+PP)        | SMap |
//! | B | Megatron-1                    | GMap |
//! | C | MeSP (Megatron-3: +SP/CP)     | SMap |
//! | D | MeSP                          | GMap |
//! | E | FSDP                          | SMap |
//! | F | FSDP                          | GMap |
//! | T | TEMP (TATP + everything)      | TCME |
//!
//! Each planner searches its own legal configuration space with the shared
//! DLWS machinery, so differences come from the *space* and the *mapper*,
//! not the search.

use serde::{Deserialize, Serialize};

use temp_mapping::engines::MappingEngine;
use temp_parallel::strategy::HybridConfig;

/// Partitioning scheme families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Partitioner {
    /// Megatron-LM v1: DP + TP (+PP across wafers).
    Megatron1,
    /// Megatron-3 with sequence/context parallelism.
    MeSP,
    /// Fully-sharded data parallelism.
    Fsdp,
    /// TEMP: TATP composed with everything else.
    Temp,
}

impl Partitioner {
    /// Whether a configuration is legal for this partitioner.
    pub fn admits(&self, cfg: &HybridConfig) -> bool {
        match self {
            Partitioner::Megatron1 => cfg.tatp == 1 && !cfg.fsdp && cfg.sp == 1 && cfg.cp == 1,
            Partitioner::MeSP => cfg.tatp == 1 && !cfg.fsdp,
            Partitioner::Fsdp => {
                cfg.tatp == 1 && cfg.tp == 1 && cfg.cp == 1 && (cfg.fsdp || cfg.dp == 1)
            }
            Partitioner::Temp => true,
        }
    }

    /// Whether a configuration is legal for this partitioner *ignoring
    /// its pipeline degree*. Admission governs intra-wafer structure only
    /// (every partitioner can pipeline across wafers), so multi-wafer
    /// planning — where candidates carry `pp = stage count` — must
    /// normalize `pp` before checking. This helper is the single home of
    /// that convention; use it anywhere a filter sees candidates whose
    /// `pp` is not 1, so the single- and multi-wafer paths cannot drift.
    pub fn admits_intra(&self, cfg: &HybridConfig) -> bool {
        self.admits(&HybridConfig { pp: 1, ..*cfg })
    }
}

impl std::fmt::Display for Partitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Partitioner::Megatron1 => write!(f, "Mega"),
            Partitioner::MeSP => write!(f, "MeSP"),
            Partitioner::Fsdp => write!(f, "FSDP"),
            Partitioner::Temp => write!(f, "TEMP"),
        }
    }
}

/// A complete compared system: partitioner + mapping engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BaselineSystem {
    /// Partitioning scheme.
    pub partitioner: Partitioner,
    /// Mapping engine.
    pub engine: MappingEngine,
}

impl BaselineSystem {
    /// The six baselines A–F in the paper's order.
    pub fn six_baselines() -> Vec<BaselineSystem> {
        vec![
            BaselineSystem {
                partitioner: Partitioner::Megatron1,
                engine: MappingEngine::SMap,
            },
            BaselineSystem {
                partitioner: Partitioner::Megatron1,
                engine: MappingEngine::GMap,
            },
            BaselineSystem {
                partitioner: Partitioner::MeSP,
                engine: MappingEngine::SMap,
            },
            BaselineSystem {
                partitioner: Partitioner::MeSP,
                engine: MappingEngine::GMap,
            },
            BaselineSystem {
                partitioner: Partitioner::Fsdp,
                engine: MappingEngine::SMap,
            },
            BaselineSystem {
                partitioner: Partitioner::Fsdp,
                engine: MappingEngine::GMap,
            },
        ]
    }

    /// TEMP itself.
    pub fn temp() -> BaselineSystem {
        BaselineSystem {
            partitioner: Partitioner::Temp,
            engine: MappingEngine::Tcme,
        }
    }

    /// All seven systems in figure order (A..F then TEMP).
    pub fn all_systems() -> Vec<BaselineSystem> {
        let mut v = Self::six_baselines();
        v.push(Self::temp());
        v
    }

    /// The paper's short label ("Mega+SMap", ..., "TEMP").
    pub fn label(&self) -> String {
        if self.partitioner == Partitioner::Temp {
            "TEMP".to_string()
        } else {
            format!("{}+{}", self.partitioner, self.engine)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_six_baselines_plus_temp() {
        assert_eq!(BaselineSystem::six_baselines().len(), 6);
        assert_eq!(BaselineSystem::all_systems().len(), 7);
        assert_eq!(BaselineSystem::temp().label(), "TEMP");
        assert_eq!(BaselineSystem::six_baselines()[0].label(), "Mega+SMap");
    }

    #[test]
    fn megatron_space_excludes_tatp_sp_fsdp() {
        let p = Partitioner::Megatron1;
        assert!(p.admits(&HybridConfig::tuple(4, 8, 1, 1)));
        assert!(!p.admits(&HybridConfig::tuple(4, 1, 1, 8)));
        assert!(!p.admits(&HybridConfig::tuple(4, 4, 2, 1)));
        assert!(!p.admits(&HybridConfig {
            dp: 32,
            fsdp: true,
            ..Default::default()
        }));
    }

    #[test]
    fn mesp_space_adds_sp() {
        let p = Partitioner::MeSP;
        assert!(p.admits(&HybridConfig::tuple(4, 4, 2, 1)));
        assert!(!p.admits(&HybridConfig::tuple(4, 4, 1, 2)));
    }

    #[test]
    fn fsdp_space_is_sharded_dp_with_sp() {
        let p = Partitioner::Fsdp;
        assert!(p.admits(&HybridConfig {
            dp: 32,
            fsdp: true,
            ..Default::default()
        }));
        assert!(p.admits(&HybridConfig {
            dp: 16,
            sp: 2,
            fsdp: true,
            ..Default::default()
        }));
        assert!(!p.admits(&HybridConfig::tuple(4, 8, 1, 1)));
    }

    #[test]
    fn intra_admission_ignores_the_pipeline_degree() {
        // A Megatron-legal tuple stays legal at any pipeline degree...
        let cfg = HybridConfig {
            pp: 4,
            ..HybridConfig::tuple(4, 8, 1, 1)
        };
        assert!(Partitioner::Megatron1.admits_intra(&cfg));
        // ...and an illegal intra-wafer structure stays illegal.
        let bad = HybridConfig {
            pp: 4,
            ..HybridConfig::tuple(4, 1, 1, 8)
        };
        assert!(!Partitioner::Megatron1.admits_intra(&bad));
        // At pp = 1 the two predicates coincide on the whole space.
        for cfg in HybridConfig::enumerate_tuples(32, false) {
            for p in [
                Partitioner::Megatron1,
                Partitioner::MeSP,
                Partitioner::Fsdp,
                Partitioner::Temp,
            ] {
                assert_eq!(p.admits(&cfg), p.admits_intra(&cfg));
            }
        }
    }

    #[test]
    fn temp_admits_everything() {
        let p = Partitioner::Temp;
        assert!(p.admits(&HybridConfig::tuple(2, 2, 1, 8)));
        assert!(p.admits(&HybridConfig {
            dp: 4,
            fsdp: true,
            tatp: 8,
            ..Default::default()
        }));
    }
}
