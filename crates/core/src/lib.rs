//! # temp-core — the TEMP framework
//!
//! The paper's headline artifact: a holistic co-exploration framework that
//! jointly optimizes tensor partitioning (TATP), execution mapping (TCME)
//! and configuration search (DLWS) for LLM training on wafer-scale chips.
//!
//! * [`framework`] — the [`Temp`] entry point: `(wafer, model, workload)` →
//!   `solve()` → [`temp_solver::ExecutionPlan`] → evaluation reports;
//! * [`baselines`] — the six compared systems (Mega/MeSP/FSDP × SMap/GMap)
//!   plus TEMP itself, each searched over its own legal configuration space;
//! * [`gpu`] — the A100-cluster reference system of Fig. 15;
//! * [`fault`] — the §VIII-F fault-tolerance mechanism: localization,
//!   adaptive repartitioning and rerouting, with throughput-under-fault
//!   sweeps (Fig. 20).
//!
//! # Example
//!
//! ```
//! use temp_core::framework::Temp;
//! use temp_graph::models::ModelZoo;
//!
//! let temp = Temp::hpca(ModelZoo::gpt3_6_7b());
//! let plan = temp.solve().expect("feasible plan");
//! assert!(plan.report.throughput > 0.0);
//! ```

pub mod baselines;
pub mod fault;
pub mod framework;
pub mod gpu;

pub use baselines::{BaselineSystem, Partitioner};
pub use framework::{SystemReport, Temp};

/// Errors produced by the framework.
#[derive(Debug, Clone, PartialEq)]
pub enum TempError {
    /// Planning failed (usually: nothing fits memory).
    Planning(String),
}

impl std::fmt::Display for TempError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TempError::Planning(msg) => write!(f, "planning failed: {msg}"),
        }
    }
}

impl std::error::Error for TempError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TempError>;
