//! Framework-level fault tolerance (§VIII-F, Fig. 20).
//!
//! TEMP's three-step mechanism: (1) fault localization and classification,
//! (2) adaptive tensor repartitioning to re-balance compute, and (3)
//! communication rerouting around dead links. The resulting behaviour:
//! graceful degradation under core faults (work re-balances; ~80% of peak
//! at 25% core faults) versus a throughput cliff once link faults break
//! mesh connectivity (at ~35% and beyond).

use serde::{Deserialize, Serialize};

use temp_wsc::config::WaferConfig;
use temp_wsc::fault::FaultMap;
use temp_wsc::topology::Mesh;

/// Outcome of adapting a plan to a faulty wafer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultAdaptation {
    /// Throughput relative to the fault-free wafer, in `[0, 1]`.
    pub relative_throughput: f64,
    /// Whether the surviving topology is still connected.
    pub connected: bool,
    /// Mean detour factor of rerouted neighbor traffic (1.0 = no detours).
    pub mean_detour: f64,
    /// Surviving compute fraction after re-balancing.
    pub surviving_compute: f64,
}

/// Adapts to **core** faults: step (2) re-balances tensor partitions so
/// every die gets work proportional to its surviving cores; throughput
/// follows the wafer's mean surviving compute (not the slowest die), minus
/// a small re-balancing overhead.
pub fn adapt_core_faults(wafer: &WaferConfig, rate: f64, seed: u64) -> FaultAdaptation {
    let mesh = wafer.mesh();
    let faults = FaultMap::inject_core_faults(&mesh, rate, seed);
    let mean_surviving: f64 = mesh
        .dies()
        .map(|d| faults.surviving_compute(d))
        .sum::<f64>()
        / mesh.die_count() as f64;
    // Repartitioning overhead: uneven shards slightly reduce overlap quality.
    let rebalance_penalty = 1.0 - 0.1 * rate;
    FaultAdaptation {
        relative_throughput: (mean_surviving * rebalance_penalty).clamp(0.0, 1.0),
        connected: true,
        mean_detour: 1.0,
        surviving_compute: mean_surviving,
    }
}

/// Adapts to **link** faults: step (3) reroutes neighbor traffic around dead
/// links; throughput degrades with the mean detour length and collapses
/// when the mesh disconnects (no reroute exists).
pub fn adapt_link_faults(wafer: &WaferConfig, rate: f64, seed: u64) -> FaultAdaptation {
    let mesh = wafer.mesh();
    let faults = FaultMap::inject_link_faults(&mesh, rate, seed);
    let connected = faults.is_connected(&mesh);
    if !connected {
        return FaultAdaptation {
            relative_throughput: 0.0,
            connected: false,
            mean_detour: f64::INFINITY,
            surviving_compute: 1.0,
        };
    }
    let mean_detour = mean_neighbor_detour(&mesh, &faults);
    // Streaming rounds stretch with the detour factor; compute overlap hides
    // part of it (the stream occupies roughly half the round budget).
    let comm_share = 0.5;
    let slowdown = 1.0 + comm_share * (mean_detour - 1.0);
    FaultAdaptation {
        relative_throughput: (1.0 / slowdown).clamp(0.0, 1.0),
        connected: true,
        mean_detour,
        surviving_compute: 1.0,
    }
}

/// Mean hops of the shortest live route between all adjacent die pairs
/// (1.0 when no faults touch neighbor connectivity).
fn mean_neighbor_detour(mesh: &Mesh, faults: &FaultMap) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for die in mesh.dies() {
        for nb in mesh.neighbors(die) {
            if nb.0 > die.0 {
                if let Ok(path) = faults.route_around(mesh, die, nb) {
                    total += (path.len() - 1) as f64;
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        total / count as f64
    }
}

/// Sweeps link-fault rates, averaging over seeds (Fig. 20(b)).
pub fn link_fault_sweep(wafer: &WaferConfig, rates: &[f64], seeds: u64) -> Vec<(f64, f64)> {
    rates
        .iter()
        .map(|&rate| {
            let mean: f64 = (0..seeds)
                .map(|s| adapt_link_faults(wafer, rate, 1000 + s).relative_throughput)
                .sum::<f64>()
                / seeds as f64;
            (rate, mean)
        })
        .collect()
}

/// Sweeps core-fault rates, averaging over seeds (Fig. 20(c)).
pub fn core_fault_sweep(wafer: &WaferConfig, rates: &[f64], seeds: u64) -> Vec<(f64, f64)> {
    rates
        .iter()
        .map(|&rate| {
            let mean: f64 = (0..seeds)
                .map(|s| adapt_core_faults(wafer, rate, 2000 + s).relative_throughput)
                .sum::<f64>()
                / seeds as f64;
            (rate, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_full_throughput() {
        let w = WaferConfig::hpca();
        let core = adapt_core_faults(&w, 0.0, 1);
        assert!((core.relative_throughput - 1.0).abs() < 1e-9);
        let link = adapt_link_faults(&w, 0.0, 1);
        assert!((link.relative_throughput - 1.0).abs() < 1e-9);
        assert!((link.mean_detour - 1.0).abs() < 1e-12);
    }

    #[test]
    fn core_faults_degrade_gracefully() {
        // Fig. 20(c): ~80% of peak at 25% core faults.
        let w = WaferConfig::hpca();
        let sweep = core_fault_sweep(&w, &[0.25], 8);
        let (_, tput) = sweep[0];
        assert!((0.70..0.85).contains(&tput), "throughput {tput}");
    }

    #[test]
    fn link_faults_hit_a_cliff() {
        // Fig. 20(b): sensitivity to link faults, with a cliff by ~35-50%.
        let w = WaferConfig::hpca();
        let sweep = link_fault_sweep(&w, &[0.1, 0.35, 0.6], 8);
        let t10 = sweep[0].1;
        let t35 = sweep[1].1;
        let t60 = sweep[2].1;
        assert!(t10 > 0.7, "mild faults tolerated: {t10}");
        assert!(t35 < t10, "degradation by 35%: {t35}");
        assert!(t60 < 0.4, "deep in the cliff: {t60}");
    }

    #[test]
    fn disconnection_zeroes_throughput() {
        let w = WaferConfig::hpca();
        let a = adapt_link_faults(&w, 1.0, 3);
        assert!(!a.connected);
        assert_eq!(a.relative_throughput, 0.0);
    }
}
