//! Cross-model context pool: share wafer-level search state across the
//! models of a zoo sweep.
//!
//! A [`crate::search::SearchContext`] memoizes evaluations for **one**
//! `(wafer, model, workload)` triple. Zoo sweeps (fig13's seven-system
//! comparison, fig18's scale/sequence grid) plan many models on the same
//! wafer; before the pool each model rebuilt the wafer-level state from
//! scratch — re-enumerating the candidate space — and repeated sweeps
//! over the same model rebuilt the whole context, discarding its warm
//! evaluation cache.
//!
//! [`ContextPool`] fixes both:
//!
//! * the **candidate enumeration** (a function of the die count alone) is
//!   computed once and shared by `Arc` across every pooled context;
//! * contexts are **keyed by `(model, workload)`** and handed out as
//!   shared `Arc`s, so asking for the same model twice returns the same
//!   warm context — a second sweep over the zoo is answered entirely from
//!   the caches the first sweep filled.
//!
//! Warmth also survives the process: [`ContextPool::save_to`] persists
//! every context's cost table, segment table and gate predictor as one
//! text file per context (named by the
//! [`crate::cost::WaferCostModel::fingerprint`] of its `(wafer, model,
//! workload, cost-model version)`), and a pool pointed at that directory
//! with [`ContextPool::load_from`] imports the matching file whenever a
//! context is built — a second *process* solving the same zoo performs
//! near-zero exact evaluations.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use temp_graph::models::ModelConfig;
use temp_graph::workload::Workload;
use temp_parallel::strategy::HybridConfig;
use temp_wsc::config::WaferConfig;

use crate::cost::WaferCostModel;
use crate::dlws::Dlws;
use crate::search::SearchContext;

/// A pool of shared search contexts for one wafer configuration.
#[derive(Debug)]
pub struct ContextPool {
    wafer: WaferConfig,
    base_candidates: Arc<Vec<HybridConfig>>,
    contexts: Mutex<HashMap<String, Arc<SearchContext>>>,
    /// Warm-start directory: freshly built contexts import their matching
    /// cache file from here (set by [`ContextPool::load_from`]).
    cache_dir: Mutex<Option<PathBuf>>,
}

impl ContextPool {
    /// Creates a pool for one wafer, enumerating the candidate space once.
    pub fn new(wafer: WaferConfig) -> Self {
        let base_candidates = Arc::new(SearchContext::enumerate_base_candidates(wafer.die_count()));
        ContextPool {
            wafer,
            base_candidates,
            contexts: Mutex::new(HashMap::new()),
            cache_dir: Mutex::new(None),
        }
    }

    /// The on-disk name of one context's cache file, keyed by the full
    /// `(wafer, model, workload, cost-model version)` fingerprint — see
    /// [`crate::cost::WaferCostModel::fingerprint`].
    fn cache_file_name(ctx: &SearchContext) -> String {
        format!("cache-{:016x}.txt", ctx.cost_model().fingerprint())
    }

    /// Persists every pooled context's warm state (cost table, segment
    /// table, winner-rank statistic, gate predictor) into `dir`, one text
    /// file per context, named by fingerprint. Returns the number of
    /// files written. Re-saving over an existing directory overwrites the
    /// matching files and leaves foreign files alone.
    ///
    /// Each file is written **atomically**: the bytes go to a temporary
    /// sibling (`.cache-<fp>.txt.tmp-<pid>`) which is then renamed over
    /// the final name, so a shutdown mid-write (a serving process killed
    /// while draining) can never leave a torn `cache-<fp>.txt` for the
    /// quarantine path to eat on the next start — the old file survives
    /// intact or the new one is complete.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, file writes,
    /// the final rename).
    pub fn save_to(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let contexts = self.contexts();
        for ctx in &contexts {
            let name = Self::cache_file_name(ctx);
            let tmp = dir.join(format!(".{name}.tmp-{}", std::process::id()));
            let finale = dir.join(&name);
            std::fs::write(&tmp, ctx.export_cost_table())?;
            if let Err(e) = std::fs::rename(&tmp, &finale) {
                // Never leave the temporary behind on a failed rename.
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        }
        Ok(contexts.len())
    }

    /// Points the pool at a warm-start directory written by
    /// [`ContextPool::save_to`]: every context built from now on imports
    /// its matching cache file (by fingerprint) on construction, and
    /// contexts the pool already holds import theirs immediately. Returns
    /// the number of cache files the directory holds; files for other
    /// `(model, workload)` pairs — or from an incompatible cost-model
    /// version — simply never match and are ignored.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the directory must exist and be
    /// readable).
    pub fn load_from(&self, dir: &Path) -> std::io::Result<usize> {
        let mut available = 0usize;
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("cache-") && name.ends_with(".txt") {
                available += 1;
            }
        }
        *self.cache_dir.lock().expect("pool cache dir lock") = Some(dir.to_path_buf());
        for ctx in &self.contexts() {
            Self::try_warm_import(dir, ctx);
        }
        Ok(available)
    }

    /// Best-effort warm import: a missing file means "no cache for this
    /// context yet"; a corrupt one — unreadable, truncated mid-record,
    /// bit-flipped, or carrying a mismatched header — is rejected whole
    /// (imports are all-or-nothing) and **quarantined** by renaming it to
    /// `<name>.quarantined`, so warm starts can never corrupt a live
    /// context, the next run does not trip over the same file, and the
    /// evidence survives for a post-mortem instead of being deleted.
    fn try_warm_import(dir: &Path, ctx: &SearchContext) {
        let path = dir.join(Self::cache_file_name(ctx));
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
            Err(e) => {
                // Exists but cannot be read as text (permissions, binary
                // garbage): quarantine rather than retry forever.
                Self::quarantine(&path, &e.to_string());
                return;
            }
        };
        if let Err(reason) = ctx.import_cost_table(&text) {
            Self::quarantine(&path, &reason);
        }
    }

    /// Moves a corrupt cache file aside (`<name>.quarantined`), keeping
    /// the bytes for inspection. Renaming is best-effort: on a read-only
    /// directory the file simply stays put and keeps being skipped.
    fn quarantine(path: &Path, reason: &str) {
        let mut target = path.as_os_str().to_os_string();
        target.push(".quarantined");
        let renamed = std::fs::rename(path, &target).is_ok();
        eprintln!(
            "warm-start cache {} is corrupt ({reason}); {}",
            path.display(),
            if renamed {
                "quarantined as .quarantined"
            } else {
                "quarantine rename failed, skipping it"
            }
        );
    }

    /// The wafer every pooled context plans on.
    pub fn wafer(&self) -> &WaferConfig {
        &self.wafer
    }

    /// The shared candidate enumeration (pointer-identical across every
    /// context this pool hands out).
    pub fn candidates(&self) -> Arc<Vec<HybridConfig>> {
        Arc::clone(&self.base_candidates)
    }

    /// The shared context for a `(model, workload)` pair: built on first
    /// request, returned warm afterwards. Distinct workloads on the same
    /// model get distinct contexts (the evaluation cache is only valid
    /// per workload).
    ///
    /// Sharing is by `Arc`, so context-scoped knobs — the cost tier, the
    /// gate parameters, the parallel switch — are shared too: flipping
    /// one holder's tier flips it for every solver built from this
    /// entry.
    pub fn context(&self, model: &ModelConfig, workload: &Workload) -> Arc<SearchContext> {
        let key = format!("{model:?}#{workload:?}");
        let mut contexts = self.contexts.lock().expect("pool lock");
        Arc::clone(contexts.entry(key).or_insert_with(|| {
            let ctx = Arc::new(SearchContext::with_shared_candidates(
                WaferCostModel::new(self.wafer.clone(), model.clone(), workload.clone()),
                Arc::clone(&self.base_candidates),
            ));
            if let Some(dir) = self.cache_dir.lock().expect("pool cache dir lock").as_ref() {
                Self::try_warm_import(dir, &ctx);
            }
            ctx
        }))
    }

    /// A solver over the pooled context for a `(model, workload)` pair.
    pub fn solver(&self, model: &ModelConfig, workload: &Workload) -> Dlws {
        Dlws::from_context(self.context(model, workload))
    }

    /// Every context the pool currently holds (unordered).
    pub fn contexts(&self) -> Vec<Arc<SearchContext>> {
        let map = self.contexts.lock().expect("pool lock");
        map.values().map(Arc::clone).collect()
    }

    /// Pool-wide search statistics: the per-context
    /// [`SearchContext::stats`] counters summed over every pooled
    /// context, plus the total number of distinct evaluation keys held
    /// (the denominator of the duplicate-work ratio). Serving layers
    /// report these; the phase timings and `adaptive_top_k` are
    /// per-context quantities and are summed only for completeness.
    pub fn aggregate_stats(&self) -> (crate::search::SearchStats, usize) {
        let mut total = crate::search::SearchStats::default();
        let mut unique_keys = 0usize;
        for ctx in self.contexts() {
            let s = ctx.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.coalesced += s.coalesced;
            total.shard_waits += s.shard_waits;
            total.exact_hits += s.exact_hits;
            total.exact_misses += s.exact_misses;
            total.gated_hits += s.gated_hits;
            total.gated_misses += s.gated_misses;
            total.gate_pruned += s.gate_pruned;
            total.seg_hits += s.seg_hits;
            total.seg_misses += s.seg_misses;
            total.adaptive_top_k += s.adaptive_top_k;
            total.bound_pruned += s.bound_pruned;
            total.dominated_pruned += s.dominated_pruned;
            total.enumerate_ns += s.enumerate_ns;
            total.bound_ns += s.bound_ns;
            total.exact_ns += s.exact_ns;
            total.gate_fit_ns += s.gate_fit_ns;
            total.contention_ns += s.contention_ns;
            unique_keys += ctx.eval_cache_len();
        }
        (total, unique_keys)
    }

    /// How many distinct `(model, workload)` contexts the pool holds.
    pub fn len(&self) -> usize {
        self.contexts.lock().expect("pool lock").len()
    }

    /// Whether the pool has handed out any context yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;

    #[test]
    fn contexts_are_shared_per_model_and_workload() {
        let pool = ContextPool::new(WaferConfig::hpca());
        assert!(pool.is_empty());
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        let a = pool.context(&model, &workload);
        let b = pool.context(&model, &workload);
        assert!(Arc::ptr_eq(&a, &b), "same key must return the same context");
        assert_eq!(pool.len(), 1);
        // A different workload on the same model is a distinct context.
        let other = pool.context(&model, &workload.clone().with_micro_batches(4));
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn save_and_load_round_trip_a_directory() {
        let dir = std::env::temp_dir().join(format!(
            "temp-pool-save-load-round-trip-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        let cfg = HybridConfig::tuple(2, 2, 1, 8);

        let cold = ContextPool::new(WaferConfig::hpca());
        let ctx = cold.context(&model, &workload);
        ctx.cost_of(&cfg, temp_mapping::engines::MappingEngine::Tcme);
        let cold_misses = ctx.stats().misses;
        assert!(cold_misses > 0);
        assert_eq!(cold.save_to(&dir).expect("save"), 1);

        // A fresh pool pointed at the directory builds warm contexts.
        let warm = ContextPool::new(WaferConfig::hpca());
        assert_eq!(warm.load_from(&dir).expect("load"), 1);
        let warm_ctx = warm.context(&model, &workload);
        let (cold_cost, _) = ctx.cost_of(&cfg, temp_mapping::engines::MappingEngine::Tcme);
        let (warm_cost, _) = warm_ctx.cost_of(&cfg, temp_mapping::engines::MappingEngine::Tcme);
        assert_eq!(warm_cost, cold_cost);
        assert_eq!(warm_ctx.stats().misses, 0, "warm solve must not evaluate");

        // Loading into a pool that already holds the context warms it too.
        let late = ContextPool::new(WaferConfig::hpca());
        let late_ctx = late.context(&model, &workload);
        assert_eq!(late.load_from(&dir).expect("load"), 1);
        late_ctx.cost_of(&cfg, temp_mapping::engines::MappingEngine::Tcme);
        assert_eq!(late_ctx.stats().misses, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_files_are_rejected_whole_and_quarantined() {
        let dir = std::env::temp_dir().join(format!("temp-pool-quarantine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let cold = ContextPool::new(WaferConfig::hpca());
        let ctx = cold.context(&model, &workload);
        ctx.cost_of(&cfg, temp_mapping::engines::MappingEngine::Tcme);
        cold.save_to(&dir).expect("save");
        let name = ContextPool::cache_file_name(&ctx);
        let good = std::fs::read_to_string(dir.join(&name)).expect("read good cache");

        let truncated = {
            // Cut mid-line so the last record is torn, not merely absent.
            let cut = good.len() * 2 / 3;
            let cut = (cut..good.len())
                .find(|&i| good.is_char_boundary(i))
                .unwrap();
            good.as_bytes()[..cut].to_vec()
        };
        let bit_flipped = good.replacen('.', "x", 1).into_bytes();
        let version_skewed = good
            .replacen("temp-cache v1", "temp-cache v9", 1)
            .into_bytes();
        let unreadable = vec![0xff, 0xfe, 0x80, 0x00, b'\n'];
        let cases: [(&str, Vec<u8>); 4] = [
            ("truncated", truncated),
            ("bit-flipped", bit_flipped),
            ("version-skewed", version_skewed),
            ("unreadable (non-UTF-8)", unreadable),
        ];
        for (what, bytes) in cases {
            std::fs::write(dir.join(&name), &bytes).expect("plant corrupt cache");
            let warm = ContextPool::new(WaferConfig::hpca());
            warm.load_from(&dir)
                .expect("load_from must not fail on corruption");
            let wctx = warm.context(&model, &workload);
            // All-or-nothing: nothing from the corrupt file was applied,
            // and the context still costs correctly from scratch.
            let (cost, _) = wctx.cost_of(&cfg, temp_mapping::engines::MappingEngine::Tcme);
            assert!(cost.is_finite(), "{what}: pool context must stay usable");
            assert!(
                wctx.stats().misses > 0,
                "{what}: a corrupt import must be rejected whole, not partially applied"
            );
            // Quarantined, not deleted: bytes moved aside for post-mortem.
            assert!(
                !dir.join(&name).exists(),
                "{what}: corrupt file must be moved out of the warm path"
            );
            let quarantined = dir.join(format!("{name}.quarantined"));
            assert!(
                quarantined.exists(),
                "{what}: quarantined copy must survive"
            );
            assert_eq!(
                std::fs::read(&quarantined).expect("read quarantined"),
                bytes,
                "{what}: quarantine must preserve the corrupt bytes verbatim"
            );
        }

        // A healthy file still round-trips after all that.
        std::fs::write(dir.join(&name), good.as_bytes()).expect("restore good cache");
        let warm = ContextPool::new(WaferConfig::hpca());
        warm.load_from(&dir).expect("load");
        let wctx = warm.context(&model, &workload);
        wctx.cost_of(&cfg, temp_mapping::engines::MappingEngine::Tcme);
        assert_eq!(
            wctx.stats().misses,
            0,
            "good cache must import after quarantines"
        );
        assert!(dir.join(&name).exists());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn models_share_one_candidate_enumeration() {
        let pool = ContextPool::new(WaferConfig::hpca());
        let m1 = ModelZoo::gpt3_6_7b();
        let m2 = ModelZoo::llama2_7b();
        let c1 = pool.context(&m1, &Workload::for_model(&m1));
        let c2 = pool.context(&m2, &Workload::for_model(&m2));
        assert!(!Arc::ptr_eq(&c1, &c2), "distinct models, distinct caches");
        assert!(
            Arc::ptr_eq(&c1.candidates_arc(), &c2.candidates_arc()),
            "wafer-level enumeration must be shared"
        );
        assert!(Arc::ptr_eq(&c1.candidates_arc(), &pool.candidates()));
    }
}
