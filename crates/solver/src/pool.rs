//! Cross-model context pool: share wafer-level search state across the
//! models of a zoo sweep.
//!
//! A [`crate::search::SearchContext`] memoizes evaluations for **one**
//! `(wafer, model, workload)` triple. Zoo sweeps (fig13's seven-system
//! comparison, fig18's scale/sequence grid) plan many models on the same
//! wafer; before the pool each model rebuilt the wafer-level state from
//! scratch — re-enumerating the candidate space — and repeated sweeps
//! over the same model rebuilt the whole context, discarding its warm
//! evaluation cache.
//!
//! [`ContextPool`] fixes both:
//!
//! * the **candidate enumeration** (a function of the die count alone) is
//!   computed once and shared by `Arc` across every pooled context;
//! * contexts are **keyed by `(model, workload)`** and handed out as
//!   shared `Arc`s, so asking for the same model twice returns the same
//!   warm context — a second sweep over the zoo is answered entirely from
//!   the caches the first sweep filled.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use temp_graph::models::ModelConfig;
use temp_graph::workload::Workload;
use temp_parallel::strategy::HybridConfig;
use temp_wsc::config::WaferConfig;

use crate::cost::WaferCostModel;
use crate::dlws::Dlws;
use crate::search::SearchContext;

/// A pool of shared search contexts for one wafer configuration.
#[derive(Debug)]
pub struct ContextPool {
    wafer: WaferConfig,
    base_candidates: Arc<Vec<HybridConfig>>,
    contexts: Mutex<HashMap<String, Arc<SearchContext>>>,
}

impl ContextPool {
    /// Creates a pool for one wafer, enumerating the candidate space once.
    pub fn new(wafer: WaferConfig) -> Self {
        let base_candidates = Arc::new(SearchContext::enumerate_base_candidates(wafer.die_count()));
        ContextPool {
            wafer,
            base_candidates,
            contexts: Mutex::new(HashMap::new()),
        }
    }

    /// The wafer every pooled context plans on.
    pub fn wafer(&self) -> &WaferConfig {
        &self.wafer
    }

    /// The shared candidate enumeration (pointer-identical across every
    /// context this pool hands out).
    pub fn candidates(&self) -> Arc<Vec<HybridConfig>> {
        Arc::clone(&self.base_candidates)
    }

    /// The shared context for a `(model, workload)` pair: built on first
    /// request, returned warm afterwards. Distinct workloads on the same
    /// model get distinct contexts (the evaluation cache is only valid
    /// per workload).
    ///
    /// Sharing is by `Arc`, so context-scoped knobs — the cost tier, the
    /// gate parameters, the parallel switch — are shared too: flipping
    /// one holder's tier flips it for every solver built from this
    /// entry.
    pub fn context(&self, model: &ModelConfig, workload: &Workload) -> Arc<SearchContext> {
        let key = format!("{model:?}#{workload:?}");
        let mut contexts = self.contexts.lock().expect("pool lock");
        Arc::clone(contexts.entry(key).or_insert_with(|| {
            Arc::new(SearchContext::with_shared_candidates(
                WaferCostModel::new(self.wafer.clone(), model.clone(), workload.clone()),
                Arc::clone(&self.base_candidates),
            ))
        }))
    }

    /// A solver over the pooled context for a `(model, workload)` pair.
    pub fn solver(&self, model: &ModelConfig, workload: &Workload) -> Dlws {
        Dlws::from_context(self.context(model, workload))
    }

    /// How many distinct `(model, workload)` contexts the pool holds.
    pub fn len(&self) -> usize {
        self.contexts.lock().expect("pool lock").len()
    }

    /// Whether the pool has handed out any context yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;

    #[test]
    fn contexts_are_shared_per_model_and_workload() {
        let pool = ContextPool::new(WaferConfig::hpca());
        assert!(pool.is_empty());
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        let a = pool.context(&model, &workload);
        let b = pool.context(&model, &workload);
        assert!(Arc::ptr_eq(&a, &b), "same key must return the same context");
        assert_eq!(pool.len(), 1);
        // A different workload on the same model is a distinct context.
        let other = pool.context(&model, &workload.clone().with_micro_batches(4));
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn models_share_one_candidate_enumeration() {
        let pool = ContextPool::new(WaferConfig::hpca());
        let m1 = ModelZoo::gpt3_6_7b();
        let m2 = ModelZoo::llama2_7b();
        let c1 = pool.context(&m1, &Workload::for_model(&m1));
        let c2 = pool.context(&m2, &Workload::for_model(&m2));
        assert!(!Arc::ptr_eq(&c1, &c2), "distinct models, distinct caches");
        assert!(
            Arc::ptr_eq(&c1.candidates_arc(), &c2.candidates_arc()),
            "wafer-level enumeration must be shared"
        );
        assert!(Arc::ptr_eq(&c1.candidates_arc(), &pool.candidates()));
    }
}
