//! The shared search pipeline behind every DLWS solve.
//!
//! A [`SearchContext`] owns everything that is invariant across solves of
//! one `(wafer, model, workload)` triple:
//!
//! * the **candidate enumeration** — computed once, reused by every
//!   engine/filter combination (per-solve pipeline degrees are applied as
//!   a cheap rewrite of the base tuples);
//! * the **resharding transition cost** — computed once per context
//!   instead of once per solve;
//! * a **memoized evaluation cache** keyed by
//!   `(HybridConfig, MappingEngine, RecomputeMode)` — the expensive part
//!   of a solve is costing candidates (each one maps traffic onto the
//!   wafer and runs the contention simulator), and baseline sweeps like
//!   `Temp::compare_all()` cost heavily overlapping candidate spaces;
//! * the **parallel costing** path — cache misses for a batch of
//!   candidates are filled on the persistent work-stealing runtime
//!   ([`crate::par`] over [`crate::runtime`]);
//! * **cross-process warmth** — the evaluation cache, segment table and
//!   gate predictor round-trip through plain text
//!   ([`SearchContext::export_cost_table`] /
//!   [`SearchContext::import_cost_table`]), fingerprint-keyed so imports
//!   can never cross wafers, models, workloads or cost-model revisions.
//!
//! Sharing a context across solves (clone the [`std::sync::Arc`]) turns
//! the seed behavior — seven baselines × full re-enumeration and
//! re-costing — into one costing pass per distinct evaluation key.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use temp_graph::segment::{SegmentChain, SegmentKind};
use temp_graph::workload::{RecomputeMode, Workload};
use temp_mapping::engines::MappingEngine;
use temp_parallel::strategy::HybridConfig;
use temp_wsc::fault::FaultMap;

use crate::cost::{CostReport, SegmentCost, WaferCostModel};
use crate::dp::{DpError, StageCuts};
use crate::par;
use crate::runtime::CancelToken;
use crate::shard::{Claim, FlightTable, ShardedMap};
use crate::surrogate_gate::{self, GateParams};

/// Memoization key: one cost-model evaluation is fully determined by the
/// configuration, the mapping engine and the recompute mode (the wafer,
/// model and the rest of the workload are fixed per context).
pub type EvalKey = (HybridConfig, MappingEngine, RecomputeMode);

/// Memoization key of the per-segment cost table: one entry per
/// `(SegmentKind, HybridConfig, engine, recompute)` — block instances are
/// identical, so the kind (not the instance index) keys the table.
pub type SegmentKey = (SegmentKind, HybridConfig, MappingEngine, RecomputeMode);

/// Memoization key of one stage-cut solve: the full argument tuple of
/// [`crate::dp::balance_stage_cuts`] / [`crate::dp::balance_weighted_cuts`]
/// — `(instances, wafers, floor-set)` plus the per-unit times, floats
/// carried as bits. The solvers are pure, so equal keys give identical
/// cuts (or the identical infeasibility verdict).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum StageCutKey {
    Uniform {
        blocks: u64,
        stages: usize,
        unit: u64,
        first: u64,
        last: u64,
        mins: Vec<u64>,
    },
    Weighted {
        weights: Vec<u64>,
        stages: usize,
        first: u64,
        last: u64,
        mins: Vec<u64>,
    },
}

/// Which evaluation pipeline batch costing runs (§VII-A).
///
/// * [`CostTier::Exact`] — every candidate pays the full cost model
///   (mapping + contention simulation). The default; bit-identical to the
///   pre-gate behavior.
/// * [`CostTier::SurrogateGated`] — a learned predictor ranks the batch
///   in microseconds, the exact model runs only on a stride-sampled
///   training set plus the top-K survivors (in surrogate-ranked order, so
///   the most promising candidates finish first), and everything the gate
///   prunes is reported infeasible without evaluation. The final DP/GA
///   ranking always consumes exact [`CostReport`]s, so the returned plan
///   is identical to exhaustive search whenever the exact winner survives
///   the gate — which the default [`GateParams`] guarantee across the
///   fig13 model zoo (asserted by `tests/two_tier.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostTier {
    /// Exact costing of every candidate.
    #[default]
    Exact,
    /// Surrogate-ranked shortlist, exact costing of survivors only.
    SurrogateGated,
}

/// A costed candidate: its objective (step time; infinite when nothing
/// fits memory) and, when feasible, the workload it was planned under
/// (recompute may have escalated) plus the full report.
pub type CandidateCost = (f64, Option<(Workload, CostReport)>);

/// Cache counters for one context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Evaluations answered from the cache.
    pub hits: u64,
    /// Evaluations that ran the cost model. Single-flight coalescing
    /// makes this equal to the number of distinct keys costed even under
    /// concurrent solves: a key's first claimant computes, every
    /// concurrent claimant counts under [`SearchStats::coalesced`]
    /// instead.
    pub misses: u64,
    /// Lookups that missed while another thread was already costing the
    /// same key: the caller parked on the in-flight evaluation (helping
    /// the runtime meanwhile) and observed the leader's stored report
    /// instead of recomputing. Each of these would have been a duplicate
    /// cost-model run before single-flight coalescing.
    pub coalesced: u64,
    /// Lock-shard acquisitions (cost table, segment table, collective
    /// memo) that found their shard contended and had to block — the
    /// residual serialization left after sharding.
    pub shard_waits: u64,
    /// Cache hits attributed to [`CostTier::Exact`] lookups.
    pub exact_hits: u64,
    /// Cost-model runs attributed to [`CostTier::Exact`] lookups.
    pub exact_misses: u64,
    /// Cache hits attributed to [`CostTier::SurrogateGated`] lookups
    /// (training samples, top-K survivors and fallback paths).
    pub gated_hits: u64,
    /// Cost-model runs attributed to [`CostTier::SurrogateGated`] lookups.
    pub gated_misses: u64,
    /// Candidates the surrogate gate pruned without exact evaluation.
    pub gate_pruned: u64,
    /// Per-segment cost-table lookups answered from the table.
    pub seg_hits: u64,
    /// Per-segment cost-table entries computed (closed-form; cheap, but
    /// counted so tests can assert the table is memoized).
    pub seg_misses: u64,
    /// The top-K the surrogate gate is currently using: the configured
    /// default until a gated batch has been observed, then adapted from
    /// rank-of-winner statistics (see
    /// [`SearchContext::effective_top_k`]).
    pub adaptive_top_k: u64,
    /// Candidates the admissible prefilter rejected outright (invalid
    /// degrees, disconnected fabric, or HBM overflow under every
    /// recompute escalation) — exactly the set the exact path would have
    /// reported infinite, skipped without evaluation.
    pub bound_pruned: u64,
    /// Candidates whose admissible lower bound exceeded the incumbent
    /// chain value, skipped without evaluation (see
    /// [`SearchContext::cost_candidates_chain`]).
    pub dominated_pruned: u64,
    /// Wall time (ns) spent enumerating the candidate space.
    pub enumerate_ns: u64,
    /// Wall time (ns) spent in the batched bound prefilter (bounds,
    /// end-segment floors, pruning decisions).
    pub bound_ns: u64,
    /// Wall time (ns) spent in exact batch costing (mapping + contention
    /// simulation of cache misses).
    pub exact_ns: u64,
    /// Wall time (ns) spent fitting surrogate gate predictors.
    pub gate_fit_ns: u64,
    /// Wall time (ns) spent deriving degraded fabrics (DegradedView +
    /// rerouted ContentionSim), attributed to the context that spawned
    /// the degraded sibling.
    pub contention_ns: u64,
}

impl SearchStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Hit rate of the exact-tier lookups alone.
    pub fn exact_hit_rate(&self) -> f64 {
        let total = self.exact_hits + self.exact_misses;
        if total == 0 {
            0.0
        } else {
            self.exact_hits as f64 / total as f64
        }
    }

    /// Hit rate of the gated-tier lookups alone.
    pub fn gated_hit_rate(&self) -> f64 {
        let total = self.gated_hits + self.gated_misses;
        if total == 0 {
            0.0
        } else {
            self.gated_hits as f64 / total as f64
        }
    }

    /// Hit rate of the per-segment cost table.
    pub fn segment_hit_rate(&self) -> f64 {
        let total = self.seg_hits + self.seg_misses;
        if total == 0 {
            0.0
        } else {
            self.seg_hits as f64 / total as f64
        }
    }

    /// Total candidates skipped without exact evaluation (prefilter +
    /// incumbent dominance).
    pub fn pruned_candidates(&self) -> u64 {
        self.bound_pruned + self.dominated_pruned
    }

    /// The phase timing breakdown in seconds:
    /// `(enumerate, bound, exact, gate_fit, contention)`.
    pub fn phase_seconds(&self) -> (f64, f64, f64, f64, f64) {
        let s = |ns: u64| ns as f64 / 1e9;
        (
            s(self.enumerate_ns),
            s(self.bound_ns),
            s(self.exact_ns),
            s(self.gate_fit_ns),
            s(self.contention_ns),
        )
    }
}

/// What [`SearchContext::import_cost_table`] brought in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportSummary {
    /// Whole-chain evaluation entries imported (including cached
    /// failures).
    pub evals: usize,
    /// Per-segment cost-table entries imported.
    pub segs: usize,
    /// Whether a gate predictor rode along (imported as authoritative —
    /// gated batches skip the per-batch fit).
    pub gate: bool,
    /// Memoized collective-kernel entries imported.
    pub colls: usize,
}

/// Shared, thread-safe search state for one `(wafer, model, workload)`
/// triple. See the module docs for what is amortized here.
#[derive(Debug)]
pub struct SearchContext {
    cost: WaferCostModel,
    /// The full intra-wafer candidate space (pp = 1): every power-of-two
    /// degree tuple, with and without FSDP sharding. `Arc` so a
    /// [`crate::pool::ContextPool`] can share one enumeration across every
    /// model planned on the same wafer.
    base_candidates: Arc<Vec<HybridConfig>>,
    /// Transition cost between two distinct configurations: the
    /// layer-boundary activation redistributed over the wafer bisection.
    /// Identical configurations transition for free.
    full_reshard: f64,
    /// Whether batch costing may fan out over threads.
    parallel: AtomicBool,
    /// Cooperative cancellation of batch costing: when set, the exact
    /// costing loops poll the token between candidates and report the
    /// remainder infeasible-without-evaluation once it fires. Skipped
    /// candidates are **not** written to the cache (a skip is not a
    /// verdict), so a later solve re-costs them.
    cancel: RwLock<Option<CancelToken>>,
    /// Which evaluation pipeline `cost_candidates` runs.
    tier: RwLock<CostTier>,
    /// Surrogate-gate tuning (stride, top-K, minimum batch size, model).
    gate: RwLock<GateParams>,
    /// The most recent gate predictor and whether it was imported.
    /// Imported predictors short-circuit the per-batch fit; locally
    /// fitted ones are only published for
    /// [`SearchContext::export_gate_predictor`] — every batch still fits
    /// its own (the per-degree winner-retention guarantee depends on
    /// per-batch fits).
    gate_predictor: RwLock<Option<(temp_surrogate::gate::GatePredictor, bool)>>,
    /// Whole-chain evaluation cache, sharded so concurrent solvers on
    /// different keys do not serialize on one lock.
    cache: ShardedMap<EvalKey, Option<CostReport>>,
    /// Single-flight claims over `cache` keys: when concurrent solves
    /// miss on the same key, one leader costs it and every follower
    /// parks on the flight (helping the runtime) instead of recomputing.
    flights: FlightTable<EvalKey>,
    /// Per-segment cost table — closed-form entries, memoized so repeated
    /// chain solves (and the gate's chain correction) featurize for free.
    seg_cache: ShardedMap<SegmentKey, Option<SegmentCost>>,
    /// Memoized stage-cut solves — sweep re-solves (pipeline multipliers,
    /// engines, campaign rate points) rediscover the same cut problems, so
    /// the parametric bottleneck search runs once per distinct key.
    stage_cuts: RwLock<HashMap<StageCutKey, Result<StageCuts, DpError>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Per-tier attribution of the hit/miss totals above, keyed by the
    /// tier active at lookup time — the diagnosis channel for low sweep
    /// hit rates (is the gate evaluating fresh keys, or is the exact path
    /// re-costing?).
    exact_hits: AtomicU64,
    exact_misses: AtomicU64,
    gated_hits: AtomicU64,
    gated_misses: AtomicU64,
    /// Lookups answered by parking on another thread's in-flight
    /// evaluation (see [`SearchStats::coalesced`]).
    coalesced: AtomicU64,
    pruned: AtomicU64,
    seg_hits: AtomicU64,
    seg_misses: AtomicU64,
    /// Max observed surrogate rank of a gated batch's exact winner, stored
    /// as `rank + 1` (0 = no observation yet).
    winner_rank: AtomicU64,
    /// Whether the chain costing path may skip candidates via the
    /// admissible prefilter + incumbent dominance (default on; turned off
    /// for exhaustive reference runs).
    pruning: AtomicBool,
    /// Configurations the chain path must evaluate in its seed chunk even
    /// when uncached — fault campaigns put the previous rate point's
    /// winner here so an incumbent exists immediately.
    bound_seeds: RwLock<Vec<HybridConfig>>,
    bound_pruned: AtomicU64,
    dominated_pruned: AtomicU64,
    enumerate_ns: AtomicU64,
    bound_ns: AtomicU64,
    exact_ns: AtomicU64,
    gate_fit_ns: AtomicU64,
    contention_ns: AtomicU64,
}

impl SearchContext {
    /// Builds a context: enumerates the candidate space and prices the
    /// resharding transition once. MoE models extend the dense
    /// enumeration with expert-parallel tuples (`ep > 1`, capped at the
    /// expert count) — see [`SearchContext::enumerate_moe_candidates`].
    pub fn new(cost: WaferCostModel) -> Self {
        let started = std::time::Instant::now();
        let dies = cost.wafer().die_count();
        let base = match cost.model().moe {
            Some(moe) => Arc::new(Self::enumerate_moe_candidates(
                dies,
                moe.num_experts as usize,
            )),
            None => Arc::new(Self::enumerate_base_candidates(dies)),
        };
        let elapsed = started.elapsed().as_nanos() as u64;
        let ctx = Self::with_shared_candidates(cost, base);
        ctx.enumerate_ns.fetch_add(elapsed, Ordering::Relaxed);
        ctx
    }

    /// The wafer-level candidate enumeration a context is built over —
    /// it depends only on the die count, so zoo sweeps on one wafer can
    /// compute it once and share it across models (see
    /// [`crate::pool::ContextPool`]).
    pub fn enumerate_base_candidates(dies: usize) -> Vec<HybridConfig> {
        let mut base_candidates = HybridConfig::enumerate_tuples(dies, false);
        base_candidates.extend(
            HybridConfig::enumerate_tuples(dies, true)
                .into_iter()
                .filter(|c| c.dp > 1),
        );
        base_candidates
    }

    /// The MoE candidate enumeration: the dense tuples (its `ep = 1`
    /// prefix, so dense segments keep their full space) extended with
    /// every expert-parallel degree up to `min(num_experts, dies)`. Dense
    /// models never see `ep > 1` candidates — their behavior (and eval
    /// count) is byte-identical to the pre-MoE pipeline.
    pub fn enumerate_moe_candidates(dies: usize, num_experts: usize) -> Vec<HybridConfig> {
        let max_ep = num_experts.min(dies);
        let mut out = HybridConfig::enumerate_tuples_ep(dies, false, max_ep);
        out.extend(
            HybridConfig::enumerate_tuples_ep(dies, true, max_ep)
                .into_iter()
                .filter(|c| c.dp > 1),
        );
        out
    }

    /// As [`SearchContext::new`] with an externally-shared candidate
    /// enumeration. A pooled (dense) enumeration handed to a MoE model is
    /// extended with the expert-parallel tuples; dense models must be
    /// given candidates covering this wafer's die count.
    pub fn with_shared_candidates(
        cost: WaferCostModel,
        base_candidates: Arc<Vec<HybridConfig>>,
    ) -> Self {
        let started = std::time::Instant::now();
        let dies = cost.wafer().die_count();
        let base_candidates = match cost.model().moe {
            Some(moe) if base_candidates.iter().all(|c| c.ep == 1) => Arc::new(
                Self::enumerate_moe_candidates(dies, moe.num_experts as usize),
            ),
            _ => base_candidates,
        };
        let enumerate_ns = started.elapsed().as_nanos() as u64;
        debug_assert!(base_candidates
            .iter()
            .all(|c| c.intra_wafer_degree() * c.ep == dies));

        // All-to-all of one layer-boundary activation over the wafer
        // bisection, approximated as sqrt(dies) rows of links.
        let model = cost.model();
        let workload = cost.workload();
        let act_bytes = workload.micro_batch_size() as f64
            * workload.seq_len as f64
            * model.hidden as f64
            * workload.compute_dtype.bytes() as f64;
        let bisection = cost.wafer().d2d.bandwidth * (dies as f64).sqrt();
        let full_reshard = act_bytes / bisection;

        SearchContext {
            cost,
            base_candidates,
            full_reshard,
            parallel: AtomicBool::new(true),
            cancel: RwLock::new(None),
            tier: RwLock::new(CostTier::Exact),
            gate: RwLock::new(GateParams::default()),
            gate_predictor: RwLock::new(None),
            cache: ShardedMap::new(),
            flights: FlightTable::new(),
            seg_cache: ShardedMap::new(),
            stage_cuts: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            exact_hits: AtomicU64::new(0),
            exact_misses: AtomicU64::new(0),
            gated_hits: AtomicU64::new(0),
            gated_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            seg_hits: AtomicU64::new(0),
            seg_misses: AtomicU64::new(0),
            winner_rank: AtomicU64::new(0),
            pruning: AtomicBool::new(true),
            bound_seeds: RwLock::new(Vec::new()),
            bound_pruned: AtomicU64::new(0),
            dominated_pruned: AtomicU64::new(0),
            enumerate_ns: AtomicU64::new(enumerate_ns),
            bound_ns: AtomicU64::new(0),
            exact_ns: AtomicU64::new(0),
            gate_fit_ns: AtomicU64::new(0),
            contention_ns: AtomicU64::new(0),
        }
    }

    /// The model's segment chain IR (embedding -> blocks -> head), built
    /// once by the cost model.
    pub fn chain(&self) -> &SegmentChain {
        self.cost.chain()
    }

    /// Memoized per-segment cost of one `(kind, config, engine, recompute)`
    /// key. `None` records "the segment could not be evaluated" (invalid
    /// configuration), exactly like the whole-chain cache.
    pub fn segment_cost(
        &self,
        kind: SegmentKind,
        cfg: &HybridConfig,
        engine: MappingEngine,
        mode: RecomputeMode,
    ) -> Option<SegmentCost> {
        let key = (kind, *cfg, engine, mode);
        if let Some(cached) = self.seg_cache.get(&key) {
            self.seg_hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.seg_misses.fetch_add(1, Ordering::Relaxed);
        let segment = self.cost.chain().find(kind)?;
        let workload = self.cost.workload().clone().with_recompute(mode);
        let result = self
            .cost
            .evaluate_segment_with(segment, cfg, &workload)
            .ok();
        self.seg_cache.insert_if_absent(key, result)
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &WaferCostModel {
        &self.cost
    }

    /// The base (pp = 1) candidate space, enumerated once at construction.
    pub fn candidates(&self) -> &[HybridConfig] {
        &self.base_candidates
    }

    /// The shared handle behind [`SearchContext::candidates`] — pooled
    /// contexts on one wafer return pointer-identical enumerations.
    pub fn candidates_arc(&self) -> Arc<Vec<HybridConfig>> {
        Arc::clone(&self.base_candidates)
    }

    /// The base candidates with a fixed pipeline degree applied
    /// (multi-wafer planning fixes `pp` to the wafer count).
    pub fn candidates_with_pp(&self, pp: usize) -> Vec<HybridConfig> {
        self.base_candidates
            .iter()
            .map(|c| HybridConfig {
                pp: pp.max(1),
                ..*c
            })
            .collect()
    }

    /// Enables/disables threaded batch costing (default: enabled; a
    /// single-core machine degrades to the serial path either way).
    pub fn set_parallel(&self, on: bool) {
        self.parallel.store(on, Ordering::Relaxed);
    }

    /// Whether batch costing fans out over threads.
    pub fn parallel(&self) -> bool {
        self.parallel.load(Ordering::Relaxed)
    }

    /// Installs (or clears) the cooperative cancellation token the exact
    /// costing loops poll. Deadline-bounded solves set a
    /// [`CancelToken::with_deadline`] token, run, then clear it so the
    /// shared context keeps serving unbounded solves afterwards.
    pub fn set_cancel_token(&self, token: Option<CancelToken>) {
        *self.cancel.write().expect("cancel lock") = token;
    }

    /// The currently installed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.cancel.read().expect("cancel lock").clone()
    }

    /// A sibling context planning on the degraded fabric `faults`
    /// describes: same `(model, workload)`, fault-derated cost model (see
    /// [`WaferCostModel::with_fault_map`]), and the **shared** candidate
    /// enumeration (it depends only on the die count — faults do not
    /// change which degree tuples exist, only which are feasible). The
    /// caches start empty: degraded evaluations live under a different
    /// fingerprint and must never mix with healthy entries.
    pub fn derated(&self, faults: &FaultMap) -> SearchContext {
        let started = std::time::Instant::now();
        let ctx =
            SearchContext::with_shared_candidates(self.cost.derated(faults), self.candidates_arc());
        // Deriving the DegradedView and the rerouted ContentionSim is the
        // expensive part of spawning a degraded sibling; attribute it to
        // the parent so campaign profiles show where fault sweeps spend.
        self.contention_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        ctx
    }

    /// Enables/disables bound pruning in the chain costing path
    /// (default: enabled). Exhaustive reference runs (tests, benchmark
    /// baselines) disable it; plans are bit-identical either way — the
    /// flag only changes how many candidates pay the exact cost model.
    pub fn set_pruning(&self, on: bool) {
        self.pruning.store(on, Ordering::Relaxed);
    }

    /// Whether the chain costing path may prune.
    pub fn pruning(&self) -> bool {
        self.pruning.load(Ordering::Relaxed)
    }

    /// Seeds the chain path's incumbent: these configurations are
    /// force-included in the first exact chunk even on a cold cache.
    /// Fault campaigns pass the previous rate point's winner so dominance
    /// pruning engages immediately.
    pub fn set_bound_seeds(&self, seeds: Vec<HybridConfig>) {
        *self.bound_seeds.write().expect("bound seeds lock") = seeds;
    }

    /// Selects the evaluation pipeline for batch costing (default:
    /// [`CostTier::Exact`]).
    pub fn set_cost_tier(&self, tier: CostTier) {
        *self.tier.write().expect("tier lock") = tier;
    }

    /// The active evaluation pipeline.
    pub fn cost_tier(&self) -> CostTier {
        *self.tier.read().expect("tier lock")
    }

    /// Overrides the surrogate-gate tuning parameters.
    pub fn set_gate_params(&self, params: GateParams) {
        *self.gate.write().expect("gate lock") = params;
    }

    /// The surrogate-gate tuning parameters.
    pub fn gate_params(&self) -> GateParams {
        *self.gate.read().expect("gate lock")
    }

    /// The current gate predictor (last fitted or imported), if any.
    pub fn gate_predictor(&self) -> Option<temp_surrogate::gate::GatePredictor> {
        self.gate_predictor
            .read()
            .expect("gate predictor lock")
            .as_ref()
            .map(|(p, _)| p.clone())
    }

    /// The imported warm predictor, if one was set — only these may skip
    /// the per-batch fit.
    pub(crate) fn imported_gate_predictor(&self) -> Option<temp_surrogate::gate::GatePredictor> {
        self.gate_predictor
            .read()
            .expect("gate predictor lock")
            .as_ref()
            .and_then(|(p, imported)| imported.then(|| p.clone()))
    }

    /// Publishes a locally fitted gate predictor (internal to the gate).
    /// Never overwrites an imported one — the import stays authoritative
    /// until cleared by another import.
    pub(crate) fn store_gate_predictor(&self, p: temp_surrogate::gate::GatePredictor) {
        let mut slot = self.gate_predictor.write().expect("gate predictor lock");
        match slot.as_ref() {
            Some((_, true)) => {}
            _ => *slot = Some((p, false)),
        }
    }

    /// Serializes the current gate predictor so a warm fit can cross
    /// contexts (processes, even machines — it is plain text). Returns
    /// `None` before any gated batch has fitted one.
    pub fn export_gate_predictor(&self) -> Option<String> {
        self.gate_predictor().map(|p| p.to_text())
    }

    /// Imports a predictor persisted by
    /// [`SearchContext::export_gate_predictor`]. Gated batches whose
    /// feature layout matches the import skip the per-batch fit and rank
    /// with it directly; mismatched layouts fall back to fitting. The
    /// caller owns semantic compatibility — import predictors fitted on
    /// the same `(model, workload)` family, or ranking quality silently
    /// degrades to whatever the foreign fit generalizes to (the
    /// winner-retention fallback paths still apply either way).
    ///
    /// # Errors
    ///
    /// Returns the parse error of a malformed predictor text.
    pub fn import_gate_predictor(&self, text: &str) -> std::result::Result<(), String> {
        let p = temp_surrogate::gate::GatePredictor::from_text(text)?;
        *self.gate_predictor.write().expect("gate predictor lock") = Some((p, true));
        Ok(())
    }

    /// Serializes the full warm state of this context — the whole-chain
    /// evaluation cache (including memoized *failures*), the per-segment
    /// cost table, the observed winner-rank statistic and the gate
    /// predictor — as plain text, keyed by
    /// [`WaferCostModel::fingerprint`]. A fresh context importing this
    /// re-solves the same searches with near-zero exact evaluations.
    ///
    /// Format (line-oriented, floats `{:?}`-rendered so they round-trip
    /// bit-exactly):
    ///
    /// ```text
    /// temp-cache v1 <fingerprint as 16 hex digits>
    /// evals <n>
    /// E <dp> <fsdp> <tp> <sp> <cp> <tatp> <ep> <pp> <engine> <mode> <report | ->
    /// segs <n>
    /// S <kind> <dp> ... <pp> <engine> <mode> <segment-cost | ->
    /// winner_rank <r>
    /// gate <lines>
    /// <gate predictor text, verbatim>
    /// coll <n>
    /// C <kind> <participants> <bytes-bits> <raw-time>
    /// ```
    ///
    /// Records are sorted, so exporting the same state twice yields
    /// byte-identical text (HashMap iteration order never leaks out).
    pub fn export_cost_table(&self) -> String {
        use crate::persist;
        use std::fmt::Write as _;

        let mut out = format!("temp-cache v1 {:016x}\n", self.cost.fingerprint());

        let mut evals: Vec<String> = self
            .cache
            .snapshot()
            .into_iter()
            .map(|((cfg, engine, mode), report)| {
                let payload = match report {
                    Some(r) => persist::encode_report(&r),
                    None => "-".to_string(),
                };
                format!(
                    "E {} {} {} {payload}",
                    persist::encode_cfg(&cfg),
                    persist::engine_code(engine),
                    persist::mode_code(mode),
                )
            })
            .collect();
        evals.sort_unstable();
        writeln!(out, "evals {}", evals.len()).expect("write to string");
        for line in evals {
            out.push_str(&line);
            out.push('\n');
        }

        let mut segs: Vec<String> = self
            .seg_cache
            .snapshot()
            .into_iter()
            .map(|((kind, cfg, engine, mode), cost)| {
                let payload = match cost {
                    Some(sc) => persist::encode_segment_cost(&sc),
                    None => "-".to_string(),
                };
                format!(
                    "S {} {} {} {} {payload}",
                    kind.code(),
                    persist::encode_cfg(&cfg),
                    persist::engine_code(engine),
                    persist::mode_code(mode),
                )
            })
            .collect();
        segs.sort_unstable();
        writeln!(out, "segs {}", segs.len()).expect("write to string");
        for line in segs {
            out.push_str(&line);
            out.push('\n');
        }

        writeln!(
            out,
            "winner_rank {}",
            self.winner_rank.load(Ordering::Relaxed)
        )
        .expect("write to string");

        match self.export_gate_predictor() {
            Some(text) => {
                let trimmed = text.trim_end_matches('\n');
                writeln!(out, "gate {}", trimmed.lines().count()).expect("write to string");
                out.push_str(trimmed);
                out.push('\n');
            }
            None => out.push_str("gate 0\n"),
        }

        // The memoized collective kernel rides along as a trailing
        // section (older files simply end after the gate — imports treat
        // a missing section as empty).
        let mut colls: Vec<String> = self
            .cost
            .collective_table_entries()
            .into_iter()
            .map(|(kind, n, bits, time)| {
                format!("C {} {n} {bits} {time:?}", persist::collective_code(kind))
            })
            .collect();
        colls.sort_unstable();
        writeln!(out, "coll {}", colls.len()).expect("write to string");
        for line in colls {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Imports a cache persisted by [`SearchContext::export_cost_table`]
    /// into this context, merging entry by entry (existing entries win —
    /// an import never clobbers state the live context already computed).
    /// The winner-rank statistic merges by maximum and an embedded gate
    /// predictor is imported as authoritative (as if by
    /// [`SearchContext::import_gate_predictor`]).
    ///
    /// Imported entries touch neither the hit nor the miss counters:
    /// stats keep measuring what *this* process computed and reused.
    ///
    /// # Errors
    ///
    /// Rejects text whose header, fingerprint (wrong wafer/model/workload
    /// or cost-model revision — see [`crate::cost::COST_MODEL_VERSION`])
    /// or any record is malformed; on error the context is left exactly
    /// as it was (the import is parsed fully before anything is merged).
    pub fn import_cost_table(&self, text: &str) -> std::result::Result<ImportSummary, String> {
        use crate::persist::{self, Fields};

        let mut lines = text.lines();
        let header = lines.next().ok_or("empty cache text")?;
        let mut f = Fields::new(header);
        if f.next()? != "temp-cache" || f.next()? != "v1" {
            return Err(format!("not a temp-cache v1 header: {header:?}"));
        }
        let fp = u64::from_str_radix(f.next()?, 16).map_err(|e| format!("bad fingerprint: {e}"))?;
        f.finish()?;
        let own = self.cost.fingerprint();
        if fp != own {
            return Err(format!(
                "cache fingerprint {fp:016x} does not match this context's {own:016x} \
                 (different wafer, model, workload or cost-model version)"
            ));
        }

        let section = |lines: &mut std::str::Lines, name: &str| -> Result<usize, String> {
            let line = lines
                .next()
                .ok_or_else(|| format!("missing {name} section"))?;
            let mut f = Fields::new(line);
            if f.next()? != name {
                return Err(format!("expected {name} section, got {line:?}"));
            }
            let n = f.usize()?;
            f.finish()?;
            Ok(n)
        };

        // Parse everything first; merge only a fully-valid import.
        let n_evals = section(&mut lines, "evals")?;
        let mut evals = Vec::with_capacity(n_evals);
        for _ in 0..n_evals {
            let line = lines.next().ok_or("truncated evals section")?;
            let mut f = Fields::new(line);
            if f.next()? != "E" {
                return Err(format!("expected E record, got {line:?}"));
            }
            let cfg = persist::decode_cfg(&mut f)?;
            let engine = persist::engine_from_code(f.u64()? as u8)?;
            let mode = persist::mode_from_code(f.u64()? as u8)?;
            let report = if f.takes_none_marker() {
                None
            } else {
                Some(persist::decode_report(cfg, engine, &mut f)?)
            };
            f.finish()?;
            evals.push(((cfg, engine, mode), report));
        }

        let n_segs = section(&mut lines, "segs")?;
        let mut segs = Vec::with_capacity(n_segs);
        for _ in 0..n_segs {
            let line = lines.next().ok_or("truncated segs section")?;
            let mut f = Fields::new(line);
            if f.next()? != "S" {
                return Err(format!("expected S record, got {line:?}"));
            }
            let kind = persist::kind_from_code(f.u64()? as u8)?;
            let cfg = persist::decode_cfg(&mut f)?;
            let engine = persist::engine_from_code(f.u64()? as u8)?;
            let mode = persist::mode_from_code(f.u64()? as u8)?;
            let cost = if f.takes_none_marker() {
                None
            } else {
                Some(persist::decode_segment_cost(kind, &mut f)?)
            };
            f.finish()?;
            segs.push(((kind, cfg, engine, mode), cost));
        }

        let rank_line = lines.next().ok_or("missing winner_rank")?;
        let mut f = Fields::new(rank_line);
        if f.next()? != "winner_rank" {
            return Err(format!("expected winner_rank, got {rank_line:?}"));
        }
        let rank = f.u64()?;
        f.finish()?;

        let gate_lines = section(&mut lines, "gate")?;
        let gate_text = if gate_lines > 0 {
            let collected: Vec<&str> = (&mut lines).take(gate_lines).collect();
            if collected.len() < gate_lines {
                return Err("truncated gate section".into());
            }
            Some(collected.join("\n"))
        } else {
            None
        };

        // Trailing collective-kernel section; files persisted before the
        // kernel existed simply end here, which imports as "no entries".
        let mut colls: Vec<crate::cost::CollectiveEntry> = Vec::new();
        if let Some(line) = lines.next() {
            let mut f = Fields::new(line);
            if f.next()? != "coll" {
                return Err(format!("expected coll section, got {line:?}"));
            }
            let n_colls = f.usize()?;
            f.finish()?;
            colls.reserve(n_colls);
            for _ in 0..n_colls {
                let line = lines.next().ok_or("truncated coll section")?;
                let mut f = Fields::new(line);
                if f.next()? != "C" {
                    return Err(format!("expected C record, got {line:?}"));
                }
                let kind = persist::collective_from_code(f.u64()? as u8)?;
                let participants = f.u64()? as u32;
                let bits = f.u64()?;
                let time = f.f64()?;
                f.finish()?;
                colls.push((kind, participants, bits, time));
            }
        }

        // All parsed — merge.
        let summary = ImportSummary {
            evals: evals.len(),
            segs: segs.len(),
            gate: gate_text.is_some(),
            colls: colls.len(),
        };
        for (key, report) in evals {
            self.cache.insert_if_absent(key, report);
        }
        for (key, cost) in segs {
            self.seg_cache.insert_if_absent(key, cost);
        }
        self.winner_rank.fetch_max(rank, Ordering::Relaxed);
        if let Some(text) = gate_text {
            self.import_gate_predictor(&text)?;
        }
        self.cost.merge_collective_entries(&colls);
        Ok(summary)
    }

    /// Records candidates skipped by the surrogate gate (internal).
    pub(crate) fn note_pruned(&self, n: u64) {
        self.pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records the surrogate rank at which a gated batch's exact winner
    /// was found (internal; feeds [`SearchContext::effective_top_k`]).
    pub(crate) fn observe_winner_rank(&self, rank: usize) {
        self.winner_rank
            .fetch_max(rank as u64 + 1, Ordering::Relaxed);
    }

    /// The top-K the surrogate gate should use *now*: the configured
    /// default until the first gated batch completes, afterwards adapted
    /// from the observed rank-of-winner statistics — twice the worst rank
    /// at which an exact winner has been found (safety margin), clamped to
    /// `[default, 2 x default]`.
    ///
    /// Adaptation only ever **widens** the shortlist: a winner that gets
    /// pruned is unobservable (the gate never learns its rank), so
    /// shrinking below the empirically-safe default could silently break
    /// the winner-retention guarantee with no signal to recover from.
    /// Deep observed winners widen K; a well-ranked history keeps the
    /// default.
    pub fn effective_top_k(&self) -> usize {
        let params = self.gate_params();
        if !params.adaptive {
            return params.top_k;
        }
        match self.winner_rank.load(Ordering::Relaxed) {
            0 => params.top_k,
            observed => (2 * observed as usize).clamp(params.top_k, 2 * params.top_k.max(1)),
        }
    }

    /// Per-step DP-row costs of one segment kind over a candidate list:
    /// `count x micro_batches x` the memoized per-instance segment time,
    /// `INFINITY` where the segment's own footprint does not fit a die.
    /// When *every* candidate fails the per-segment check the row is
    /// rebuilt without it (the check is a necessary-condition heuristic;
    /// whole-chain feasibility is settled by the exact evaluation), so the
    /// chain objective never silently drops a segment's real cost.
    ///
    /// This is the single source of the end-segment rows for both the
    /// chain DP (`Dlws`) and the surrogate gate's chain correction — they
    /// must agree or the winner-retention guarantee degrades.
    pub fn segment_step_costs(
        &self,
        kind: SegmentKind,
        candidates: &[HybridConfig],
        engine: MappingEngine,
        mode: RecomputeMode,
    ) -> Vec<f64> {
        let count = self.cost.chain().find(kind).map(|s| s.count).unwrap_or(1) as f64;
        let micro = self.cost.workload().micro_batches.max(1) as f64;
        let row_with = |require_fit: bool| -> Vec<f64> {
            candidates
                .iter()
                .map(|cfg| match self.segment_cost(kind, cfg, engine, mode) {
                    Some(sc) if sc.fits_memory || !require_fit => sc.time * count * micro,
                    _ => f64::INFINITY,
                })
                .collect()
        };
        let row = row_with(true);
        if row.iter().all(|t| !t.is_finite()) {
            row_with(false)
        } else {
            row
        }
    }

    /// Resharding (transition) cost between two candidate configurations.
    pub fn resharding_cost(&self, a: &HybridConfig, b: &HybridConfig) -> f64 {
        if a == b {
            0.0
        } else {
            self.full_reshard
        }
    }

    /// The off-diagonal resharding cost (one layer-boundary activation
    /// over the wafer bisection) — what any two distinct strategies pay
    /// per boundary crossing.
    pub fn full_reshard_cost(&self) -> f64 {
        self.full_reshard
    }

    /// Distinct evaluation keys the whole-chain cache holds (computed,
    /// coalesced or imported). The denominator of the duplicate-work
    /// ratio serving benchmarks report: `misses / eval_cache_len` stays
    /// at 1.0 when single-flight coalescing absorbs every concurrent
    /// duplicate.
    pub fn eval_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Cache counters so far.
    pub fn stats(&self) -> SearchStats {
        SearchStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            shard_waits: self.cache.waits()
                + self.seg_cache.waits()
                + self.cost.collective_shard_waits(),
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            exact_misses: self.exact_misses.load(Ordering::Relaxed),
            gated_hits: self.gated_hits.load(Ordering::Relaxed),
            gated_misses: self.gated_misses.load(Ordering::Relaxed),
            gate_pruned: self.pruned.load(Ordering::Relaxed),
            seg_hits: self.seg_hits.load(Ordering::Relaxed),
            seg_misses: self.seg_misses.load(Ordering::Relaxed),
            adaptive_top_k: self.effective_top_k() as u64,
            bound_pruned: self.bound_pruned.load(Ordering::Relaxed),
            dominated_pruned: self.dominated_pruned.load(Ordering::Relaxed),
            enumerate_ns: self.enumerate_ns.load(Ordering::Relaxed),
            bound_ns: self.bound_ns.load(Ordering::Relaxed),
            exact_ns: self.exact_ns.load(Ordering::Relaxed),
            gate_fit_ns: self.gate_fit_ns.load(Ordering::Relaxed),
            contention_ns: self.contention_ns.load(Ordering::Relaxed),
        }
    }

    /// Records time spent fitting a gate predictor (internal to the
    /// surrogate gate).
    pub(crate) fn note_gate_fit_ns(&self, ns: u64) {
        self.gate_fit_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// The per-tier attribution counter for a hit (`true`) or miss under
    /// the tier active right now.
    fn tier_counter(&self, hit: bool) -> &AtomicU64 {
        match (self.cost_tier(), hit) {
            (CostTier::Exact, true) => &self.exact_hits,
            (CostTier::Exact, false) => &self.exact_misses,
            (CostTier::SurrogateGated, true) => &self.gated_hits,
            (CostTier::SurrogateGated, false) => &self.gated_misses,
        }
    }

    /// Memoized single evaluation. `None` records "the cost model could
    /// not evaluate this key" (e.g. the configuration cannot be laid
    /// out), so failures are not retried either.
    ///
    /// Concurrent misses on the same key are **single-flighted**: the
    /// first claimant costs it, every concurrent claimant parks on the
    /// in-flight evaluation — helping the shared runtime drain tasks
    /// while it waits, so it never convoys idle behind the leader's own
    /// fan-out — and all observers get the identical stored report. A
    /// leader that panics retires its flight without publishing; a
    /// parked follower then re-claims and computes.
    pub fn evaluate(
        &self,
        cfg: &HybridConfig,
        engine: MappingEngine,
        mode: RecomputeMode,
    ) -> Option<CostReport> {
        let key = (*cfg, engine, mode);
        loop {
            if let Some(cached) = self.cache.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.tier_counter(true).fetch_add(1, Ordering::Relaxed);
                return cached;
            }
            match self.flights.claim(key) {
                Claim::Leader(lease) => {
                    // Re-check under the claim: a previous leader may
                    // have published between our miss and our claim.
                    if let Some(cached) = self.cache.get(&key) {
                        drop(lease);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.tier_counter(true).fetch_add(1, Ordering::Relaxed);
                        return cached;
                    }
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    self.tier_counter(false).fetch_add(1, Ordering::Relaxed);
                    let workload = self.cost.workload().clone().with_recompute(mode);
                    let result = self.cost.evaluate_with(cfg, engine, &workload).ok();
                    // Publish before retiring the flight, so woken
                    // followers find the entry.
                    let stored = self.cache.insert_if_absent(key, result);
                    drop(lease);
                    return stored;
                }
                Claim::Follower(flight) => {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    let pool = crate::runtime::global();
                    flight.wait(|| pool.help_one());
                    // Loop: the leader published (next peek hits), or
                    // died without publishing (we claim leadership).
                }
            }
        }
    }

    /// As [`SearchContext::cost_of`] but answered purely from the cache:
    /// returns `None` when the cached entries cannot determine the
    /// outcome (some mode on the escalation path is not cached yet).
    /// Never evaluates and never touches the hit/miss counters — the
    /// surrogate gate uses this so pruning a warm context still surfaces
    /// the exact results it already owns.
    pub(crate) fn cost_of_cached(
        &self,
        cfg: &HybridConfig,
        engine: MappingEngine,
    ) -> Option<CandidateCost> {
        let base_mode = self.cost.workload().recompute;
        let mut tried_base = false;
        for mode in [base_mode, RecomputeMode::Full] {
            if tried_base && mode == base_mode {
                continue;
            }
            tried_base = true;
            match self.cache.get(&(*cfg, engine, mode))? {
                Some(report) if report.fits_memory => {
                    let workload = self.cost.workload().clone().with_recompute(mode);
                    return Some((report.step_time, Some((workload, report))));
                }
                // Cached OOM or layout failure: try the next mode, exactly
                // like `cost_of`'s escalation.
                _ => {}
            }
        }
        Some((f64::INFINITY, None))
    }

    /// Costs a candidate, escalating recompute on OOM; infeasible
    /// candidates get infinite cost. Never mutates cached state — the
    /// returned payload is a clone, so the context stays valid across
    /// arbitrarily many solves.
    pub fn cost_of(&self, cfg: &HybridConfig, engine: MappingEngine) -> CandidateCost {
        let base_mode = self.cost.workload().recompute;
        let mut tried_base = false;
        for mode in [base_mode, RecomputeMode::Full] {
            if tried_base && mode == base_mode {
                continue;
            }
            tried_base = true;
            if let Some(report) = self.evaluate(cfg, engine, mode) {
                if report.fits_memory {
                    let workload = self.cost.workload().clone().with_recompute(mode);
                    return (report.step_time, Some((workload, report)));
                }
            }
        }
        (f64::INFINITY, None)
    }

    /// Resolves one `(candidate, mode)` wave of a batched costing pass:
    /// for every index in `need`, the cached-or-computed report under
    /// `mode`, aligned with `need`. Distinct misses this wave *leads*
    /// (first single-flight claimant) run through
    /// [`WaferCostModel::evaluate_batch`] (hoisted once per runtime-sized
    /// chunk); misses another solve is already costing are **coalesced**
    /// — this wave computes its own leaders first, then parks on the
    /// foreign flights (helping the runtime, so it may well execute the
    /// leader's chunks) and serves their stored reports. Counter
    /// semantics match [`SearchContext::evaluate`] exactly: one hit per
    /// cache serve (including duplicate occurrences beyond a key's
    /// first and coalesced serves), one miss per report this call
    /// computed.
    fn resolve_mode_batched(
        &self,
        candidates: &[HybridConfig],
        need: &[usize],
        engine: MappingEngine,
        mode: RecomputeMode,
    ) -> Vec<Option<CostReport>> {
        let mut out: Vec<Option<Option<CostReport>>> = vec![None; need.len()];
        let mut missing: Vec<usize> = Vec::new();
        for (slot, &ci) in need.iter().enumerate() {
            match self.cache.get(&(candidates[ci], engine, mode)) {
                Some(cached) => out[slot] = Some(cached),
                None => missing.push(slot),
            }
        }
        let hits = (need.len() - missing.len()) as u64;
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
            self.tier_counter(true).fetch_add(hits, Ordering::Relaxed);
        }
        if missing.is_empty() {
            return out.into_iter().map(|o| o.expect("resolved")).collect();
        }
        // Distinct missing keys, first occurrence first — groups may
        // repeat a configuration; it is computed once and every later
        // occurrence is a cache serve, exactly as sequential costing
        // would count it.
        let mut first_pos: HashMap<HybridConfig, usize> = HashMap::new();
        let mut uniques: Vec<HybridConfig> = Vec::new();
        for &slot in &missing {
            let cfg = candidates[need[slot]];
            first_pos.entry(cfg).or_insert_with(|| {
                uniques.push(cfg);
                uniques.len() - 1
            });
        }
        // Claim every unique: keys we lead are ours to compute; keys a
        // concurrent solve is already costing are followed after our own
        // batch lands (never before — leaders must not block on foreign
        // flights while holding leases, or two waves leading each
        // other's followers would deadlock).
        let mut leaders: Vec<HybridConfig> = Vec::with_capacity(uniques.len());
        let mut leader_uis: Vec<usize> = Vec::with_capacity(uniques.len());
        let mut leases: Vec<crate::shard::FlightLease<'_, EvalKey>> = Vec::new();
        let mut followed: Vec<(usize, std::sync::Arc<crate::shard::Flight>)> = Vec::new();
        let mut resolved: Vec<Option<Option<CostReport>>> = vec![None; uniques.len()];
        for (ui, cfg) in uniques.iter().enumerate() {
            let key = (*cfg, engine, mode);
            match self.flights.claim(key) {
                Claim::Leader(lease) => match self.cache.get(&key) {
                    // Lost race: a previous leader published between the
                    // peek wave and our claim.
                    Some(cached) => {
                        drop(lease);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.tier_counter(true).fetch_add(1, Ordering::Relaxed);
                        resolved[ui] = Some(cached);
                    }
                    None => {
                        leaders.push(*cfg);
                        leader_uis.push(ui);
                        leases.push(lease);
                    }
                },
                Claim::Follower(flight) => followed.push((ui, flight)),
            }
        }
        if !leaders.is_empty() {
            let workload = self.cost.workload().clone().with_recompute(mode);
            let computed: Vec<Option<CostReport>> = if self.parallel() && leaders.len() > 1 {
                let chunk = leaders
                    .len()
                    .div_ceil(par::available_workers().max(1))
                    .max(1);
                let chunks: Vec<&[HybridConfig]> = leaders.chunks(chunk).collect();
                par::par_map(&chunks, |c| {
                    self.cost
                        .evaluate_batch(c, engine, &workload)
                        .into_iter()
                        .map(|r| r.ok())
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                self.cost
                    .evaluate_batch(&leaders, engine, &workload)
                    .into_iter()
                    .map(|r| r.ok())
                    .collect()
            };
            self.misses
                .fetch_add(leaders.len() as u64, Ordering::Relaxed);
            self.tier_counter(false)
                .fetch_add(leaders.len() as u64, Ordering::Relaxed);
            // Publish every report before retiring any lease (stored
            // entries win races, so every observer of a key sees one
            // consistent report), then wake the followers.
            for ((cfg, report), &ui) in leaders.iter().zip(computed).zip(&leader_uis) {
                let stored = self.cache.insert_if_absent((*cfg, engine, mode), report);
                resolved[ui] = Some(stored);
            }
        }
        drop(leases);
        // Park on foreign flights only now, with no leases held; helping
        // the runtime while waiting keeps this wave productive.
        let pool = crate::runtime::global();
        for (ui, flight) in followed {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            flight.wait(|| pool.help_one());
            // The leader published before retiring its flight; a leader
            // that died without publishing falls through to `evaluate`,
            // which re-claims and computes (counting its own hit/miss).
            resolved[ui] = Some(self.evaluate(&uniques[ui], engine, mode));
        }
        let dup = (missing.len() - uniques.len()) as u64;
        if dup > 0 {
            self.hits.fetch_add(dup, Ordering::Relaxed);
            self.tier_counter(true).fetch_add(dup, Ordering::Relaxed);
        }
        let stored: Vec<Option<CostReport>> = resolved
            .into_iter()
            .map(|r| r.expect("every unique resolved"))
            .collect();
        for &slot in &missing {
            let cfg = candidates[need[slot]];
            out[slot] = Some(stored[first_pos[&cfg]].clone());
        }
        out.into_iter().map(|o| o.expect("resolved")).collect()
    }

    /// The batched body of [`SearchContext::cost_candidates_exact`]: the
    /// whole batch resolves its base recompute mode in one wave, only the
    /// candidates that erred or overflowed HBM escalate to a second
    /// [`RecomputeMode::Full`] wave — the same `[base, Full]` ladder as
    /// [`SearchContext::cost_of`], candidate by candidate, and
    /// bit-identical to it (both run the hoisted evaluation core).
    fn cost_candidates_batched(
        &self,
        candidates: &[HybridConfig],
        engine: MappingEngine,
    ) -> Vec<CandidateCost> {
        let base_mode = self.cost.workload().recompute;
        let all: Vec<usize> = (0..candidates.len()).collect();
        let base = self.resolve_mode_batched(candidates, &all, engine, base_mode);
        let needs_full: Vec<usize> = if base_mode == RecomputeMode::Full {
            Vec::new()
        } else {
            base.iter()
                .enumerate()
                .filter(|(_, r)| !matches!(r, Some(rep) if rep.fits_memory))
                .map(|(i, _)| i)
                .collect()
        };
        let full = if needs_full.is_empty() {
            Vec::new()
        } else {
            self.resolve_mode_batched(candidates, &needs_full, engine, RecomputeMode::Full)
        };
        let mut full_results: HashMap<usize, Option<CostReport>> =
            needs_full.into_iter().zip(full).collect();
        base.into_iter()
            .enumerate()
            .map(|(i, base_report)| {
                if let Some(report) = base_report.filter(|r| r.fits_memory) {
                    let workload = self.cost.workload().clone().with_recompute(base_mode);
                    return (report.step_time, Some((workload, report)));
                }
                if let Some(Some(report)) = full_results.remove(&i) {
                    if report.fits_memory {
                        let workload = self
                            .cost
                            .workload()
                            .clone()
                            .with_recompute(RecomputeMode::Full);
                        return (report.step_time, Some((workload, report)));
                    }
                }
                (f64::INFINITY, None)
            })
            .collect()
    }

    /// Memoized [`crate::dp::balance_stage_cuts`]. The parametric
    /// bottleneck search is a pure function of its arguments, so its
    /// verdict — cuts or infeasibility — is served from the context's
    /// table on repeat keys (multi-wafer sweeps rediscover the same cut
    /// problems across pipeline multipliers, engines and re-solves).
    pub fn balanced_stage_cuts(
        &self,
        blocks: u64,
        stages: usize,
        unit: f64,
        first_extra: f64,
        last_extra: f64,
        min_blocks: &[u64],
    ) -> Result<StageCuts, DpError> {
        let key = StageCutKey::Uniform {
            blocks,
            stages,
            unit: unit.to_bits(),
            first: first_extra.to_bits(),
            last: last_extra.to_bits(),
            mins: min_blocks.to_vec(),
        };
        if let Some(cached) = self.stage_cuts.read().expect("stage cuts lock").get(&key) {
            return cached.clone();
        }
        let cuts = crate::dp::balance_stage_cuts(
            blocks,
            stages,
            unit,
            first_extra,
            last_extra,
            min_blocks,
        );
        self.stage_cuts
            .write()
            .expect("stage cuts lock")
            .entry(key)
            .or_insert(cuts)
            .clone()
    }

    /// Memoized [`crate::dp::balance_weighted_cuts`] — see
    /// [`SearchContext::balanced_stage_cuts`].
    pub fn balanced_weighted_cuts(
        &self,
        weights: &[f64],
        stages: usize,
        first_extra: f64,
        last_extra: f64,
        min_items: &[u64],
    ) -> Result<StageCuts, DpError> {
        let key = StageCutKey::Weighted {
            weights: weights.iter().map(|w| w.to_bits()).collect(),
            stages,
            first: first_extra.to_bits(),
            last: last_extra.to_bits(),
            mins: min_items.to_vec(),
        };
        if let Some(cached) = self.stage_cuts.read().expect("stage cuts lock").get(&key) {
            return cached.clone();
        }
        let cuts =
            crate::dp::balance_weighted_cuts(weights, stages, first_extra, last_extra, min_items);
        self.stage_cuts
            .write()
            .expect("stage cuts lock")
            .entry(key)
            .or_insert(cuts)
            .clone()
    }

    /// Costs a batch of candidates under the active [`CostTier`], filling
    /// cache misses in parallel when enabled. The returned vector is
    /// aligned with `candidates`; under [`CostTier::SurrogateGated`],
    /// candidates the gate prunes are reported as infeasible
    /// (`f64::INFINITY`, no report) without ever running the cost model.
    pub fn cost_candidates(
        &self,
        candidates: &[HybridConfig],
        engine: MappingEngine,
    ) -> Vec<CandidateCost> {
        match self.cost_tier() {
            CostTier::Exact => self.cost_candidates_exact(candidates, engine),
            CostTier::SurrogateGated => {
                surrogate_gate::cost_candidates_gated(self, candidates, engine, self.gate_params())
            }
        }
    }

    /// Costs several candidate batches — one per pipeline degree of a
    /// multi-wafer sweep — under the active [`CostTier`]. Under
    /// [`CostTier::Exact`] the groups are flattened into **one** batch so
    /// the parallel map load-balances across the whole sweep; under
    /// [`CostTier::SurrogateGated`] each group is gated **on its own**
    /// (its own training sample, fit and top-K shortlist), because the
    /// winner-retention guarantee is per solve: a single ranking across
    /// degrees could shortlist one degree's candidates at the expense of
    /// another's winner. Returned vectors align with the input groups.
    pub fn cost_candidate_groups(
        &self,
        groups: &[Vec<HybridConfig>],
        engine: MappingEngine,
    ) -> Vec<Vec<CandidateCost>> {
        match self.cost_tier() {
            CostTier::Exact => {
                let flat: Vec<HybridConfig> = groups.iter().flatten().copied().collect();
                let mut costed = self.cost_candidates_exact(&flat, engine).into_iter();
                groups
                    .iter()
                    .map(|g| costed.by_ref().take(g.len()).collect())
                    .collect()
            }
            CostTier::SurrogateGated => {
                surrogate_gate::cost_candidate_groups(self, groups, engine, self.gate_params())
            }
        }
    }

    /// The exact (tier-2) batch costing path. Without a cancellation
    /// token the batch routes through the batched SoA engine
    /// ([`SearchContext::cost_candidates_batched`]): one cache wave per
    /// recompute mode, distinct misses costed by
    /// [`WaferCostModel::evaluate_batch`] in runtime-sized chunks. When a
    /// cancellation token is installed (deadline-bounded solves), the
    /// per-candidate loop polls it between candidates: once it fires, the
    /// remaining candidates come back `(INFINITY, None)` **without**
    /// being written to the cache — a skip is not a verdict, so later
    /// unbounded solves re-cost them.
    pub fn cost_candidates_exact(
        &self,
        candidates: &[HybridConfig],
        engine: MappingEngine,
    ) -> Vec<CandidateCost> {
        let started = std::time::Instant::now();
        let token = self.cancel_token();
        let out = match &token {
            None => self.cost_candidates_batched(candidates, engine),
            Some(token) if self.parallel() => par::par_map_cancellable(
                token,
                candidates,
                |_| (f64::INFINITY, None),
                |c| self.cost_of(c, engine),
            ),
            Some(token) => candidates
                .iter()
                .map(|c| {
                    if token.is_cancelled() {
                        (f64::INFINITY, None)
                    } else {
                        self.cost_of(c, engine)
                    }
                })
                .collect(),
        };
        self.exact_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// Batch costing for a **chain solve** (the DLWS body row): like
    /// [`SearchContext::cost_candidates`], but allowed to skip candidates
    /// that provably cannot win the chain DP. `candidates` is the dense
    /// body row (`ep == 1`); `moe_candidates` is the list the chain's
    /// MoeBlock row (if any) is priced over — a superset of `candidates`
    /// for MoE models, ignored for dense chains.
    ///
    /// Two admissible skip rules (see [`WaferCostModel::chain_bounds`]):
    ///
    /// 1. **Prefilter** — candidates whose exact evaluation is guaranteed
    ///    infinite (invalid degrees, disconnected fabric, HBM overflow
    ///    under every recompute escalation) come back `(INFINITY, None)`
    ///    without touching the cost model.
    /// 2. **Incumbent dominance** — once any feasible candidate's full
    ///    uniform chain value is known (warm cache, campaign seed, or the
    ///    seed chunk of the best-bounded candidates), a candidate whose
    ///    lower-bounded chain value exceeds it cannot be on the optimal
    ///    DP path, so its row entry may be infinite without changing the
    ///    DP/GA winner.
    ///
    /// Skipped candidates are **not** cached (a skip is not a verdict);
    /// a warm rerun prunes a superset of the cold run's skips, so replays
    /// stay zero-miss. [`SearchContext::set_pruning`]`(false)` restores
    /// the exhaustive pre-PR behavior bit for bit.
    pub fn cost_candidates_chain(
        &self,
        candidates: &[HybridConfig],
        moe_candidates: &[HybridConfig],
        engine: MappingEngine,
    ) -> Vec<CandidateCost> {
        match self.cost_tier() {
            CostTier::SurrogateGated => {
                surrogate_gate::cost_candidates_gated(self, candidates, engine, self.gate_params())
            }
            CostTier::Exact if !self.pruning() => self.cost_candidates_exact(candidates, engine),
            CostTier::Exact => {
                self.cost_candidates_chain_pruned(candidates, moe_candidates, engine)
            }
        }
    }

    /// The pruned exact path behind [`SearchContext::cost_candidates_chain`].
    fn cost_candidates_chain_pruned(
        &self,
        candidates: &[HybridConfig],
        moe_candidates: &[HybridConfig],
        engine: MappingEngine,
    ) -> Vec<CandidateCost> {
        /// How many of the best-bounded uncached candidates seed the
        /// incumbent on a cold cache. A fixed constant (never derived
        /// from the worker count) so the pruned-candidate counts are
        /// identical across `TEMP_THREADS` legs.
        const SEED_CHUNK: usize = 16;
        /// Relative slack on the dominance threshold, covering the float
        /// association differences between the bound's fixed-order sums
        /// and the exact evaluation's fold order.
        const REL_MARGIN: f64 = 1e-9;

        let bound_started = std::time::Instant::now();
        let base_mode = self.cost.workload().recompute;
        let bounds = self.cost.chain_bounds(candidates);
        let n = candidates.len();

        // End-segment rows, priced over exactly the lists the chain DP
        // will consume (memoized — the solve re-reads them for free):
        // their per-row minima floor every chain's end cost, and their
        // per-candidate values reconstruct the uniform-genome chain value
        // that serves as the incumbent upper bound.
        let mut end_floor = 0.0;
        let mut end_sum = vec![0.0f64; n];
        for segment in self.cost.chain().segments() {
            let row: Vec<f64> = match segment.kind {
                SegmentKind::Block => continue,
                SegmentKind::MoeBlock => {
                    let full =
                        self.segment_step_costs(segment.kind, moe_candidates, engine, base_mode);
                    let floor = full
                        .iter()
                        .copied()
                        .filter(|t| t.is_finite())
                        .fold(f64::INFINITY, f64::min);
                    if floor.is_finite() {
                        end_floor += floor;
                    }
                    let mut pos: HashMap<HybridConfig, usize> = HashMap::new();
                    for (i, c) in moe_candidates.iter().enumerate() {
                        pos.entry(*c).or_insert(i);
                    }
                    candidates
                        .iter()
                        .map(|c| pos.get(c).map(|&i| full[i]).unwrap_or(f64::INFINITY))
                        .collect()
                }
                kind => {
                    let row = self.segment_step_costs(kind, candidates, engine, base_mode);
                    let floor = row
                        .iter()
                        .copied()
                        .filter(|t| t.is_finite())
                        .fold(f64::INFINITY, f64::min);
                    if floor.is_finite() {
                        end_floor += floor;
                    }
                    row
                }
            };
            for (s, v) in end_sum.iter_mut().zip(&row) {
                *s += v;
            }
        }

        // Prefilter: reject what the exact path is guaranteed to report
        // infinite. Not cached — a skip is not a verdict.
        let mut results: Vec<Option<CandidateCost>> = vec![None; n];
        let mut prefiltered = 0u64;
        for (i, b) in bounds.iter().enumerate() {
            if !b.feasible {
                results[i] = Some((f64::INFINITY, None));
                prefiltered += 1;
            }
        }
        self.bound_pruned.fetch_add(prefiltered, Ordering::Relaxed);

        // Incumbent: the best uniform chain value among candidates whose
        // verdict the cache already knows (warm contexts, prior campaign
        // rate points, gate shortlists).
        let mut incumbent = f64::INFINITY;
        let mut cached_idx: Vec<usize> = Vec::new();
        let mut uncached: Vec<usize> = Vec::new();
        for i in 0..n {
            if results[i].is_some() {
                continue;
            }
            match self.cost_of_cached(&candidates[i], engine) {
                Some((t, payload)) => {
                    if t.is_finite() {
                        if let Some((_, report)) = &payload {
                            incumbent = incumbent.min(end_sum[i] + report.block_time());
                        }
                    }
                    cached_idx.push(i);
                }
                None => uncached.push(i),
            }
        }
        self.bound_ns
            .fetch_add(bound_started.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // Cold cache: evaluate a deterministic seed chunk — any forced
        // campaign seeds plus the best-bounded candidates — to establish
        // the incumbent before pruning the rest.
        if !incumbent.is_finite() && !uncached.is_empty() {
            let forced = self.bound_seeds.read().expect("bound seeds lock").clone();
            let mut order = uncached.clone();
            order.sort_by(|&a, &b| {
                bounds[a]
                    .lb_block
                    .partial_cmp(&bounds[b].lb_block)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let mut seed: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| forced.contains(&candidates[i]))
                .collect();
            for &i in &order {
                if seed.len() >= SEED_CHUNK {
                    break;
                }
                if !seed.contains(&i) {
                    seed.push(i);
                }
            }
            let seed_cfgs: Vec<HybridConfig> = seed.iter().map(|&i| candidates[i]).collect();
            let seed_costs = self.cost_candidates_exact(&seed_cfgs, engine);
            for (&i, cc) in seed.iter().zip(seed_costs) {
                if cc.0.is_finite() {
                    if let Some((_, report)) = &cc.1 {
                        incumbent = incumbent.min(end_sum[i] + report.block_time());
                    }
                }
                results[i] = Some(cc);
            }
            uncached.retain(|i| !seed.contains(i));
        }

        // Dominance: a candidate whose lower-bounded chain value exceeds
        // the incumbent's (achievable) chain value cannot be on the
        // optimal DP path.
        let prune_started = std::time::Instant::now();
        let mut survivors: Vec<usize> = Vec::new();
        if incumbent.is_finite() {
            let threshold = incumbent * (1.0 + REL_MARGIN);
            let mut dominated = 0u64;
            for &i in &uncached {
                if end_floor + bounds[i].lb_block > threshold {
                    results[i] = Some((f64::INFINITY, None));
                    dominated += 1;
                } else {
                    survivors.push(i);
                }
            }
            self.dominated_pruned
                .fetch_add(dominated, Ordering::Relaxed);
        } else {
            survivors = uncached;
        }
        self.bound_ns
            .fetch_add(prune_started.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // Everything left — cached verdicts (counted as hits, exactly
        // like the exhaustive path) and surviving unknowns — pays the
        // exact cost model.
        let rest: Vec<usize> = cached_idx.into_iter().chain(survivors).collect();
        let rest_cfgs: Vec<HybridConfig> = rest.iter().map(|&i| candidates[i]).collect();
        let rest_costs = self.cost_candidates_exact(&rest_cfgs, engine);
        for (&i, cc) in rest.iter().zip(rest_costs) {
            results[i] = Some(cc);
        }
        results
            .into_iter()
            .map(|r| r.expect("every candidate resolved"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;
    use temp_wsc::config::WaferConfig;

    fn context() -> SearchContext {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        SearchContext::new(WaferCostModel::new(WaferConfig::hpca(), model, workload))
    }

    #[test]
    fn candidate_space_matches_seed_enumeration() {
        let ctx = context();
        // 56 plain tuples + the FSDP tuples with dp > 1.
        assert!(ctx.candidates().len() > 56);
        assert!(ctx
            .candidates()
            .iter()
            .all(|c| c.intra_wafer_degree() == 32));
        let with_pp = ctx.candidates_with_pp(4);
        assert!(with_pp.iter().all(|c| c.pp == 4));
        assert_eq!(with_pp.len(), ctx.candidates().len());
    }

    #[test]
    fn evaluate_is_memoized_including_failures() {
        let ctx = context();
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let first = ctx.evaluate(&cfg, MappingEngine::Tcme, RecomputeMode::Selective);
        let stats = ctx.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let second = ctx.evaluate(&cfg, MappingEngine::Tcme, RecomputeMode::Selective);
        let stats = ctx.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(first, second);

        // An invalid configuration fails once and the failure is cached.
        let bad = HybridConfig::tuple(2, 2, 1, 4); // product 16 != 32
        assert!(ctx
            .evaluate(&bad, MappingEngine::Tcme, RecomputeMode::Selective)
            .is_none());
        assert!(ctx
            .evaluate(&bad, MappingEngine::Tcme, RecomputeMode::Selective)
            .is_none());
        assert_eq!(ctx.stats().misses, 2);
    }

    #[test]
    fn cost_of_does_not_consume_the_cache() {
        let ctx = context();
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let (t1, p1) = ctx.cost_of(&cfg, MappingEngine::Tcme);
        let (t2, p2) = ctx.cost_of(&cfg, MappingEngine::Tcme);
        assert_eq!(t1, t2);
        assert_eq!(p1, p2);
        assert!(p1.is_some());
        // The second call was pure cache hits.
        let stats = ctx.stats();
        assert!(stats.hits >= 1, "{stats:?}");
    }

    #[test]
    fn batch_costing_serial_and_parallel_agree() {
        let serial = context();
        serial.set_parallel(false);
        let parallel = context();
        let cands: Vec<HybridConfig> = serial.candidates().to_vec();
        let a = serial.cost_candidates(&cands, MappingEngine::SMap);
        let b = parallel.cost_candidates(&cands, MappingEngine::SMap);
        // The cost model folds HashMap-ordered sums, so two evaluations
        // of the same key agree only up to float association: compare
        // with a relative tolerance, not bitwise.
        for (i, ((ta, _), (tb, _))) in a.iter().zip(&b).enumerate() {
            match (ta.is_finite(), tb.is_finite()) {
                (true, true) => {
                    assert!(
                        (ta - tb).abs() <= 1e-9 * ta.abs(),
                        "candidate {i}: {ta} vs {tb}"
                    )
                }
                (fa, fb) => assert_eq!(fa, fb, "candidate {i}: {ta} vs {tb}"),
            }
        }
        // One full pass: misses == one evaluation per candidate plus any
        // full-recompute escalations, all distinct keys.
        assert!(serial.stats().misses >= cands.len() as u64);
    }

    #[test]
    fn segment_cost_table_is_memoized_per_key() {
        let ctx = context();
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let first = ctx.segment_cost(
            SegmentKind::Head,
            &cfg,
            MappingEngine::Tcme,
            RecomputeMode::Selective,
        );
        assert!(first.is_some());
        let misses = ctx.stats().seg_misses;
        assert!(misses >= 1);
        let second = ctx.segment_cost(
            SegmentKind::Head,
            &cfg,
            MappingEngine::Tcme,
            RecomputeMode::Selective,
        );
        assert_eq!(first, second);
        assert_eq!(ctx.stats().seg_misses, misses, "second lookup must hit");
        // A different kind under the same config is a distinct key.
        let emb = ctx.segment_cost(
            SegmentKind::Embedding,
            &cfg,
            MappingEngine::Tcme,
            RecomputeMode::Selective,
        );
        assert!(emb.is_some());
        assert_ne!(first, emb);
        assert_eq!(ctx.stats().seg_misses, misses + 1);
        // Invalid configurations memoize their failure too.
        let bad = HybridConfig::tuple(2, 2, 1, 4);
        for _ in 0..2 {
            assert!(ctx
                .segment_cost(
                    SegmentKind::Block,
                    &bad,
                    MappingEngine::Tcme,
                    RecomputeMode::Selective
                )
                .is_none());
        }
        assert_eq!(ctx.stats().seg_misses, misses + 2);
    }

    #[test]
    fn segment_step_costs_never_drop_a_segment() {
        let ctx = context();
        let candidates = ctx.candidates().to_vec();
        let row = ctx.segment_step_costs(
            SegmentKind::Head,
            &candidates,
            MappingEngine::Tcme,
            RecomputeMode::Selective,
        );
        assert_eq!(row.len(), candidates.len());
        // The row is never all-infinite: if the per-segment footprint
        // check rejected everything, it is rebuilt without the check so
        // the chain objective keeps the segment's real cost.
        assert!(row.iter().any(|t| t.is_finite()), "{row:?}");
        // Entries are per-step costs (count x micro x per-instance time),
        // consistent with the memoized table.
        let micro = ctx.cost_model().workload().micro_batches as f64;
        let sc = ctx
            .segment_cost(
                SegmentKind::Head,
                &candidates[0],
                MappingEngine::Tcme,
                RecomputeMode::Selective,
            )
            .unwrap();
        if sc.fits_memory {
            assert!((row[0] - sc.time * micro).abs() <= 1e-12 * row[0].abs());
        }
    }

    #[test]
    fn adaptive_top_k_follows_observed_winner_ranks() {
        let ctx = context();
        let default_k = ctx.gate_params().top_k;
        assert_eq!(ctx.effective_top_k(), default_k, "no observations yet");
        ctx.observe_winner_rank(0);
        // A well-ranked winner keeps the default: adaptation never
        // shrinks below the empirically-safe shortlist (a pruned winner
        // is unobservable, so there would be no signal to recover from).
        assert_eq!(ctx.effective_top_k(), default_k);
        ctx.observe_winner_rank(13);
        // A deep winner widens K (2x worst observed rank), clamped.
        assert_eq!(ctx.effective_top_k(), (2 * 14).min(2 * default_k));
        ctx.observe_winner_rank(40);
        // The ceiling caps runaway widening.
        assert_eq!(ctx.effective_top_k(), 2 * default_k);
        // Disabling adaptation restores the fixed default.
        ctx.set_gate_params(GateParams {
            adaptive: false,
            ..GateParams::default()
        });
        assert_eq!(ctx.effective_top_k(), default_k);
    }

    #[test]
    fn cost_table_round_trips_through_text() {
        let ctx = context();
        let good = HybridConfig::tuple(2, 2, 1, 8);
        let bad = HybridConfig::tuple(2, 2, 1, 4); // product 16 != 32
        ctx.evaluate(&good, MappingEngine::Tcme, RecomputeMode::Selective);
        ctx.evaluate(&good, MappingEngine::SMap, RecomputeMode::Full);
        ctx.evaluate(&bad, MappingEngine::Tcme, RecomputeMode::Selective);
        ctx.segment_cost(
            SegmentKind::Head,
            &good,
            MappingEngine::Tcme,
            RecomputeMode::Selective,
        );
        ctx.observe_winner_rank(5);

        let text = ctx.export_cost_table();
        assert_eq!(
            text,
            ctx.export_cost_table(),
            "export must be deterministic"
        );

        let fresh = context();
        let summary = fresh.import_cost_table(&text).expect("import");
        assert_eq!(summary.evals, 3);
        assert_eq!(summary.segs, 1);
        assert!(!summary.gate, "no predictor was fitted");

        // Imported entries answer without running the cost model, and the
        // memoized failure is a failure on the warm side too.
        assert_eq!(
            fresh.evaluate(&good, MappingEngine::Tcme, RecomputeMode::Selective),
            ctx.evaluate(&good, MappingEngine::Tcme, RecomputeMode::Selective),
        );
        assert!(fresh
            .evaluate(&bad, MappingEngine::Tcme, RecomputeMode::Selective)
            .is_none());
        assert_eq!(fresh.stats().misses, 0, "warm lookups must not evaluate");
        assert_eq!(fresh.stats().hits, 2);
        assert_eq!(
            fresh.effective_top_k(),
            ctx.effective_top_k(),
            "winner-rank statistic must survive the round trip"
        );

        // Exporting the import reproduces the text bit for bit.
        assert_eq!(fresh.export_cost_table(), text);
    }

    #[test]
    fn import_rejects_foreign_and_malformed_caches() {
        let ctx = context();
        ctx.evaluate(
            &HybridConfig::tuple(2, 2, 1, 8),
            MappingEngine::Tcme,
            RecomputeMode::Selective,
        );
        let text = ctx.export_cost_table();

        // A different model is a different fingerprint.
        let other_model = ModelZoo::llama2_7b();
        let other = SearchContext::new(WaferCostModel::new(
            WaferConfig::hpca(),
            other_model.clone(),
            Workload::for_model(&other_model),
        ));
        let err = other.import_cost_table(&text).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // Malformed input leaves the context untouched.
        let fresh = context();
        assert!(fresh.import_cost_table("").is_err());
        assert!(fresh.import_cost_table("temp-cache v2 0\n").is_err());
        let truncated = text.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(fresh.import_cost_table(&truncated).is_err());
        let mangled = text.replacen("E ", "E x", 1);
        assert!(fresh.import_cost_table(&mangled).is_err());
        assert_eq!(
            fresh.export_cost_table().lines().nth(1),
            Some("evals 0"),
            "failed imports must not merge partial state"
        );
    }

    #[test]
    fn collective_table_round_trips_and_rejects_version_skew() {
        let ctx = context();
        let good = HybridConfig::tuple(2, 2, 1, 8);
        ctx.evaluate(&good, MappingEngine::Tcme, RecomputeMode::Selective);
        let mut entries = ctx.cost_model().collective_table_entries();
        assert!(
            !entries.is_empty(),
            "an exact evaluation must fill the collective memo"
        );

        let text = ctx.export_cost_table();
        assert!(
            text.lines().any(|l| l.starts_with("coll ")),
            "export must carry the collective section"
        );

        let fresh = context();
        let summary = fresh.import_cost_table(&text).expect("import");
        assert_eq!(summary.colls, entries.len());
        let mut imported = fresh.cost_model().collective_table_entries();
        let key =
            |e: &crate::cost::CollectiveEntry| (crate::persist::collective_code(e.0), e.1, e.2);
        entries.sort_by_key(key);
        imported.sort_by_key(key);
        assert_eq!(entries, imported, "timings must survive bit for bit");

        // The warm table answers every collective the evaluation needs:
        // re-evaluating the same candidate derives no new entries.
        let (_, misses_before) = fresh.cost_model().collective_memo_stats();
        let _ = fresh.cost_model().evaluate(&good, MappingEngine::Tcme);
        let (hits, misses_after) = fresh.cost_model().collective_memo_stats();
        assert_eq!(
            misses_after, misses_before,
            "warm kernel must not re-derive"
        );
        assert!(hits > 0);

        // The fingerprint embeds `COST_MODEL_VERSION`, so a cache written
        // by any other cost-model revision dies at the header.
        let header = text.lines().next().unwrap().to_string();
        let skewed = text.replacen(&header, "temp-cache v1 0000000000000000", 1);
        let err = context().import_cost_table(&skewed).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // A mangled collective record fails the parse and merges nothing.
        let mangled = text.replacen("\nC ", "\nC x", 1);
        let victim = context();
        assert!(victim.import_cost_table(&mangled).is_err());
        assert!(
            victim.cost_model().collective_table_entries().is_empty(),
            "failed imports must not merge partial collective state"
        );
    }

    #[test]
    fn stats_attribute_hits_and_misses_per_tier() {
        let ctx = context();
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        ctx.evaluate(&cfg, MappingEngine::Tcme, RecomputeMode::Selective);
        ctx.evaluate(&cfg, MappingEngine::Tcme, RecomputeMode::Selective);
        let s = ctx.stats();
        assert_eq!((s.exact_hits, s.exact_misses), (1, 1));
        assert_eq!((s.gated_hits, s.gated_misses), (0, 0));

        ctx.set_cost_tier(CostTier::SurrogateGated);
        ctx.evaluate(&cfg, MappingEngine::Tcme, RecomputeMode::Selective);
        ctx.evaluate(&cfg, MappingEngine::SMap, RecomputeMode::Selective);
        let s = ctx.stats();
        assert_eq!((s.gated_hits, s.gated_misses), (1, 1));
        assert_eq!(s.hits, s.exact_hits + s.gated_hits, "totals must tie out");
        assert_eq!(s.misses, s.exact_misses + s.gated_misses);
        assert!((s.gated_hit_rate() - 0.5).abs() < 1e-12);

        // Segment-table hits are counted too.
        let seg_args = (
            SegmentKind::Head,
            MappingEngine::Tcme,
            RecomputeMode::Selective,
        );
        ctx.segment_cost(seg_args.0, &cfg, seg_args.1, seg_args.2);
        ctx.segment_cost(seg_args.0, &cfg, seg_args.1, seg_args.2);
        let s = ctx.stats();
        assert_eq!((s.seg_hits, s.seg_misses), (1, 1));
        assert!((s.segment_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resharding_is_free_only_on_the_diagonal() {
        let ctx = context();
        let a = HybridConfig::tuple(2, 2, 1, 8);
        let b = HybridConfig::tuple(4, 1, 1, 8);
        assert_eq!(ctx.resharding_cost(&a, &a), 0.0);
        assert!(ctx.resharding_cost(&a, &b) > 0.0);
        assert_eq!(ctx.resharding_cost(&a, &b), ctx.resharding_cost(&b, &a));
    }

    #[test]
    fn hit_rate_reflects_counters() {
        let s = SearchStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(SearchStats::default().hit_rate(), 0.0);
    }
}
