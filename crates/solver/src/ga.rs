//! Level 2 of the DLS algorithm: genetic refinement.
//!
//! Genes encode "the mapping engine's parallel-setup parameters and
//! spatio-temporal mappings"; the GA applies crossover, mutation and elitist
//! selection to evolve superior strategies (Fig. 12(b)). Because graph
//! partitioning and DP already pared the space, small populations converge
//! in a few generations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaParams {
    /// Population size.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Elite fraction carried over unchanged.
    pub elite_fraction: f64,
    /// RNG seed (deterministic runs).
    pub seed: u64,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            population: 24,
            generations: 12,
            mutation_rate: 0.15,
            elite_fraction: 0.25,
            seed: 0xDEC0DE,
        }
    }
}

/// Result of a GA run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaOutcome {
    /// Best genome found.
    pub genome: Vec<usize>,
    /// Its fitness (lower is better).
    pub cost: f64,
    /// Fitness evaluations performed.
    pub evaluations: usize,
}

/// Minimizes `fitness` over genomes of length `genome_len` with gene values
/// in `0..gene_cardinality` (uniform alphabet), seeding the population with
/// `seed_genome`. Thin wrapper over [`optimize_ragged`].
///
/// # Panics
///
/// Panics when `genome_len == 0` or `gene_cardinality == 0`.
pub fn optimize(
    genome_len: usize,
    gene_cardinality: usize,
    seed_genome: &[usize],
    params: &GaParams,
    fitness: impl FnMut(&[usize]) -> f64,
) -> GaOutcome {
    assert!(genome_len > 0, "empty genome");
    optimize_ragged(
        &vec![gene_cardinality; genome_len],
        seed_genome,
        params,
        fitness,
    )
}

/// Minimizes `fitness` over genomes where gene `i` takes values in
/// `0..gene_cardinality[i]` — the heterogeneous-chain form: every segment
/// evolves over **its own** candidate list, which may be ragged across
/// segments.
///
/// # Panics
///
/// Panics when `gene_cardinality` is empty or any gene's alphabet is 0.
pub fn optimize_ragged(
    gene_cardinality: &[usize],
    seed_genome: &[usize],
    params: &GaParams,
    mut fitness: impl FnMut(&[usize]) -> f64,
) -> GaOutcome {
    let genome_len = gene_cardinality.len();
    assert!(genome_len > 0, "empty genome");
    assert!(
        gene_cardinality.iter().all(|&k| k > 0),
        "empty gene alphabet"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut evaluations = 0usize;
    let mut eval = |g: &[usize], evaluations: &mut usize| {
        *evaluations += 1;
        fitness(g)
    };

    // Seeded + random initial population.
    let mut population: Vec<Vec<usize>> = Vec::with_capacity(params.population);
    population.push(seed_genome.to_vec());
    while population.len() < params.population {
        population.push(
            gene_cardinality
                .iter()
                .map(|&k| rng.gen_range(0..k))
                .collect(),
        );
    }
    let mut scored: Vec<(f64, Vec<usize>)> = population
        .into_iter()
        .map(|g| (eval(&g, &mut evaluations), g))
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite or inf"));

    let elites = ((params.population as f64 * params.elite_fraction) as usize).max(1);
    for _ in 0..params.generations {
        let mut next: Vec<(f64, Vec<usize>)> = scored[..elites].to_vec();
        while next.len() < params.population {
            // Tournament selection of two parents from the top half.
            let half = (scored.len() / 2).max(1);
            let pa = &scored[rng.gen_range(0..half)].1;
            let pb = &scored[rng.gen_range(0..half)].1;
            // Single-point crossover.
            let cut = rng.gen_range(0..genome_len);
            let mut child: Vec<usize> = pa[..cut].iter().chain(pb[cut..].iter()).copied().collect();
            // Mutation (per-gene alphabet).
            for (gene, &k) in child.iter_mut().zip(gene_cardinality) {
                if rng.gen_bool(params.mutation_rate) {
                    *gene = rng.gen_range(0..k);
                }
            }
            let score = eval(&child, &mut evaluations);
            next.push((score, child));
        }
        next.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite or inf"));
        next.truncate(params.population);
        scored = next;
    }
    let (cost, genome) = scored.swap_remove(0);
    GaOutcome {
        genome,
        cost,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_obvious_optimum() {
        // Fitness: distance from the all-2 genome.
        let out = optimize(6, 4, &[0; 6], &GaParams::default(), |g| {
            g.iter().map(|&x| (x as f64 - 2.0).abs()).sum()
        });
        assert_eq!(out.genome, vec![2; 6]);
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn is_deterministic_in_seed() {
        let f = |g: &[usize]| g.iter().map(|&x| (x as f64 - 1.0).powi(2)).sum::<f64>();
        let a = optimize(5, 5, &[0; 5], &GaParams::default(), f);
        let b = optimize(5, 5, &[0; 5], &GaParams::default(), f);
        assert_eq!(a.genome, b.genome);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn never_loses_the_seed_genome() {
        // Elitism: a perfect seed must survive.
        let out = optimize(4, 3, &[1, 1, 1, 1], &GaParams::default(), |g| {
            if g == [1, 1, 1, 1] {
                0.0
            } else {
                1.0
            }
        });
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn ragged_alphabets_are_respected() {
        // Gene i may only take values < cardinality[i]; the optimum sits at
        // each gene's maximum legal value.
        let cards = [2usize, 5, 3, 1];
        let out = optimize_ragged(&cards, &[0, 0, 0, 0], &GaParams::default(), |g| {
            g.iter()
                .zip(&cards)
                .map(|(&x, &k)| (k - 1 - x) as f64)
                .sum()
        });
        assert_eq!(out.genome, vec![1, 4, 2, 0]);
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn evaluation_budget_is_bounded() {
        let params = GaParams {
            population: 10,
            generations: 5,
            ..Default::default()
        };
        let out = optimize(3, 3, &[0; 3], &params, |_| 1.0);
        assert!(out.evaluations <= 10 + 5 * 10);
    }
}
