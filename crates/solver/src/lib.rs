//! # temp-solver — the Dual-Level Wafer Solver (DLWS, §VII)
//!
//! DLWS pairs a *wafer-centric cost model* with a *dual-level search*:
//!
//! * [`cost`] — the analytic cost model of Eqs. 2–4: per-layer time is
//!   `Collective + max(Comp, P2P-stream)`, per-step time adds pipeline
//!   bubbles, gradient synchronization and the embedding/LM-head end
//!   segments; memory feasibility, energy, throughput and power
//!   efficiency are produced alongside, plus per-segment costing via
//!   [`cost::WaferCostModel::evaluate_segment`];
//! * [`dp`] — recursive dynamic programming over the heterogeneous
//!   segment chain, with ragged per-segment candidate lists, resharding
//!   transition costs and typed [`dp::DpError`]s (level 1 of the DLS
//!   algorithm, Fig. 12(b));
//! * [`ga`] — the genetic refinement stage (level 2): configuration genes,
//!   crossover, mutation and elitist selection;
//! * [`ilp`] — an exact exhaustive/branch-and-bound baseline, standing in
//!   for the ILP formulation whose search time §VIII-H compares against;
//! * [`search`] — the shared search pipeline: candidates enumerated once,
//!   evaluations memoized behind a thread-safe cache, cache misses costed
//!   in parallel, with a two-tier [`search::CostTier`] switch;
//! * [`surrogate_gate`] — tier 1 of the two-tier pipeline: a learned
//!   predictor ranks candidate batches so the exact model only runs on
//!   the top-K survivors (§VII-A);
//! * [`runtime`] — the persistent work-stealing thread pool (Chase–Lev
//!   deques, chunked tasks, nested submission) every batch path runs on;
//! * [`shard`] — sharded cache locks and single-flight coalescing, so
//!   concurrent solvers neither serialize on one mutex nor duplicate an
//!   in-flight evaluation;
//! * [`par`] — the data-parallel map facade over the runtime, with an
//!   adaptive serial cutoff and the retained scoped-thread baseline;
//! * [`dlws`] — the end-to-end solver: enumerate → cost → DP → GA → plan;
//! * [`stage`] — stage-partitioned multi-wafer planning: pipeline stages
//!   as contiguous segment-chain slices, with cut positions, per-stage
//!   strategies and inter-wafer handoffs solved jointly (Fig. 19);
//! * [`pool`] — the cross-model context pool zoo sweeps share wafer-level
//!   state through.
//!
//! # Example
//!
//! ```
//! use temp_solver::dlws::Dlws;
//! use temp_graph::models::ModelZoo;
//! use temp_graph::workload::Workload;
//! use temp_wsc::config::WaferConfig;
//!
//! let model = ModelZoo::gpt3_6_7b();
//! let plan = Dlws::new(WaferConfig::hpca(), model.clone(), Workload::for_model(&model))
//!     .solve()
//!     .expect("a feasible plan exists");
//! assert!(plan.report.fits_memory);
//! ```

pub mod cost;
pub mod dlws;
pub mod dp;
pub mod faultcamp;
pub mod ga;
pub mod ilp;
pub mod par;
pub mod persist;
pub mod pool;
pub mod runtime;
pub mod search;
pub mod shard;
pub mod stage;
pub mod surrogate_gate;

pub use cost::{CostReport, SegmentCost, WaferCostModel};
pub use dlws::{Dlws, ExecutionPlan, SegmentAssignment};
pub use dp::DpError;
pub use pool::ContextPool;
pub use search::{CostTier, ImportSummary, SearchContext, SearchStats};
pub use stage::{MultiWaferPlan, StagePlan};
pub use surrogate_gate::GateParams;

/// Errors produced by the solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// No configuration fits the wafer's memory.
    NoFeasiblePlan(String),
    /// A sub-component failed (mapping, layout, ...).
    Internal(String),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::NoFeasiblePlan(msg) => write!(f, "no feasible plan: {msg}"),
            SolverError::Internal(msg) => write!(f, "solver internal error: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SolverError>;
