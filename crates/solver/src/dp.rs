//! Level 1 of the DLS algorithm: dynamic programming over a segment chain.
//!
//! After the residual-aware graph partition (see
//! [`temp_graph::graph::ComputeGraph::segments`]), the model is a chain of
//! segments. Each segment independently picks a strategy from **its own**
//! candidate list (lists may be ragged — the embedding can admit
//! strategies the blocks cannot, and vice versa); adjacent segments with
//! different strategies pay a resharding (transition) cost. The DP finds
//! the optimal assignment in `O(segments x candidates^2)` — the "recursive
//! dynamic-programming routine [that] iteratively optimizes one operator
//! at a time" of Fig. 12(b).

/// Typed failure of a chain solve — malformed chains surface as errors
/// instead of aborting a sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// Segment `segment` has an empty candidate list.
    EmptyCandidateList {
        /// Index of the offending segment.
        segment: usize,
    },
    /// A stage partition cannot be formed: fewer blocks than interior
    /// stages, or degenerate stage times.
    InfeasibleCut {
        /// Block instances available.
        blocks: u64,
        /// Pipeline stages requested.
        stages: usize,
    },
}

impl std::fmt::Display for DpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpError::EmptyCandidateList { segment } => {
                write!(f, "segment {segment} has an empty candidate list")
            }
            DpError::InfeasibleCut { blocks, stages } => {
                write!(f, "{blocks} blocks cannot fill {stages} pipeline stages")
            }
        }
    }
}

impl std::error::Error for DpError {}

/// Result of a chain DP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSolution {
    /// Chosen candidate index per segment (into that segment's own list).
    pub choices: Vec<usize>,
    /// Total cost (segment costs + transitions).
    pub cost: f64,
}

/// Solves the segment-chain assignment problem.
///
/// `segment_costs[s][c]` is the cost of running segment `s` under its
/// candidate `c` (use `f64::INFINITY` for infeasible pairs); the lists may
/// have different lengths per segment. `transition(s, a, b)` prices
/// switching from segment `s-1`'s candidate `a` to segment `s`'s candidate
/// `b` — with ragged lists the segment index disambiguates what `a` and
/// `b` refer to.
///
/// # Errors
///
/// Returns [`DpError::EmptyCandidateList`] when any segment has no
/// candidates (an empty chain is trivially solvable and returns an empty
/// solution).
pub fn solve_chain(
    segment_costs: &[Vec<f64>],
    transition: impl Fn(usize, usize, usize) -> f64,
) -> Result<DpSolution, DpError> {
    if segment_costs.is_empty() {
        return Ok(DpSolution {
            choices: Vec::new(),
            cost: 0.0,
        });
    }
    if let Some(segment) = segment_costs.iter().position(Vec::is_empty) {
        return Err(DpError::EmptyCandidateList { segment });
    }
    // best[c] = min cost of prefix ending with candidate c of the current
    // segment.
    let mut best: Vec<f64> = segment_costs[0].clone();
    let mut back: Vec<Vec<usize>> = vec![vec![0; best.len()]];
    for (s, costs) in segment_costs.iter().enumerate().skip(1) {
        let mut next = vec![f64::INFINITY; costs.len()];
        let mut bk = vec![0usize; costs.len()];
        for (c, &seg_cost) in costs.iter().enumerate() {
            for (p, &prev_cost) in best.iter().enumerate() {
                let total = prev_cost + transition(s, p, c) + seg_cost;
                if total < next[c] {
                    next[c] = total;
                    bk[c] = p;
                }
            }
        }
        best = next;
        back.push(bk);
    }
    // Reconstruct.
    let (mut cur, &cost) = best
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite or inf"))
        .expect("non-empty candidates");
    let mut choices = vec![0; segment_costs.len()];
    for s in (0..segment_costs.len()).rev() {
        choices[s] = cur;
        cur = back[s][cur];
    }
    Ok(DpSolution { choices, cost })
}

/// Result of a stage-cut solve: how many block instances each pipeline
/// stage owns, and the per-micro-batch bottleneck stage time the
/// allocation achieves.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCuts {
    /// Block instances per stage, in pipeline order (sums to the chain's
    /// block count). The first stage additionally owns the embedding, the
    /// last the LM head.
    pub blocks: Vec<u64>,
    /// The achieved bottleneck: `max_s` of stage `s`'s per-micro-batch
    /// time under this allocation.
    pub bottleneck: f64,
}

/// The stage-cut solver (level 1 of the multi-wafer planning pass): split
/// `blocks` identical block instances across `stages` pipeline stages so
/// the *bottleneck* stage time is minimal. One block instance costs
/// `unit` seconds per micro-batch; the first stage carries `first_extra`
/// on top (embedding + any intra-stage resharding), the last `last_extra`
/// (LM head). `min_blocks` is the per-stage floor on block counts: pass
/// an empty slice for the default — interior stages own at least one
/// block, the end stages may own zero (their end segment keeps them
/// non-empty) — or one entry per stage (multi-stage wafers raise the
/// floors so every *virtual* stage inside a wafer stays non-empty).
///
/// In a 1F1B pipeline the step time is
/// `sum_s t_s + (micro - 1) x max_s t_s` — the cut positions only enter
/// through the bottleneck term (the sum is invariant), so minimizing the
/// bottleneck is exact. The solver runs a parametric search over the
/// `O(blocks)` candidate bottleneck values (each is `k x unit` plus one
/// of the end extras) and then water-fills blocks under the winning
/// threshold, yielding a balanced allocation.
///
/// # Errors
///
/// Returns [`DpError::InfeasibleCut`] when the floors cannot be met
/// (`blocks < sum(min_blocks)`), when `stages` is zero or `min_blocks`
/// has the wrong length, or when the stage times are degenerate (`unit`
/// non-finite or negative).
pub fn balance_stage_cuts(
    blocks: u64,
    stages: usize,
    unit: f64,
    first_extra: f64,
    last_extra: f64,
    min_blocks: &[u64],
) -> Result<StageCuts, DpError> {
    let infeasible = DpError::InfeasibleCut { blocks, stages };
    if stages == 0 || !unit.is_finite() || unit < 0.0 {
        return Err(infeasible);
    }
    if !first_extra.is_finite() || !last_extra.is_finite() {
        return Err(infeasible);
    }
    if !min_blocks.is_empty() && min_blocks.len() != stages {
        return Err(infeasible);
    }
    let min_of = |s: usize| -> u64 {
        if min_blocks.is_empty() {
            u64::from(stages > 1 && s != 0 && s != stages - 1)
        } else {
            min_blocks[s]
        }
    };
    let floor_total: u64 = (0..stages).map(min_of).sum();
    if blocks < floor_total {
        return Err(infeasible);
    }
    if stages == 1 {
        return Ok(StageCuts {
            blocks: vec![blocks],
            bottleneck: blocks as f64 * unit + first_extra + last_extra,
        });
    }
    let extra = |s: usize| -> f64 {
        if s == 0 {
            first_extra
        } else if s == stages - 1 {
            last_extra
        } else {
            0.0
        }
    };
    // Zero-cost blocks: any allocation works; balance counts evenly
    // above the floors.
    if unit == 0.0 {
        let mut alloc: Vec<u64> = (0..stages).map(min_of).collect();
        let mut remaining = blocks - floor_total;
        let mut s = 0;
        while remaining > 0 {
            alloc[s] += 1;
            remaining -= 1;
            s = (s + 1) % stages;
        }
        let bottleneck = first_extra.max(last_extra);
        return Ok(StageCuts {
            blocks: alloc,
            bottleneck,
        });
    }

    // Capacity of stage `s` under a bottleneck threshold `b`: the largest
    // block count keeping `k x unit + extra(s) <= b`. The tiny relative
    // slack absorbs float noise in thresholds built as `k x unit + extra`.
    let capacity = |s: usize, b: f64| -> u64 {
        let room = b - extra(s);
        if room < 0.0 {
            return 0;
        }
        (((room / unit) * (1.0 + 1e-12) + 1e-9).floor() as u64).min(blocks)
    };
    let feasible = |b: f64| -> bool {
        let mut total = 0u64;
        for s in 0..stages {
            let cap = capacity(s, b);
            if cap < min_of(s) {
                return false;
            }
            total += cap;
        }
        total >= blocks
    };

    // Candidate bottlenecks: `k x unit` plus each distinct extra.
    let mut thresholds: Vec<f64> = Vec::with_capacity(3 * (blocks as usize + 1));
    for k in 0..=blocks {
        let base = k as f64 * unit;
        thresholds.push(base);
        thresholds.push(base + first_extra);
        thresholds.push(base + last_extra);
    }
    thresholds.retain(|b| b.is_finite());
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
    // Binary search the smallest feasible threshold (feasibility is
    // monotone in `b`).
    let mut lo = 0usize;
    let mut hi = thresholds.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if feasible(thresholds[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if lo == thresholds.len() {
        return Err(infeasible);
    }
    let bound = thresholds[lo];

    // Water-fill under the winning threshold: start from the floors, then
    // repeatedly grow the currently-fastest stage that still has
    // capacity — a balanced assignment with bottleneck <= bound.
    let mut alloc: Vec<u64> = (0..stages).map(min_of).collect();
    let mut remaining = blocks - floor_total;
    let caps: Vec<u64> = (0..stages).map(|s| capacity(s, bound)).collect();
    while remaining > 0 {
        let next = (0..stages)
            .filter(|&s| alloc[s] < caps[s])
            .min_by(|&a, &b| {
                let ta = alloc[a] as f64 * unit + extra(a);
                let tb = alloc[b] as f64 * unit + extra(b);
                ta.partial_cmp(&tb).expect("finite stage times")
            })
            .ok_or(infeasible.clone())?;
        alloc[next] += 1;
        remaining -= 1;
    }
    let bottleneck = (0..stages)
        .map(|s| alloc[s] as f64 * unit + extra(s))
        .fold(0.0f64, f64::max);
    Ok(StageCuts {
        blocks: alloc,
        bottleneck,
    })
}

/// The weighted stage-cut solver: partition a **heterogeneous** sequence
/// of interior instances (dense blocks and MoE blocks carry different
/// per-micro-batch times) into `stages` contiguous slices so the
/// bottleneck stage time is minimal. `weights[i]` is instance `i`'s
/// per-micro-batch time in chain order; `first_extra`/`last_extra` and
/// `min_items` behave exactly as in [`balance_stage_cuts`] (which this
/// generalizes — uniform weights reproduce it). This is what lets
/// pipeline cuts isolate expert-heavy stretches onto their own wafers:
/// a run of expensive MoE instances simply fills a stage with fewer
/// items.
///
/// The search is parametric like the uniform solver: candidate
/// bottlenecks are the `O(n^2)` contiguous window sums (each optionally
/// plus an end extra), feasibility of a threshold is an exact
/// `O(stages x n)` reachability DP (a greedy maximal-prefix fill is
/// *not* exact once floors exceed one item: over-extending a cheap
/// stage can force a later stage's floor onto a heavy instance), and
/// the smallest feasible threshold is found by binary search.
///
/// # Errors
///
/// Returns [`DpError::InfeasibleCut`] when the floors cannot be met, any
/// weight or extra is non-finite/negative, or `stages`/`min_items` are
/// malformed.
pub fn balance_weighted_cuts(
    weights: &[f64],
    stages: usize,
    first_extra: f64,
    last_extra: f64,
    min_items: &[u64],
) -> Result<StageCuts, DpError> {
    let n = weights.len();
    let infeasible = DpError::InfeasibleCut {
        blocks: n as u64,
        stages,
    };
    if stages == 0
        || !first_extra.is_finite()
        || !last_extra.is_finite()
        || first_extra < 0.0
        || last_extra < 0.0
        || weights.iter().any(|w| !w.is_finite() || *w < 0.0)
    {
        return Err(infeasible);
    }
    if !min_items.is_empty() && min_items.len() != stages {
        return Err(infeasible);
    }
    let min_of = |s: usize| -> usize {
        if min_items.is_empty() {
            usize::from(stages > 1 && s != 0 && s != stages - 1)
        } else {
            min_items[s] as usize
        }
    };
    let floor_total: usize = (0..stages).map(min_of).sum();
    if n < floor_total {
        return Err(infeasible);
    }
    let extra = |s: usize| -> f64 {
        let mut e = 0.0;
        if s == 0 {
            e += first_extra;
        }
        if s == stages - 1 {
            e += last_extra;
        }
        e
    };
    // Prefix sums: load of items [i, j) is prefix[j] - prefix[i].
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for w in weights {
        prefix.push(prefix.last().unwrap() + w);
    }
    let slack = |b: f64| -> f64 { b * (1.0 + 1e-12) + 1e-12 };
    // Exact feasibility under a threshold: reachability DP over stage end
    // positions. After stage `s`, position `q` is reachable iff some
    // reachable predecessor `p <= q - min_of(s)` keeps the window
    // `[p, q)` within the cap — and since a *larger* `p` means a smaller
    // window, checking only the largest reachable predecessor is exact.
    // (A greedy maximal-prefix fill is not: with an interior floor of two
    // or more items, over-extending a cheap stage can force that floor
    // onto a heavy instance downstream.)
    let fill = |b: f64| -> Option<Vec<u64>> {
        let cap = slack(b);
        let mut reach = vec![false; n + 1];
        reach[0] = true;
        // choice[s][q]: the predecessor that reached `q` after stage `s`.
        let mut choice: Vec<Vec<isize>> = Vec::with_capacity(stages);
        for s in 0..stages {
            let mn = min_of(s);
            let ex = extra(s);
            // last_true[i]: the largest reachable p <= i, or -1.
            let mut last_true = vec![-1isize; n + 1];
            let mut lt = -1isize;
            for (i, r) in reach.iter().enumerate() {
                if *r {
                    lt = i as isize;
                }
                last_true[i] = lt;
            }
            let mut next_reach = vec![false; n + 1];
            let mut ch = vec![-1isize; n + 1];
            for q in mn..=n {
                let p = last_true[q - mn];
                if p >= 0 && prefix[q] - prefix[p as usize] + ex <= cap {
                    next_reach[q] = true;
                    ch[q] = p;
                }
            }
            choice.push(ch);
            reach = next_reach;
        }
        if !reach[n] {
            return None;
        }
        // Backtrack the stage sizes from the end.
        let mut alloc = vec![0u64; stages];
        let mut q = n;
        for s in (0..stages).rev() {
            let p = choice[s][q];
            debug_assert!(p >= 0, "reachable end without predecessor");
            alloc[s] = (q - p as usize) as u64;
            q = p as usize;
        }
        (q == 0).then_some(alloc)
    };
    // Candidate bottlenecks: every contiguous window sum, bare and with
    // each end extra.
    let mut thresholds = Vec::with_capacity(3 * n * (n + 1) / 2 + 3);
    for i in 0..=n {
        for j in i..=n {
            let base = prefix[j] - prefix[i];
            thresholds.push(base);
            thresholds.push(base + first_extra);
            thresholds.push(base + last_extra);
            thresholds.push(base + first_extra + last_extra);
        }
    }
    thresholds.retain(|b| b.is_finite());
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
    let mut lo = 0usize;
    let mut hi = thresholds.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if fill(thresholds[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if lo == thresholds.len() {
        return Err(infeasible);
    }
    let alloc = fill(thresholds[lo]).expect("feasible threshold");
    let mut bottleneck = 0.0f64;
    let mut idx = 0usize;
    for (s, &k) in alloc.iter().enumerate() {
        let load = prefix[idx + k as usize] - prefix[idx] + extra(s);
        bottleneck = bottleneck.max(load);
        idx += k as usize;
    }
    Ok(StageCuts {
        blocks: alloc,
        bottleneck,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_is_free() {
        let s = solve_chain(&[], |_, _, _| 0.0).unwrap();
        assert_eq!(s.cost, 0.0);
        assert!(s.choices.is_empty());
    }

    #[test]
    fn empty_candidate_list_is_a_typed_error() {
        let costs = vec![vec![1.0, 2.0], Vec::new(), vec![3.0]];
        let err = solve_chain(&costs, |_, _, _| 0.0).unwrap_err();
        assert_eq!(err, DpError::EmptyCandidateList { segment: 1 });
        assert!(err.to_string().contains("segment 1"));
    }

    #[test]
    fn picks_per_segment_minimum_without_transitions() {
        let costs = vec![vec![3.0, 1.0, 2.0], vec![5.0, 9.0, 4.0]];
        let s = solve_chain(&costs, |_, _, _| 0.0).unwrap();
        assert_eq!(s.choices, vec![1, 2]);
        assert!((s.cost - 5.0).abs() < 1e-12);
    }

    #[test]
    fn transitions_keep_assignment_uniform_when_expensive() {
        // Candidate 0 slightly worse per segment, but switching costs 100.
        let costs = vec![vec![1.0, 0.9], vec![1.0, 0.9], vec![0.5, 2.0]];
        let s = solve_chain(&costs, |_, a, b| if a == b { 0.0 } else { 100.0 }).unwrap();
        // Uniform candidate 1: 0.9+0.9+2.0 = 3.8; uniform 0: 2.5 — wins.
        assert_eq!(s.choices, vec![0, 0, 0]);
        assert!((s.cost - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cheap_transitions_allow_switching() {
        let costs = vec![vec![1.0, 10.0], vec![10.0, 1.0]];
        let s = solve_chain(&costs, |_, a, b| if a == b { 0.0 } else { 0.5 }).unwrap();
        assert_eq!(s.choices, vec![0, 1]);
        assert!((s.cost - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ragged_candidate_lists_are_solved() {
        // Segment 0 has three candidates, segment 1 only one, segment 2
        // two; the transition keys on (segment, index) pairs.
        let costs = vec![vec![3.0, 1.0, 2.0], vec![4.0], vec![0.5, 0.1]];
        let s = solve_chain(&costs, |s, _a, b| {
            // Entering segment 2's candidate 0 is expensive; its cheaper
            // sibling is free to reach.
            if s == 2 && b == 0 {
                10.0
            } else {
                0.0
            }
        })
        .unwrap();
        assert_eq!(s.choices, vec![1, 0, 1]);
        assert!((s.cost - (1.0 + 4.0 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn infeasible_candidates_are_avoided() {
        let costs = vec![vec![f64::INFINITY, 2.0], vec![1.0, f64::INFINITY]];
        let s = solve_chain(&costs, |_, _, _| 0.0).unwrap();
        assert_eq!(s.choices, vec![1, 0]);
        assert!(s.cost.is_finite());
    }

    #[test]
    fn balanced_cuts_split_evenly_without_extras() {
        let cuts = balance_stage_cuts(32, 4, 1.0, 0.0, 0.0, &[]).unwrap();
        assert_eq!(cuts.blocks, vec![8, 8, 8, 8]);
        assert!((cuts.bottleneck - 8.0).abs() < 1e-12);
        assert_eq!(cuts.blocks.iter().sum::<u64>(), 32);
    }

    #[test]
    fn end_extras_shift_blocks_off_the_end_stages() {
        // The first stage carries a 4-block-equivalent embedding, the last
        // a 2-block-equivalent head: the optimum sheds blocks from both.
        let cuts = balance_stage_cuts(32, 4, 1.0, 4.0, 2.0, &[]).unwrap();
        assert_eq!(cuts.blocks.iter().sum::<u64>(), 32);
        assert!(cuts.blocks[0] < cuts.blocks[1], "{cuts:?}");
        assert!(cuts.blocks[3] < cuts.blocks[2], "{cuts:?}");
        // Bottleneck strictly beats the naive even split's first-stage
        // time (8 blocks + the 4-block embedding).
        assert!(cuts.bottleneck < 8.0 + 4.0, "{cuts:?}");
        // And matches the brute-force optimum over all partitions.
        let mut best = f64::INFINITY;
        for k0 in 0..=32u64 {
            for k1 in 1..=32u64.saturating_sub(k0) {
                for k2 in 1..=32u64.saturating_sub(k0 + k1) {
                    let k3 = 32 - k0 - k1 - k2;
                    let b = (k0 as f64 + 4.0)
                        .max(k1 as f64)
                        .max(k2 as f64)
                        .max(k3 as f64 + 2.0);
                    best = best.min(b);
                }
            }
        }
        assert!(
            (cuts.bottleneck - best).abs() < 1e-9,
            "{} vs brute {best}",
            cuts.bottleneck
        );
    }

    #[test]
    fn single_stage_owns_everything() {
        let cuts = balance_stage_cuts(10, 1, 0.5, 1.0, 2.0, &[]).unwrap();
        assert_eq!(cuts.blocks, vec![10]);
        assert!((cuts.bottleneck - (5.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn infeasible_cuts_are_typed_errors() {
        // Fewer blocks than interior stages.
        assert_eq!(
            balance_stage_cuts(2, 6, 1.0, 0.0, 0.0, &[]).unwrap_err(),
            DpError::InfeasibleCut {
                blocks: 2,
                stages: 6
            }
        );
        assert!(balance_stage_cuts(8, 0, 1.0, 0.0, 0.0, &[]).is_err());
        assert!(balance_stage_cuts(8, 2, f64::NAN, 0.0, 0.0, &[]).is_err());
        assert!(balance_stage_cuts(8, 2, 1.0, f64::INFINITY, 0.0, &[]).is_err());
        // Zero-cost blocks balance by count alone.
        let cuts = balance_stage_cuts(9, 3, 0.0, 0.5, 0.25, &[]).unwrap();
        assert_eq!(cuts.blocks.iter().sum::<u64>(), 9);
        assert!((cuts.bottleneck - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cut_bottleneck_is_optimal_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..40 {
            let blocks = rng.gen_range(4..40u64);
            let stages = rng.gen_range(2..6usize);
            if blocks < (stages as u64).saturating_sub(2) {
                continue;
            }
            let unit = rng.gen_range(0.1..2.0);
            let e = rng.gen_range(0.0..5.0);
            let h = rng.gen_range(0.0..5.0);
            let cuts = balance_stage_cuts(blocks, stages, unit, e, h, &[]).unwrap();
            assert_eq!(cuts.blocks.iter().sum::<u64>(), blocks);
            for (s, &k) in cuts.blocks.iter().enumerate() {
                if s != 0 && s != stages - 1 {
                    assert!(k >= 1, "interior stage {s} empty: {cuts:?}");
                }
            }
            // Exhaustive check on small instances: enumerate partitions.
            let mut best = f64::INFINITY;
            let mut stack = vec![(0usize, 0u64, 0.0f64)];
            while let Some((s, used, worst)) = stack.pop() {
                if s == stages {
                    if used == blocks {
                        best = best.min(worst);
                    }
                    continue;
                }
                let min_k = u64::from(s != 0 && s != stages - 1);
                let extra = if s == 0 {
                    e
                } else if s == stages - 1 {
                    h
                } else {
                    0.0
                };
                for k in min_k..=(blocks - used) {
                    let t = k as f64 * unit + extra;
                    stack.push((s + 1, used + k, worst.max(t)));
                }
            }
            assert!(
                cuts.bottleneck <= best + 1e-9,
                "blocks={blocks} stages={stages} unit={unit} e={e} h={h}: \
                 {} vs brute {best}",
                cuts.bottleneck
            );
        }
    }

    #[test]
    fn weighted_cuts_reduce_to_uniform_on_equal_weights() {
        for (blocks, stages, unit, e, h) in [(32u64, 4usize, 1.0, 0.0, 0.0), (32, 4, 1.0, 4.0, 2.0)]
        {
            let uniform = balance_stage_cuts(blocks, stages, unit, e, h, &[]).unwrap();
            let weights = vec![unit; blocks as usize];
            let weighted = balance_weighted_cuts(&weights, stages, e, h, &[]).unwrap();
            assert_eq!(weighted.blocks.iter().sum::<u64>(), blocks);
            assert!(
                (weighted.bottleneck - uniform.bottleneck).abs() <= 1e-9,
                "{} vs {}",
                weighted.bottleneck,
                uniform.bottleneck
            );
        }
    }

    #[test]
    fn weighted_cuts_isolate_expert_heavy_stretches() {
        // Four cheap dense instances then four expensive MoE instances:
        // the optimal two-way cut gives the MoE stretch its own stage
        // with *fewer* items.
        let weights = [1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 5.0];
        let cuts = balance_weighted_cuts(&weights, 2, 0.0, 0.0, &[]).unwrap();
        assert_eq!(cuts.blocks.iter().sum::<u64>(), 8);
        // Best split: [1,1,1,1,5,5] | [5,5] -> bottleneck 14 (an even
        // 4|4 count split would pay 20): the expert-heavy stretch gets a
        // stage with far fewer instances.
        assert_eq!(cuts.blocks, vec![6, 2]);
        assert!((cuts.bottleneck - 14.0).abs() < 1e-12, "{cuts:?}");
        assert!(cuts.blocks[1] < cuts.blocks[0]);
    }

    #[test]
    fn weighted_cuts_respect_multi_item_floors_exactly() {
        // The case a greedy maximal-prefix fill gets wrong: over-extending
        // the cheap first stage forces stage 1's two-item floor onto the
        // heavy instance. Optimal: [5] | [1,1] | [100] -> bottleneck 100.
        let cuts = balance_weighted_cuts(&[5.0, 1.0, 1.0, 100.0], 3, 0.0, 0.0, &[0, 2, 0]).unwrap();
        assert_eq!(cuts.blocks, vec![1, 2, 1], "{cuts:?}");
        assert!((cuts.bottleneck - 100.0).abs() < 1e-9, "{cuts:?}");
    }

    #[test]
    fn weighted_cuts_match_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(37);
        for case in 0..80 {
            let n = rng.gen_range(3..14usize);
            let stages = rng.gen_range(2..5usize);
            if n < stages.saturating_sub(2) {
                continue;
            }
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..4.0)).collect();
            let e = rng.gen_range(0.0..3.0);
            let h = rng.gen_range(0.0..3.0);
            // Half the cases use explicit floors (including multi-item
            // interior floors, the regime where greedy fills fail).
            let floors: Vec<u64> = if case % 2 == 0 {
                Vec::new()
            } else {
                (0..stages).map(|_| rng.gen_range(0..3u64)).collect()
            };
            let Ok(cuts) = balance_weighted_cuts(&weights, stages, e, h, &floors) else {
                continue;
            };
            assert_eq!(cuts.blocks.iter().sum::<u64>(), n as u64);
            let min_of = |s: usize| -> usize {
                if floors.is_empty() {
                    usize::from(s != 0 && s != stages - 1)
                } else {
                    floors[s] as usize
                }
            };
            for (s, &k) in cuts.blocks.iter().enumerate() {
                assert!(k as usize >= min_of(s), "floor violated: {cuts:?}");
            }
            // Brute force over all contiguous partitions.
            let mut best = f64::INFINITY;
            let mut stack = vec![(0usize, 0usize, 0.0f64)];
            while let Some((s, idx, worst)) = stack.pop() {
                if s == stages {
                    if idx == n {
                        best = best.min(worst);
                    }
                    continue;
                }
                let extra = if stages == 1 {
                    e + h
                } else if s == 0 {
                    e
                } else if s == stages - 1 {
                    h
                } else {
                    0.0
                };
                for k in min_of(s)..=(n - idx) {
                    let load: f64 = weights[idx..idx + k].iter().sum::<f64>() + extra;
                    stack.push((s + 1, idx + k, worst.max(load)));
                }
            }
            assert!(
                cuts.bottleneck <= best + 1e-9,
                "weights {weights:?} stages {stages} e {e} h {h} floors {floors:?}: \
                 {} vs brute {best}",
                cuts.bottleneck
            );
        }
    }

    #[test]
    fn weighted_cuts_reject_malformed_inputs() {
        assert!(balance_weighted_cuts(&[1.0; 4], 0, 0.0, 0.0, &[]).is_err());
        assert!(balance_weighted_cuts(&[1.0, f64::NAN], 2, 0.0, 0.0, &[]).is_err());
        assert!(balance_weighted_cuts(&[1.0, -1.0], 2, 0.0, 0.0, &[]).is_err());
        assert!(balance_weighted_cuts(&[1.0; 4], 2, f64::INFINITY, 0.0, &[]).is_err());
        // Floors above the item count.
        assert!(balance_weighted_cuts(&[1.0; 2], 2, 0.0, 0.0, &[2, 2]).is_err());
        // Wrong floor arity.
        assert!(balance_weighted_cuts(&[1.0; 4], 2, 0.0, 0.0, &[1]).is_err());
        // Single stage owns everything, extras included.
        let one = balance_weighted_cuts(&[1.0, 2.0], 1, 0.5, 0.25, &[]).unwrap();
        assert_eq!(one.blocks, vec![2]);
        assert!((one.bottleneck - 3.75).abs() < 1e-12);
    }

    #[test]
    fn dp_matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let segs = rng.gen_range(1..5usize);
            // Ragged: every segment draws its own candidate count.
            let ks: Vec<usize> = (0..segs).map(|_| rng.gen_range(1..4usize)).collect();
            let costs: Vec<Vec<f64>> = ks
                .iter()
                .map(|&k| (0..k).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let kmax = ks.iter().copied().max().unwrap();
            let tr: Vec<Vec<f64>> = (0..kmax)
                .map(|_| (0..kmax).map(|_| rng.gen_range(0.0..3.0)).collect())
                .collect();
            let dp = solve_chain(&costs, |_, a, b| tr[a][b]).unwrap();
            // Brute force over the ragged product space.
            let mut best = f64::INFINITY;
            let mut stack = vec![(0usize, 0.0f64, usize::MAX)];
            while let Some((s, acc, prev)) = stack.pop() {
                if s == segs {
                    best = best.min(acc);
                    continue;
                }
                for c in 0..ks[s] {
                    let t = if prev == usize::MAX { 0.0 } else { tr[prev][c] };
                    stack.push((s + 1, acc + costs[s][c] + t, c));
                }
            }
            assert!(
                (dp.cost - best).abs() < 1e-9,
                "dp {} vs brute {}",
                dp.cost,
                best
            );
        }
    }
}
