//! Level 1 of the DLS algorithm: dynamic programming over a segment chain.
//!
//! After the residual-aware graph partition (see
//! [`temp_graph::graph::ComputeGraph::segments`]), the model is a chain of
//! segments. Each segment independently picks a strategy from a candidate
//! set; adjacent segments with different strategies pay a resharding
//! (transition) cost. The DP finds the optimal assignment in
//! `O(segments x candidates^2)` — the "recursive dynamic-programming routine
//! [that] iteratively optimizes one operator at a time" of Fig. 12(b).

/// Result of a chain DP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSolution {
    /// Chosen candidate index per segment.
    pub choices: Vec<usize>,
    /// Total cost (segment costs + transitions).
    pub cost: f64,
}

/// Solves the segment-chain assignment problem.
///
/// `segment_costs[s][c]` is the cost of running segment `s` under candidate
/// `c` (use `f64::INFINITY` for infeasible pairs); `transition(a, b)` prices
/// switching from candidate `a` to candidate `b` between adjacent segments.
///
/// # Panics
///
/// Panics if any segment has an empty candidate list.
pub fn solve_chain(
    segment_costs: &[Vec<f64>],
    transition: impl Fn(usize, usize) -> f64,
) -> DpSolution {
    if segment_costs.is_empty() {
        return DpSolution {
            choices: Vec::new(),
            cost: 0.0,
        };
    }
    let k = segment_costs[0].len();
    assert!(k > 0, "each segment needs at least one candidate");
    // best[c] = min cost of prefix ending with candidate c.
    let mut best: Vec<f64> = segment_costs[0].clone();
    let mut back: Vec<Vec<usize>> = vec![vec![0; k]];
    for costs in segment_costs.iter().skip(1) {
        assert_eq!(costs.len(), k, "candidate sets must be uniform");
        let mut next = vec![f64::INFINITY; k];
        let mut bk = vec![0usize; k];
        for (c, &seg_cost) in costs.iter().enumerate() {
            for (p, &prev_cost) in best.iter().enumerate() {
                let total = prev_cost + transition(p, c) + seg_cost;
                if total < next[c] {
                    next[c] = total;
                    bk[c] = p;
                }
            }
        }
        best = next;
        back.push(bk);
    }
    // Reconstruct.
    let (mut cur, &cost) = best
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite or inf"))
        .expect("non-empty candidates");
    let mut choices = vec![0; segment_costs.len()];
    for s in (0..segment_costs.len()).rev() {
        choices[s] = cur;
        cur = back[s][cur];
    }
    DpSolution { choices, cost }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_is_free() {
        let s = solve_chain(&[], |_, _| 0.0);
        assert_eq!(s.cost, 0.0);
        assert!(s.choices.is_empty());
    }

    #[test]
    fn picks_per_segment_minimum_without_transitions() {
        let costs = vec![vec![3.0, 1.0, 2.0], vec![5.0, 9.0, 4.0]];
        let s = solve_chain(&costs, |_, _| 0.0);
        assert_eq!(s.choices, vec![1, 2]);
        assert!((s.cost - 5.0).abs() < 1e-12);
    }

    #[test]
    fn transitions_keep_assignment_uniform_when_expensive() {
        // Candidate 0 slightly worse per segment, but switching costs 100.
        let costs = vec![vec![1.0, 0.9], vec![1.0, 0.9], vec![0.5, 2.0]];
        let s = solve_chain(&costs, |a, b| if a == b { 0.0 } else { 100.0 });
        // Uniform candidate 1: 0.9+0.9+2.0 = 3.8; uniform 0: 2.5 — wins.
        assert_eq!(s.choices, vec![0, 0, 0]);
        assert!((s.cost - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cheap_transitions_allow_switching() {
        let costs = vec![vec![1.0, 10.0], vec![10.0, 1.0]];
        let s = solve_chain(&costs, |a, b| if a == b { 0.0 } else { 0.5 });
        assert_eq!(s.choices, vec![0, 1]);
        assert!((s.cost - 2.5).abs() < 1e-12);
    }

    #[test]
    fn infeasible_candidates_are_avoided() {
        let costs = vec![vec![f64::INFINITY, 2.0], vec![1.0, f64::INFINITY]];
        let s = solve_chain(&costs, |_, _| 0.0);
        assert_eq!(s.choices, vec![1, 0]);
        assert!(s.cost.is_finite());
    }

    #[test]
    fn dp_matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let segs = rng.gen_range(1..5usize);
            let k = rng.gen_range(1..4usize);
            let costs: Vec<Vec<f64>> = (0..segs)
                .map(|_| (0..k).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let tr: Vec<Vec<f64>> = (0..k)
                .map(|_| (0..k).map(|_| rng.gen_range(0.0..3.0)).collect())
                .collect();
            let dp = solve_chain(&costs, |a, b| tr[a][b]);
            // Brute force.
            let mut best = f64::INFINITY;
            let mut stack = vec![(0usize, 0.0f64, usize::MAX)];
            while let Some((s, acc, prev)) = stack.pop() {
                if s == segs {
                    best = best.min(acc);
                    continue;
                }
                for c in 0..k {
                    let t = if prev == usize::MAX { 0.0 } else { tr[prev][c] };
                    stack.push((s + 1, acc + costs[s][c] + t, c));
                }
            }
            assert!(
                (dp.cost - best).abs() < 1e-9,
                "dp {} vs brute {}",
                dp.cost,
                best
            );
        }
    }
}
