//! Level 1 of the DLS algorithm: dynamic programming over a segment chain.
//!
//! After the residual-aware graph partition (see
//! [`temp_graph::graph::ComputeGraph::segments`]), the model is a chain of
//! segments. Each segment independently picks a strategy from **its own**
//! candidate list (lists may be ragged — the embedding can admit
//! strategies the blocks cannot, and vice versa); adjacent segments with
//! different strategies pay a resharding (transition) cost. The DP finds
//! the optimal assignment in `O(segments x candidates^2)` — the "recursive
//! dynamic-programming routine [that] iteratively optimizes one operator
//! at a time" of Fig. 12(b).

/// Typed failure of a chain solve — malformed chains surface as errors
/// instead of aborting a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DpError {
    /// Segment `segment` has an empty candidate list.
    EmptyCandidateList {
        /// Index of the offending segment.
        segment: usize,
    },
}

impl std::fmt::Display for DpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpError::EmptyCandidateList { segment } => {
                write!(f, "segment {segment} has an empty candidate list")
            }
        }
    }
}

impl std::error::Error for DpError {}

/// Result of a chain DP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSolution {
    /// Chosen candidate index per segment (into that segment's own list).
    pub choices: Vec<usize>,
    /// Total cost (segment costs + transitions).
    pub cost: f64,
}

/// Solves the segment-chain assignment problem.
///
/// `segment_costs[s][c]` is the cost of running segment `s` under its
/// candidate `c` (use `f64::INFINITY` for infeasible pairs); the lists may
/// have different lengths per segment. `transition(s, a, b)` prices
/// switching from segment `s-1`'s candidate `a` to segment `s`'s candidate
/// `b` — with ragged lists the segment index disambiguates what `a` and
/// `b` refer to.
///
/// # Errors
///
/// Returns [`DpError::EmptyCandidateList`] when any segment has no
/// candidates (an empty chain is trivially solvable and returns an empty
/// solution).
pub fn solve_chain(
    segment_costs: &[Vec<f64>],
    transition: impl Fn(usize, usize, usize) -> f64,
) -> Result<DpSolution, DpError> {
    if segment_costs.is_empty() {
        return Ok(DpSolution {
            choices: Vec::new(),
            cost: 0.0,
        });
    }
    if let Some(segment) = segment_costs.iter().position(Vec::is_empty) {
        return Err(DpError::EmptyCandidateList { segment });
    }
    // best[c] = min cost of prefix ending with candidate c of the current
    // segment.
    let mut best: Vec<f64> = segment_costs[0].clone();
    let mut back: Vec<Vec<usize>> = vec![vec![0; best.len()]];
    for (s, costs) in segment_costs.iter().enumerate().skip(1) {
        let mut next = vec![f64::INFINITY; costs.len()];
        let mut bk = vec![0usize; costs.len()];
        for (c, &seg_cost) in costs.iter().enumerate() {
            for (p, &prev_cost) in best.iter().enumerate() {
                let total = prev_cost + transition(s, p, c) + seg_cost;
                if total < next[c] {
                    next[c] = total;
                    bk[c] = p;
                }
            }
        }
        best = next;
        back.push(bk);
    }
    // Reconstruct.
    let (mut cur, &cost) = best
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite or inf"))
        .expect("non-empty candidates");
    let mut choices = vec![0; segment_costs.len()];
    for s in (0..segment_costs.len()).rev() {
        choices[s] = cur;
        cur = back[s][cur];
    }
    Ok(DpSolution { choices, cost })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_is_free() {
        let s = solve_chain(&[], |_, _, _| 0.0).unwrap();
        assert_eq!(s.cost, 0.0);
        assert!(s.choices.is_empty());
    }

    #[test]
    fn empty_candidate_list_is_a_typed_error() {
        let costs = vec![vec![1.0, 2.0], Vec::new(), vec![3.0]];
        let err = solve_chain(&costs, |_, _, _| 0.0).unwrap_err();
        assert_eq!(err, DpError::EmptyCandidateList { segment: 1 });
        assert!(err.to_string().contains("segment 1"));
    }

    #[test]
    fn picks_per_segment_minimum_without_transitions() {
        let costs = vec![vec![3.0, 1.0, 2.0], vec![5.0, 9.0, 4.0]];
        let s = solve_chain(&costs, |_, _, _| 0.0).unwrap();
        assert_eq!(s.choices, vec![1, 2]);
        assert!((s.cost - 5.0).abs() < 1e-12);
    }

    #[test]
    fn transitions_keep_assignment_uniform_when_expensive() {
        // Candidate 0 slightly worse per segment, but switching costs 100.
        let costs = vec![vec![1.0, 0.9], vec![1.0, 0.9], vec![0.5, 2.0]];
        let s = solve_chain(&costs, |_, a, b| if a == b { 0.0 } else { 100.0 }).unwrap();
        // Uniform candidate 1: 0.9+0.9+2.0 = 3.8; uniform 0: 2.5 — wins.
        assert_eq!(s.choices, vec![0, 0, 0]);
        assert!((s.cost - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cheap_transitions_allow_switching() {
        let costs = vec![vec![1.0, 10.0], vec![10.0, 1.0]];
        let s = solve_chain(&costs, |_, a, b| if a == b { 0.0 } else { 0.5 }).unwrap();
        assert_eq!(s.choices, vec![0, 1]);
        assert!((s.cost - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ragged_candidate_lists_are_solved() {
        // Segment 0 has three candidates, segment 1 only one, segment 2
        // two; the transition keys on (segment, index) pairs.
        let costs = vec![vec![3.0, 1.0, 2.0], vec![4.0], vec![0.5, 0.1]];
        let s = solve_chain(&costs, |s, _a, b| {
            // Entering segment 2's candidate 0 is expensive; its cheaper
            // sibling is free to reach.
            if s == 2 && b == 0 {
                10.0
            } else {
                0.0
            }
        })
        .unwrap();
        assert_eq!(s.choices, vec![1, 0, 1]);
        assert!((s.cost - (1.0 + 4.0 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn infeasible_candidates_are_avoided() {
        let costs = vec![vec![f64::INFINITY, 2.0], vec![1.0, f64::INFINITY]];
        let s = solve_chain(&costs, |_, _, _| 0.0).unwrap();
        assert_eq!(s.choices, vec![1, 0]);
        assert!(s.cost.is_finite());
    }

    #[test]
    fn dp_matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let segs = rng.gen_range(1..5usize);
            // Ragged: every segment draws its own candidate count.
            let ks: Vec<usize> = (0..segs).map(|_| rng.gen_range(1..4usize)).collect();
            let costs: Vec<Vec<f64>> = ks
                .iter()
                .map(|&k| (0..k).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let kmax = ks.iter().copied().max().unwrap();
            let tr: Vec<Vec<f64>> = (0..kmax)
                .map(|_| (0..kmax).map(|_| rng.gen_range(0.0..3.0)).collect())
                .collect();
            let dp = solve_chain(&costs, |_, a, b| tr[a][b]).unwrap();
            // Brute force over the ragged product space.
            let mut best = f64::INFINITY;
            let mut stack = vec![(0usize, 0.0f64, usize::MAX)];
            while let Some((s, acc, prev)) = stack.pop() {
                if s == segs {
                    best = best.min(acc);
                    continue;
                }
                for c in 0..ks[s] {
                    let t = if prev == usize::MAX { 0.0 } else { tr[prev][c] };
                    stack.push((s + 1, acc + costs[s][c] + t, c));
                }
            }
            assert!(
                (dp.cost - best).abs() < 1e-9,
                "dp {} vs brute {}",
                dp.cost,
                best
            );
        }
    }
}
