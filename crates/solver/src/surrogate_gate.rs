//! Tier-1 of the two-tier evaluation pipeline: a learned cost surrogate
//! that shortlists candidates before the exact cost model runs (§VII-A,
//! Fig. 21 — surrogate queries are 100–1000x faster than re-simulation).
//!
//! For one batch of candidates the gate:
//!
//! 1. resolves memory feasibility with the **exact footprint arithmetic**
//!    the cost model itself uses (`per_die_footprint` is closed-form, no
//!    mapping or contention simulation) — candidates that OOM even under
//!    full recomputation are reported infeasible without ever running the
//!    expensive pipeline, which is a pure win: the exhaustive path would
//!    simulate them only to discard them;
//! 2. exact-costs a stride-sampled **training set** of the feasible
//!    candidates (these evaluations land in the shared cache, so nothing
//!    is wasted);
//! 3. fits a [`LinearRegression`] from the cheap analytic features of
//!    [`crate::cost::WaferCostModel::feature_vector`] to log step time;
//! 4. predicts the remaining candidates in microseconds and keeps the
//!    **top-K** by predicted cost, exact-costing them in surrogate-ranked
//!    order so the most promising candidates finish first under the
//!    work-stealing parallel map;
//! 5. reports everything else infeasible without evaluation.
//!
//! The DP/GA ranking downstream only ever consumes exact
//! [`crate::cost::CostReport`]s, so the solved plan is identical to
//! exhaustive exact search whenever the exact winner survives the gate.
//! The default [`GateParams`] are sized so it does across the fig13 model
//! zoo (asserted by `tests/two_tier.rs`); if the predictor cannot be fit
//! (degenerate batch, nothing feasible in the training set) the gate
//! falls back to exact costing of the whole batch.
//!
//! Every exact evaluation the gate performs (training samples, top-K
//! survivors, fallbacks) is attributed to the gated tier in
//! [`crate::search::SearchStats`] (`gated_hits` / `gated_misses`), so the
//! cache behavior of gated sweeps is observable separately from the
//! exact tier's.

use temp_graph::workload::RecomputeMode;
use temp_mapping::engines::MappingEngine;
use temp_parallel::memory::per_die_footprint;
use temp_parallel::strategy::HybridConfig;
use temp_surrogate::dataset::{Dataset, TargetClass};
use temp_surrogate::gate::{GateModel, GatePredictor};

use crate::search::{CandidateCost, SearchContext};

/// Tuning of the surrogate gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateParams {
    /// Candidates kept for exact costing beyond the training set. The
    /// default carries a safety margin: across the fig13 model zoo the
    /// exhaustive winner always ranks well inside the top K. When
    /// [`GateParams::adaptive`] is set this is only the *initial* K — see
    /// [`crate::search::SearchContext::effective_top_k`].
    pub top_k: usize,
    /// Every `train_stride`-th candidate is exact-costed to fit the
    /// predictor.
    pub train_stride: usize,
    /// Batches smaller than this skip the gate entirely (training +
    /// survivors would cover most of the batch anyway).
    pub min_batch: usize,
    /// Adapt the top-K from observed rank-of-winner statistics: after each
    /// gated batch the rank at which the exact winner surfaced is
    /// recorded, and later batches keep twice the worst observed rank
    /// (clamped) instead of the fixed default.
    pub adaptive: bool,
    /// Which predictor family the per-batch fit uses. LinReg is the
    /// default until the MLP wins on the recorded rank-of-winner stats
    /// (see `temp_surrogate::gate`).
    pub model: GateModel,
}

impl Default for GateParams {
    fn default() -> Self {
        GateParams {
            top_k: 16,
            train_stride: 8,
            min_batch: 48,
            adaptive: true,
            model: GateModel::default(),
        }
    }
}

/// Minimum finite training samples required to trust a fit.
const MIN_TRAIN_SAMPLES: usize = 6;

/// The per-degree batch mode of the gate: costs one candidate batch per
/// pipeline degree of a multi-wafer sweep, gating each batch **on its
/// own** — its own memory precheck, stride-sampled training set, fit and
/// top-K shortlist. Ranking every degree independently is what keeps the
/// winner-retention guarantee intact per solve: a pipeline degree whose
/// step times run higher (deeper bubbles) would otherwise lose its whole
/// batch to a shallower degree's candidates in a single cross-degree
/// ranking. All batches still share the context's evaluation cache, so
/// the per-degree solves that follow a sweep replay from warm state.
pub(crate) fn cost_candidate_groups(
    ctx: &SearchContext,
    groups: &[Vec<HybridConfig>],
    engine: MappingEngine,
    params: GateParams,
) -> Vec<Vec<CandidateCost>> {
    groups
        .iter()
        .map(|g| cost_candidates_gated(ctx, g, engine, params))
        .collect()
}

/// Costs a batch through the surrogate gate. The returned vector is
/// aligned with `candidates`; pruned entries are `(f64::INFINITY, None)`.
pub(crate) fn cost_candidates_gated(
    ctx: &SearchContext,
    candidates: &[HybridConfig],
    engine: MappingEngine,
    params: GateParams,
) -> Vec<CandidateCost> {
    let n = candidates.len();
    if n < params.min_batch.max(1) {
        return ctx.cost_candidates_exact(candidates, engine);
    }

    // Memory precheck: `cost_of` declares a candidate infeasible exactly
    // when the per-die footprint overflows HBM in the base recompute mode
    // *and* under full recomputation. Both footprints are closed-form, so
    // memory-infeasible candidates are resolved here without ever running
    // mapping + contention simulation. (Layout failures remain possible
    // among the survivors; they cost one evaluation and come back
    // infinite, exactly as in the exhaustive path.)
    let model = ctx.cost_model();
    let base_wl = model.workload().clone();
    let full_wl = base_wl.clone().with_recompute(RecomputeMode::Full);
    let hbm = model.wafer().hbm.capacity;
    let fits = |cfg: &HybridConfig| {
        per_die_footprint(model.model(), &base_wl, cfg).fits(hbm)
            || per_die_footprint(model.model(), &full_wl, cfg).fits(hbm)
    };
    let feasible: Vec<usize> = (0..n).filter(|&i| fits(&candidates[i])).collect();
    let mut out: Vec<CandidateCost> = vec![(f64::INFINITY, None); n];

    // Top-K: the configured default until rank-of-winner statistics have
    // been observed, adapted afterwards (see
    // `SearchContext::effective_top_k`). Pipelined batches (multi-wafer
    // degrees, `pp > 1`) keep twice the shortlist: their step times are
    // bubble-dominated and cluster tightly, so the predictor's ranking
    // margin shrinks while a pruned winner would stay unobservable.
    let pipelined = candidates.iter().any(|c| c.pp > 1);
    let top_k = if pipelined {
        2 * ctx.effective_top_k()
    } else {
        ctx.effective_top_k()
    };

    let stride = params.train_stride.max(1);
    let train_count = feasible.len().div_ceil(stride);
    if train_count + top_k >= feasible.len() {
        // The surrogate cannot save anything on a batch this small: cost
        // every memory-feasible candidate exactly.
        let cfgs: Vec<HybridConfig> = feasible.iter().map(|&i| candidates[i]).collect();
        for (&i, cost) in feasible
            .iter()
            .zip(ctx.cost_candidates_exact(&cfgs, engine))
        {
            out[i] = cost;
        }
        ctx.note_pruned((n - feasible.len()) as u64);
        return out;
    }

    // Tier 2 on the training set: exact costs, shared through the cache.
    let train_idx: Vec<usize> = feasible.iter().copied().step_by(stride).collect();
    let train_cfgs: Vec<HybridConfig> = train_idx.iter().map(|&i| candidates[i]).collect();
    let train_costs = ctx.cost_candidates_exact(&train_cfgs, engine);

    // Fit the predictor on the training samples that planned. On mixed
    // dense/MoE chains the MoE run dominates the uniform step time and is
    // priced *exactly* by the tier-independent segment rows below, so the
    // predictor is trained on the dense block-only residual instead — a
    // total-time target would bury the block signal the ranking actually
    // has to discriminate in the predictor's noise floor.
    let block_targets = ctx
        .chain()
        .find(temp_graph::segment::SegmentKind::MoeBlock)
        .is_some();
    let mode = base_wl.recompute;
    let mut features = Vec::with_capacity(train_idx.len());
    let mut targets = Vec::with_capacity(train_idx.len());
    for (cfg, (t, payload)) in train_cfgs.iter().zip(&train_costs) {
        if t.is_finite() {
            let target = if block_targets {
                payload.as_ref().map(|(_, r)| r.block_time()).unwrap_or(*t)
            } else {
                *t
            };
            features.push(model.feature_vector(cfg, engine, mode));
            targets.push(target);
        }
    }
    // Exact-tier fallback shared by the two graceful-degradation exits:
    // too little training signal, or a predictor that fails validation.
    // Training costs are already paid (and cached); only the rest of the
    // feasible set is re-costed exactly.
    let exact_fallback =
        |mut out: Vec<CandidateCost>, train_costs: Vec<CandidateCost>| -> Vec<CandidateCost> {
            let rest: Vec<usize> = feasible
                .iter()
                .copied()
                .filter(|i| !train_idx.contains(i))
                .collect();
            let cfgs: Vec<HybridConfig> = rest.iter().map(|&i| candidates[i]).collect();
            for (&i, cost) in train_idx.iter().zip(train_costs) {
                out[i] = cost;
            }
            for (&i, cost) in rest.iter().zip(ctx.cost_candidates_exact(&cfgs, engine)) {
                out[i] = cost;
            }
            ctx.note_pruned((n - feasible.len()) as u64);
            out
        };
    if features.len() < MIN_TRAIN_SAMPLES {
        // Not enough signal to rank safely.
        return exact_fallback(out, train_costs);
    }
    // A warm predictor imported from another context (matching feature
    // layout) skips the per-batch fit entirely; otherwise fit the
    // configured family and publish it for export. Locally fitted
    // predictors never short-circuit later batches — each batch fits its
    // own, which the per-degree winner-retention guarantee relies on.
    let feature_dim = features.first().map(Vec::len).unwrap_or(0);
    // Keep the training features around: whichever predictor we end up
    // with (warm import or fresh fit) is validated against them below.
    let probe = features.clone();
    let predictor = match ctx.imported_gate_predictor() {
        Some(warm) if warm.feature_dim() == feature_dim => warm,
        _ => {
            let fit_started = std::time::Instant::now();
            let fitted = GatePredictor::fit(
                params.model,
                &Dataset {
                    features,
                    targets,
                    // The class tag is dataset metadata; fitting only reads
                    // features/targets.
                    class: TargetClass::Compute,
                },
            );
            ctx.note_gate_fit_ns(fit_started.elapsed().as_nanos() as u64);
            ctx.store_gate_predictor(fitted.clone());
            fitted
        }
    };
    // Graceful gate degradation: a predictor that cannot even score its
    // own training features finitely (degenerate fit, corrupt or stale
    // import) must not shortlist anything — drop to the exact tier for
    // this batch instead of propagating NaN ranks.
    if probe.iter().any(|f| !predictor.predict(f).is_finite()) {
        return exact_fallback(out, train_costs);
    }

    // Heterogeneous-chain correction: the DP downstream prices the
    // embedding/head segments from the tier-independent segment table and
    // may move them off a candidate whose end segments are expensive
    // (paying one resharding boundary instead). Rank candidates by that
    // *effective* chain objective — predicted uniform step time minus
    // what the chain can save on each end segment — so the block winner
    // of the heterogeneous DP survives the gate, not merely the uniform
    // winner.
    //
    // Pipelined batches (`pp > 1`) get one more term: the stage-
    // partitioned planner runs the embedding/head *inside* their stages,
    // where all but the bottleneck repetition overlaps the pipeline — of
    // the `micro` end-segment executions the uniform evaluation charges,
    // only ~1 + (micro-1) x [end stage is the bottleneck] remain exposed.
    // Ranking must price that overlap (cheapest-end variant, the
    // first-order term) or a candidate with cheap-but-nonzero ends loses
    // its shortlist slot to one the stage objective ranks worse.
    let micro = base_wl.micro_batches.max(1) as f64;
    let boundary = micro * ctx.full_reshard_cost();
    // The same per-step rows the chain DP consumes
    // (`SearchContext::segment_step_costs` is the single source of truth,
    // so the correction and the DP objective cannot drift apart). The end
    // segments pay one resharding boundary to leave the body's strategy;
    // an interior MoE run pays two (into and out of the run). On mixed
    // chains this correction is what lets a body candidate with expensive
    // MoE economics (say, `ep = 1` against wide experts) survive ranking:
    // the DP will move the MoE run onto an expert-parallel tuple, and the
    // ranking must price that swap or the block winner gets pruned.
    let chain = ctx.chain();
    let mut row_specs: Vec<(temp_graph::segment::SegmentKind, f64)> = vec![
        (temp_graph::segment::SegmentKind::Embedding, boundary),
        (temp_graph::segment::SegmentKind::Head, boundary),
    ];
    if chain
        .find(temp_graph::segment::SegmentKind::MoeBlock)
        .is_some()
    {
        row_specs.push((temp_graph::segment::SegmentKind::MoeBlock, 2.0 * boundary));
    }
    let end_rows: Vec<(Vec<f64>, f64)> = row_specs
        .iter()
        .map(|&(kind, bnd)| {
            (
                ctx.segment_step_costs(kind, candidates, engine, base_wl.recompute),
                bnd,
            )
        })
        .collect();
    // The per-row minima are loop invariants: hoist them so the
    // correction is O(1) per candidate instead of rescanning the rows.
    // For the MoE row the batch (ep = 1 body candidates) is not where the
    // downstream DP shops: its MoE run chooses from the full
    // expert-parallel space, so the swap target `best` must come from the
    // full-space row (closed-form, memoized) or the correction would
    // price swaps against the worst-case ep = 1 economics. The full space
    // is not narrowed by a baseline's admission filter; at worst that
    // *under*-prices every candidate's MoE term by the same constant,
    // which cancels in the ranking.
    let row_min = |row: &[f64]| {
        row.iter()
            .copied()
            .filter(|t| t.is_finite())
            .fold(f64::INFINITY, f64::min)
    };
    let end_best: Vec<f64> = end_rows
        .iter()
        .zip(&row_specs)
        .map(|((row, _), &(kind, _))| {
            if kind == temp_graph::segment::SegmentKind::MoeBlock {
                let pp = candidates.first().map(|c| c.pp).unwrap_or(1);
                let full_space = ctx.candidates_with_pp(pp);
                let full_row = ctx.segment_step_costs(kind, &full_space, engine, base_wl.recompute);
                row_min(&full_row).min(row_min(row))
            } else {
                row_min(row)
            }
        })
        .collect();
    // With block-only targets (`block_targets`, MoE chains) the predictor
    // never saw the segment rows, so the correction *adds* each row's
    // effective cost; with total targets (dense chains) the rows are
    // already inside the prediction and the correction only accounts the
    // swap saving.
    let chain_correction = |i: usize| -> f64 {
        let mut effective = vec![f64::INFINITY; end_rows.len()];
        let mut value = 0.0;
        for (k, ((row, bnd), &best)) in end_rows.iter().zip(&end_best).enumerate() {
            let own = row[i];
            if own.is_finite() {
                effective[k] = (best + bnd).min(own);
                value += if block_targets {
                    effective[k]
                } else {
                    effective[k] - own
                };
            } else {
                effective[k] = best + bnd;
                if block_targets {
                    value += effective[k];
                }
            }
        }
        // Pipeline overlap of the cheaper end stage (see above): the
        // stage planner exposes roughly one of its `micro` executions.
        // Interior MoE runs stay pipeline-scaled either way, so only the
        // two end rows participate.
        let overlap = if candidates[i].pp > 1 {
            let cheaper = effective[0].min(effective[1]);
            if cheaper.is_finite() {
                (micro - 1.0) / micro * cheaper
            } else {
                0.0
            }
        } else {
            0.0
        };
        value - overlap
    };

    // Tier 1: rank every remaining feasible candidate by predicted
    // chain-effective step time.
    let mut ranked: Vec<(usize, f64)> = feasible
        .iter()
        .enumerate()
        .filter(|(pos, _)| pos % stride != 0)
        .map(|(_, &i)| {
            let f = model.feature_vector(&candidates[i], engine, mode);
            (i, predictor.predict(&f) + chain_correction(i))
        })
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let survivors: Vec<usize> = ranked.iter().take(top_k).map(|(i, _)| *i).collect();

    // Tier 2 on the survivors, in surrogate-ranked order: the parallel
    // map hands out items front-to-back, so the most promising
    // candidates are costed first.
    let survivor_cfgs: Vec<HybridConfig> = survivors.iter().map(|&i| candidates[i]).collect();
    let survivor_costs = ctx.cost_candidates_exact(&survivor_cfgs, engine);

    // Rank-of-winner statistics: where in the surrogate order did the
    // batch's winner actually surface? Feeds the adaptive top-K. The
    // "winner" is judged by the same chain-effective objective the
    // ranking sorts by (exact step time + chain correction) — that is the
    // quantity the downstream heterogeneous DP minimizes over block
    // candidates, so it is the retention target the shortlist must cover.
    if params.adaptive {
        let effective = |i: usize, cost: &CandidateCost| {
            let (t, payload) = cost;
            if !t.is_finite() {
                return *t;
            }
            let base = if block_targets {
                payload.as_ref().map(|(_, r)| r.block_time()).unwrap_or(*t)
            } else {
                *t
            };
            base + chain_correction(i)
        };
        let train_best = train_idx
            .iter()
            .zip(&train_costs)
            .map(|(&i, cost)| effective(i, cost))
            .filter(|t| t.is_finite())
            .fold(f64::INFINITY, f64::min);
        let best_survivor = survivors
            .iter()
            .zip(&survivor_costs)
            .enumerate()
            .map(|(rank, (&i, cost))| (rank, effective(i, cost)))
            .filter(|(_, t)| t.is_finite())
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((rank, t)) = best_survivor {
            if t <= train_best {
                ctx.observe_winner_rank(rank);
            }
        }
    }

    for (&i, cost) in train_idx.iter().zip(train_costs) {
        out[i] = cost;
    }
    for (&i, cost) in survivors.iter().zip(survivor_costs) {
        out[i] = cost;
    }
    // Ranked-out candidates whose exact result already sits in the cache
    // (e.g. a warm context from an earlier exact solve) are answered for
    // free instead of being pruned — only genuinely unknown candidates
    // count as pruned.
    let mut pruned = (n - feasible.len()) as u64;
    for &(i, _) in ranked.iter().skip(top_k) {
        match ctx.cost_of_cached(&candidates[i], engine) {
            Some(cost) => out[i] = cost,
            None => pruned += 1,
        }
    }
    if out.iter().all(|(t, _)| !t.is_finite()) {
        // Everything the gate evaluated is infeasible (e.g. layout
        // failures among the survivors); exhaustive search might still
        // find a plan among the pruned candidates, so correctness demands
        // the full pass.
        return ctx.cost_candidates_exact(candidates, engine);
    }
    ctx.note_pruned(pruned);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::WaferCostModel;
    use crate::search::CostTier;
    use temp_graph::models::ModelZoo;
    use temp_graph::workload::Workload;
    use temp_wsc::config::WaferConfig;

    fn context() -> SearchContext {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        SearchContext::new(WaferCostModel::new(WaferConfig::hpca(), model, workload))
    }

    #[test]
    fn gated_batch_evaluates_far_fewer_candidates() {
        let ctx = context();
        ctx.set_cost_tier(CostTier::SurrogateGated);
        let candidates = ctx.candidates().to_vec();
        let costed = ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        assert_eq!(costed.len(), candidates.len());
        let stats = ctx.stats();
        assert!(stats.gate_pruned > 0, "{stats:?}");
        let evaluated = candidates.len() as u64 - stats.gate_pruned;
        assert!(
            evaluated <= (candidates.len() / 2) as u64,
            "gate should prune at least half the batch: {stats:?}"
        );
        // Pruned candidates carry infinite cost and no report.
        let pruned = costed.iter().filter(|(t, p)| !t.is_finite() && p.is_none());
        assert!(pruned.count() >= stats.gate_pruned as usize);
    }

    #[test]
    fn gated_and_exact_agree_on_the_winner() {
        let exact_ctx = context();
        let gated_ctx = context();
        gated_ctx.set_cost_tier(CostTier::SurrogateGated);
        let candidates = exact_ctx.candidates().to_vec();
        let exact = exact_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let gated = gated_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let argmin = |costs: &[CandidateCost]| {
            costs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_eq!(
            argmin(&exact),
            argmin(&gated),
            "the exact winner must survive the gate"
        );
    }

    #[test]
    fn small_batches_bypass_the_gate() {
        let ctx = context();
        ctx.set_cost_tier(CostTier::SurrogateGated);
        let candidates: Vec<HybridConfig> = ctx.candidates().iter().take(10).copied().collect();
        let costed = ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        assert!(costed.iter().any(|(t, _)| t.is_finite()));
        assert_eq!(ctx.stats().gate_pruned, 0, "small batch must not be gated");
    }

    #[test]
    fn mlp_gate_model_also_retains_the_winner() {
        let exact_ctx = context();
        let mlp_ctx = context();
        mlp_ctx.set_cost_tier(CostTier::SurrogateGated);
        mlp_ctx.set_gate_params(GateParams {
            model: temp_surrogate::gate::GateModel::Mlp,
            ..GateParams::default()
        });
        let candidates = exact_ctx.candidates().to_vec();
        let exact = exact_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let gated = mlp_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let argmin = |costs: &[CandidateCost]| {
            costs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_eq!(
            argmin(&exact),
            argmin(&gated),
            "the exact winner must survive the MLP gate"
        );
        assert!(mlp_ctx.stats().gate_pruned > 0);
        // The fitted predictor is exportable and tagged as an MLP.
        let text = mlp_ctx.export_gate_predictor().expect("fitted predictor");
        assert!(text.starts_with("mlp v1"));
    }

    #[test]
    fn warm_predictor_crosses_contexts() {
        // Fit on one context, export, import into a cold context: the
        // cold gated batch must keep the winner without refitting (the
        // imported predictor short-circuits the fit), and the import path
        // rejects garbage.
        let warm_ctx = context();
        warm_ctx.set_cost_tier(CostTier::SurrogateGated);
        let candidates = warm_ctx.candidates().to_vec();
        let _ = warm_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let text = warm_ctx.export_gate_predictor().expect("fitted predictor");
        assert!(text.starts_with("linreg v1"), "default family is linreg");

        let cold_ctx = context();
        cold_ctx.set_cost_tier(CostTier::SurrogateGated);
        cold_ctx.import_gate_predictor(&text).expect("import");
        assert!(cold_ctx.import_gate_predictor("garbage").is_err());
        // (the failed import must not clobber the good one)
        let gated = cold_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let exact_ctx = context();
        let exact = exact_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let argmin = |costs: &[CandidateCost]| {
            costs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_eq!(
            argmin(&exact),
            argmin(&gated),
            "warm-imported gate must keep the winner"
        );
        // The imported predictor stayed authoritative (no local refit
        // overwrote it): the export round-trips the imported text.
        assert_eq!(cold_ctx.export_gate_predictor().as_deref(), Some(&text[..]));
    }

    #[test]
    fn overflowing_predictor_degrades_to_the_exact_tier() {
        // An imported predictor can pass the parser's finiteness checks
        // yet still overflow to infinity on real features (absurd weights
        // from a stale or corrupted warm cache). The gate validates the
        // predictor on its own training features and must drop to the
        // exact tier rather than rank candidates by non-finite scores.
        let warm_ctx = context();
        warm_ctx.set_cost_tier(CostTier::SurrogateGated);
        let candidates = warm_ctx.candidates().to_vec();
        let healthy_gated = warm_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let dim: usize = warm_ctx
            .export_gate_predictor()
            .expect("fitted predictor")
            .split_whitespace()
            .nth(2)
            .expect("dim field")
            .parse()
            .expect("numeric dim");
        let row = |v: &str| vec![v; dim].join(" ");
        let poison = format!(
            "linreg v1 {dim}\n{}\n0.0\n{}\n{}\n",
            row("1.0e308"),
            row("0.0"),
            row("1.0"),
        );
        let bad_ctx = context();
        bad_ctx.set_cost_tier(CostTier::SurrogateGated);
        bad_ctx
            .import_gate_predictor(&poison)
            .expect("finite weights parse cleanly");
        let gated = bad_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        // The fallback priced every memory-feasible candidate exactly —
        // nothing was shortlisted away, unlike the healthy gated run
        // where most candidates stay unpriced (infinite).
        let finite = |costs: &[CandidateCost]| costs.iter().filter(|c| c.0.is_finite()).count();
        assert!(
            finite(&gated) > finite(&healthy_gated),
            "fallback must price the whole feasible set: {} vs healthy gate's {}",
            finite(&gated),
            finite(&healthy_gated)
        );
        // Every priced candidate came from the exact tier: re-costing the
        // batch exactly on the same context is served from the shared
        // cache and must agree bit-for-bit.
        bad_ctx.set_cost_tier(CostTier::Exact);
        let exact = bad_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        for (i, (g, e)) in gated.iter().zip(&exact).enumerate() {
            if g.0.is_finite() {
                assert_eq!(
                    g.0, e.0,
                    "candidate {i}: degraded gate must match the exact tier"
                );
            }
        }
    }

    #[test]
    fn default_tier_is_exact() {
        let ctx = context();
        assert_eq!(ctx.cost_tier(), CostTier::Exact);
        let candidates = ctx.candidates().to_vec();
        let costed = ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        assert_eq!(ctx.stats().gate_pruned, 0);
        assert_eq!(costed.len(), candidates.len());
    }
}
