//! Tier-1 of the two-tier evaluation pipeline: a learned cost surrogate
//! that shortlists candidates before the exact cost model runs (§VII-A,
//! Fig. 21 — surrogate queries are 100–1000x faster than re-simulation).
//!
//! For one batch of candidates the gate:
//!
//! 1. resolves memory feasibility with the **exact footprint arithmetic**
//!    the cost model itself uses (`per_die_footprint` is closed-form, no
//!    mapping or contention simulation) — candidates that OOM even under
//!    full recomputation are reported infeasible without ever running the
//!    expensive pipeline, which is a pure win: the exhaustive path would
//!    simulate them only to discard them;
//! 2. exact-costs a stride-sampled **training set** of the feasible
//!    candidates (these evaluations land in the shared cache, so nothing
//!    is wasted);
//! 3. fits a [`LinearRegression`] from the cheap analytic features of
//!    [`crate::cost::WaferCostModel::feature_vector`] to log step time;
//! 4. predicts the remaining candidates in microseconds and keeps the
//!    **top-K** by predicted cost, exact-costing them in surrogate-ranked
//!    order so the most promising candidates finish first under the
//!    work-stealing parallel map;
//! 5. reports everything else infeasible without evaluation.
//!
//! The DP/GA ranking downstream only ever consumes exact
//! [`crate::cost::CostReport`]s, so the solved plan is identical to
//! exhaustive exact search whenever the exact winner survives the gate.
//! The default [`GateParams`] are sized so it does across the fig13 model
//! zoo (asserted by `tests/two_tier.rs`); if the predictor cannot be fit
//! (degenerate batch, nothing feasible in the training set) the gate
//! falls back to exact costing of the whole batch.

use temp_graph::workload::RecomputeMode;
use temp_mapping::engines::MappingEngine;
use temp_parallel::memory::per_die_footprint;
use temp_parallel::strategy::HybridConfig;
use temp_surrogate::dataset::{Dataset, TargetClass};
use temp_surrogate::linreg::LinearRegression;

use crate::search::{CandidateCost, SearchContext};

/// Tuning of the surrogate gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateParams {
    /// Candidates kept for exact costing beyond the training set. The
    /// default carries a safety margin: across the fig13 model zoo the
    /// exhaustive winner always ranks well inside the top K. When
    /// [`GateParams::adaptive`] is set this is only the *initial* K — see
    /// [`crate::search::SearchContext::effective_top_k`].
    pub top_k: usize,
    /// Every `train_stride`-th candidate is exact-costed to fit the
    /// predictor.
    pub train_stride: usize,
    /// Batches smaller than this skip the gate entirely (training +
    /// survivors would cover most of the batch anyway).
    pub min_batch: usize,
    /// Adapt the top-K from observed rank-of-winner statistics: after each
    /// gated batch the rank at which the exact winner surfaced is
    /// recorded, and later batches keep twice the worst observed rank
    /// (clamped) instead of the fixed default.
    pub adaptive: bool,
}

impl Default for GateParams {
    fn default() -> Self {
        GateParams {
            top_k: 16,
            train_stride: 8,
            min_batch: 48,
            adaptive: true,
        }
    }
}

/// Minimum finite training samples required to trust a fit.
const MIN_TRAIN_SAMPLES: usize = 6;

/// The per-degree batch mode of the gate: costs one candidate batch per
/// pipeline degree of a multi-wafer sweep, gating each batch **on its
/// own** — its own memory precheck, stride-sampled training set, fit and
/// top-K shortlist. Ranking every degree independently is what keeps the
/// winner-retention guarantee intact per solve: a pipeline degree whose
/// step times run higher (deeper bubbles) would otherwise lose its whole
/// batch to a shallower degree's candidates in a single cross-degree
/// ranking. All batches still share the context's evaluation cache, so
/// the per-degree solves that follow a sweep replay from warm state.
pub(crate) fn cost_candidate_groups(
    ctx: &SearchContext,
    groups: &[Vec<HybridConfig>],
    engine: MappingEngine,
    params: GateParams,
) -> Vec<Vec<CandidateCost>> {
    groups
        .iter()
        .map(|g| cost_candidates_gated(ctx, g, engine, params))
        .collect()
}

/// Costs a batch through the surrogate gate. The returned vector is
/// aligned with `candidates`; pruned entries are `(f64::INFINITY, None)`.
pub(crate) fn cost_candidates_gated(
    ctx: &SearchContext,
    candidates: &[HybridConfig],
    engine: MappingEngine,
    params: GateParams,
) -> Vec<CandidateCost> {
    let n = candidates.len();
    if n < params.min_batch.max(1) {
        return ctx.cost_candidates_exact(candidates, engine);
    }

    // Memory precheck: `cost_of` declares a candidate infeasible exactly
    // when the per-die footprint overflows HBM in the base recompute mode
    // *and* under full recomputation. Both footprints are closed-form, so
    // memory-infeasible candidates are resolved here without ever running
    // mapping + contention simulation. (Layout failures remain possible
    // among the survivors; they cost one evaluation and come back
    // infinite, exactly as in the exhaustive path.)
    let model = ctx.cost_model();
    let base_wl = model.workload().clone();
    let full_wl = base_wl.clone().with_recompute(RecomputeMode::Full);
    let hbm = model.wafer().hbm.capacity;
    let fits = |cfg: &HybridConfig| {
        per_die_footprint(model.model(), &base_wl, cfg).fits(hbm)
            || per_die_footprint(model.model(), &full_wl, cfg).fits(hbm)
    };
    let feasible: Vec<usize> = (0..n).filter(|&i| fits(&candidates[i])).collect();
    let mut out: Vec<CandidateCost> = vec![(f64::INFINITY, None); n];

    // Top-K: the configured default until rank-of-winner statistics have
    // been observed, adapted afterwards (see
    // `SearchContext::effective_top_k`). Pipelined batches (multi-wafer
    // degrees, `pp > 1`) keep twice the shortlist: their step times are
    // bubble-dominated and cluster tightly, so the predictor's ranking
    // margin shrinks while a pruned winner would stay unobservable.
    let pipelined = candidates.iter().any(|c| c.pp > 1);
    let top_k = if pipelined {
        2 * ctx.effective_top_k()
    } else {
        ctx.effective_top_k()
    };

    let stride = params.train_stride.max(1);
    let train_count = feasible.len().div_ceil(stride);
    if train_count + top_k >= feasible.len() {
        // The surrogate cannot save anything on a batch this small: cost
        // every memory-feasible candidate exactly.
        let cfgs: Vec<HybridConfig> = feasible.iter().map(|&i| candidates[i]).collect();
        for (&i, cost) in feasible
            .iter()
            .zip(ctx.cost_candidates_exact(&cfgs, engine))
        {
            out[i] = cost;
        }
        ctx.note_pruned((n - feasible.len()) as u64);
        return out;
    }

    // Tier 2 on the training set: exact costs, shared through the cache.
    let train_idx: Vec<usize> = feasible.iter().copied().step_by(stride).collect();
    let train_cfgs: Vec<HybridConfig> = train_idx.iter().map(|&i| candidates[i]).collect();
    let train_costs = ctx.cost_candidates_exact(&train_cfgs, engine);

    // Fit the predictor on the training samples that planned.
    let mode = base_wl.recompute;
    let mut features = Vec::with_capacity(train_idx.len());
    let mut targets = Vec::with_capacity(train_idx.len());
    for (cfg, (t, _)) in train_cfgs.iter().zip(&train_costs) {
        if t.is_finite() {
            features.push(model.feature_vector(cfg, engine, mode));
            targets.push(*t);
        }
    }
    if features.len() < MIN_TRAIN_SAMPLES {
        // Not enough signal to rank safely: fall back to exact costing of
        // the memory-feasible candidates.
        let rest: Vec<usize> = feasible
            .iter()
            .copied()
            .filter(|i| !train_idx.contains(i))
            .collect();
        let cfgs: Vec<HybridConfig> = rest.iter().map(|&i| candidates[i]).collect();
        for (&i, cost) in train_idx.iter().zip(train_costs) {
            out[i] = cost;
        }
        for (&i, cost) in rest.iter().zip(ctx.cost_candidates_exact(&cfgs, engine)) {
            out[i] = cost;
        }
        ctx.note_pruned((n - feasible.len()) as u64);
        return out;
    }
    let predictor = LinearRegression::fit(&Dataset {
        features,
        targets,
        // The class tag is dataset metadata; fitting only reads
        // features/targets.
        class: TargetClass::Compute,
    });

    // Heterogeneous-chain correction: the DP downstream prices the
    // embedding/head segments from the tier-independent segment table and
    // may move them off a candidate whose end segments are expensive
    // (paying one resharding boundary instead). Rank candidates by that
    // *effective* chain objective — predicted uniform step time minus
    // what the chain can save on each end segment — so the block winner
    // of the heterogeneous DP survives the gate, not merely the uniform
    // winner.
    //
    // Pipelined batches (`pp > 1`) get one more term: the stage-
    // partitioned planner runs the embedding/head *inside* their stages,
    // where all but the bottleneck repetition overlaps the pipeline — of
    // the `micro` end-segment executions the uniform evaluation charges,
    // only ~1 + (micro-1) x [end stage is the bottleneck] remain exposed.
    // Ranking must price that overlap (cheapest-end variant, the
    // first-order term) or a candidate with cheap-but-nonzero ends loses
    // its shortlist slot to one the stage objective ranks worse.
    let micro = base_wl.micro_batches.max(1) as f64;
    let boundary = micro * ctx.full_reshard_cost();
    // The same per-step rows the chain DP consumes
    // (`SearchContext::segment_step_costs` is the single source of truth,
    // so the correction and the DP objective cannot drift apart).
    let end_rows = [
        ctx.segment_step_costs(
            temp_graph::segment::SegmentKind::Embedding,
            candidates,
            engine,
            base_wl.recompute,
        ),
        ctx.segment_step_costs(
            temp_graph::segment::SegmentKind::Head,
            candidates,
            engine,
            base_wl.recompute,
        ),
    ];
    // The per-row minima are loop invariants: hoist them so the
    // correction is O(1) per candidate instead of rescanning both rows.
    let end_best: Vec<f64> = end_rows
        .iter()
        .map(|row| {
            row.iter()
                .copied()
                .filter(|t| t.is_finite())
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let chain_correction = |i: usize| -> f64 {
        let mut effective = [f64::INFINITY; 2];
        let mut swap_saving = 0.0;
        for (k, (row, &best)) in end_rows.iter().zip(&end_best).enumerate() {
            let own = row[i];
            if own.is_finite() {
                effective[k] = (best + boundary).min(own);
                swap_saving += effective[k] - own;
            } else {
                effective[k] = best + boundary;
            }
        }
        // Pipeline overlap of the cheaper end stage (see above): the
        // stage planner exposes roughly one of its `micro` executions.
        let overlap = if candidates[i].pp > 1 {
            let cheaper = effective[0].min(effective[1]);
            if cheaper.is_finite() {
                (micro - 1.0) / micro * cheaper
            } else {
                0.0
            }
        } else {
            0.0
        };
        swap_saving - overlap
    };

    // Tier 1: rank every remaining feasible candidate by predicted
    // chain-effective step time.
    let mut ranked: Vec<(usize, f64)> = feasible
        .iter()
        .enumerate()
        .filter(|(pos, _)| pos % stride != 0)
        .map(|(_, &i)| {
            let f = model.feature_vector(&candidates[i], engine, mode);
            (i, predictor.predict(&f) + chain_correction(i))
        })
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let survivors: Vec<usize> = ranked.iter().take(top_k).map(|(i, _)| *i).collect();

    // Tier 2 on the survivors, in surrogate-ranked order: the parallel
    // map hands out items front-to-back, so the most promising
    // candidates are costed first.
    let survivor_cfgs: Vec<HybridConfig> = survivors.iter().map(|&i| candidates[i]).collect();
    let survivor_costs = ctx.cost_candidates_exact(&survivor_cfgs, engine);

    // Rank-of-winner statistics: where in the surrogate order did the
    // batch's winner actually surface? Feeds the adaptive top-K. The
    // "winner" is judged by the same chain-effective objective the
    // ranking sorts by (exact step time + chain correction) — that is the
    // quantity the downstream heterogeneous DP minimizes over block
    // candidates, so it is the retention target the shortlist must cover.
    if params.adaptive {
        let effective = |i: usize, t: f64| {
            if t.is_finite() {
                t + chain_correction(i)
            } else {
                t
            }
        };
        let train_best = train_idx
            .iter()
            .zip(&train_costs)
            .map(|(&i, (t, _))| effective(i, *t))
            .filter(|t| t.is_finite())
            .fold(f64::INFINITY, f64::min);
        let best_survivor = survivors
            .iter()
            .zip(&survivor_costs)
            .enumerate()
            .map(|(rank, (&i, (t, _)))| (rank, effective(i, *t)))
            .filter(|(_, t)| t.is_finite())
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((rank, t)) = best_survivor {
            if t <= train_best {
                ctx.observe_winner_rank(rank);
            }
        }
    }

    for (&i, cost) in train_idx.iter().zip(train_costs) {
        out[i] = cost;
    }
    for (&i, cost) in survivors.iter().zip(survivor_costs) {
        out[i] = cost;
    }
    // Ranked-out candidates whose exact result already sits in the cache
    // (e.g. a warm context from an earlier exact solve) are answered for
    // free instead of being pruned — only genuinely unknown candidates
    // count as pruned.
    let mut pruned = (n - feasible.len()) as u64;
    for &(i, _) in ranked.iter().skip(top_k) {
        match ctx.cost_of_cached(&candidates[i], engine) {
            Some(cost) => out[i] = cost,
            None => pruned += 1,
        }
    }
    if out.iter().all(|(t, _)| !t.is_finite()) {
        // Everything the gate evaluated is infeasible (e.g. layout
        // failures among the survivors); exhaustive search might still
        // find a plan among the pruned candidates, so correctness demands
        // the full pass.
        return ctx.cost_candidates_exact(candidates, engine);
    }
    ctx.note_pruned(pruned);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::WaferCostModel;
    use crate::search::CostTier;
    use temp_graph::models::ModelZoo;
    use temp_graph::workload::Workload;
    use temp_wsc::config::WaferConfig;

    fn context() -> SearchContext {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        SearchContext::new(WaferCostModel::new(WaferConfig::hpca(), model, workload))
    }

    #[test]
    fn gated_batch_evaluates_far_fewer_candidates() {
        let ctx = context();
        ctx.set_cost_tier(CostTier::SurrogateGated);
        let candidates = ctx.candidates().to_vec();
        let costed = ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        assert_eq!(costed.len(), candidates.len());
        let stats = ctx.stats();
        assert!(stats.gate_pruned > 0, "{stats:?}");
        let evaluated = candidates.len() as u64 - stats.gate_pruned;
        assert!(
            evaluated <= (candidates.len() / 2) as u64,
            "gate should prune at least half the batch: {stats:?}"
        );
        // Pruned candidates carry infinite cost and no report.
        let pruned = costed.iter().filter(|(t, p)| !t.is_finite() && p.is_none());
        assert!(pruned.count() >= stats.gate_pruned as usize);
    }

    #[test]
    fn gated_and_exact_agree_on_the_winner() {
        let exact_ctx = context();
        let gated_ctx = context();
        gated_ctx.set_cost_tier(CostTier::SurrogateGated);
        let candidates = exact_ctx.candidates().to_vec();
        let exact = exact_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let gated = gated_ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let argmin = |costs: &[CandidateCost]| {
            costs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_eq!(
            argmin(&exact),
            argmin(&gated),
            "the exact winner must survive the gate"
        );
    }

    #[test]
    fn small_batches_bypass_the_gate() {
        let ctx = context();
        ctx.set_cost_tier(CostTier::SurrogateGated);
        let candidates: Vec<HybridConfig> = ctx.candidates().iter().take(10).copied().collect();
        let costed = ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        assert!(costed.iter().any(|(t, _)| t.is_finite()));
        assert_eq!(ctx.stats().gate_pruned, 0, "small batch must not be gated");
    }

    #[test]
    fn default_tier_is_exact() {
        let ctx = context();
        assert_eq!(ctx.cost_tier(), CostTier::Exact);
        let candidates = ctx.candidates().to_vec();
        let costed = ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        assert_eq!(ctx.stats().gate_pruned, 0);
        assert_eq!(costed.len(), candidates.len());
    }
}
