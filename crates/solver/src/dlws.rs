//! The end-to-end Dual-Level Wafer Solver.
//!
//! Pipeline (Fig. 12(b)):
//!
//! 1. **Enumerate** hybrid configurations (power-of-two degree tuples, with
//!    and without FSDP sharding) — done once per [`SearchContext`];
//! 2. **Cost** each with the wafer-centric model under the TCME engine,
//!    escalating to full recomputation when a configuration OOMs — cache
//!    misses are costed through the batched SoA engine (one hoisted
//!    op-graph walk per recompute wave), hits are free;
//! 3. **Graph-partition + DP** — the heterogeneous segment chain
//!    (embedding -> blocks -> LM head, [`temp_graph::segment`]) picks a
//!    candidate **per segment** under resharding transition costs: the
//!    blocks are priced by the exact whole-model evaluation, the end
//!    segments by the shared closed-form segment table;
//! 4. **GA refinement** — evolves the DP assignment over each segment's
//!    own (possibly ragged) candidate list;
//! 5. Emit the best [`ExecutionPlan`].
//!
//! A [`Dlws`] is a thin façade over a shared [`SearchContext`]: cloning
//! the solver (or building several solvers from one context via
//! [`Dlws::from_context`]) shares the evaluation cache, so baseline
//! sweeps that solve the same triple under different engines/filters do
//! not re-cost overlapping candidates.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use temp_graph::models::ModelConfig;
use temp_graph::segment::SegmentKind;
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_parallel::strategy::HybridConfig;
use temp_wsc::config::WaferConfig;
use temp_wsc::fault::FaultMap;

use crate::cost::{CostReport, WaferCostModel};
use crate::dp::solve_chain;
use crate::ga::{optimize_ragged, GaParams};
use crate::runtime::CancelToken;
use crate::search::{CandidateCost, SearchContext, SearchStats};
use crate::{Result, SolverError};

/// One segment run's strategy in a solved heterogeneous chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentAssignment {
    /// Which segment kind the run covers.
    pub kind: SegmentKind,
    /// Number of identical instances in the run.
    pub count: u64,
    /// The strategy the run executes under.
    pub config: HybridConfig,
    /// The run's per-step cost contribution in the chain objective.
    pub step_time: f64,
}

/// A solved plan ready for execution/evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// The chosen hybrid configuration of the Transformer-block run (the
    /// chain's dominant segment, and what the whole-model [`CostReport`]
    /// was evaluated under).
    pub config: HybridConfig,
    /// The mapping engine.
    pub engine: MappingEngine,
    /// The workload actually planned (recompute mode may have escalated).
    pub workload: Workload,
    /// The cost report of the chosen plan (uniform-replication evaluation
    /// of [`ExecutionPlan::config`]).
    pub report: CostReport,
    /// The per-segment strategy assignment of the heterogeneous chain DP:
    /// embedding and head may legitimately pick different strategies from
    /// the blocks when the saving beats the boundary resharding.
    pub segments: Vec<SegmentAssignment>,
    /// Total chain objective (segment costs + resharding transitions).
    /// Equals [`CostReport::step_time`] when the assignment is uniform;
    /// strictly below it when heterogeneity pays.
    pub chain_cost: f64,
}

impl ExecutionPlan {
    /// Whether the chain assigned different strategies to different
    /// segments.
    pub fn is_heterogeneous(&self) -> bool {
        self.segments.windows(2).any(|w| w[0].config != w[1].config)
    }
}

/// The dual-level wafer solver.
#[derive(Debug, Clone)]
pub struct Dlws {
    ctx: Arc<SearchContext>,
    ga: GaParams,
}

impl Dlws {
    /// Creates a solver for a (wafer, model, workload) triple, with a
    /// fresh search context.
    pub fn new(wafer: WaferConfig, model: ModelConfig, workload: Workload) -> Self {
        Dlws::from_context(Arc::new(SearchContext::new(WaferCostModel::new(
            wafer, model, workload,
        ))))
    }

    /// Creates a solver over an existing (possibly shared) context — all
    /// solvers built this way share one evaluation cache.
    pub fn from_context(ctx: Arc<SearchContext>) -> Self {
        Dlws {
            ctx,
            ga: GaParams::default(),
        }
    }

    /// Creates a solver that plans directly on the degraded fabric
    /// `faults` describes: the cost model derates compute, usable memory
    /// and link-bound time from the fault map's [`temp_wsc::fault::DegradedView`]
    /// (see [`WaferCostModel::with_fault_map`]). A healthy map routes
    /// through the unmodified healthy pipeline, so its plans are
    /// bit-for-bit identical to [`Dlws::new`].
    pub fn with_fault_map(
        wafer: WaferConfig,
        model: ModelConfig,
        workload: Workload,
        faults: &FaultMap,
    ) -> Self {
        Dlws::from_context(Arc::new(SearchContext::new(
            WaferCostModel::with_fault_map(wafer, model, workload, faults),
        )))
    }

    /// A sibling solver planning the same `(model, workload)` on the
    /// degraded fabric: shares the candidate enumeration (an `Arc` —
    /// faults change feasibility, not which degree tuples exist) and the
    /// GA tuning, but costs everything through the fault-derated model.
    /// The degraded context's caches start empty; they are keyed by a
    /// fault-extended fingerprint and must not mix with healthy entries.
    pub fn degraded(&self, faults: &FaultMap) -> Dlws {
        Dlws {
            ctx: Arc::new(self.ctx.derated(faults)),
            ga: self.ga,
        }
    }

    /// Re-solves this solver's triple on the degraded fabric — the
    /// framework-level fault adaptation of §VIII-F: partitions are
    /// re-balanced (candidates re-ranked under derated compute/memory)
    /// and communication re-routed (collectives priced over the surviving
    /// links). A healthy map short-circuits to [`Dlws::solve`] on the
    /// *shared* healthy context, so the fault-free sweep point is the
    /// healthy plan itself, bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NoFeasiblePlan`] when the degraded wafer
    /// cannot host the model at all — a disconnected mesh, or derated
    /// memory that no candidate fits (the fig20 link-fault cliff).
    pub fn resolve_degraded(&self, faults: &FaultMap) -> Result<ExecutionPlan> {
        if faults.is_healthy() {
            return self.solve();
        }
        self.degraded(faults).solve()
    }

    /// The shared search context (enumeration + cache + stats).
    pub fn context(&self) -> &Arc<SearchContext> {
        &self.ctx
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &WaferCostModel {
        self.ctx.cost_model()
    }

    /// Cache counters of the shared context.
    pub fn search_stats(&self) -> SearchStats {
        self.ctx.stats()
    }

    /// Overrides GA parameters.
    pub fn with_ga(mut self, ga: GaParams) -> Self {
        self.ga = ga;
        self
    }

    /// Enables the surrogate gate on the shared context: candidate
    /// batches are ranked by the learned predictor and only the top-K
    /// survivors pay the exact cost model (see
    /// [`crate::surrogate_gate`]). The final DP/GA ranking still consumes
    /// exact reports, so the plan matches exhaustive search whenever the
    /// exact winner survives the gate.
    pub fn with_surrogate_gate(self) -> Self {
        self.ctx
            .set_cost_tier(crate::search::CostTier::SurrogateGated);
        self
    }

    /// All candidate configurations for this wafer (enumerated once, at
    /// context construction).
    pub fn candidates(&self) -> Vec<HybridConfig> {
        self.ctx.candidates().to_vec()
    }

    /// Costs a candidate, escalating recompute on OOM; infeasible plans get
    /// infinite cost. Memoized in the shared context.
    pub fn cost_of(&self, cfg: &HybridConfig, engine: MappingEngine) -> CandidateCost {
        self.ctx.cost_of(cfg, engine)
    }

    /// Runs the full dual-level search.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NoFeasiblePlan`] when every configuration
    /// OOMs even with full recomputation.
    pub fn solve(&self) -> Result<ExecutionPlan> {
        self.solve_with_engine(MappingEngine::Tcme, |_| true)
    }

    /// Runs the full search under a wall-clock budget. A
    /// [`CancelToken`] with the deadline is installed on the shared
    /// context; the exact costing loops poll it between candidates and
    /// skip the remainder once it fires, so the solve returns the best
    /// plan among the candidates it managed to cost — and when *nothing*
    /// was costed in time (or everything costed was infeasible), a
    /// bounded serial fallback scan ignores the expired deadline and
    /// produces a usable plan anyway. The token is always cleared before
    /// returning, so the context (and the global worker pool under it)
    /// keeps serving unbounded solves afterwards.
    ///
    /// Returns the plan and whether the deadline fired. A `true` flag
    /// means the plan is best-effort: some candidates were never costed.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NoFeasiblePlan`] only when no candidate at
    /// all fits the wafer — the same condition under which the unbounded
    /// [`Dlws::solve`] fails.
    pub fn solve_with_deadline(
        &self,
        budget: std::time::Duration,
    ) -> Result<(ExecutionPlan, bool)> {
        let token = CancelToken::with_deadline(budget);
        self.ctx.set_cancel_token(Some(token.clone()));
        let result = self.solve();
        self.ctx.set_cancel_token(None);
        let timed_out = token.is_cancelled();
        match result {
            Ok(plan) => Ok((plan, timed_out)),
            Err(_) if timed_out => self.fallback_plan().map(|plan| (plan, true)),
            Err(e) => Err(e),
        }
    }

    /// The deadline-fallback path: serially cost a small prefix of the
    /// candidate space (widening to all of it only if the prefix is
    /// entirely infeasible), then solve restricted to that winner. No
    /// token is consulted — by construction this runs *after* the
    /// deadline fired, and its job is to guarantee a usable plan; the
    /// scan is bounded so the overshoot stays small. Every evaluation
    /// lands in the shared cache, so the work is never wasted.
    fn fallback_plan(&self) -> Result<ExecutionPlan> {
        const FALLBACK_SCAN: usize = 8;
        let engine = MappingEngine::Tcme;
        let dense: Vec<HybridConfig> = self
            .ctx
            .candidates()
            .iter()
            .copied()
            .filter(|c| c.ep == 1)
            .collect();
        let head = dense.len().min(FALLBACK_SCAN);
        let mut winner: Option<HybridConfig> = None;
        let mut best = f64::INFINITY;
        for window in [&dense[..head], &dense[head..]] {
            for cfg in window {
                let (t, _) = self.ctx.cost_of(cfg, engine);
                if t < best {
                    best = t;
                    winner = Some(*cfg);
                }
            }
            if winner.is_some() {
                break;
            }
        }
        let winner = winner.ok_or_else(|| {
            SolverError::NoFeasiblePlan(
                "deadline fallback: no candidate fits even with full recomputation".into(),
            )
        })?;
        // Re-enter the normal pipeline restricted to the winner (plus the
        // expert-parallel tuples a MoE chain's own segment row needs) so
        // the returned plan carries well-formed segments and chain cost.
        self.solve_with_engine(engine, |c| *c == winner || c.ep > 1)
    }

    /// Full search restricted to an engine and a configuration filter —
    /// baseline planners (Megatron/MeSP/FSDP) reuse the machinery with their
    /// own legal sub-spaces.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NoFeasiblePlan`] when no filtered
    /// configuration fits memory.
    pub fn solve_with_engine(
        &self,
        engine: MappingEngine,
        filter: impl Fn(&HybridConfig) -> bool,
    ) -> Result<ExecutionPlan> {
        self.solve_with_engine_pp(engine, 1, filter)
    }

    /// As [`Dlws::solve_with_engine`] with a fixed pipeline degree across
    /// wafers (multi-WSC planning; Fig. 19).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NoFeasiblePlan`] when no filtered
    /// configuration fits memory.
    pub fn solve_with_engine_pp(
        &self,
        engine: MappingEngine,
        pp: usize,
        filter: impl Fn(&HybridConfig) -> bool,
    ) -> Result<ExecutionPlan> {
        let all_candidates: Vec<HybridConfig> = self
            .ctx
            .candidates_with_pp(pp)
            .into_iter()
            .filter(|c| filter(c))
            .collect();
        if all_candidates.is_empty() {
            return Err(SolverError::NoFeasiblePlan(
                "no candidates pass the filter".into(),
            ));
        }
        // Whole-model (body) candidates: expert-parallel tuples are
        // dense-equivalent to their `dp x ep` twins on every segment that
        // has no experts (EP folds into DP there), so only `ep = 1`
        // tuples pay the exact pipeline — evaluating the twins would both
        // waste the costing budget and seed float-association ties the DP
        // would break arbitrarily. `ep > 1` tuples exist solely for the
        // MoE segment row, which is closed-form.
        let candidates: Vec<HybridConfig> = all_candidates
            .iter()
            .copied()
            .filter(|c| c.ep == 1)
            .collect();
        if candidates.is_empty() {
            return Err(SolverError::NoFeasiblePlan(
                "no dense-path candidates pass the filter".into(),
            ));
        }
        // Cost the body candidates through the bound-pruned chain path:
        // cache misses batch into the SoA costing engine (chunked across
        // workers), hits (from earlier solves over overlapping spaces)
        // are free, and candidates the admissible bounds prove
        // non-optimal skip the cost model entirely.
        let costed: Vec<CandidateCost> =
            self.ctx
                .cost_candidates_chain(&candidates, &all_candidates, engine);
        if costed.iter().all(|(t, _)| !t.is_finite()) {
            return Err(SolverError::NoFeasiblePlan(
                "every candidate OOMs even with full recomputation".into(),
            ));
        }

        // Level 1: DP over the real heterogeneous segment chain
        // (embedding -> blocks -> [MoE blocks] -> head) with resharding
        // transition costs. The lists are ragged: dense segments choose
        // among the body candidates, the MoE run among the *full* space
        // including expert-parallel tuples.
        //
        // The block run's per-candidate cost is the *exact* whole-model
        // step time minus the embedding/head/MoE contributions
        // (contention simulation included); every other segment is priced
        // from the shared closed-form segment table, which is identical
        // across evaluation tiers — so the surrogate gate can prune block
        // candidates without ever perturbing the other segments' choices.
        // A resharding boundary is crossed once per micro-batch.
        let base_mode = self.ctx.cost_model().workload().recompute;
        let micro = self.ctx.cost_model().workload().micro_batches.max(1) as f64;
        let chain = self.ctx.chain();
        let block_row = chain
            .position(SegmentKind::Block)
            .ok_or_else(|| SolverError::Internal("chain has no block segment".into()))?;
        let seg_cands: Vec<&[HybridConfig]> = chain
            .segments()
            .iter()
            .map(|seg| match seg.kind {
                SegmentKind::MoeBlock => &all_candidates[..],
                _ => &candidates[..],
            })
            .collect();
        let seg_costs: Vec<Vec<f64>> = chain
            .segments()
            .iter()
            .zip(&seg_cands)
            .map(|(seg, cands)| match seg.kind {
                SegmentKind::Block => costed
                    .iter()
                    .map(|(t, payload)| match payload {
                        Some((_, report)) if t.is_finite() => report.block_time(),
                        _ => f64::INFINITY,
                    })
                    .collect(),
                // End and MoE segments: the shared per-step rows (one
                // source of truth with the gate's chain correction).
                kind => self.ctx.segment_step_costs(kind, cands, engine, base_mode),
            })
            .collect();
        let reshard = |s: usize, a: usize, b: usize| {
            micro
                * self
                    .ctx
                    .resharding_cost(&seg_cands[s - 1][a], &seg_cands[s][b])
        };
        let dp = solve_chain(&seg_costs, reshard)
            .map_err(|e| SolverError::Internal(format!("chain DP: {e}")))?;

        // Level 2: GA refinement seeded with the DP assignment, each
        // segment evolving over its own candidate list.
        let cards: Vec<usize> = seg_costs.iter().map(Vec::len).collect();
        let ga = optimize_ragged(&cards, &dp.choices, &self.ga, |genome| {
            let mut total = 0.0;
            for (s, &c) in genome.iter().enumerate() {
                total += seg_costs[s][c];
                if s > 0 {
                    total += reshard(s, genome[s - 1], c);
                }
            }
            total
        });
        let winner = ga.genome[block_row];
        // Clone the winner's payload out of the costed vector instead of
        // `mem::take`-ing it: the shared cache must stay intact so the
        // context remains reusable across solves.
        let (workload, report) = costed[winner].1.clone().ok_or_else(|| {
            SolverError::NoFeasiblePlan("GA converged on an infeasible candidate".into())
        })?;
        let segments: Vec<SegmentAssignment> = chain
            .segments()
            .iter()
            .zip(&ga.genome)
            .enumerate()
            .map(|(s, (seg, &c))| SegmentAssignment {
                kind: seg.kind,
                count: seg.count,
                config: seg_cands[s][c],
                step_time: seg_costs[s][c],
            })
            .collect();
        Ok(ExecutionPlan {
            config: candidates[winner],
            engine,
            workload,
            report,
            segments,
            chain_cost: ga.cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;
    use temp_graph::workload::RecomputeMode;

    fn solver(model: ModelConfig) -> Dlws {
        let workload = Workload::for_model(&model);
        Dlws::new(WaferConfig::hpca(), model, workload)
    }

    #[test]
    fn solves_small_model() {
        let plan = solver(ModelZoo::gpt3_6_7b()).solve().unwrap();
        assert!(plan.report.fits_memory);
        assert!(plan.report.step_time.is_finite());
        assert_eq!(plan.config.intra_wafer_degree(), 32);
    }

    #[test]
    fn optimal_tatp_degree_is_in_the_paper_band() {
        // §VIII-D: "the optimal TATP dimension consistently falls within
        // 8-16". Small models land exactly there; for the largest models our
        // cost model's margins between 16 and 32 are within noise, so we
        // assert TATP dominance (>= 8) rather than the exact upper edge.
        let plan = solver(ModelZoo::gpt3_6_7b()).solve().unwrap();
        assert!(
            (8..=16).contains(&plan.config.tatp),
            "GPT-3 6.7B: chose {}",
            plan.config.label()
        );
        let plan = solver(ModelZoo::gpt3_76b()).solve().unwrap();
        assert!(
            plan.config.tatp >= 8,
            "GPT-3 76B: chose {}",
            plan.config.label()
        );
    }

    #[test]
    fn restricted_search_honors_filter() {
        // A Megatron-style planner: no TATP, no FSDP.
        let plan = solver(ModelZoo::gpt3_6_7b())
            .solve_with_engine(MappingEngine::SMap, |c| c.tatp == 1 && !c.fsdp && c.sp == 1)
            .unwrap();
        assert_eq!(plan.config.tatp, 1);
        assert!(!plan.config.fsdp);
    }

    #[test]
    fn tatp_enabled_plan_beats_restricted_baseline() {
        let s = solver(ModelZoo::gpt3_6_7b());
        let temp = s.solve().unwrap();
        let mega = s
            .solve_with_engine(MappingEngine::SMap, |c| c.tatp == 1 && !c.fsdp)
            .unwrap();
        assert!(
            temp.report.step_time < mega.report.step_time,
            "TEMP {} vs Megatron-style {}",
            temp.report.step_time,
            mega.report.step_time
        );
    }

    #[test]
    fn empty_filter_is_an_error() {
        let s = solver(ModelZoo::gpt3_6_7b());
        let err = s
            .solve_with_engine(MappingEngine::Tcme, |_| false)
            .unwrap_err();
        assert!(matches!(err, SolverError::NoFeasiblePlan(_)));
    }

    #[test]
    fn large_model_escalates_recompute() {
        let plan = solver(ModelZoo::gpt3_175b()).solve().unwrap();
        // 175B on one 32-die wafer cannot keep 34·sbh activations around.
        assert_eq!(plan.workload.recompute, RecomputeMode::Full);
        assert!(plan.report.fits_memory);
    }

    #[test]
    fn chain_assignment_is_heterogeneous_and_beats_uniform() {
        let plan = solver(ModelZoo::gpt3_6_7b()).solve().unwrap();
        assert_eq!(plan.segments.len(), 3);
        assert_eq!(plan.segments[0].kind, SegmentKind::Embedding);
        assert_eq!(plan.segments[1].kind, SegmentKind::Block);
        assert_eq!(plan.segments[2].kind, SegmentKind::Head);
        // The block run is what the plan's config/report describe.
        assert_eq!(plan.segments[1].config, plan.config);
        // The chain objective can only improve on the uniform evaluation,
        // and on GPT-3 6.7B it strictly does: the embedding escapes the
        // blocks' vocab-parallel all-reduce.
        assert!(plan.chain_cost <= plan.report.step_time);
        assert!(plan.is_heterogeneous(), "{:?}", plan.segments);
        assert_ne!(plan.segments[0].config, plan.segments[1].config);
        assert!(plan.chain_cost < plan.report.step_time);
        // Chain-cost bookkeeping: segment contributions plus boundary
        // transitions reproduce the total.
        let micro = plan.workload.micro_batches as f64;
        let boundary = solver(ModelZoo::gpt3_6_7b()).context().full_reshard_cost();
        let mut total = 0.0;
        for (i, seg) in plan.segments.iter().enumerate() {
            total += seg.step_time;
            if i > 0 && plan.segments[i - 1].config != seg.config {
                total += micro * boundary;
            }
        }
        assert!(
            (total - plan.chain_cost).abs() <= 1e-9 * plan.chain_cost,
            "{total} vs {}",
            plan.chain_cost
        );
    }

    #[test]
    fn repeated_solves_reuse_the_cache() {
        let s = solver(ModelZoo::gpt3_6_7b());
        let first = s.solve().unwrap();
        let after_first = s.search_stats();
        assert!(after_first.misses > 0);
        let second = s.solve().unwrap();
        let after_second = s.search_stats();
        assert_eq!(first, second, "cached solve must reproduce the plan");
        assert_eq!(
            after_first.misses, after_second.misses,
            "second solve must not re-cost anything"
        );
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn zero_deadline_still_returns_a_usable_plan_and_the_context_survives() {
        let s = solver(ModelZoo::gpt3_6_7b());
        let (fallback, timed_out) = s
            .solve_with_deadline(std::time::Duration::ZERO)
            .expect("deadline fallback must produce a plan");
        assert!(timed_out, "a zero budget must report expiry");
        assert!(fallback.report.fits_memory);
        assert!(fallback.chain_cost.is_finite());
        assert_eq!(fallback.segments.len(), 3);
        // The same context (and its shared pool) keeps serving full solves.
        let full = s.solve().unwrap();
        assert!(
            full.chain_cost <= fallback.chain_cost,
            "unbounded search can only improve on the fallback: {} vs {}",
            full.chain_cost,
            fallback.chain_cost
        );
    }

    #[test]
    fn generous_deadline_reproduces_the_unbounded_plan() {
        let s = solver(ModelZoo::gpt3_6_7b());
        let (plan, timed_out) = s
            .solve_with_deadline(std::time::Duration::from_secs(3600))
            .unwrap();
        assert!(!timed_out);
        assert_eq!(plan, s.solve().unwrap());
    }

    #[test]
    fn healthy_fault_map_resolves_to_the_identical_plan() {
        use temp_wsc::fault::FaultMap;
        let s = solver(ModelZoo::gpt3_6_7b());
        let healthy = FaultMap::healthy(&WaferConfig::hpca().mesh());
        let baseline = s.solve().unwrap();
        let resolved = s.resolve_degraded(&healthy).unwrap();
        assert_eq!(resolved, baseline, "healthy re-solve must be bit-for-bit");
    }

    #[test]
    fn link_faults_resolve_to_a_feasible_slower_plan() {
        use temp_wsc::fault::FaultMap;
        let s = solver(ModelZoo::gpt3_6_7b());
        let healthy = s.solve().unwrap();
        let mesh = WaferConfig::hpca().mesh();
        let faults = FaultMap::inject_link_faults(&mesh, 0.15, 23);
        assert!(faults.is_connected(&mesh));
        let degraded = s.resolve_degraded(&faults).unwrap();
        assert!(degraded.report.fits_memory);
        assert!(
            degraded.report.step_time >= healthy.report.step_time,
            "degraded fabric cannot beat the healthy plan: {} vs {}",
            degraded.report.step_time,
            healthy.report.step_time
        );
    }

    #[test]
    fn clones_share_one_cache() {
        let s = solver(ModelZoo::gpt3_6_7b());
        let clone = s.clone();
        let _ = s.solve().unwrap();
        let misses_after_original = clone.search_stats().misses;
        let _ = clone.solve().unwrap();
        assert_eq!(
            clone.search_stats().misses,
            misses_after_original,
            "clone's solve must be answered from the shared cache"
        );
    }
}
