//! Seeded fault-injection campaigns over the model zoo (§VIII-F, Fig. 20).
//!
//! Where [`temp_core::fault`] predicts degradation with closed-form
//! detour/derating formulas, this harness answers the question the paper
//! actually poses: *what does the planner itself do on a broken wafer?*
//! For every `(fault rate, seed)` point it injects faults into the mesh,
//! re-runs the full DLWS search on the degraded cost model
//! ([`Dlws::resolve_degraded`]), and records the re-solved plan's
//! throughput relative to the healthy plan from the same solver.
//!
//! Invariants the campaign checks on every re-solved plan:
//!
//! - the plan's memory verdict holds under the **derated** per-die HBM
//!   budget (worst surviving die, not nameplate capacity);
//! - a disconnected fabric — or a fabric with no feasible plan — scores
//!   zero throughput rather than being silently skipped.
//!
//! Seeds mirror `temp_core::fault`'s sweeps (`1000 + s` for links,
//! `2000 + s` for cores) so the re-solved curves and the closed-form
//! baseline are directly comparable point by point.

use temp_graph::models::ModelConfig;
use temp_graph::workload::Workload;
use temp_wsc::config::WaferConfig;
use temp_wsc::fault::FaultMap;

use crate::dlws::Dlws;

/// Which fault class a campaign injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// D2D link failures — reroutes, then a connectivity cliff.
    Link,
    /// Compute-core failures — graceful derating, shrinking memory.
    Core,
}

impl FaultKind {
    /// Seed base matching the closed-form sweeps in `temp_core::fault`.
    pub fn seed_base(self) -> u64 {
        match self {
            FaultKind::Link => 1000,
            FaultKind::Core => 2000,
        }
    }

    /// Injects this fault class at `rate` into `mesh`.
    pub fn inject(self, mesh: &temp_wsc::topology::Mesh, rate: f64, seed: u64) -> FaultMap {
        match self {
            FaultKind::Link => FaultMap::inject_link_faults(mesh, rate, seed),
            FaultKind::Core => FaultMap::inject_core_faults(mesh, rate, seed),
        }
    }
}

/// One `(rate, seeds)` aggregate of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// Injected fault rate.
    pub rate: f64,
    /// Mean over seeds of `healthy chain cost / degraded chain cost`
    /// (1.0 = no loss; 0.0 = no feasible plan / disconnected).
    pub relative_throughput: f64,
    /// Seeds whose re-solve produced a feasible plan.
    pub feasible_seeds: usize,
    /// Seeds swept at this rate.
    pub seeds: usize,
}

/// A full per-model degradation curve from re-solved plans.
#[derive(Debug, Clone)]
pub struct CampaignCurve {
    /// Model name (Table II label).
    pub model: String,
    /// Fault class injected.
    pub kind: FaultKind,
    /// One aggregate per swept rate, in sweep order.
    pub points: Vec<CampaignPoint>,
}

impl CampaignCurve {
    /// Relative throughput at the first swept rate (typically 0.0).
    pub fn head(&self) -> f64 {
        self.points
            .first()
            .map(|p| p.relative_throughput)
            .unwrap_or(0.0)
    }

    /// Relative throughput at the last swept rate.
    pub fn tail(&self) -> f64 {
        self.points
            .last()
            .map(|p| p.relative_throughput)
            .unwrap_or(0.0)
    }
}

/// One request of a flat-batched campaign ([`run_campaigns`]): a model
/// crossed with one fault class and its rate grid.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Model to re-solve on the degraded fabric.
    pub model: ModelConfig,
    /// Fault class injected.
    pub kind: FaultKind,
    /// Rates swept, in order (incumbent seeding walks this order).
    pub rates: Vec<f64>,
}

/// Runs a seeded fault campaign for one model: injects `kind` faults at
/// every rate in `rates` for `seeds` seeds, re-solves on the degraded
/// fabric, and aggregates relative throughput.
///
/// A thin wrapper over [`run_campaigns`] with a single spec.
///
/// # Panics
///
/// Panics if a re-solved plan violates its derated memory verdict — that
/// is a solver invariant, not a data point.
pub fn run_campaign(
    wafer: &WaferConfig,
    model: &ModelConfig,
    kind: FaultKind,
    rates: &[f64],
    seeds: u64,
) -> CampaignCurve {
    run_campaigns(
        wafer,
        &[CampaignSpec {
            model: model.clone(),
            kind,
            rates: rates.to_vec(),
        }],
        seeds,
    )
    .pop()
    .expect("one spec in, one curve out")
}

/// The campaign-lane cost class: each item is a whole rate sweep of
/// re-solves, orders of magnitude heavier than a candidate costing item,
/// so it keeps its own dispatch estimate.
static CAMPAIGN_LANES: crate::par::ParClass = crate::par::ParClass::new();

/// Flat-batched fault campaigns: the full `(spec x seed)` grid is
/// scheduled as one batch on the work-stealing runtime
/// ([`crate::runtime::global`]), so campaign wall time scales with the
/// worker count instead of the grid size. Each lane walks its rate grid
/// **in order**, deriving every fault map's degraded view exactly once
/// and seeding each rate point's incumbent with the previous rate's
/// winning configuration — the bound-pruned chain path
/// ([`crate::search::SearchContext::cost_candidates_chain`]) then skips
/// most of the candidate space immediately, without changing any winner.
///
/// Scores are aggregated in seed order, so curves are independent of the
/// runtime's scheduling.
///
/// # Panics
///
/// Panics if any re-solved plan violates its derated memory verdict —
/// that is a solver invariant, not a data point.
pub fn run_campaigns(
    wafer: &WaferConfig,
    specs: &[CampaignSpec],
    seeds: u64,
) -> Vec<CampaignCurve> {
    // One solver + healthy plan per distinct model: healthy solves are
    // shared across fault kinds and across every lane's rate-0 point.
    let mut solvers: Vec<(String, Dlws, f64)> = Vec::new();
    for spec in specs {
        if solvers.iter().any(|(name, _, _)| *name == spec.model.name) {
            continue;
        }
        let workload = Workload::for_model(&spec.model);
        let solver = Dlws::new(wafer.clone(), spec.model.clone(), workload);
        let healthy = solver
            .solve()
            .expect("healthy wafer must have a feasible plan");
        solvers.push((spec.model.name.clone(), solver, healthy.chain_cost));
    }
    let solver_of = |name: &str| {
        solvers
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, s, h)| (s, *h))
            .expect("solver built for every spec")
    };

    let mesh = wafer.mesh();
    let lanes: Vec<(usize, u64)> = (0..specs.len())
        .flat_map(|i| (0..seeds).map(move |s| (i, s)))
        .collect();

    // One lane = one (spec, seed): every rate of that seed's sweep, in
    // order, carrying the previous rate's winner as the incumbent seed.
    let lane_scores: Vec<Vec<Option<f64>>> =
        crate::par::par_map_class(&CAMPAIGN_LANES, &lanes, |&(i, s)| {
            let spec = &specs[i];
            let (solver, _) = solver_of(&spec.model.name);
            let mut prev_winner: Option<temp_parallel::strategy::HybridConfig> = None;
            spec.rates
                .iter()
                .map(|&rate| {
                    let faults = spec.kind.inject(&mesh, rate, spec.kind.seed_base() + s);
                    let solved = if faults.is_healthy() {
                        solver.solve()
                    } else {
                        let degraded = solver.degraded(&faults);
                        if let Some(winner) = prev_winner {
                            degraded.context().set_bound_seeds(vec![winner]);
                        }
                        degraded.solve()
                    };
                    match solved {
                        Ok(plan) => {
                            assert!(
                                plan.report.fits_memory,
                                "{} {:?} rate {rate} seed {s}: re-solved plan \
                                 violates the derated memory verdict",
                                spec.model.name, spec.kind
                            );
                            prev_winner = Some(plan.config);
                            Some(plan.chain_cost)
                        }
                        // Disconnected fabric or nothing fits the derated
                        // wafer: zero throughput, counted, not skipped.
                        Err(_) => None,
                    }
                })
                .collect()
        });

    // Aggregate per spec in seed order, so the curve is deterministic
    // regardless of lane scheduling.
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let (_, healthy_cost) = solver_of(&spec.model.name);
            let points = spec
                .rates
                .iter()
                .enumerate()
                .map(|(r, &rate)| {
                    let mut total = 0.0;
                    let mut feasible = 0usize;
                    for (lane, scores) in lanes.iter().zip(&lane_scores) {
                        if lane.0 != i {
                            continue;
                        }
                        if let Some(chain_cost) = scores[r] {
                            feasible += 1;
                            total += healthy_cost / chain_cost;
                        }
                    }
                    CampaignPoint {
                        rate,
                        relative_throughput: total / seeds as f64,
                        feasible_seeds: feasible,
                        seeds: seeds as usize,
                    }
                })
                .collect();
            CampaignCurve {
                model: spec.model.name.clone(),
                kind: spec.kind,
                points,
            }
        })
        .collect()
}

/// The link-fault rates Fig. 20(b) sweeps (cliff region included).
pub fn fig20_link_rates() -> Vec<f64> {
    vec![0.0, 0.1, 0.2, 0.3, 0.35, 0.4, 0.5]
}

/// The core-fault rates Fig. 20(c) sweeps.
pub fn fig20_core_rates() -> Vec<f64> {
    vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25]
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;

    #[test]
    fn healthy_rate_scores_exactly_one() {
        let curve = run_campaign(
            &WaferConfig::hpca(),
            &ModelZoo::gpt3_6_7b(),
            FaultKind::Link,
            &[0.0],
            2,
        );
        assert_eq!(curve.points.len(), 1);
        assert!((curve.head() - 1.0).abs() < 1e-12, "{}", curve.head());
        assert_eq!(curve.points[0].feasible_seeds, 2);
    }

    #[test]
    fn core_faults_degrade_gracefully_links_hit_a_cliff() {
        let wafer = WaferConfig::hpca();
        let model = ModelZoo::gpt3_6_7b();
        let core = run_campaign(&wafer, &model, FaultKind::Core, &[0.0, 0.25], 3);
        assert!(
            core.tail() > 0.6 && core.tail() < 1.0,
            "25% core faults must degrade gracefully: {}",
            core.tail()
        );
        let link = run_campaign(&wafer, &model, FaultKind::Link, &[0.15, 0.8], 3);
        assert!(
            link.head() > 0.0,
            "moderate link faults must still re-solve"
        );
        assert_eq!(
            link.tail(),
            0.0,
            "80% link faults disconnect every seed's mesh"
        );
        assert_eq!(link.points[1].feasible_seeds, 0);
    }
}
