//! The persistent work-stealing solver runtime.
//!
//! Candidate costing used to spawn fresh scoped threads on every
//! `par_map` call; at real batch sizes the spawn/join overhead ate the
//! parallelism (`BENCH_search.json` recorded `parallel_speedup ≈ 1.0`).
//! This module replaces that with **one lazily-initialized pool of
//! persistent workers**:
//!
//! * each worker owns a Chase–Lev deque ([`deque`]) — LIFO for its own
//!   tasks, stolen FIFO by idle peers, so skewed per-candidate costing
//!   times load-balance without a central queue;
//! * external threads submit through a shared injector and block on a
//!   pool-wide condvar until their job completes (the waiting protocol
//!   never touches job memory after the final task decrement, so the
//!   job can live on the submitter's stack);
//! * **nested submission** is first-class: a task that itself calls
//!   [`WorkPool::map`] pushes its chunks onto its own deque and *helps*
//!   — popping local work and stealing from peers until its job drains —
//!   so concurrent `ContextPool` solves share the pool without convoying
//!   and without deadlock (workers never block on a job);
//! * work is submitted in **chunks** sized by the caller so fine-grained
//!   items amortize dispatch, while expensive items (candidate costing)
//!   keep chunk = 1 for maximal stealing.
//!
//! The global pool is sized once from [`crate::par::available_workers`]
//! (which honors `TEMP_THREADS`) on first use. Explicit pools with any
//! worker count can be built for tests and benchmarks; dropping one
//! parks, joins and frees its workers.

pub(crate) mod deque;

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use deque::{Steal, WsDeque};

/// Cooperative cancellation handle for bounded solves.
///
/// A token is shared between the thread that owns a deadline and the map
/// loops costing candidates on its behalf: the loops poll
/// [`CancelToken::is_cancelled`] between items and skip the remaining
/// work once it reports true. Cancellation is *cooperative* — an item
/// already executing runs to completion — so the pool is never poisoned:
/// every queued chunk still drains, skipped items just return the
/// caller's fallback value instead of doing work.
///
/// Tokens are cheap to clone (an `Arc` around an atomic) and may carry a
/// deadline: once the deadline passes, `is_cancelled` latches the flag so
/// later polls short-circuit without reading the clock.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that self-cancels once `budget` has elapsed from now (and
    /// can still be cancelled early by hand).
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested or the deadline has
    /// passed. An expired deadline latches the flag, so subsequent polls
    /// are a single atomic load.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The deadline, if this token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

/// Error returned by [`WorkPool::try_map`] when a task's closure
/// panicked: the failed job is surfaced to the submitter instead of
/// re-panicking, and the pool keeps serving (no worker died — the chunk
/// caught the unwind and completed its bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskPanicked;

impl std::fmt::Display for TaskPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a work-stealing pool map task panicked")
    }
}

impl std::error::Error for TaskPanicked {}

/// One schedulable unit: a contiguous chunk of a job's items.
struct Task {
    job: *const JobHeader,
    start: usize,
    end: usize,
}

/// Raw task pointer that may cross threads (ownership is transferred
/// through the queues: exactly one thread executes and frees each task).
struct TaskPtr(*mut Task);
// SAFETY: see above — queue ownership transfer, never aliased execution.
unsafe impl Send for TaskPtr {}

/// The type-erased, job-generic header every job embeds first (`repr(C)`
/// in the concrete job type guarantees the cast back).
struct JobHeader {
    /// Runs items `[start, end)` of the job. Must not unwind.
    run: unsafe fn(*const JobHeader, usize, usize),
    /// Chunks not yet finished. The submitter frees the job only after
    /// observing zero, and executors never touch job memory after their
    /// decrement — the decrement is the last job access.
    pending: AtomicUsize,
    /// Set when any chunk's closure panicked.
    panicked: AtomicBool,
}

/// Counters the benchmarks and stress tests read.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Tasks executed by any thread.
    pub executed: u64,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: u64,
}

struct PoolShared {
    deques: Vec<WsDeque<Task>>,
    injector: Mutex<VecDeque<TaskPtr>>,
    /// Worker parking and job-completion signaling. The condvar lives in
    /// the pool (not the job) so a completing executor never touches a
    /// possibly-freed job to wake its submitter.
    idle: Mutex<IdleState>,
    wake: Condvar,
    executed: AtomicU64,
    steals: AtomicU64,
    shutdown: AtomicBool,
}

#[derive(Default)]
struct IdleState {
    /// Workers currently parked on the condvar.
    sleepers: usize,
    /// Bumped on every job completion; external submitters wait on it.
    completions: u64,
}

/// A persistent work-stealing thread pool. See the module docs.
pub struct WorkPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

thread_local! {
    /// (pool identity, worker index) of the current thread, when it is a
    /// pool worker — lets `map` detect nested submission and find the
    /// worker's own deque.
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// The global pool, sized from [`crate::par::available_workers`] on first
/// use (honoring `TEMP_THREADS`).
pub fn global() -> &'static WorkPool {
    static POOL: OnceLock<WorkPool> = OnceLock::new();
    POOL.get_or_init(|| WorkPool::with_workers(crate::par::available_workers()))
}

impl WorkPool {
    /// Builds a pool with `workers` persistent worker threads (at least
    /// one). Worker counts above the machine's core count are legal —
    /// correctness tests use them to force preemption-heavy schedules.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            deques: (0..workers).map(|_| WsDeque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Mutex::new(IdleState::default()),
            wake: Condvar::new(),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("temp-worker-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Execution counters so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self.shared.executed.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
        }
    }

    /// Maps `f` over `items` on the pool, preserving order, splitting the
    /// range into chunks of `chunk` items (clamped to at least 1).
    /// Results are written straight into their output slots — no
    /// `Vec<Option<R>>` pass, no per-item `Option`.
    ///
    /// Safe to call from inside a pool task (nested submission: the
    /// worker helps instead of blocking) and from any number of external
    /// threads concurrently.
    ///
    /// # Panics
    ///
    /// Propagates (as a fresh panic) any panic raised by `f`; already
    /// computed results are leaked, never dropped uninitialized. Use
    /// [`WorkPool::try_map`] to receive the failure as an error instead.
    pub fn map<T, R, F>(&self, items: &[T], f: &F, chunk: usize) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.try_map(items, f, chunk) {
            Ok(out) => out,
            Err(TaskPanicked) => panic!("work-stealing pool: a map task panicked"),
        }
    }

    /// As [`WorkPool::map`], but a panicking closure is surfaced as
    /// `Err(TaskPanicked)` instead of re-panicking in the submitter. The
    /// failed job is fully drained first (every chunk completes its
    /// bookkeeping, the panic is caught inside the chunk), so the pool —
    /// including the shared global one — keeps serving subsequent jobs.
    /// Already computed results of the failed job are leaked, never
    /// dropped uninitialized.
    ///
    /// # Errors
    ///
    /// Returns [`TaskPanicked`] when any invocation of `f` panicked.
    pub fn try_map<T, R, F>(
        &self,
        items: &[T],
        f: &F,
        chunk: usize,
    ) -> std::result::Result<Vec<R>, TaskPanicked>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let chunk = chunk.max(1);
        if n <= chunk || self.workers() == 1 && !self.on_this_pool() {
            // One chunk (or a 1-worker pool called externally, where
            // dispatch would serialize anyway with extra hops): run
            // inline, catching the unwind so the error contract holds on
            // this path too.
            return catch_unwind(AssertUnwindSafe(|| items.iter().map(f).collect()))
                .map_err(|_| TaskPanicked);
        }

        let mut out: Vec<R> = Vec::with_capacity(n);
        let chunks = n.div_ceil(chunk);
        let job = MapJob::<T, R, F> {
            header: JobHeader {
                run: run_map_chunk::<T, R, F>,
                pending: AtomicUsize::new(chunks),
                panicked: AtomicBool::new(false),
            },
            items: items.as_ptr(),
            f,
            out: out.as_mut_ptr(),
        };
        let header = &job.header as *const JobHeader;
        let tasks = (0..chunks).map(|c| {
            TaskPtr(Box::into_raw(Box::new(Task {
                job: header,
                start: c * chunk,
                end: ((c + 1) * chunk).min(n),
            })))
        });

        match self.worker_index() {
            Some(me) => {
                // Nested submission: queue on our own deque (newest-first
                // execution keeps the working set hot; peers steal the
                // oldest chunks) and help until the job drains.
                for t in tasks {
                    self.shared.deques[me].push(t.0);
                }
                self.notify_all();
                while job.header.pending.load(Ordering::Acquire) > 0 {
                    match find_task(&self.shared, Some(me)) {
                        Some(task) => execute(&self.shared, task),
                        None => std::thread::yield_now(),
                    }
                }
            }
            None => {
                // External submission: through the injector, then block
                // on the pool-wide completion condvar. Executors bump
                // `completions` under the idle lock, so the check-then-
                // wait below cannot miss a wakeup.
                {
                    let mut inj = self.shared.injector.lock().expect("injector lock");
                    inj.extend(tasks);
                }
                self.notify_all();
                let mut idle = self.shared.idle.lock().expect("idle lock");
                while job.header.pending.load(Ordering::Acquire) > 0 {
                    idle = self.shared.wake.wait(idle).expect("idle lock");
                }
                drop(idle);
            }
        }

        if job.header.panicked.load(Ordering::Acquire) {
            // `out` still has length 0: computed results leak, nothing
            // uninitialized is dropped.
            return Err(TaskPanicked);
        }
        // SAFETY: all `chunks` tasks completed without panic, so every
        // slot `0..n` was written exactly once.
        unsafe { out.set_len(n) };
        Ok(out)
    }

    /// Tries to execute one queued task on the calling thread and
    /// returns whether it did. Safe from workers (own deque first) and
    /// from external threads (injector, then stealing) alike.
    ///
    /// This is the help-while-waiting hook for code that must park on an
    /// external condition (e.g. a single-flight follower waiting for the
    /// leader's evaluation, see [`crate::shard::Flight::wait`]): instead
    /// of blocking idle while the pool is busy — possibly with the very
    /// fan-out the awaited computation submitted — the waiter drains one
    /// task per call and re-checks its condition in between.
    pub fn help_one(&self) -> bool {
        match find_task(&self.shared, self.worker_index()) {
            Some(task) => {
                execute(&self.shared, task);
                true
            }
            None => false,
        }
    }

    /// Whether the current thread is a worker of *this* pool.
    fn on_this_pool(&self) -> bool {
        self.worker_index().is_some()
    }

    fn worker_index(&self) -> Option<usize> {
        let id = Arc::as_ptr(&self.shared) as usize;
        CURRENT_WORKER.with(|c| match c.get() {
            Some((pool, index)) if pool == id => Some(index),
            _ => None,
        })
    }

    fn notify_all(&self) {
        // Taking the lock orders the notification after any sleeper's
        // queue re-scan, closing the lost-wakeup window.
        let _guard = self.shared.idle.lock().expect("idle lock");
        self.shared.wake.notify_all();
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.idle.lock().expect("idle lock");
            self.shared.wake.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: pop own deque, else steal (injector first, then peers),
/// else park until new work is submitted.
fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    let id = Arc::as_ptr(&shared) as usize;
    CURRENT_WORKER.with(|c| c.set(Some((id, index))));
    loop {
        if let Some(task) = find_task(&shared, Some(index)) {
            execute(&shared, task);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park: announce sleepiness, re-scan once (a submitter that
        // missed our announcement published its tasks before we got the
        // lock — `notify_all` takes the same lock), then wait.
        let mut idle = shared.idle.lock().expect("idle lock");
        idle.sleepers += 1;
        drop(idle);
        if let Some(task) = find_task(&shared, Some(index)) {
            let mut idle = shared.idle.lock().expect("idle lock");
            idle.sleepers -= 1;
            drop(idle);
            execute(&shared, task);
            continue;
        }
        let mut idle = shared.idle.lock().expect("idle lock");
        // Re-check under the lock: a completion/submission may have
        // signaled between the scan and re-acquiring the lock.
        if !has_visible_work(&shared) && !shared.shutdown.load(Ordering::Acquire) {
            idle = shared.wake.wait(idle).expect("idle lock");
        }
        idle.sleepers -= 1;
        drop(idle);
    }
}

/// Racy check whether any queue looks non-empty.
fn has_visible_work(shared: &PoolShared) -> bool {
    if !shared.injector.lock().expect("injector lock").is_empty() {
        return true;
    }
    shared.deques.iter().any(|d| !d.is_empty())
}

/// Finds one task: own deque (LIFO), then the injector, then stealing
/// from peers (FIFO). `me` is `None` for external helper threads.
fn find_task(shared: &PoolShared, me: Option<usize>) -> Option<*mut Task> {
    if let Some(me) = me {
        if let Some(task) = shared.deques[me].take() {
            return Some(task);
        }
    }
    if let Some(TaskPtr(task)) = shared.injector.lock().expect("injector lock").pop_front() {
        return Some(task);
    }
    // Steal sweep, starting after our own index so victims spread.
    let n = shared.deques.len();
    let start = me.map(|m| m + 1).unwrap_or(0);
    let mut retry = true;
    while retry {
        retry = false;
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            match shared.deques[victim].steal() {
                Steal::Success(task) => {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(task);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
    }
    None
}

/// Executes one task and publishes its completion. The `pending`
/// decrement is the executor's final access to job memory; the waiter
/// wake-up goes through pool state only.
fn execute(shared: &PoolShared, task: *mut Task) {
    // SAFETY: `task` came out of a queue exactly once (deque/injector
    // ownership transfer); the job outlives its tasks because the
    // submitter blocks until `pending` reaches zero.
    let task = unsafe { Box::from_raw(task) };
    let header = task.job;
    unsafe {
        ((*header).run)(header, task.start, task.end);
    }
    shared.executed.fetch_add(1, Ordering::Relaxed);
    // SAFETY: last access to job memory (see above).
    let remaining = unsafe { (*header).pending.fetch_sub(1, Ordering::AcqRel) };
    if remaining == 1 {
        // Job complete: wake external waiters through the pool.
        let mut idle = shared.idle.lock().expect("idle lock");
        idle.completions = idle.completions.wrapping_add(1);
        drop(idle);
        shared.wake.notify_all();
    }
}

/// The concrete map job. `repr(C)` pins the header first so the
/// type-erased `*const JobHeader` round-trips.
#[repr(C)]
struct MapJob<'a, T, R, F> {
    header: JobHeader,
    items: *const T,
    f: &'a F,
    out: *mut R,
}

// SAFETY: the raw pointers stand for `&[T]` (T: Sync at the call site)
// and an exclusively-partitioned output buffer (R: Send); chunks never
// overlap, so no slot is written twice.
unsafe impl<T: Sync, R: Send, F: Sync> Sync for MapJob<'_, T, R, F> {}

/// Runs items `[start, end)` of a [`MapJob`], writing each result
/// directly into its output slot. Panics from `f` are caught and
/// recorded; the chunk still completes (its unwritten slots are never
/// read — the submitter propagates the panic instead).
unsafe fn run_map_chunk<T, R, F>(header: *const JobHeader, start: usize, end: usize)
where
    F: Fn(&T) -> R,
{
    let job = header as *const MapJob<T, R, F>;
    let result = catch_unwind(AssertUnwindSafe(|| {
        for i in start..end {
            let value = ((*job).f)(&*(*job).items.add(i));
            (*job).out.add(i).write(value);
        }
    }));
    if result.is_err() {
        (*job).header.panicked.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_preserve_order_and_values() {
        let pool = WorkPool::with_workers(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.map(&items, &|x| x * 3 + 1, 1);
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        // Chunked dispatch agrees with chunk = 1.
        let chunked = pool.map(&items, &|x| x * 3 + 1, 17);
        assert_eq!(out, chunked);
        assert!(pool.stats().executed > 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = WorkPool::with_workers(2);
        let empty: Vec<u32> = vec![];
        assert!(pool.map(&empty, &|x| *x, 1).is_empty());
        assert_eq!(pool.map(&[5u32], &|x| x + 1, 1), vec![6]);
    }

    #[test]
    fn nested_submission_from_inside_a_task() {
        let pool = WorkPool::with_workers(3);
        let rows: Vec<u64> = (0..16).collect();
        let out = pool.map(
            &rows,
            &|&r| {
                let inner: Vec<u64> = (0..64).collect();
                pool.map(&inner, &|&c| r * 1000 + c, 4).iter().sum::<u64>()
            },
            1,
        );
        let expect: Vec<u64> = rows
            .iter()
            .map(|&r| (0..64).map(|c| r * 1000 + c).sum::<u64>())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_external_submitters_share_the_pool() {
        let pool = Arc::new(WorkPool::with_workers(4));
        let handles: Vec<_> = (0..6u64)
            .map(|s| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let items: Vec<u64> = (0..500).collect();
                    pool.map(&items, &|x| x + s, 1)
                })
            })
            .collect();
        for (s, h) in handles.into_iter().enumerate() {
            let out = h.join().expect("submitter panicked");
            assert_eq!(out, (0..500).map(|x| x + s as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn task_panics_propagate_to_the_submitter() {
        let pool = WorkPool::with_workers(2);
        let items: Vec<u32> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(
                &items,
                &|&x| {
                    assert!(x != 13, "boom");
                    x
                },
                1,
            )
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps serving jobs.
        assert_eq!(pool.map(&[1u32, 2], &|x| x * 2, 1), vec![2, 4]);
    }

    #[test]
    fn try_map_surfaces_a_panicked_task_as_an_error() {
        let pool = WorkPool::with_workers(2);
        let items: Vec<u32> = (0..64).collect();
        let result = pool.try_map(
            &items,
            &|&x| {
                assert!(x != 13, "boom");
                x
            },
            1,
        );
        assert_eq!(result, Err(TaskPanicked));
        // The failed job drained cleanly: the same pool serves the next
        // job, and a clean job returns Ok.
        assert_eq!(pool.try_map(&[1u32, 2], &|x| x * 2, 1), Ok(vec![2, 4]));
        // The inline path (single chunk) honors the same contract.
        let inline = pool.try_map(&[7u32], &|_| -> u32 { panic!("boom") }, 8);
        assert_eq!(inline, Err(TaskPanicked));
    }

    #[test]
    fn cancel_token_latches_manual_and_deadline_cancellation() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_none());
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled(), "clones share one flag");

        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert!(expired.deadline().is_some());
        assert!(expired.is_cancelled(), "zero budget expires immediately");
        assert!(expired.is_cancelled(), "expiry latches");

        let generous = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!generous.is_cancelled());
        generous.cancel();
        assert!(generous.is_cancelled(), "manual cancel beats the deadline");
    }

    #[test]
    fn one_worker_pool_runs_inline_for_external_callers() {
        let pool = WorkPool::with_workers(1);
        let items: Vec<u32> = (0..100).collect();
        assert_eq!(
            pool.map(&items, &|x| x + 1, 1),
            items.iter().map(|x| x + 1).collect::<Vec<_>>()
        );
    }
}
