//! A hand-rolled Chase–Lev work-stealing deque.
//!
//! The offline build environment has no crossbeam, so the solver runtime
//! carries its own deque: the classic Chase–Lev algorithm (SPAA'05) with
//! the C11 memory orderings of Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13).
//! One thread — the **owner** — pushes and takes at the bottom in LIFO
//! order; any number of **thieves** steal from the top in FIFO order.
//!
//! Elements are raw task pointers (`*mut T`), stored in `AtomicPtr` slots
//! so a thief racing a wrapping push reads a stale-or-fresh pointer, never
//! a torn one; ownership of the pointee is settled exclusively by the CAS
//! on `top` — whoever advances `top` past an index owns the pointer that
//! was in that slot, exactly once.
//!
//! The buffer grows geometrically when full. A retired buffer can still be
//! read by an in-flight thief (its claim CAS will simply fail if it lost
//! the race), so retired buffers are parked in a garbage list and only
//! freed when the deque itself drops — by which point no thief can hold a
//! reference (the pool joins or parks its workers first).

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// Outcome of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// One element, now owned by the caller.
    Success(*mut T),
}

/// A growable ring buffer of task-pointer slots. Slots are atomic so
/// concurrent slot reads by thieves and writes by the owner are defined
/// behavior; staleness is resolved by the `top` CAS, not the slot.
struct Buffer<T> {
    /// Capacity, always a power of two (`mask == cap - 1`).
    mask: usize,
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer {
            mask: cap - 1,
            slots,
        })
    }

    #[inline]
    fn slot(&self, index: isize) -> &AtomicPtr<T> {
        &self.slots[(index as usize) & self.mask]
    }
}

/// The deque proper. `bottom` is owned by the single owner thread,
/// `top` is contended by thieves; both only ever increase (indices are
/// logical positions, the buffer wraps modulo its capacity).
pub(crate) struct WsDeque<T> {
    bottom: AtomicIsize,
    top: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Retired (outgrown) buffers, freed on drop — see the module docs.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the deque hands out raw `*mut T` pointers whose pointees are
// managed by the pool (each is claimed exactly once via the `top` CAS);
// all shared internal state is atomic or mutex-guarded.
unsafe impl<T> Send for WsDeque<T> {}
unsafe impl<T> Sync for WsDeque<T> {}

const INITIAL_CAP: usize = 64;

impl<T> WsDeque<T> {
    pub(crate) fn new() -> Self {
        WsDeque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::new(INITIAL_CAP))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Pushes one task at the bottom. **Owner thread only.**
    pub(crate) fn push(&self, task: *mut T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: the buffer pointer is always valid (only replaced by
        // `grow`, which retires — never frees — the old buffer).
        let mut buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t > buf.mask as isize {
            // Full: grow. Never reuse a live slot in place — an in-flight
            // thief may still be reading it from the old buffer.
            buf = self.grow(t, b);
        }
        buf.slot(b).store(task, Ordering::Relaxed);
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops one task from the bottom (LIFO). **Owner thread only.**
    pub(crate) fn take(&self) -> Option<*mut T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: see `push`.
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let task = buf.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last element: race the thieves for it via `top`.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(task)
            } else {
                Some(task)
            }
        } else {
            // Already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Steals one task from the top (FIFO). Any thread.
    pub(crate) fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // SAFETY: see `push`; a stale buffer read is harmless because the
        // claim CAS below fails if this index was already consumed.
        let buf = unsafe { &*self.buffer.load(Ordering::Acquire) };
        let task = buf.slot(t).load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(task)
        } else {
            Steal::Retry
        }
    }

    /// Whether the deque is observably empty (racy; used for idle checks).
    pub(crate) fn is_empty(&self) -> bool {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        t >= b
    }

    /// Doubles the buffer, copying the live range `[t, b)`; the old
    /// buffer is retired, not freed. **Owner thread only.**
    fn grow(&self, t: isize, b: isize) -> &Buffer<T> {
        let old_ptr = self.buffer.load(Ordering::Relaxed);
        // SAFETY: valid until retired buffers are freed in Drop.
        let old = unsafe { &*old_ptr };
        let new = Buffer::new((old.mask + 1) * 2);
        for i in t..b {
            new.slot(i)
                .store(old.slot(i).load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let new_ptr = Box::into_raw(new);
        self.buffer.store(new_ptr, Ordering::Release);
        self.retired
            .lock()
            .expect("deque garbage lock")
            .push(old_ptr);
        // SAFETY: just stored; stays valid as above.
        unsafe { &*new_ptr }
    }
}

impl<T> Drop for WsDeque<T> {
    fn drop(&mut self) {
        // Any tasks still queued are leaked by design: the pool only drops
        // after draining (tasks are always consumed by the job that
        // submitted them before the submitting call returns).
        // SAFETY: exclusive access (`&mut self`); every pointer in
        // `retired` and the live buffer came from `Box::into_raw`.
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
            for ptr in self
                .retired
                .get_mut()
                .expect("deque garbage lock")
                .drain(..)
            {
                drop(Box::from_raw(ptr));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn boxed(v: usize) -> *mut usize {
        Box::into_raw(Box::new(v))
    }

    /// SAFETY helper: reclaim a pointer produced by `boxed`.
    fn unbox(p: *mut usize) -> usize {
        unsafe { *Box::from_raw(p) }
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = WsDeque::new();
        for v in 0..4 {
            d.push(boxed(v));
        }
        // Owner pops newest first.
        assert_eq!(unbox(d.take().unwrap()), 3);
        // Thief steals oldest first.
        match d.steal() {
            Steal::Success(p) => assert_eq!(unbox(p), 0),
            other => panic!("expected success, got {other:?}"),
        }
        assert_eq!(unbox(d.take().unwrap()), 2);
        assert_eq!(unbox(d.take().unwrap()), 1);
        assert!(d.take().is_none());
        assert_eq!(d.steal(), Steal::Empty);
        assert!(d.is_empty());
    }

    #[test]
    fn growth_preserves_every_element() {
        let d = WsDeque::new();
        let n = INITIAL_CAP * 4 + 3;
        for v in 0..n {
            d.push(boxed(v));
        }
        let mut seen = HashSet::new();
        while let Some(p) = d.take() {
            assert!(seen.insert(unbox(p)), "duplicate element");
        }
        assert_eq!(seen.len(), n);
    }

    #[test]
    fn concurrent_stealing_consumes_each_element_exactly_once() {
        // One owner interleaving pushes and takes, several thieves
        // stealing: every element must be consumed exactly once across
        // all threads. Runs a few seeded rounds to vary interleavings.
        const PER_ROUND: usize = 2_000;
        for round in 0..3u64 {
            let d = Arc::new(WsDeque::new());
            let consumed = Arc::new(AtomicUsize::new(0));
            let sum = Arc::new(AtomicUsize::new(0));
            let thieves: Vec<_> = (0..3)
                .map(|_| {
                    let d = Arc::clone(&d);
                    let consumed = Arc::clone(&consumed);
                    let sum = Arc::clone(&sum);
                    std::thread::spawn(move || loop {
                        match d.steal() {
                            Steal::Success(p) => {
                                sum.fetch_add(unbox(p), Ordering::Relaxed);
                                if consumed.fetch_add(1, Ordering::Relaxed) + 1 == PER_ROUND {
                                    break;
                                }
                            }
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if consumed.load(Ordering::Relaxed) >= PER_ROUND {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            // Owner: pseudo-random mix of pushes and takes (xorshift).
            let mut state = 0x9e3779b97f4a7c15u64 ^ round;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut pushed = 0usize;
            while pushed < PER_ROUND {
                if next() % 4 != 0 {
                    d.push(boxed(pushed));
                    pushed += 1;
                } else if let Some(p) = d.take() {
                    sum.fetch_add(unbox(p), Ordering::Relaxed);
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Owner drains what the thieves have not taken yet.
            while consumed.load(Ordering::Relaxed) < PER_ROUND {
                if let Some(p) = d.take() {
                    sum.fetch_add(unbox(p), Ordering::Relaxed);
                    consumed.fetch_add(1, Ordering::Relaxed);
                } else {
                    std::thread::yield_now();
                }
            }
            for t in thieves {
                t.join().expect("thief panicked");
            }
            assert_eq!(consumed.load(Ordering::Relaxed), PER_ROUND);
            // Sum check: 0 + 1 + ... + (n-1), each exactly once.
            assert_eq!(
                sum.load(Ordering::Relaxed),
                PER_ROUND * (PER_ROUND - 1) / 2,
                "round {round}: an element was lost or duplicated"
            );
        }
    }
}
