//! Sharded concurrent maps and single-flight coalescing — the
//! concurrency substrate under [`crate::search::SearchContext`]'s caches.
//!
//! Two primitives live here:
//!
//! * [`ShardedMap`] — a hash map split over [`SHARDS`] independent
//!   `RwLock`ed shards, so concurrent solvers touching *different* keys
//!   (different models through one [`crate::pool::ContextPool`], or
//!   different candidates of one batch) stop serializing on a single
//!   lock. Lock acquisitions first `try_lock`; a failed try is counted
//!   as one observed **wait** before blocking, which is the
//!   `shard_waits` statistic [`crate::search::SearchStats`] surfaces.
//! * [`FlightTable`] — single-flight claims per key. When N concurrent
//!   solves miss on the same key, exactly one claimant becomes the
//!   **leader** (and computes), the rest become **followers** that park
//!   on the in-flight [`Flight`] — helping the shared runtime drain
//!   tasks while they wait, so a follower never convoys behind the
//!   leader's own fan-out — and then observe the identical stored value.
//!
//! The leader's claim is a [`FlightLease`]: dropping it (normally or by
//! panic) retires the flight and wakes every follower. Followers
//! re-check the destination cache after waking; a leader that died
//! without publishing simply leaves the key missing, and the retry loop
//! in the caller elects a new leader.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::Duration;

/// Number of independent shards (a power of two; shard choice takes the
/// top hash bits so it stays independent of `HashMap`'s bucket bits).
pub const SHARDS: usize = 16;

/// How long a follower sleeps between help attempts when the runtime has
/// nothing to steal. Short enough that a completed flight is observed
/// promptly even if the wake-up notification raced the sleep.
const FOLLOWER_NAP: Duration = Duration::from_micros(200);

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() >> 60) as usize & (SHARDS - 1)
}

/// A concurrent map over [`SHARDS`] `RwLock`ed shards with contention
/// accounting: every lock acquisition that could not be satisfied
/// immediately counts one wait in [`ShardedMap::waits`].
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    waits: AtomicU64,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            waits: AtomicU64::new(0),
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    fn read_shard(&self, i: usize) -> RwLockReadGuard<'_, HashMap<K, V>> {
        match self.shards[i].try_read() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.waits.fetch_add(1, Ordering::Relaxed);
                self.shards[i].read().expect("shard lock")
            }
            Err(TryLockError::Poisoned(_)) => panic!("shard lock poisoned"),
        }
    }

    fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, HashMap<K, V>> {
        match self.shards[i].try_write() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.waits.fetch_add(1, Ordering::Relaxed);
                self.shards[i].write().expect("shard lock")
            }
            Err(TryLockError::Poisoned(_)) => panic!("shard lock poisoned"),
        }
    }

    /// A clone of the value under `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.read_shard(shard_of(key)).get(key).cloned()
    }

    /// Inserts `value` unless `key` is already present; either way,
    /// returns a clone of the value the map holds afterwards. Stored
    /// entries win races, so every observer of a key sees one consistent
    /// value.
    pub fn insert_if_absent(&self, key: K, value: V) -> V {
        let shard = shard_of(&key);
        self.write_shard(shard).entry(key).or_insert(value).clone()
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|i| self.read_shard(i).len()).sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every entry (shard by shard — concurrent
    /// inserts between shards may or may not be included). Callers that
    /// need deterministic output sort the result; shard order never
    /// leaks.
    pub fn snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for i in 0..SHARDS {
            let shard = self.read_shard(i);
            out.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Lock acquisitions that found the shard contended (had to block).
    pub fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }
}

/// One in-flight computation: followers park on it until the leader's
/// [`FlightLease`] retires it.
#[derive(Debug, Default)]
pub struct Flight {
    done: Mutex<bool>,
    wake: Condvar,
}

impl Flight {
    /// Whether the leader has retired this flight.
    pub fn is_done(&self) -> bool {
        *self.done.lock().expect("flight lock")
    }

    fn finish(&self) {
        *self.done.lock().expect("flight lock") = true;
        self.wake.notify_all();
    }

    /// Parks until the flight retires. `help` is invoked whenever the
    /// flight is still running; it should try to execute one unit of
    /// useful work (e.g. [`crate::runtime::WorkPool::help_one`] on the
    /// shared runtime) and return whether it did. While the leader's own
    /// fan-out occupies the runtime, followers drain it instead of
    /// convoying; once there is nothing to steal they nap briefly on the
    /// flight's condvar.
    pub fn wait(&self, mut help: impl FnMut() -> bool) {
        loop {
            {
                let done = self.done.lock().expect("flight lock");
                if *done {
                    return;
                }
            }
            if help() {
                continue;
            }
            let done = self.done.lock().expect("flight lock");
            if *done {
                return;
            }
            let (done, _timeout) = self
                .wake
                .wait_timeout(done, FOLLOWER_NAP)
                .expect("flight lock");
            if *done {
                return;
            }
        }
    }
}

/// The leader's claim on a key. Dropping the lease — after publishing
/// the computed value, or because the computation panicked — removes the
/// flight from its table and wakes every follower.
#[derive(Debug)]
pub struct FlightLease<'t, K: Hash + Eq + Clone> {
    table: &'t FlightTable<K>,
    key: K,
    flight: Arc<Flight>,
}

impl<K: Hash + Eq + Clone> Drop for FlightLease<'_, K> {
    fn drop(&mut self) {
        let mut shard = self.table.shards[shard_of(&self.key)]
            .lock()
            .expect("flight table lock");
        if let Some(current) = shard.get(&self.key) {
            if Arc::ptr_eq(current, &self.flight) {
                shard.remove(&self.key);
            }
        }
        drop(shard);
        self.flight.finish();
    }
}

/// The outcome of [`FlightTable::claim`].
pub enum Claim<'t, K: Hash + Eq + Clone> {
    /// No one is computing this key: the caller must compute it, publish
    /// the result, then drop the lease.
    Leader(FlightLease<'t, K>),
    /// Another thread is computing this key: park on the flight (see
    /// [`Flight::wait`]), then re-read the destination cache.
    Follower(Arc<Flight>),
}

/// Per-key single-flight claims, sharded like [`ShardedMap`].
#[derive(Debug)]
pub struct FlightTable<K> {
    shards: Vec<Mutex<HashMap<K, Arc<Flight>>>>,
}

impl<K> Default for FlightTable<K> {
    fn default() -> Self {
        FlightTable {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }
}

impl<K: Hash + Eq + Clone> FlightTable<K> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims `key`: the first claimant becomes the leader, concurrent
    /// claimants follow the leader's flight.
    pub fn claim(&self, key: K) -> Claim<'_, K> {
        let mut shard = self.shards[shard_of(&key)]
            .lock()
            .expect("flight table lock");
        match shard.get(&key) {
            Some(flight) => Claim::Follower(Arc::clone(flight)),
            None => {
                let flight = Arc::new(Flight::default());
                shard.insert(key.clone(), Arc::clone(&flight));
                Claim::Leader(FlightLease {
                    table: self,
                    key,
                    flight,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn insert_if_absent_keeps_the_stored_entry() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        assert_eq!(map.get(&7), None);
        assert_eq!(map.insert_if_absent(7, 70), 70);
        assert_eq!(map.insert_if_absent(7, 71), 70, "stored entries win");
        assert_eq!(map.get(&7), Some(70));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn snapshot_covers_every_shard() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        for k in 0..1000u64 {
            map.insert_if_absent(k, k * 2);
        }
        assert_eq!(map.len(), 1000);
        let mut snap = map.snapshot();
        snap.sort_unstable();
        assert_eq!(snap.len(), 1000);
        assert!(snap.iter().all(|&(k, v)| v == k * 2));
        // With 1000 keys over 16 shards, every shard must be populated —
        // this is the guard against a degenerate shard function.
        let used: std::collections::HashSet<usize> = (0..1000u64).map(|k| shard_of(&k)).collect();
        assert_eq!(used.len(), SHARDS);
    }

    #[test]
    fn single_flight_elects_one_leader_per_key() {
        let table: FlightTable<u32> = FlightTable::new();
        let first = table.claim(5);
        let Claim::Leader(lease) = first else {
            panic!("first claim must lead");
        };
        let Claim::Follower(flight) = table.claim(5) else {
            panic!("second claim must follow");
        };
        assert!(!flight.is_done());
        // A different key is independent.
        assert!(matches!(table.claim(6), Claim::Leader(_)));
        drop(lease);
        assert!(flight.is_done(), "dropping the lease retires the flight");
        // The key is claimable again (e.g. after an abandoned leader).
        assert!(matches!(table.claim(5), Claim::Leader(_)));
    }

    #[test]
    fn followers_wake_even_when_the_leader_panics() {
        let table: Arc<FlightTable<u32>> = Arc::new(FlightTable::new());
        let Claim::Leader(lease) = table.claim(9) else {
            panic!("first claim must lead");
        };
        let Claim::Follower(flight) = table.claim(9) else {
            panic!("second claim must follow");
        };
        let helps = AtomicUsize::new(0);
        let waiter = std::thread::spawn({
            let flight = Arc::clone(&flight);
            move || {
                flight.wait(|| {
                    helps.fetch_add(1, Ordering::Relaxed);
                    false
                })
            }
        });
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _held = lease;
            panic!("leader dies mid-computation");
        }));
        waiter.join().expect("follower must wake, not hang");
        assert!(matches!(table.claim(9), Claim::Leader(_)));
    }
}
