//! The wafer-centric cost model (Eqs. 2–4 of the paper).
//!
//! For each Transformer layer under a hybrid configuration:
//!
//! ```text
//! T_layer = Collective(cfg) + max(Comp(cfg), P2P-stream(cfg))      (Eq. 2)
//! ```
//!
//! collectives (TP/SP/CP/DP/FSDP rings) are exposed, the TATP stream
//! overlaps with compute. Per step:
//!
//! ```text
//! T_step = micro_batches / pp-overlap x layers x T_layer + bubbles (Eq. 4)
//! ```
//!
//! Alongside time, the model produces per-die memory (OOM detection),
//! energy (compute / D2D / HBM), throughput and power efficiency — every
//! quantity the evaluation figures consume.

use serde::{Deserialize, Serialize};

use temp_graph::models::ModelConfig;
use temp_graph::op::{OpKind, Operator};
use temp_graph::segment::{Segment, SegmentChain, SegmentKind};
use temp_graph::tensor::LinearDims;
use temp_graph::transformer::TransformerBuilder;
use temp_graph::workload::Workload;
use temp_mapping::engines::{map_hybrid, MappingEngine};
use temp_parallel::memory::{per_die_footprint, FootprintBreakdown};
use temp_parallel::selective::choose_stream;
use temp_parallel::strategy::HybridConfig;
use temp_sim::collectives::{Collective, CollectiveKind};
use temp_sim::compute::ComputeModel;
use temp_sim::network::{rerouted_neighbor_flows, ContentionSim};
use temp_sim::power::EnergyLedger;
use temp_wsc::config::WaferConfig;
use temp_wsc::fault::{DegradedView, FaultMap};
use temp_wsc::units::MB;

use crate::{Result, SolverError};

/// Full cost evaluation of one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Configuration evaluated.
    pub config: HybridConfig,
    /// Mapping engine used.
    pub engine: MappingEngine,
    /// One optimizer-step wall-clock time in seconds.
    pub step_time: f64,
    /// Critical-path compute time per step.
    pub compute_time: f64,
    /// Exposed collective communication time per step.
    pub collective_time: f64,
    /// TATP stream time per step (overlapped against compute).
    pub stream_time: f64,
    /// Stream time *not* hidden behind compute.
    pub exposed_stream_time: f64,
    /// Pipeline bubble time per step.
    pub bubble_time: f64,
    /// Embedding-segment time per step (lookup + vocab-parallel output
    /// all-reduce + sparse gradient exchange under this configuration).
    pub embedding_time: f64,
    /// LM-head-segment time per step (final norm + logits GEMM +
    /// cross-entropy reduction + tied-weight gradient sync).
    pub head_time: f64,
    /// MoE-block time per step (expert compute, all-to-all dispatch and
    /// combine, expert gradient sync), pipeline-scaled like the dense
    /// blocks. Zero for dense models.
    pub moe_time: f64,
    /// Per-die memory footprint.
    pub memory: FootprintBreakdown,
    /// Whether the footprint fits per-die HBM.
    pub fits_memory: bool,
    /// Energy per step.
    pub energy: EnergyLedger,
    /// Training throughput in tokens/s.
    pub throughput: f64,
    /// Average power in watts.
    pub power: f64,
    /// Throughput per watt (tokens/s/W).
    pub power_efficiency: f64,
    /// Contention inflation factor of the mapped collectives.
    pub contention_factor: f64,
}

impl CostReport {
    /// Fraction of step time spent on exposed communication.
    pub fn comm_fraction(&self) -> f64 {
        if self.step_time <= 0.0 {
            return 0.0;
        }
        (self.collective_time + self.exposed_stream_time + self.bubble_time) / self.step_time
    }

    /// Step time of the **dense** Transformer-block run alone (everything
    /// except the embedding, LM-head and MoE segments) — the per-candidate
    /// block cost the heterogeneous chain DP consumes. MoE segments carry
    /// their own chain row ([`CostReport::moe_time`] under a uniform
    /// assignment), so they must not leak into the dense row.
    pub fn block_time(&self) -> f64 {
        (self.step_time - self.embedding_time - self.head_time - self.moe_time).max(0.0)
    }
}

/// Cost of **one segment instance** for **one micro-batch** under a
/// configuration (Eq. 2 shape: `collective + max(compute, stream)`).
///
/// Deliberately closed-form: per-die operator arithmetic plus analytic
/// ring-collective times, no layout and no contention simulation, so a
/// whole candidate batch can be segment-costed in microseconds and the
/// result is independent of the evaluation tier (the surrogate gate and
/// the exact pipeline see identical segment tables). The per-segment
/// memory check is a *necessary* condition — the segment's own parameter
/// state and activations must fit a die; whole-chain feasibility is still
/// settled by the exact [`CostReport::fits_memory`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentCost {
    /// Which segment kind was costed.
    pub kind: SegmentKind,
    /// Per-micro-batch time of one instance: `coll + max(comp, stream)`.
    pub time: f64,
    /// Compute component.
    pub compute_time: f64,
    /// Exposed collective component.
    pub collective_time: f64,
    /// TATP stream component (overlaps with compute).
    pub stream_time: f64,
    /// Per-die bytes attributable to this segment instance.
    pub memory_bytes: f64,
    /// Whether the segment's own footprint fits one die's HBM.
    pub fits_memory: bool,
}

/// Revision of the cost model's *semantics*. Bump whenever a change makes
/// previously-computed [`CostReport`]s stale (new cost terms, changed
/// equations, new report fields) — persisted caches are keyed by this, so
/// a bump invalidates every existing warm-start file instead of silently
/// serving answers from an older model.
pub const COST_MODEL_VERSION: u32 = 2;

/// One candidate's verdict from the batched admissible prefilter
/// ([`WaferCostModel::chain_bounds`]): structural/memory feasibility plus
/// a lower bound on the dense-block chain row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateBound {
    /// `false` only when the exact path is guaranteed to return infinity
    /// for this candidate (invalid degrees, disconnected fabric, or HBM
    /// overflow under every recompute escalation).
    pub feasible: bool,
    /// Admissible lower bound on [`CostReport::block_time`]; `0.0` when
    /// infeasible.
    pub lb_block: f64,
}

/// One persisted entry of the memoized collective kernel: the raw
/// analytic time of `(kind, participants, payload-bytes-as-bits)` under
/// this wafer's D2D link parameters (no link-derating or contention
/// factors folded in — those vary per evaluation and multiply on top).
pub type CollectiveEntry = (CollectiveKind, u32, u64, f64);

/// Memoized collective-time kernel shared by every timing path
/// ([`WaferCostModel::evaluate_with`]'s op loop, the segment evaluator's
/// ring collectives, the MoE all-to-all). The idealized ring formula is a
/// pure function of `(kind, group size, bytes)` for a fixed D2D config,
/// so repeated sub-terms across candidates, segments, stages and fault
/// maps collapse into one table lookup. Values are *raw* — the link
/// derating factor differs per fault map, so [`WaferCostModel::derated`]
/// siblings share one table through the `Arc`.
struct CollectiveMemo {
    /// Process-unique table id, distinguishing memos in the thread-local
    /// read-through cache. Drawn from a monotonic counter, never reused —
    /// unlike an `Arc` address, which a later memo could alias.
    id: u64,
    /// Sharded so concurrent solvers fill the kernel without serializing
    /// on one lock (the thread-local read-through already keeps the
    /// ~93%-hit read path lock-free; sharding takes the write path too).
    table: crate::shard::ShardedMap<(CollectiveKind, u32, u64), f64>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl Default for CollectiveMemo {
    fn default() -> Self {
        static NEXT_MEMO_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        CollectiveMemo {
            id: NEXT_MEMO_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            table: crate::shard::ShardedMap::new(),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for CollectiveMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectiveMemo").finish_non_exhaustive()
    }
}

thread_local! {
    /// Read-through cache in front of the shared collective memo: the
    /// ~93%-hit read path stops taking the shared `RwLock` per collective.
    /// Keyed by the owning memo's process-unique id, so one thread can
    /// serve many solvers without cross-talk and a dropped memo's entries
    /// can never be served to a later one.
    static COLL_TLS: std::cell::RefCell<
        std::collections::HashMap<(u64, CollectiveKind, u32, u64), f64>,
    > = std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Bound on thread-local collective entries; the cache resets past it.
const COLL_TLS_CAP: usize = 1 << 16;

/// The communication-relevant slice of one [`map_hybrid`] outcome — all an
/// evaluation reads from a mapping. Layouts, flows and link loads stay in
/// the mapping crate; the costing hot path needs only the op table, the
/// simulated contention factor, and the pre-reduced D2D volume.
#[derive(Debug)]
struct MappedComm {
    comm_ops: Vec<temp_mapping::comm::CommOp>,
    contention_factor: f64,
    /// Per-layer D2D byte volume (`Σ bytes · per_layer_count · group`),
    /// pre-reduced for the energy ledger.
    comm_bytes_layer: f64,
}

/// Key of one memoized mapping: the engine, the EP-folded layout config,
/// and the only workload fields `extract_comm_ops` reads (batch geometry
/// and dtype width). Recompute mode and fault state are deliberately
/// absent — mappings are identical across recompute escalation and across
/// degraded siblings (faults derate timing factors, not the layout), which
/// is exactly where the sharing pays.
type MappingKey = (u8, HybridConfig, u64, u64, u64, u8);

/// Memoized communication mappings, shared across clones and degraded
/// siblings like the collective memo. `map_hybrid` (layout + routing +
/// contention simulation) dominates a cold evaluation's wall time; the
/// memo collapses it to once per distinct layout key. Failures are stored
/// as their exact error strings so a memoized miss reproduces the same
/// [`SolverError::Internal`] a fresh mapping would.
struct MappingMemo {
    #[allow(clippy::type_complexity)]
    table: crate::shard::ShardedMap<
        MappingKey,
        std::result::Result<std::sync::Arc<MappedComm>, String>,
    >,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl Default for MappingMemo {
    fn default() -> Self {
        MappingMemo {
            table: crate::shard::ShardedMap::new(),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for MappingMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappingMemo").finish_non_exhaustive()
    }
}

/// Candidate-independent inputs of one exact evaluation, hoisted once per
/// `(model, workload)`: the op-graph walk (the block the layer compute
/// law prices) and every shared scalar. A batched pass derives these a
/// single time and amortizes them over the whole candidate group,
/// mirroring the structure-of-arrays shape of
/// [`WaferCostModel::chain_bounds`]; the single-candidate path routes
/// through the same hoist, which is what makes batched and per-candidate
/// evaluation bit-identical by construction.
struct EvalHoist {
    /// One Transformer block's operator graph.
    block: temp_graph::graph::ComputeGraph,
    /// `4/3` under full recompute, else `1`.
    recompute_factor: f64,
    micro: f64,
    layers: f64,
    moe_count: f64,
    dense_count: f64,
    usable_hbm: f64,
    /// Step FLOPs with the recompute factor applied.
    step_flops: f64,
    /// Per-step HBM traffic (parameter states + activations).
    hbm_bytes: f64,
    tokens: f64,
    static_power: f64,
}

/// The analytic wafer cost model.
#[derive(Debug, Clone)]
pub struct WaferCostModel {
    wafer: WaferConfig,
    model: ModelConfig,
    workload: Workload,
    compute: ComputeModel,
    /// The model's segment chain, built once. Segment structure (ops,
    /// params, FLOPs) does not depend on the recompute mode, so the chain
    /// is valid for every workload this model evaluates with; only the
    /// block's *activation accounting* is recompute-sensitive and that is
    /// read from the live workload, not the chain.
    chain: SegmentChain,
    /// Degraded-fabric derating factors (identity for a healthy wafer —
    /// the healthy code path is bit-for-bit unchanged).
    fault: DegradedView,
    /// Multiplicative slowdown on every link-bound term (collectives,
    /// all-to-all, TATP stream): `max` of the analytic
    /// `detour / bisection` factor and the [`ContentionSim`]-measured
    /// rerouted-neighbor-ring inflation. Exactly `1.0` when healthy.
    link_factor: f64,
    /// Memoized raw collective times, shared across clones and degraded
    /// siblings (the raw values are link-factor-independent).
    coll_memo: std::sync::Arc<CollectiveMemo>,
    /// Memoized communication mappings, shared the same way (layouts and
    /// routed flows are fault-independent).
    map_memo: std::sync::Arc<MappingMemo>,
}

impl WaferCostModel {
    /// Creates a cost model for a (wafer, model, workload) triple.
    pub fn new(wafer: WaferConfig, model: ModelConfig, workload: Workload) -> Self {
        Self::build(wafer, model, workload, DegradedView::healthy(), 1.0)
    }

    /// Creates a **fault-aware** cost model: every evaluation prices the
    /// degraded fabric the fault map describes — compute derated by the
    /// mean surviving-core fraction, usable per-die memory by the worst
    /// die's, and every link-bound term inflated by the rerouted-traffic
    /// slowdown (analytic detour/bisection crossed with a
    /// [`ContentionSim`] run of the rerouted neighbor exchanges). A
    /// healthy map produces a model identical to
    /// [`WaferCostModel::new`]'s, fingerprint included.
    pub fn with_fault_map(
        wafer: WaferConfig,
        model: ModelConfig,
        workload: Workload,
        faults: &FaultMap,
    ) -> Self {
        if faults.is_healthy() {
            return Self::new(wafer, model, workload);
        }
        let mesh = wafer.mesh();
        let view = faults.degraded_view(&mesh);
        let link_factor = if !view.connected {
            f64::INFINITY
        } else {
            // Measured inflation: every formerly-adjacent exchange rerouted
            // over surviving links, against the healthy one-hop baseline.
            // D2D-scale payloads (§III-B granularity) so bandwidth, not
            // latency, dominates the ratio.
            let bytes = 16.0 * MB;
            let sim = ContentionSim::new(&wafer);
            let measured = match rerouted_neighbor_flows(&mesh, faults, bytes) {
                Some(flows) => {
                    let degraded = sim.simulate(&flows).makespan;
                    let healthy = bytes / sim.link_bandwidth + sim.hop_latency;
                    (degraded / healthy).max(1.0)
                }
                None => f64::INFINITY,
            };
            view.link_time_factor().max(measured)
        };
        Self::build(wafer, model, workload, view, link_factor)
    }

    /// This model re-derated for a (different) fault map, sharing the
    /// wafer/model/workload triple — the re-solve entry points build their
    /// degraded siblings through here.
    pub fn derated(&self, faults: &FaultMap) -> Self {
        let mut sibling = Self::with_fault_map(
            self.wafer.clone(),
            self.model.clone(),
            self.workload.clone(),
            faults,
        );
        // Raw collective times depend only on the (shared) D2D link
        // parameters, never on the fault state — the whole campaign can
        // reuse one kernel table. Mappings likewise: faults derate timing
        // factors, not layouts or routes.
        sibling.coll_memo = self.coll_memo.clone();
        sibling.map_memo = self.map_memo.clone();
        sibling
    }

    fn build(
        wafer: WaferConfig,
        model: ModelConfig,
        workload: Workload,
        fault: DegradedView,
        link_factor: f64,
    ) -> Self {
        let compute = ComputeModel::new(&wafer);
        let chain = SegmentChain::for_model(&model, &workload);
        WaferCostModel {
            wafer,
            model,
            workload,
            compute,
            chain,
            fault,
            link_factor,
            coll_memo: std::sync::Arc::new(CollectiveMemo::default()),
            map_memo: std::sync::Arc::new(MappingMemo::default()),
        }
    }

    /// The degraded-fabric factors this model prices under (identity when
    /// healthy).
    pub fn fault_view(&self) -> &DegradedView {
        &self.fault
    }

    /// Whether this model derates for faults at all.
    pub fn is_degraded(&self) -> bool {
        !self.fault.is_identity()
    }

    /// Usable per-die HBM under the fault state: the nominal capacity
    /// scaled by the worst die's surviving fraction (a uniform SPMD shard
    /// must fit the most degraded die). This is the capacity the memory
    /// verdict — [`CostReport::fits_memory`] and the per-segment check —
    /// tests against.
    pub fn usable_hbm(&self) -> f64 {
        self.wafer.hbm.capacity * self.fault.memory_factor
    }

    /// The model's segment chain IR (embedding -> blocks -> head).
    pub fn chain(&self) -> &SegmentChain {
        &self.chain
    }

    /// The wafer configuration.
    pub fn wafer(&self) -> &WaferConfig {
        &self.wafer
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Fingerprint of everything an evaluation's answer depends on: the
    /// full `(wafer, model, workload)` triple plus [`COST_MODEL_VERSION`].
    /// Persisted caches are keyed by this, so a cache written under any
    /// other wafer geometry, model shape, workload or cost-model revision
    /// is rejected on import. Hashes the `Debug` renderings — they cover
    /// every field, and adding a field changes the rendering, which is
    /// exactly the conservatism a cache key wants.
    pub fn fingerprint(&self) -> u64 {
        let mut ident = format!(
            "temp-cost v{} | {:?} | {:?} | {:?}",
            COST_MODEL_VERSION, self.wafer, self.model, self.workload
        );
        // The fault state is part of the answer's identity: a cache warmed
        // on a healthy (or differently degraded) wafer must never serve a
        // degraded solve. Healthy models keep the historical key, so
        // existing warm-start files stay valid.
        if self.is_degraded() {
            use std::fmt::Write;
            let _ = write!(
                ident,
                " | fault {:?} link_factor {:?}",
                self.fault, self.link_factor
            );
        }
        crate::persist::fnv1a(ident.as_bytes())
    }

    /// Raw analytic collective time through the shared memo table, fronted
    /// by a thread-local read-through cache (no shared lock on the common
    /// re-read path). Serving a memoized value is bit-identical to
    /// recomputing: the formula is a pure function of the key for this
    /// wafer's D2D config, so the stored `f64` is the exact value a fresh
    /// computation would produce. Thread-local serves still count as
    /// shared-table hits — the value originated there.
    fn collective_raw_time(&self, kind: CollectiveKind, n: usize, bytes: f64) -> f64 {
        use std::sync::atomic::Ordering;
        let tls_key = (self.coll_memo.id, kind, n as u32, bytes.to_bits());
        if let Some(t) = COLL_TLS.with(|c| c.borrow().get(&tls_key).copied()) {
            self.coll_memo.hits.fetch_add(1, Ordering::Relaxed);
            return t;
        }
        let key = (kind, n as u32, bytes.to_bits());
        let t = match self.coll_memo.table.get(&key) {
            Some(t) => {
                self.coll_memo.hits.fetch_add(1, Ordering::Relaxed);
                t
            }
            None => {
                let t = Collective::analytic_time_for(kind, n, bytes, &self.wafer.d2d);
                self.coll_memo.misses.fetch_add(1, Ordering::Relaxed);
                self.coll_memo.table.insert_if_absent(key, t)
            }
        };
        COLL_TLS.with(|c| {
            let mut c = c.borrow_mut();
            if c.len() > COLL_TLS_CAP {
                c.clear();
            }
            c.insert(tls_key, t);
        });
        t
    }

    /// The memoized communication mapping of `(engine, layout_cfg)` under
    /// `workload`'s batch geometry. A serve is bit-identical to remapping:
    /// for a fixed wafer/model, `map_hybrid` is a pure function of the key
    /// (recompute mode and fault state never reach it), and failures are
    /// replayed with their exact error strings.
    fn mapped_comm(
        &self,
        engine: MappingEngine,
        workload: &Workload,
        layout_cfg: &HybridConfig,
    ) -> Result<std::sync::Arc<MappedComm>> {
        use std::sync::atomic::Ordering;
        let key = (
            engine_code(engine),
            *layout_cfg,
            workload.global_batch,
            workload.seq_len,
            workload.micro_batches,
            workload.compute_dtype.bytes() as u8,
        );
        if let Some(cached) = self.map_memo.table.get(&key) {
            self.map_memo.hits.fetch_add(1, Ordering::Relaxed);
            return cached.map_err(SolverError::Internal);
        }
        let computed = match map_hybrid(engine, &self.wafer, &self.model, workload, layout_cfg) {
            Ok(mapping) => {
                let comm_bytes_layer = mapping
                    .comm_ops
                    .iter()
                    .map(|op| op.bytes * op.per_layer_count * op.group.len().max(1) as f64)
                    .sum();
                Ok(std::sync::Arc::new(MappedComm {
                    contention_factor: mapping.contention_factor(),
                    comm_bytes_layer,
                    comm_ops: mapping.comm_ops,
                }))
            }
            Err(e) => Err(e.to_string()),
        };
        self.map_memo.misses.fetch_add(1, Ordering::Relaxed);
        // Stored entries win races, so every observer of a key sees one
        // consistent mapping.
        self.map_memo
            .table
            .insert_if_absent(key, computed)
            .map_err(SolverError::Internal)
    }

    /// `(hits, misses)` of the mapping memo since it was created (shared
    /// across clones and degraded siblings).
    pub fn mapping_memo_stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.map_memo.hits.load(Ordering::Relaxed),
            self.map_memo.misses.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the memoized collective kernel (unordered), for
    /// persistence alongside the cost table.
    pub fn collective_table_entries(&self) -> Vec<CollectiveEntry> {
        self.coll_memo
            .table
            .snapshot()
            .into_iter()
            .map(|((kind, n, bits), t)| (kind, n, bits, t))
            .collect()
    }

    /// Merges persisted kernel entries into the memo (a warm start).
    /// Entries already present win — both sides computed the same pure
    /// function, so the choice is cosmetic.
    pub fn merge_collective_entries(&self, entries: &[CollectiveEntry]) {
        for &(kind, n, bits, t) in entries {
            self.coll_memo.table.insert_if_absent((kind, n, bits), t);
        }
    }

    /// `(hits, misses)` of the collective kernel since the table was
    /// created (shared across clones and degraded siblings).
    pub fn collective_memo_stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.coll_memo.hits.load(Ordering::Relaxed),
            self.coll_memo.misses.load(Ordering::Relaxed),
        )
    }

    /// Contended lock-shard acquisitions observed by this model's memo
    /// tables (collective kernel + mapping memo) — feeds the
    /// `shard_waits` statistic of [`crate::search::SearchStats`].
    pub fn collective_shard_waits(&self) -> u64 {
        self.coll_memo.table.waits() + self.map_memo.table.waits()
    }

    /// Batched admissible prefilter (structure-of-arrays pass over a
    /// candidate batch): for each configuration, whether it can possibly
    /// be feasible, and a lower bound on its dense-block chain row.
    ///
    /// Admissibility contract (what makes exact-with-pruning bit-identical
    /// to exhaustive search):
    ///
    /// * `feasible == false` only when the exact escalation path
    ///   ([`crate::search::SearchContext::cost_of`]) is *guaranteed* to
    ///   return infinity: the degree product is invalid, the fabric is
    ///   disconnected, or the [`per_die_footprint`] verdict (with the
    ///   logits transient, exactly as [`WaferCostModel::evaluate_with`]
    ///   computes it) overflows usable HBM under the base **and** the
    ///   fully-recomputed workload.
    /// * `lb_block <=` the exact [`CostReport::block_time`] (up to float
    ///   association; pruning thresholds carry a relative epsilon). The
    ///   bound keeps only terms the exact evaluation can never undercut:
    ///   compute without the recompute factor (`>= 1`), the per-class
    ///   collective times at contention factor 1 (the simulated factor is
    ///   `>= 1`) on the same EP-folded traffic table
    ///   (`temp_mapping::comm::extract_comm_ops`), and the exact TATP
    ///   stream law (bitwise identical, it has no contention term).
    pub fn chain_bounds(&self, candidates: &[HybridConfig]) -> Vec<CandidateBound> {
        use temp_graph::workload::RecomputeMode;
        const INFEASIBLE: CandidateBound = CandidateBound {
            feasible: false,
            lb_block: 0.0,
        };
        if !self.fault.connected {
            return vec![INFEASIBLE; candidates.len()];
        }
        let base = &self.workload;
        let full = self.workload.clone().with_recompute(RecomputeMode::Full);
        // Hoisted across the batch: block ops and model scalars do not
        // depend on the candidate.
        let block = TransformerBuilder::new(&self.model, base).block();
        let micro = base.micro_batches as f64;
        let layers = self.model.layers as f64;
        let moe_count = self.model.moe_layer_count() as f64;
        let dense_count = self.model.dense_layer_count() as f64;
        let e = base.compute_dtype.bytes() as f64;
        let dies = self.wafer.die_count();
        candidates
            .iter()
            .map(|cfg| {
                if cfg.validate(dies).is_err() {
                    return INFEASIBLE;
                }
                let mut fits_any = false;
                for w in [base, &full] {
                    let mut memory = per_die_footprint(&self.model, w, cfg);
                    memory.buffers += self.logits_transient_bytes(cfg, w);
                    if memory.fits(self.usable_hbm()) {
                        fits_any = true;
                        break;
                    }
                    if base.recompute == RecomputeMode::Full {
                        break;
                    }
                }
                if !fits_any {
                    return INFEASIBLE;
                }
                // Compute floor: recompute-free per-layer compute time.
                let comp_floor = self.ops_compute_time(block.ops(), cfg, base);
                // Comm floor: the traffic table of `extract_comm_ops` on
                // the EP-folded layout config, one term per (source,
                // pattern) class — the exact path takes the max over
                // same-class groups, and every group of a class carries
                // identical (kind, size, bytes).
                use CollectiveKind::{AllGather, AllReduce, ReduceScatter};
                let dp_n = cfg.dp * cfg.ep.max(1);
                let dp = dp_n as f64;
                let (tp, sp, cp, tatp) =
                    (cfg.tp as f64, cfg.sp as f64, cfg.cp as f64, cfg.tatp as f64);
                let local_tokens =
                    base.micro_batch_size() as f64 / dp * base.seq_len as f64 / (sp * cp);
                let act_bytes = local_tokens * self.model.hidden as f64 * e;
                let layer_weight_bytes = self.model.params_per_layer() as f64 * e
                    / (tp * tatp * if cfg.fsdp { dp } else { 1.0 });
                let mut comm_floor = 0.0;
                if cfg.tp > 1 {
                    comm_floor += self.collective_raw_time(AllReduce, cfg.tp, act_bytes)
                        * 4.0
                        * self.link_factor;
                }
                if cfg.sp > 1 {
                    comm_floor += self.collective_raw_time(AllGather, cfg.sp, act_bytes * sp)
                        * 2.0
                        * self.link_factor;
                    comm_floor += self.collective_raw_time(ReduceScatter, cfg.sp, act_bytes * sp)
                        * 2.0
                        * self.link_factor;
                }
                if cfg.cp > 1 {
                    let kv_bytes =
                        2.0 * act_bytes * cp / self.model.heads as f64 * self.model.kv_heads as f64;
                    comm_floor += self.collective_raw_time(AllGather, cfg.cp, kv_bytes)
                        * 1.0
                        * self.link_factor;
                }
                if cfg.fsdp && dp_n > 1 {
                    comm_floor +=
                        self.collective_raw_time(AllGather, dp_n, layer_weight_bytes * dp)
                            * 2.0
                            * self.link_factor;
                    comm_floor +=
                        self.collective_raw_time(ReduceScatter, dp_n, layer_weight_bytes * dp)
                            * 1.0
                            * self.link_factor;
                } else if dp_n > 1 {
                    comm_floor += self.collective_raw_time(AllReduce, dp_n, layer_weight_bytes)
                        * 1.0
                        * self.link_factor;
                }
                // Stream term: bitwise the exact path's P2P pricing (no
                // contention factor exists there to drop).
                let mut stream_floor = 0.0;
                if cfg.tatp > 1 {
                    let stream_bytes = 2.0 * layer_weight_bytes * tatp;
                    let t_deg = cfg.tatp.max(1) as f64;
                    let chunk = stream_bytes / t_deg;
                    stream_floor = 3.0 * t_deg * self.stream_round_time(chunk);
                }
                let lb_layer = comm_floor + comp_floor.max(stream_floor);
                let pp = cfg.pp as f64;
                let local_layers = (layers / pp).max(1.0);
                // Dense-block share of one pipeline stage: MoE models
                // price only their dense layers here (the MoE run has its
                // own chain row).
                let mult = if moe_count > 0.0 {
                    local_layers / layers * dense_count
                } else {
                    local_layers
                };
                let lb_block = (micro + pp - 1.0) * mult * lb_layer;
                CandidateBound {
                    feasible: true,
                    lb_block,
                }
            })
            .collect()
    }

    /// Cheap analytic surrogate features of one evaluation key — the
    /// tier-1 input of the two-tier search. Closed-form arithmetic only:
    /// no layout, no routing, no contention simulation, so a whole
    /// candidate batch can be featurized in microseconds.
    pub fn feature_vector(
        &self,
        cfg: &HybridConfig,
        engine: MappingEngine,
        mode: temp_graph::workload::RecomputeMode,
    ) -> Vec<f64> {
        temp_surrogate::chain_features(
            &self.model,
            &self.workload,
            &self.wafer,
            cfg,
            engine_code(engine),
            mode,
        )
    }

    /// Evaluates one configuration end to end (Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Internal`] when the configuration cannot be
    /// laid out on the wafer.
    pub fn evaluate(&self, cfg: &HybridConfig, engine: MappingEngine) -> Result<CostReport> {
        self.evaluate_with(cfg, engine, &self.workload)
    }

    /// As [`WaferCostModel::evaluate`] with an explicit workload (planners
    /// escalate recompute modes through this).
    pub fn evaluate_with(
        &self,
        cfg: &HybridConfig,
        engine: MappingEngine,
        workload: &Workload,
    ) -> Result<CostReport> {
        self.evaluate_hoisted(&self.eval_hoist(workload), cfg, engine, workload)
    }

    /// Batched exact costing: evaluates a whole candidate group sharing
    /// `(engine, workload)` — and hence the recompute mode — in one pass.
    /// The op-graph walk and the shared scalars are hoisted once per
    /// group; distinct layout keys reach `map_hybrid` once through the
    /// mapping memo and every duplicate (recompute escalations, `dp·ep`
    /// foldings, degraded siblings) is served from it. Results are
    /// positionally aligned with `cfgs` and **bit-identical** to calling
    /// [`WaferCostModel::evaluate_with`] per candidate: both paths run the
    /// same hoisted core.
    pub fn evaluate_batch(
        &self,
        cfgs: &[HybridConfig],
        engine: MappingEngine,
        workload: &Workload,
    ) -> Vec<Result<CostReport>> {
        let hoist = self.eval_hoist(workload);
        cfgs.iter()
            .map(|cfg| self.evaluate_hoisted(&hoist, cfg, engine, workload))
            .collect()
    }

    fn eval_hoist(&self, workload: &Workload) -> EvalHoist {
        let recompute_factor = match workload.recompute {
            temp_graph::workload::RecomputeMode::Full => 4.0 / 3.0,
            _ => 1.0,
        };
        let micro = workload.micro_batches as f64;
        EvalHoist {
            block: TransformerBuilder::new(&self.model, workload).block(),
            recompute_factor,
            micro,
            layers: self.model.layers as f64,
            moe_count: self.model.moe_layer_count() as f64,
            dense_count: self.model.dense_layer_count() as f64,
            usable_hbm: self.usable_hbm(),
            step_flops: workload.step_flops(&self.model) * recompute_factor,
            hbm_bytes: 3.0 * workload.param_state_bytes(&self.model)
                + 2.0 * workload.activation_bytes_total(&self.model) * micro,
            tokens: workload.tokens_per_step() as f64,
            static_power: 0.15 * self.wafer.die.peak_power() * self.wafer.die_count() as f64,
        }
    }

    fn evaluate_hoisted(
        &self,
        hoist: &EvalHoist,
        cfg: &HybridConfig,
        engine: MappingEngine,
        workload: &Workload,
    ) -> Result<CostReport> {
        cfg.validate(self.wafer.die_count())
            .map_err(|e| SolverError::Internal(e.to_string()))?;
        self.check_connected()?;

        // ---- Memory ---------------------------------------------------------
        let mut memory = per_die_footprint(&self.model, workload, cfg);
        // The whole-model verdict owns chain feasibility, so it must also
        // see the end segments' transients — notably the head's logits
        // shard, which `per_die_footprint`'s per-layer accounting never
        // prices.
        memory.buffers += self.logits_transient_bytes(cfg, workload);
        let fits_memory = memory.fits(hoist.usable_hbm);

        // ---- Per-layer compute (per micro-batch) ---------------------------
        // The block graph is hoisted — only the per-candidate degrees enter
        // the compute law here.
        let comp_layer =
            self.ops_compute_time(hoist.block.ops(), cfg, workload) * hoist.recompute_factor;

        // ---- Communication ---------------------------------------------------
        // Layout normalization: the expert-parallel groups occupy the die
        // array like an outer data-parallel dimension (experts shard where
        // replicas would sit), so the mapping engines see `ep` folded into
        // `dp`. The MoE-specific traffic (all-to-all dispatch/combine,
        // expert gradient sync) is priced by the segment evaluator below,
        // not by the dense mapping.
        let layout_cfg = HybridConfig {
            dp: cfg.dp * cfg.ep.max(1),
            ep: 1,
            ..*cfg
        };
        let mapping = self.mapped_comm(engine, workload, &layout_cfg)?;
        let contention_factor = mapping.contention_factor;
        // Split: stream ops overlap, everything else is exposed.
        // Groups of the same (source, pattern) run concurrently on disjoint
        // die sets: take the max over groups, then sum distinct op classes.
        // Classes index a fixed array by their canonical code (absent
        // classes hold `0.0`, the additive identity), so the steady-state
        // loop touches no heap.
        let mut coll_by_class = [0.0f64; temp_mapping::comm::CommOp::CLASS_COUNT];
        let mut stream_layer: f64 = 0.0;
        for op in &mapping.comm_ops {
            match op.pattern {
                temp_mapping::comm::CommPattern::P2pStream => {
                    // Per-round pricing: the stream runs `tatp` rounds per
                    // stage; each round moves one chunk per direction with
                    // up to ~3 concurrent waves per link (measured from the
                    // orchestration) and granularity-dependent effective
                    // bandwidth — fine chunks at very high degrees
                    // under-utilize the D2D links (§III-B), producing the
                    // Fig. 9 tail. The two directions run on disjoint
                    // directed links (the 0.5 factor).
                    // Mean waves per directed link per round is ~1; the
                    // occasional 3-wave peak (see
                    // TatpOrchestration::peak_link_multiplicity) averages
                    // out to ~1.5 over a stage.
                    let t_deg = cfg.tatp.max(1) as f64;
                    let chunk = op.bytes / t_deg;
                    let t = op.per_layer_count * t_deg * self.stream_round_time(chunk);
                    stream_layer = stream_layer.max(t);
                }
                _ => {
                    let t =
                        self.collective_raw_time(op.collective_kind(), op.group.len(), op.bytes)
                            * op.per_layer_count
                            * contention_factor
                            * self.link_factor;
                    let slot = &mut coll_by_class[op.class_code()];
                    *slot = slot.max(t);
                }
            }
        }
        let coll_layer: f64 = coll_by_class.iter().sum();

        // ---- Eq. 2 per layer, Eq. 4 per step --------------------------------
        let layer_time = coll_layer + comp_layer.max(stream_layer);
        let exposed_stream = (stream_layer - comp_layer).max(0.0) * hoist.layers * hoist.micro;
        let local_layers = (hoist.layers / cfg.pp as f64).max(1.0);
        let micro = hoist.micro;
        // 1F1B pipeline: total = (micro + pp - 1) stages; bubbles = (pp-1).
        let pp = cfg.pp as f64;
        // Interior segments per stage: dense blocks priced by the mapped
        // per-layer path above, MoE blocks by the closed-form segment
        // evaluator (expert compute, all-to-all dispatch/combine, expert
        // gradient sync — all per micro-batch). Both run *inside* the
        // pipeline, so both scale with the stage share and enter the
        // bubble term. Dense models keep the pre-MoE arithmetic
        // bit-for-bit.
        let moe_count = hoist.moe_count;
        let (stage_time, stage_moe) = if moe_count > 0.0 {
            let moe_seg = self
                .chain
                .find(SegmentKind::MoeBlock)
                .ok_or_else(|| SolverError::Internal("MoE model without MoeBlock run".into()))?;
            let moe_layer_time = self.evaluate_segment_with(moe_seg, cfg, workload)?.time;
            let share = local_layers / hoist.layers;
            let stage_moe = share * moe_count * moe_layer_time;
            (
                share * hoist.dense_count * layer_time + stage_moe,
                stage_moe,
            )
        } else {
            (local_layers * layer_time, 0.0)
        };
        let step_body = micro * stage_time;
        let bubble_time = (pp - 1.0) * stage_time;
        let step_time = step_body + bubble_time;
        let moe_time = (micro + pp - 1.0) * stage_moe;

        // ---- Segment chain: embedding + LM head -----------------------------
        // The block run above replicates one block cost `layers` times; the
        // chain's end segments have their own physics (lookup-bound
        // embedding with a vocab-parallel output all-reduce, vocab-GEMM
        // head with tied-weight gradient sync) and are costed through the
        // same closed-form segment evaluator the chain DP consumes, so a
        // uniform chain assignment reproduces this step time exactly.
        let mut embedding_time = 0.0;
        let mut head_time = 0.0;
        for seg in self.chain.segments() {
            if matches!(seg.kind, SegmentKind::Block | SegmentKind::MoeBlock) {
                // Interior segments were priced into the pipeline body
                // above.
                continue;
            }
            let t = self.evaluate_segment_with(seg, cfg, workload)?.time * seg.count as f64 * micro;
            match seg.kind {
                SegmentKind::Embedding => embedding_time = t,
                SegmentKind::Head => head_time = t,
                SegmentKind::Block | SegmentKind::MoeBlock => {}
            }
        }
        let step_time = step_time + embedding_time + head_time;

        // ---- Energy ----------------------------------------------------------
        let mut energy = EnergyLedger::new();
        // Step FLOPs (recompute factor applied) and HBM traffic — parameter
        // states (read+write) + activations per step — are hoisted.
        energy.add_compute(hoist.step_flops, &self.wafer);
        energy.add_hbm(hoist.hbm_bytes, &self.wafer);
        // D2D: per-layer comm volumes x layers x micro-batches (collective
        // rounds already included in volume), charged at measured mean hops.
        energy.add_d2d(
            mapping.comm_bytes_layer * hoist.layers * micro,
            1.2,
            &self.wafer,
        );

        // ---- Throughput / power ----------------------------------------------
        let throughput = if step_time > 0.0 {
            hoist.tokens / step_time
        } else {
            0.0
        };
        // Static/leakage floor: always-on clock trees, SRAM retention and
        // PHYs draw ~15% of the wafer's peak power regardless of load. This
        // is what makes *throughput per watt* reward faster plans (Fig. 14)
        // rather than only lower energy per token.
        let power = energy.average_power(step_time) + hoist.static_power;
        let power_efficiency = if power > 0.0 { throughput / power } else { 0.0 };

        Ok(CostReport {
            config: *cfg,
            engine,
            step_time,
            compute_time: comp_layer * local_layers * micro * pp.max(1.0) / pp,
            collective_time: coll_layer * local_layers * micro,
            stream_time: stream_layer * local_layers * micro,
            exposed_stream_time: exposed_stream / pp,
            bubble_time,
            embedding_time,
            head_time,
            moe_time,
            memory,
            fits_memory,
            energy,
            throughput,
            power,
            power_efficiency,
            contention_factor,
        })
    }

    /// Per-die, per-micro-batch compute time of one Transformer layer under
    /// a configuration, including TATP's round granularity effects.
    ///
    /// HBM traffic is charged once per operand per layer: the input shard
    /// stays SRAM-resident across TATP rounds and the streamed weight
    /// sub-blocks arrive over D2D, so round count affects only GEMM
    /// *efficiency* (smaller per-round tiles under-fill the PE array) and
    /// per-round launch overhead — the Fig. 9 diminishing-returns tail.
    pub fn layer_compute_time(&self, cfg: &HybridConfig, workload: &Workload) -> f64 {
        let block = TransformerBuilder::new(&self.model, workload).block();
        self.ops_compute_time(block.ops(), cfg, workload)
    }

    /// Per-die, per-micro-batch compute time of an arbitrary operator list
    /// under a configuration — the generalized body of
    /// [`WaferCostModel::layer_compute_time`], shared by the block and the
    /// embedding/head segment evaluations.
    pub fn ops_compute_time(
        &self,
        ops: &[Operator],
        cfg: &HybridConfig,
        workload: &Workload,
    ) -> f64 {
        // Expert parallelism folds into the data-parallel dimension for
        // all dense-path work (Megatron-style EP: the ep groups process
        // disjoint batch shards through attention and the dense blocks;
        // only the expert path differs). `ep = 1` keeps the dense
        // arithmetic bit-for-bit.
        let (dp, tp, spcp, tatp) = (
            (cfg.dp * cfg.ep.max(1)) as u64,
            cfg.tp as u64,
            (cfg.sp * cfg.cp) as u64,
            cfg.tatp as u64,
        );
        let batch_div = dp * micro_share(workload);
        let dtype = workload.compute_dtype;
        let mut total = 0.0;
        for op in ops {
            match op.kind.linear_dims() {
                Some(dims) => {
                    // Per-die shares: DP/micro on batch, SP/CP + TATP on
                    // rows, TP + TATP on columns.
                    let local = LinearDims {
                        b: shard(dims.b, batch_div),
                        m: shard(dims.m, spcp * tatp),
                        n: dims.n,
                        k: shard(dims.k, tp * tatp),
                    };
                    // Local work: all `tatp` rounds together (each round is
                    // one sub-output of the local rows x one weight block).
                    let local_flops = 3.0 * local.flops() * tatp as f64;
                    let per_round_flops = 3.0 * local.flops();
                    let eff = self.compute.gemm_efficiency(per_round_flops).max(1e-3);
                    let compute_time = local_flops / (self.compute.peak_flops * eff);
                    // HBM: input once, all weight blocks once, output once
                    // (backward re-touches: x3).
                    let mem_bytes = 3.0
                        * (local.input_bytes(dtype)
                            + local.weight_bytes(dtype) * tatp as f64
                            + local.output_bytes(dtype) * tatp as f64);
                    let mem_time =
                        self.compute.hbm_latency + mem_bytes / self.compute.hbm_bandwidth;
                    total +=
                        compute_time.max(mem_time) + tatp as f64 * self.compute.launch_overhead;
                }
                None => {
                    let divisor = (batch_div * spcp * tatp * tp) as f64;
                    let scaled = scale_elementwise(&op.kind, divisor);
                    let sub = temp_graph::op::Operator::new(op.name.clone(), scaled);
                    total += self.compute.training_latency(&sub, 1.0);
                }
            }
        }
        total / self.compute_factor()
    }

    /// Surviving-compute scaling: re-balanced partitions spread work in
    /// proportion to live cores, so aggregate compute slows by the mean
    /// surviving fraction. `1.0` healthy.
    fn compute_factor(&self) -> f64 {
        self.fault.compute_factor.max(1e-9)
    }

    /// Fails evaluations outright on a partitioned wafer: lockstep SPMD
    /// collectives cannot complete across disconnected components, so no
    /// configuration is feasible at any price.
    fn check_connected(&self) -> Result<()> {
        if self.fault.connected {
            Ok(())
        } else {
            Err(SolverError::Internal(
                "degraded wafer is disconnected: no feasible plan".into(),
            ))
        }
    }

    /// Evaluates one segment instance under this model's workload. See
    /// [`SegmentCost`] for the contract (closed-form, tier-independent,
    /// per-micro-batch units).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Internal`] when the configuration is invalid
    /// for this wafer's die count.
    pub fn evaluate_segment(
        &self,
        segment: &Segment,
        cfg: &HybridConfig,
        _engine: MappingEngine,
    ) -> Result<SegmentCost> {
        self.evaluate_segment_with(segment, cfg, &self.workload)
    }

    /// As [`WaferCostModel::evaluate_segment`] with an explicit workload
    /// (recompute escalation flows through here). The mapping engine does
    /// not enter the arithmetic — segment comm is priced with analytic
    /// ring collectives so the table is identical across engines and
    /// evaluation tiers.
    pub fn evaluate_segment_with(
        &self,
        segment: &Segment,
        cfg: &HybridConfig,
        workload: &Workload,
    ) -> Result<SegmentCost> {
        cfg.validate(self.wafer.die_count())
            .map_err(|e| SolverError::Internal(e.to_string()))?;
        self.check_connected()?;
        let recompute_factor = match (segment.kind, workload.recompute) {
            // Only block activations are recomputed; the embedding lookup
            // and the head's loss path run once either way.
            (
                SegmentKind::Block | SegmentKind::MoeBlock,
                temp_graph::workload::RecomputeMode::Full,
            ) => 4.0 / 3.0,
            _ => 1.0,
        };
        let compute_time = match segment.kind {
            // MoE blocks split their ops: the shared path (attention,
            // norms, router, dispatch/combine elementwise work) shards
            // like any dense segment, while the expert FFN shards its
            // routed tokens over the expert-parallel groups and streams
            // `E / ep` experts' weights per die.
            SegmentKind::MoeBlock => {
                let (expert_ops, shared_ops): (Vec<&Operator>, Vec<&Operator>) = segment
                    .ops
                    .iter()
                    .partition(|o| o.name.starts_with("expert-"));
                let shared: Vec<Operator> = shared_ops.into_iter().cloned().collect();
                self.ops_compute_time(&shared, cfg, workload)
                    + self.expert_compute_time(&expert_ops, cfg, workload)
            }
            _ => self.ops_compute_time(&segment.ops, cfg, workload),
        } * recompute_factor;
        let (collective_time, stream_time) = self.segment_comm(segment, cfg, workload);
        let memory_bytes = self.segment_footprint(segment, cfg, workload);
        let fits_memory = memory_bytes <= self.usable_hbm();
        Ok(SegmentCost {
            kind: segment.kind,
            time: collective_time + compute_time.max(stream_time),
            compute_time,
            collective_time,
            stream_time,
            memory_bytes,
            fits_memory,
        })
    }

    /// Per-die, per-micro-batch compute time of a MoE segment's expert
    /// FFN operators. Mirrors the dense GEMM arithmetic of
    /// [`WaferCostModel::ops_compute_time`] — total per-die FLOPs are
    /// independent of `ep` (the all-to-all rebalances tokens) — but the
    /// *granularity* is not:
    ///
    /// * each die runs one GEMM **per locally stored expert**
    ///   (`E / ep` of them), so low `ep` splits the token budget into
    ///   many thin GEMMs that under-fill the PE array and multiply launch
    ///   overhead — the same fine-chunk effect as TATP's Fig. 9 tail;
    /// * the HBM weight traffic covers all `E / ep` local experts — at
    ///   `ep = 1` every die streams the *whole* expert set per
    ///   micro-batch.
    fn expert_compute_time(
        &self,
        expert_ops: &[&Operator],
        cfg: &HybridConfig,
        workload: &Workload,
    ) -> f64 {
        let Some(moe) = self.model.moe else {
            return 0.0;
        };
        let ep = cfg.ep.max(1) as u64;
        let (dp, tp, spcp, tatp) = (
            cfg.dp as u64 * ep,
            cfg.tp as u64,
            (cfg.sp * cfg.cp) as u64,
            cfg.tatp as u64,
        );
        let batch_div = dp * micro_share(workload);
        let dtype = workload.compute_dtype;
        let experts_local = moe.num_experts.div_ceil(ep);
        let mut total = 0.0;
        for op in expert_ops {
            match op.kind.linear_dims() {
                Some(dims) => {
                    // Per-expert GEMM: the die's routed token rows split
                    // across its local experts.
                    let local = LinearDims {
                        b: shard(dims.b, batch_div),
                        m: shard(dims.m, spcp * tatp * experts_local),
                        n: dims.n,
                        k: shard(dims.k, tp * tatp),
                    };
                    let per_round_flops = 3.0 * local.flops();
                    let local_flops = per_round_flops * (tatp * experts_local) as f64;
                    let eff = self.compute.gemm_efficiency(per_round_flops).max(1e-3);
                    let compute_time = local_flops / (self.compute.peak_flops * eff);
                    // HBM: inputs/outputs for every local expert's token
                    // shard, weights for every local expert.
                    let mem_bytes = 3.0
                        * experts_local as f64
                        * (local.input_bytes(dtype)
                            + local.weight_bytes(dtype) * tatp as f64
                            + local.output_bytes(dtype) * tatp as f64);
                    let mem_time =
                        self.compute.hbm_latency + mem_bytes / self.compute.hbm_bandwidth;
                    total += compute_time.max(mem_time)
                        + (tatp * experts_local) as f64 * self.compute.launch_overhead;
                }
                None => {
                    let divisor = (batch_div * spcp * tatp * tp) as f64;
                    let scaled = scale_elementwise(&op.kind, divisor);
                    let sub = temp_graph::op::Operator::new(op.name.clone(), scaled);
                    total += self.compute.training_latency(&sub, 1.0);
                }
            }
        }
        total / self.compute_factor()
    }

    /// Analytic ring-collective time over a group of `n` dies (idealized
    /// one-hop neighbors, contention-free — the same formula the exact
    /// path's [`Collective::analytic_time`] uses), degraded-link inflation
    /// included.
    fn ring_time(&self, n: usize, kind: CollectiveKind, bytes: f64) -> f64 {
        if n < 2 || bytes <= 0.0 {
            return 0.0;
        }
        self.collective_raw_time(kind, n, bytes) * self.link_factor
    }

    /// Per-micro-batch exposed collective and TATP-stream time of one
    /// segment instance. Each segment kind has its own communication
    /// physics:
    ///
    /// * **Embedding** — vocab-parallel lookup needs an output all-reduce
    ///   over the `tp x tatp` table shards; gradients are row-sparse, so
    ///   the DP exchange moves only the touched rows (`tokens x H`), not
    ///   the `V x H` table.
    /// * **Block** — TP activation all-reduces, SP/CP gather/scatter
    ///   around the norms, the DP/FSDP gradient collectives amortized over
    ///   micro-batches and the TATP weight stream.
    /// * **Head** — vocab-parallel cross-entropy needs only two scalars
    ///   per token across the shard group, but the tied `V x H` weight
    ///   picks up *dense* gradients that must all-reduce across DP
    ///   replicas.
    fn segment_comm(
        &self,
        segment: &Segment,
        cfg: &HybridConfig,
        workload: &Workload,
    ) -> (f64, f64) {
        use CollectiveKind::{AllGather, AllReduce, ReduceScatter};
        // Dense-path collectives see EP folded into DP (the ep groups are
        // batch shards for everything except the expert path).
        let ep = cfg.ep.max(1);
        let (dp, tp, spcp, tatp) = (
            cfg.dp.max(1) * ep,
            cfg.tp.max(1),
            (cfg.sp * cfg.cp).max(1),
            cfg.tatp.max(1),
        );
        let e = workload.compute_dtype.bytes() as f64;
        let micro = workload.micro_batches.max(1) as f64;
        let tokens_local = (workload.micro_batch_size() as f64 / dp as f64).max(1.0)
            * (workload.seq_len as f64 / spcp as f64).max(1.0);
        let act_local = tokens_local * self.model.hidden as f64 * e;
        let vocab_shard = tp * tatp;
        let params_bytes = segment.params as f64 * e;
        let mut coll = 0.0;
        let mut stream = 0.0;
        match segment.kind {
            SegmentKind::Embedding => {
                // Forward output all-reduce over the vocab shards.
                coll += self.ring_time(vocab_shard, AllReduce, act_local);
                // Row-sparse gradient exchange, once per step.
                coll += self.ring_time(dp, AllReduce, act_local) / micro;
            }
            SegmentKind::Head => {
                // Vocab-parallel cross-entropy: max + sum, two FP32 scalars
                // per token across the shard group.
                coll += self.ring_time(vocab_shard, AllReduce, tokens_local * 8.0);
                // Tied-weight dense gradient all-reduce across DP replicas,
                // once per step over this rank's table shard.
                let table_shard =
                    self.model.hidden as f64 * self.model.vocab as f64 * e / vocab_shard as f64;
                coll += self.ring_time(dp, AllReduce, table_shard) / micro;
            }
            SegmentKind::Block => {
                // TP: two activation all-reduces forward, two backward.
                coll += 4.0 * self.ring_time(tp, AllReduce, act_local);
                // SP/CP: gather/scatter around the norm path, fwd + bwd.
                coll += 2.0
                    * (self.ring_time(spcp, AllGather, act_local)
                        + self.ring_time(spcp, ReduceScatter, act_local));
                // DP/FSDP parameter collectives amortized per micro-batch.
                if cfg.fsdp {
                    coll += self.ring_time(dp, AllGather, params_bytes)
                        + self.ring_time(dp, ReduceScatter, params_bytes) / micro;
                } else {
                    coll += self.ring_time(dp, AllReduce, params_bytes) / micro;
                }
                // TATP weight stream (same per-round pricing as the exact
                // path, with one stage per layer).
                if tatp > 1 {
                    let chunk = params_bytes / (tp * tatp * tatp) as f64;
                    stream = tatp as f64 * self.stream_round_time(chunk);
                }
            }
            SegmentKind::MoeBlock => {
                let Some(moe) = self.model.moe else {
                    return (0.0, 0.0);
                };
                let attn_params_bytes = self.model.attn_params_per_layer() as f64 * e;
                let expert_params_bytes = moe.expert_params(self.model.hidden) as f64 * e;
                // Shared attention path: same TP/SP collectives as a dense
                // block (EP already folded into the dp-sharded act_local).
                coll += 4.0 * self.ring_time(tp, AllReduce, act_local);
                coll += 2.0
                    * (self.ring_time(spcp, AllGather, act_local)
                        + self.ring_time(spcp, ReduceScatter, act_local));
                // All-to-all dispatch + combine over the expert-parallel
                // groups, forward and backward (4 passes), each moving
                // this rank's routed token copies. The capacity factor is
                // the pace term: the fullest group carries `cf x` the mean
                // payload, and the collective finishes with it.
                if ep > 1 {
                    let payload = act_local * moe.top_k as f64;
                    coll += 4.0 * moe.capacity_factor * self.all_to_all_time(ep, payload);
                }
                // Gradient sync: attention grads replicate across the full
                // dp x ep batch dimension like a dense block's; each
                // expert shard only syncs across the `dp` replicas inside
                // its expert-parallel group (`1/ep` of the expert
                // weights). Under FSDP the expert states additionally
                // shard over those replicas — the memory verdict credits
                // that, so the comm model must charge the matching
                // per-step weight all-gather and gradient reduce-scatter,
                // exactly like the attention path above.
                let group_dp = cfg.dp.max(1);
                let expert_shard_bytes = expert_params_bytes / ep as f64;
                if cfg.fsdp {
                    coll += self.ring_time(dp, AllGather, attn_params_bytes)
                        + self.ring_time(dp, ReduceScatter, attn_params_bytes) / micro;
                    coll += self.ring_time(group_dp, AllGather, expert_shard_bytes)
                        + self.ring_time(group_dp, ReduceScatter, expert_shard_bytes) / micro;
                } else {
                    coll += self.ring_time(dp, AllReduce, attn_params_bytes) / micro;
                    coll += self.ring_time(group_dp, AllReduce, expert_shard_bytes) / micro;
                }
                // TATP streams the attention weights exactly like a dense
                // block (expert weights stay put — tokens travel instead).
                if tatp > 1 {
                    let chunk = attn_params_bytes / (tp * tatp * tatp) as f64;
                    stream = tatp as f64 * self.stream_round_time(chunk);
                }
            }
        }
        (coll, stream)
    }

    /// Analytic all-to-all time over the `ep` expert-parallel group
    /// (contention-free, one-hop logical neighbors — the
    /// [`CollectiveKind::AllToAll`] closed form, kept consistent with the
    /// mesh-simulated collective by `temp-sim`'s contention check).
    fn all_to_all_time(&self, ep: usize, bytes: f64) -> f64 {
        if ep < 2 || bytes <= 0.0 {
            return 0.0;
        }
        self.collective_raw_time(CollectiveKind::AllToAll, ep, bytes) * self.link_factor
    }

    /// One TATP stream round moving `chunk` bytes per direction — the
    /// single source of the per-round pricing for both the exact
    /// per-layer path and the closed-form segment evaluator (they must
    /// agree or the uniform-chain identity breaks).
    fn stream_round_time(&self, chunk: f64) -> f64 {
        (self.wafer.d2d.latency
            + 0.5 * STREAM_WAVE_MULTIPLICITY * chunk / self.wafer.d2d.effective_bandwidth(chunk))
            * self.link_factor
    }

    /// The head's transient logits shard per die:
    /// `tokens_local x V / vocab_shard` bytes, alive while the loss is
    /// computed. Charged both in the per-segment footprint and in the
    /// whole-model memory verdict.
    fn logits_transient_bytes(&self, cfg: &HybridConfig, workload: &Workload) -> f64 {
        let (dp, tp, spcp, tatp) = (
            (cfg.dp * cfg.ep.max(1)).max(1) as f64,
            cfg.tp.max(1) as f64,
            (cfg.sp * cfg.cp).max(1) as f64,
            cfg.tatp.max(1) as f64,
        );
        let tokens_local = (workload.micro_batch_size() as f64 / dp).max(1.0)
            * (workload.seq_len as f64 / spcp).max(1.0);
        tokens_local * self.model.vocab as f64 * workload.compute_dtype.bytes() as f64 / (tp * tatp)
    }

    /// Per-die bytes attributable to one segment instance: sharded
    /// parameter states plus sharded activations (and the head's transient
    /// logits shard). A necessary-condition footprint — whole-chain
    /// feasibility stays with the whole-model verdict in
    /// [`WaferCostModel::evaluate_with`] ([`per_die_footprint`] plus the
    /// end-segment transients).
    fn segment_footprint(&self, segment: &Segment, cfg: &HybridConfig, workload: &Workload) -> f64 {
        let ep = cfg.ep.max(1) as f64;
        let (dp, tp, spcp, tatp) = (
            cfg.dp.max(1) as f64 * ep,
            cfg.tp.max(1) as f64,
            (cfg.sp * cfg.cp).max(1) as f64,
            cfg.tatp.max(1) as f64,
        );
        let param_shard = tp * tatp * if cfg.fsdp { dp } else { 1.0 };
        let params_state = match (segment.kind, self.model.moe) {
            // Expert weights shard over the expert-parallel groups on top
            // of TP/TATP(/FSDP); the shared attention path replicates like
            // a dense block's. Unlike the dense rows — whose feasibility
            // the exact whole-model verdict owns — the MoE row *is* the
            // solver's only memory signal for expert placement, so it
            // charges the whole run: all `count` MoE layers' expert shards
            // are co-resident on the same dies. At `ep = 1` that is the
            // entire expert set of the model.
            (SegmentKind::MoeBlock, Some(moe)) => {
                let attn = self.model.attn_params_per_layer() as f64;
                let experts = moe.expert_params(self.model.hidden) as f64;
                // Experts shard over ep x TP/TATP, and over the group's
                // dp replicas under FSDP.
                let expert_shard =
                    tp * tatp * ep * if cfg.fsdp { cfg.dp.max(1) as f64 } else { 1.0 };
                segment.count as f64
                    * (attn / param_shard + experts / expert_shard)
                    * workload.bytes_per_param()
            }
            _ => segment.params as f64 * workload.bytes_per_param() / param_shard,
        };
        let act = match segment.kind {
            SegmentKind::Block | SegmentKind::MoeBlock => {
                let dense = workload.activation_bytes_per_layer(&self.model) / (dp * spcp * tatp);
                // Routed expert copies (kept for backward unless full
                // recompute drops everything) shard over `ep` too.
                let expert = match (segment.kind, self.model.moe, workload.recompute) {
                    (
                        SegmentKind::MoeBlock,
                        Some(moe),
                        temp_graph::workload::RecomputeMode::Selective
                        | temp_graph::workload::RecomputeMode::None,
                    ) => {
                        // `dp` already folds the ep groups in.
                        workload.micro_batch_size() as f64
                            * workload.seq_len as f64
                            * moe.routed_activation_elems_per_token(self.model.hidden)
                            * workload.compute_dtype.bytes() as f64
                            / (dp * spcp * tatp)
                    }
                    _ => 0.0,
                };
                dense + expert
            }
            _ => segment.activation_bytes / (dp * spcp * tatp),
        };
        let extra = match segment.kind {
            SegmentKind::Head => self.logits_transient_bytes(cfg, workload),
            _ => 0.0,
        };
        params_state + act + extra
    }
}

/// Mean concurrent waves per directed link per TATP stream round: ~1 with
/// the occasional 3-wave peak (see
/// `TatpOrchestration::peak_link_multiplicity`), averaging out to ~1.5
/// over a stage.
const STREAM_WAVE_MULTIPLICITY: f64 = 1.5;

/// Micro-batching divides the batch dimension before DP does.
fn micro_share(workload: &Workload) -> u64 {
    workload.micro_batches.max(1)
}

/// Stable engine encoding for surrogate features (the surrogate crate
/// does not depend on `temp-mapping`).
pub(crate) fn engine_code(engine: MappingEngine) -> u8 {
    match engine {
        MappingEngine::SMap => 0,
        MappingEngine::GMap => 1,
        MappingEngine::Tcme => 2,
    }
}

fn shard(v: u64, by: u64) -> u64 {
    (v / by.max(1)).max(1)
}

fn scale_elementwise(kind: &OpKind, divisor: f64) -> OpKind {
    let d = |v: u64| -> u64 { ((v as f64 / divisor).ceil() as u64).max(1) };
    match kind {
        OpKind::Softmax { rows, cols } => OpKind::Softmax {
            rows: d(*rows),
            cols: *cols,
        },
        OpKind::LayerNorm { tokens, hidden } => OpKind::LayerNorm {
            tokens: d(*tokens),
            hidden: *hidden,
        },
        OpKind::Activation { elems } => OpKind::Activation { elems: d(*elems) },
        OpKind::Residual { elems } => OpKind::Residual { elems: d(*elems) },
        OpKind::Embedding {
            tokens,
            hidden,
            vocab,
        } => OpKind::Embedding {
            tokens: d(*tokens),
            hidden: *hidden,
            vocab: *vocab,
        },
        other => *other,
    }
}

/// Convenience: the streamed sub-tensor bytes of the dominant linear layer
/// (used by Fig. 9's sweet-spot analysis).
pub fn dominant_stream_chunk(model: &ModelConfig, workload: &Workload, cfg: &HybridConfig) -> f64 {
    let dims = LinearDims::new(
        workload.micro_batch_size() / cfg.dp.max(1) as u64,
        workload.seq_len / (cfg.sp * cfg.cp).max(1) as u64,
        model.hidden,
        model.ffn_hidden / cfg.tp.max(1) as u64,
    );
    choose_stream(&dims, workload.compute_dtype, cfg.tatp.max(1)).sub_tensor_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;
    use temp_graph::workload::RecomputeMode;

    fn model_6_7b() -> WaferCostModel {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        WaferCostModel::new(WaferConfig::hpca(), model, workload)
    }

    #[test]
    fn evaluate_produces_positive_times() {
        let m = model_6_7b();
        let r = m
            .evaluate(&HybridConfig::tuple(2, 2, 1, 8), MappingEngine::Tcme)
            .unwrap();
        assert!(r.step_time > 0.0);
        assert!(r.compute_time > 0.0);
        assert!(r.throughput > 0.0);
        assert!(r.power > 0.0);
        assert!(r.power_efficiency > 0.0);
        assert!(r.contention_factor >= 1.0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let m = model_6_7b();
        let bad = HybridConfig::tuple(2, 2, 1, 4); // product 16 != 32
        assert!(m.evaluate(&bad, MappingEngine::Tcme).is_err());
    }

    #[test]
    fn tatp_uses_less_memory_than_megatron_tp() {
        let m = model_6_7b();
        let mega = m
            .evaluate(&HybridConfig::tuple(4, 8, 1, 1), MappingEngine::SMap)
            .unwrap();
        let tatp = m
            .evaluate(&HybridConfig::tuple(4, 1, 1, 8), MappingEngine::Tcme)
            .unwrap();
        assert!(
            tatp.memory.total() < mega.memory.total(),
            "TATP {:.2e} vs Megatron {:.2e}",
            tatp.memory.total(),
            mega.memory.total()
        );
    }

    #[test]
    fn tcme_outperforms_smap_on_step_time() {
        let m = model_6_7b();
        let cfg = HybridConfig {
            dp: 4,
            fsdp: true,
            tatp: 8,
            ..Default::default()
        };
        let smap = m.evaluate(&cfg, MappingEngine::SMap).unwrap();
        let tcme = m.evaluate(&cfg, MappingEngine::Tcme).unwrap();
        assert!(
            tcme.step_time <= smap.step_time * 1.001,
            "tcme {} vs smap {}",
            tcme.step_time,
            smap.step_time
        );
    }

    #[test]
    fn stream_overlaps_with_compute() {
        let m = model_6_7b();
        let r = m
            .evaluate(&HybridConfig::tuple(1, 1, 1, 32), MappingEngine::Tcme)
            .unwrap();
        // The exposed stream must be (much) smaller than the raw stream.
        assert!(r.exposed_stream_time <= r.stream_time);
    }

    #[test]
    fn full_recompute_costs_time_saves_memory() {
        let model = ModelZoo::gpt3_175b();
        let base = Workload::for_model(&model);
        let m = WaferCostModel::new(WaferConfig::hpca(), model, base.clone());
        let cfg = HybridConfig::tuple(1, 2, 2, 8);
        let sel = m.evaluate_with(&cfg, MappingEngine::Tcme, &base).unwrap();
        let full = m
            .evaluate_with(
                &cfg,
                MappingEngine::Tcme,
                &base.with_recompute(RecomputeMode::Full),
            )
            .unwrap();
        assert!(full.memory.activations < sel.memory.activations);
        assert!(full.step_time > sel.step_time);
    }

    #[test]
    fn pipeline_adds_bubbles() {
        let model = ModelZoo::gpt3_175b();
        let w = Workload::for_model(&model);
        let m = WaferCostModel::new(WaferConfig::hpca(), model, w);
        let flat = m
            .evaluate(&HybridConfig::tuple(1, 2, 2, 8), MappingEngine::Tcme)
            .unwrap();
        let piped = m
            .evaluate(
                &HybridConfig {
                    pp: 4,
                    tp: 2,
                    sp: 2,
                    tatp: 8,
                    ..Default::default()
                },
                MappingEngine::Tcme,
            )
            .unwrap();
        assert_eq!(flat.bubble_time, 0.0);
        assert!(piped.bubble_time > 0.0);
    }

    #[test]
    fn whole_model_report_prices_the_end_segments() {
        let m = model_6_7b();
        let r = m
            .evaluate(&HybridConfig::tuple(2, 2, 1, 8), MappingEngine::Tcme)
            .unwrap();
        assert!(r.embedding_time > 0.0);
        assert!(r.head_time > 0.0);
        assert!(r.block_time() > 0.0);
        assert!(
            (r.block_time() + r.embedding_time + r.head_time - r.step_time).abs()
                <= 1e-12 * r.step_time
        );
        // The end segments are a small tax on a 32-layer model, not the
        // dominant term.
        assert!(r.embedding_time + r.head_time < 0.2 * r.step_time, "{r:?}");
    }

    #[test]
    fn segment_costs_reflect_their_physics() {
        let m = model_6_7b();
        let chain = temp_graph::segment::SegmentChain::for_model(m.model(), m.workload());
        let emb = chain
            .find(temp_graph::segment::SegmentKind::Embedding)
            .unwrap();
        let head = chain.find(temp_graph::segment::SegmentKind::Head).unwrap();
        let block = chain.find(temp_graph::segment::SegmentKind::Block).unwrap();

        // Embedding: sharding the vocab costs an output all-reduce that a
        // pure sequence split avoids entirely.
        let vocab_sharded = HybridConfig::tuple(2, 1, 1, 16);
        let seq_split = HybridConfig::tuple(1, 1, 32, 1);
        let e_vocab = m
            .evaluate_segment(emb, &vocab_sharded, MappingEngine::Tcme)
            .unwrap();
        let e_seq = m
            .evaluate_segment(emb, &seq_split, MappingEngine::Tcme)
            .unwrap();
        assert_eq!(e_seq.collective_time, 0.0, "{e_seq:?}");
        assert!(e_vocab.collective_time > 0.0, "{e_vocab:?}");
        assert!(e_seq.time < e_vocab.time);

        // Head: the dense tied-weight gradient all-reduce punishes wide DP
        // replication relative to vocab sharding.
        let dp_wide = HybridConfig::tuple(32, 1, 1, 1);
        let h_dp = m
            .evaluate_segment(head, &dp_wide, MappingEngine::Tcme)
            .unwrap();
        let h_vocab = m
            .evaluate_segment(head, &vocab_sharded, MappingEngine::Tcme)
            .unwrap();
        assert!(h_dp.collective_time > h_vocab.collective_time);

        // All three kinds produce sane, feasible costs on a mid config.
        for seg in [emb, block, head] {
            let c = m
                .evaluate_segment(seg, &HybridConfig::tuple(2, 2, 1, 8), MappingEngine::Tcme)
                .unwrap();
            assert!(c.time > 0.0, "{c:?}");
            assert!(c.fits_memory, "{c:?}");
            assert_eq!(c.kind, seg.kind);
        }

        // Invalid configurations are rejected, not mis-costed.
        let bad = HybridConfig::tuple(2, 2, 1, 4); // product 16 != 32
        assert!(m.evaluate_segment(emb, &bad, MappingEngine::Tcme).is_err());
    }

    #[test]
    fn healthy_fault_map_is_the_identity_fingerprint_included() {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        let wafer = WaferConfig::hpca();
        let healthy = FaultMap::healthy(&wafer.mesh());
        let base = WaferCostModel::new(wafer.clone(), model.clone(), workload.clone());
        let faulted = WaferCostModel::with_fault_map(wafer, model, workload, &healthy);
        assert!(!faulted.is_degraded());
        assert_eq!(faulted.fingerprint(), base.fingerprint());
        assert_eq!(faulted.usable_hbm(), base.wafer().hbm.capacity);
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let a = base.evaluate(&cfg, MappingEngine::Tcme).unwrap();
        let b = faulted.evaluate(&cfg, MappingEngine::Tcme).unwrap();
        assert_eq!(a, b, "healthy map must price bit-for-bit identically");
    }

    #[test]
    fn link_faults_inflate_link_time_but_not_compute() {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        let wafer = WaferConfig::hpca();
        let faults = FaultMap::inject_link_faults(&wafer.mesh(), 0.1, 11);
        let base = WaferCostModel::new(wafer.clone(), model.clone(), workload.clone());
        let degraded = base.derated(&faults);
        assert!(degraded.is_degraded());
        assert_ne!(degraded.fingerprint(), base.fingerprint());
        // Memory and compute are untouched by pure link faults.
        assert_eq!(degraded.usable_hbm(), base.wafer().hbm.capacity);
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let h = base.evaluate(&cfg, MappingEngine::Tcme).unwrap();
        let d = degraded.evaluate(&cfg, MappingEngine::Tcme).unwrap();
        assert_eq!(d.compute_time, h.compute_time);
        assert!(
            d.collective_time > h.collective_time,
            "rerouted collectives must cost more: {} vs {}",
            d.collective_time,
            h.collective_time
        );
        assert!(d.step_time > h.step_time);
    }

    #[test]
    fn core_faults_slow_compute_and_shrink_usable_memory() {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        let wafer = WaferConfig::hpca();
        let faults = FaultMap::inject_core_faults(&wafer.mesh(), 0.25, 7);
        let base = WaferCostModel::new(wafer.clone(), model.clone(), workload.clone());
        let degraded = base.derated(&faults);
        assert!(degraded.usable_hbm() < base.wafer().hbm.capacity);
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        let h = base.evaluate(&cfg, MappingEngine::Tcme).unwrap();
        let d = degraded.evaluate(&cfg, MappingEngine::Tcme).unwrap();
        assert!(
            d.compute_time > h.compute_time,
            "derated cores must slow compute"
        );
        // Graceful: 25% dead cores cost well under 2x.
        assert!(
            d.step_time < 2.0 * h.step_time,
            "{} vs {}",
            d.step_time,
            h.step_time
        );
    }

    #[test]
    fn disconnected_fabric_is_infeasible() {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        let wafer = WaferConfig::hpca();
        let faults = FaultMap::inject_link_faults(&wafer.mesh(), 1.0, 3);
        assert!(!faults.is_connected(&wafer.mesh()));
        let m = WaferCostModel::with_fault_map(wafer, model, workload, &faults);
        let cfg = HybridConfig::tuple(2, 2, 1, 8);
        assert!(m.evaluate(&cfg, MappingEngine::Tcme).is_err());
        let chain = m.chain().clone();
        let seg = chain.find(temp_graph::segment::SegmentKind::Block).unwrap();
        assert!(m.evaluate_segment(seg, &cfg, MappingEngine::Tcme).is_err());
    }

    #[test]
    fn sweet_spot_exists_for_tatp_degree() {
        // Fig. 9: throughput peaks at a moderate TATP degree; N=32 is not
        // better than N=8 or 16 per-layer once granularity effects bite.
        let m = model_6_7b();
        let mut times = Vec::new();
        for tatp in [2usize, 4, 8, 16, 32] {
            let dp = 32 / tatp;
            let r = m
                .evaluate(&HybridConfig::tuple(dp, 1, 1, tatp), MappingEngine::Tcme)
                .unwrap();
            times.push((tatp, r.step_time));
        }
        let best = times
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert!((4..=16).contains(&best), "sweet spot at {best}: {times:?}");
    }
}
