//! The wafer-centric cost model (Eqs. 2–4 of the paper).
//!
//! For each Transformer layer under a hybrid configuration:
//!
//! ```text
//! T_layer = Collective(cfg) + max(Comp(cfg), P2P-stream(cfg))      (Eq. 2)
//! ```
//!
//! collectives (TP/SP/CP/DP/FSDP rings) are exposed, the TATP stream
//! overlaps with compute. Per step:
//!
//! ```text
//! T_step = micro_batches / pp-overlap x layers x T_layer + bubbles (Eq. 4)
//! ```
//!
//! Alongside time, the model produces per-die memory (OOM detection),
//! energy (compute / D2D / HBM), throughput and power efficiency — every
//! quantity the evaluation figures consume.

use serde::{Deserialize, Serialize};

use temp_graph::models::ModelConfig;
use temp_graph::op::OpKind;
use temp_graph::tensor::LinearDims;
use temp_graph::transformer::TransformerBuilder;
use temp_graph::workload::Workload;
use temp_mapping::engines::{map_hybrid, MappingEngine};
use temp_parallel::memory::{per_die_footprint, FootprintBreakdown};
use temp_parallel::selective::choose_stream;
use temp_parallel::strategy::HybridConfig;
use temp_sim::compute::ComputeModel;
use temp_sim::power::EnergyLedger;
use temp_wsc::config::WaferConfig;

use crate::{Result, SolverError};

/// Full cost evaluation of one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Configuration evaluated.
    pub config: HybridConfig,
    /// Mapping engine used.
    pub engine: MappingEngine,
    /// One optimizer-step wall-clock time in seconds.
    pub step_time: f64,
    /// Critical-path compute time per step.
    pub compute_time: f64,
    /// Exposed collective communication time per step.
    pub collective_time: f64,
    /// TATP stream time per step (overlapped against compute).
    pub stream_time: f64,
    /// Stream time *not* hidden behind compute.
    pub exposed_stream_time: f64,
    /// Pipeline bubble time per step.
    pub bubble_time: f64,
    /// Per-die memory footprint.
    pub memory: FootprintBreakdown,
    /// Whether the footprint fits per-die HBM.
    pub fits_memory: bool,
    /// Energy per step.
    pub energy: EnergyLedger,
    /// Training throughput in tokens/s.
    pub throughput: f64,
    /// Average power in watts.
    pub power: f64,
    /// Throughput per watt (tokens/s/W).
    pub power_efficiency: f64,
    /// Contention inflation factor of the mapped collectives.
    pub contention_factor: f64,
}

impl CostReport {
    /// Fraction of step time spent on exposed communication.
    pub fn comm_fraction(&self) -> f64 {
        if self.step_time <= 0.0 {
            return 0.0;
        }
        (self.collective_time + self.exposed_stream_time + self.bubble_time) / self.step_time
    }
}

/// The analytic wafer cost model.
#[derive(Debug, Clone)]
pub struct WaferCostModel {
    wafer: WaferConfig,
    model: ModelConfig,
    workload: Workload,
    compute: ComputeModel,
}

impl WaferCostModel {
    /// Creates a cost model for a (wafer, model, workload) triple.
    pub fn new(wafer: WaferConfig, model: ModelConfig, workload: Workload) -> Self {
        let compute = ComputeModel::new(&wafer);
        WaferCostModel {
            wafer,
            model,
            workload,
            compute,
        }
    }

    /// The wafer configuration.
    pub fn wafer(&self) -> &WaferConfig {
        &self.wafer
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Cheap analytic surrogate features of one evaluation key — the
    /// tier-1 input of the two-tier search. Closed-form arithmetic only:
    /// no layout, no routing, no contention simulation, so a whole
    /// candidate batch can be featurized in microseconds.
    pub fn feature_vector(
        &self,
        cfg: &HybridConfig,
        engine: MappingEngine,
        mode: temp_graph::workload::RecomputeMode,
    ) -> Vec<f64> {
        temp_surrogate::config_features(
            &self.model,
            &self.workload,
            &self.wafer,
            cfg,
            engine_code(engine),
            mode,
        )
    }

    /// Evaluates one configuration end to end (Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Internal`] when the configuration cannot be
    /// laid out on the wafer.
    pub fn evaluate(&self, cfg: &HybridConfig, engine: MappingEngine) -> Result<CostReport> {
        self.evaluate_with(cfg, engine, &self.workload)
    }

    /// As [`WaferCostModel::evaluate`] with an explicit workload (planners
    /// escalate recompute modes through this).
    pub fn evaluate_with(
        &self,
        cfg: &HybridConfig,
        engine: MappingEngine,
        workload: &Workload,
    ) -> Result<CostReport> {
        cfg.validate(self.wafer.die_count())
            .map_err(|e| SolverError::Internal(e.to_string()))?;

        // ---- Memory ---------------------------------------------------------
        let memory = per_die_footprint(&self.model, workload, cfg);
        let fits_memory = memory.fits(self.wafer.hbm.capacity);

        // ---- Per-layer compute (per micro-batch) ---------------------------
        let comp_layer = self.layer_compute_time(cfg, workload);
        let recompute_factor = match workload.recompute {
            temp_graph::workload::RecomputeMode::Full => 4.0 / 3.0,
            _ => 1.0,
        };
        let comp_layer = comp_layer * recompute_factor;

        // ---- Communication ---------------------------------------------------
        let mapping = map_hybrid(engine, &self.wafer, &self.model, workload, cfg)
            .map_err(|e| SolverError::Internal(e.to_string()))?;
        let contention_factor = mapping.contention_factor();
        // Split: stream ops overlap, everything else is exposed.
        // Groups of the same (source, pattern) run concurrently on disjoint
        // die sets: take the max over groups, then sum distinct op classes.
        let mut coll_by_class: std::collections::HashMap<(ParallelKindKey, u8), f64> =
            std::collections::HashMap::new();
        let mut stream_layer: f64 = 0.0;
        for op in &mapping.comm_ops {
            match op.pattern {
                temp_mapping::comm::CommPattern::P2pStream => {
                    // Per-round pricing: the stream runs `tatp` rounds per
                    // stage; each round moves one chunk per direction with
                    // up to ~3 concurrent waves per link (measured from the
                    // orchestration) and granularity-dependent effective
                    // bandwidth — fine chunks at very high degrees
                    // under-utilize the D2D links (§III-B), producing the
                    // Fig. 9 tail. The two directions run on disjoint
                    // directed links (the 0.5 factor).
                    // Mean waves per directed link per round is ~1; the
                    // occasional 3-wave peak (see
                    // TatpOrchestration::peak_link_multiplicity) averages
                    // out to ~1.5 over a stage.
                    const STREAM_WAVE_MULTIPLICITY: f64 = 1.5;
                    let t_deg = cfg.tatp.max(1) as f64;
                    let chunk = op.bytes / t_deg;
                    let per_round = self.wafer.d2d.latency
                        + 0.5 * STREAM_WAVE_MULTIPLICITY * chunk
                            / self.wafer.d2d.effective_bandwidth(chunk);
                    let t = op.per_layer_count * t_deg * per_round;
                    stream_layer = stream_layer.max(t);
                }
                _ => {
                    let t = op.collective().analytic_time(&self.wafer.d2d)
                        * op.per_layer_count
                        * contention_factor;
                    let key = (parallel_kind_key(op.source), pattern_key(op.pattern));
                    let entry = coll_by_class.entry(key).or_insert(0.0);
                    *entry = entry.max(t);
                }
            }
        }
        let coll_layer: f64 = coll_by_class.values().sum();

        // ---- Eq. 2 per layer, Eq. 4 per step --------------------------------
        let layer_time = coll_layer + comp_layer.max(stream_layer);
        let exposed_stream = (stream_layer - comp_layer).max(0.0)
            * self.model.layers as f64
            * workload.micro_batches as f64;
        let local_layers = (self.model.layers as f64 / cfg.pp as f64).max(1.0);
        let stage_time = local_layers * layer_time;
        let micro = workload.micro_batches as f64;
        // 1F1B pipeline: total = (micro + pp - 1) stages; bubbles = (pp-1).
        let pp = cfg.pp as f64;
        let step_body = micro * stage_time;
        let bubble_time = (pp - 1.0) * stage_time;
        let step_time = step_body + bubble_time;

        // ---- Energy ----------------------------------------------------------
        let mut energy = EnergyLedger::new();
        let step_flops = workload.step_flops(&self.model) * recompute_factor;
        energy.add_compute(step_flops, &self.wafer);
        // HBM traffic: parameter states (read+write) + activations per step.
        let hbm_bytes = 3.0 * workload.param_state_bytes(&self.model)
            + 2.0 * workload.activation_bytes_total(&self.model) * micro;
        energy.add_hbm(hbm_bytes, &self.wafer);
        // D2D: per-layer comm volumes x layers x micro-batches (collective
        // rounds already included in volume), charged at measured mean hops.
        let comm_bytes_layer: f64 = mapping
            .comm_ops
            .iter()
            .map(|op| op.bytes * op.per_layer_count * op.group.len().max(1) as f64)
            .sum();
        energy.add_d2d(
            comm_bytes_layer * self.model.layers as f64 * micro,
            1.2,
            &self.wafer,
        );

        // ---- Throughput / power ----------------------------------------------
        let tokens = workload.tokens_per_step() as f64;
        let throughput = if step_time > 0.0 {
            tokens / step_time
        } else {
            0.0
        };
        // Static/leakage floor: always-on clock trees, SRAM retention and
        // PHYs draw ~15% of the wafer's peak power regardless of load. This
        // is what makes *throughput per watt* reward faster plans (Fig. 14)
        // rather than only lower energy per token.
        let static_power = 0.15 * self.wafer.die.peak_power() * self.wafer.die_count() as f64;
        let power = energy.average_power(step_time) + static_power;
        let power_efficiency = if power > 0.0 { throughput / power } else { 0.0 };

        Ok(CostReport {
            config: *cfg,
            engine,
            step_time,
            compute_time: comp_layer * local_layers * micro * pp.max(1.0) / pp,
            collective_time: coll_layer * local_layers * micro,
            stream_time: stream_layer * local_layers * micro,
            exposed_stream_time: exposed_stream / pp,
            bubble_time,
            memory,
            fits_memory,
            energy,
            throughput,
            power,
            power_efficiency,
            contention_factor,
        })
    }

    /// Per-die, per-micro-batch compute time of one Transformer layer under
    /// a configuration, including TATP's round granularity effects.
    ///
    /// HBM traffic is charged once per operand per layer: the input shard
    /// stays SRAM-resident across TATP rounds and the streamed weight
    /// sub-blocks arrive over D2D, so round count affects only GEMM
    /// *efficiency* (smaller per-round tiles under-fill the PE array) and
    /// per-round launch overhead — the Fig. 9 diminishing-returns tail.
    pub fn layer_compute_time(&self, cfg: &HybridConfig, workload: &Workload) -> f64 {
        let block = TransformerBuilder::new(&self.model, workload).block();
        let (dp, tp, spcp, tatp) = (
            cfg.dp as u64,
            cfg.tp as u64,
            (cfg.sp * cfg.cp) as u64,
            cfg.tatp as u64,
        );
        let batch_div = dp * micro_share(workload);
        let dtype = workload.compute_dtype;
        let mut total = 0.0;
        for op in block.ops() {
            match op.kind.linear_dims() {
                Some(dims) => {
                    // Per-die shares: DP/micro on batch, SP/CP + TATP on
                    // rows, TP + TATP on columns.
                    let local = LinearDims {
                        b: shard(dims.b, batch_div),
                        m: shard(dims.m, spcp * tatp),
                        n: dims.n,
                        k: shard(dims.k, tp * tatp),
                    };
                    // Local work: all `tatp` rounds together (each round is
                    // one sub-output of the local rows x one weight block).
                    let local_flops = 3.0 * local.flops() * tatp as f64;
                    let per_round_flops = 3.0 * local.flops();
                    let eff = self.compute.gemm_efficiency(per_round_flops).max(1e-3);
                    let compute_time = local_flops / (self.compute.peak_flops * eff);
                    // HBM: input once, all weight blocks once, output once
                    // (backward re-touches: x3).
                    let mem_bytes = 3.0
                        * (local.input_bytes(dtype)
                            + local.weight_bytes(dtype) * tatp as f64
                            + local.output_bytes(dtype) * tatp as f64);
                    let mem_time =
                        self.compute.hbm_latency + mem_bytes / self.compute.hbm_bandwidth;
                    total +=
                        compute_time.max(mem_time) + tatp as f64 * self.compute.launch_overhead;
                }
                None => {
                    let divisor = (batch_div * spcp * tatp * tp) as f64;
                    let scaled = scale_elementwise(&op.kind, divisor);
                    let sub = temp_graph::op::Operator::new(op.name.clone(), scaled);
                    total += self.compute.training_latency(&sub, 1.0);
                }
            }
        }
        total
    }
}

/// Micro-batching divides the batch dimension before DP does.
fn micro_share(workload: &Workload) -> u64 {
    workload.micro_batches.max(1)
}

/// Stable engine encoding for surrogate features (the surrogate crate
/// does not depend on `temp-mapping`).
pub(crate) fn engine_code(engine: MappingEngine) -> u8 {
    match engine {
        MappingEngine::SMap => 0,
        MappingEngine::GMap => 1,
        MappingEngine::Tcme => 2,
    }
}

/// Hashable key for a strategy (ParallelKind lacks Ord; a small int does).
type ParallelKindKey = u8;

fn parallel_kind_key(kind: temp_parallel::strategy::ParallelKind) -> ParallelKindKey {
    use temp_parallel::strategy::ParallelKind::*;
    match kind {
        Dp => 0,
        Fsdp => 1,
        Tp => 2,
        Sp => 3,
        Cp => 4,
        Pp => 5,
        Tatp => 6,
    }
}

fn pattern_key(p: temp_mapping::comm::CommPattern) -> u8 {
    use temp_mapping::comm::CommPattern::*;
    match p {
        AllReduce => 0,
        AllGather => 1,
        ReduceScatter => 2,
        P2pStream => 3,
    }
}

fn shard(v: u64, by: u64) -> u64 {
    (v / by.max(1)).max(1)
}

fn scale_elementwise(kind: &OpKind, divisor: f64) -> OpKind {
    let d = |v: u64| -> u64 { ((v as f64 / divisor).ceil() as u64).max(1) };
    match kind {
        OpKind::Softmax { rows, cols } => OpKind::Softmax {
            rows: d(*rows),
            cols: *cols,
        },
        OpKind::LayerNorm { tokens, hidden } => OpKind::LayerNorm {
            tokens: d(*tokens),
            hidden: *hidden,
        },
        OpKind::Activation { elems } => OpKind::Activation { elems: d(*elems) },
        OpKind::Residual { elems } => OpKind::Residual { elems: d(*elems) },
        OpKind::Embedding {
            tokens,
            hidden,
            vocab,
        } => OpKind::Embedding {
            tokens: d(*tokens),
            hidden: *hidden,
            vocab: *vocab,
        },
        other => *other,
    }
}

/// Convenience: the streamed sub-tensor bytes of the dominant linear layer
/// (used by Fig. 9's sweet-spot analysis).
pub fn dominant_stream_chunk(model: &ModelConfig, workload: &Workload, cfg: &HybridConfig) -> f64 {
    let dims = LinearDims::new(
        workload.micro_batch_size() / cfg.dp.max(1) as u64,
        workload.seq_len / (cfg.sp * cfg.cp).max(1) as u64,
        model.hidden,
        model.ffn_hidden / cfg.tp.max(1) as u64,
    );
    choose_stream(&dims, workload.compute_dtype, cfg.tatp.max(1)).sub_tensor_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::ModelZoo;
    use temp_graph::workload::RecomputeMode;

    fn model_6_7b() -> WaferCostModel {
        let model = ModelZoo::gpt3_6_7b();
        let workload = Workload::for_model(&model);
        WaferCostModel::new(WaferConfig::hpca(), model, workload)
    }

    #[test]
    fn evaluate_produces_positive_times() {
        let m = model_6_7b();
        let r = m
            .evaluate(&HybridConfig::tuple(2, 2, 1, 8), MappingEngine::Tcme)
            .unwrap();
        assert!(r.step_time > 0.0);
        assert!(r.compute_time > 0.0);
        assert!(r.throughput > 0.0);
        assert!(r.power > 0.0);
        assert!(r.power_efficiency > 0.0);
        assert!(r.contention_factor >= 1.0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let m = model_6_7b();
        let bad = HybridConfig::tuple(2, 2, 1, 4); // product 16 != 32
        assert!(m.evaluate(&bad, MappingEngine::Tcme).is_err());
    }

    #[test]
    fn tatp_uses_less_memory_than_megatron_tp() {
        let m = model_6_7b();
        let mega = m
            .evaluate(&HybridConfig::tuple(4, 8, 1, 1), MappingEngine::SMap)
            .unwrap();
        let tatp = m
            .evaluate(&HybridConfig::tuple(4, 1, 1, 8), MappingEngine::Tcme)
            .unwrap();
        assert!(
            tatp.memory.total() < mega.memory.total(),
            "TATP {:.2e} vs Megatron {:.2e}",
            tatp.memory.total(),
            mega.memory.total()
        );
    }

    #[test]
    fn tcme_outperforms_smap_on_step_time() {
        let m = model_6_7b();
        let cfg = HybridConfig {
            dp: 4,
            fsdp: true,
            tatp: 8,
            ..Default::default()
        };
        let smap = m.evaluate(&cfg, MappingEngine::SMap).unwrap();
        let tcme = m.evaluate(&cfg, MappingEngine::Tcme).unwrap();
        assert!(
            tcme.step_time <= smap.step_time * 1.001,
            "tcme {} vs smap {}",
            tcme.step_time,
            smap.step_time
        );
    }

    #[test]
    fn stream_overlaps_with_compute() {
        let m = model_6_7b();
        let r = m
            .evaluate(&HybridConfig::tuple(1, 1, 1, 32), MappingEngine::Tcme)
            .unwrap();
        // The exposed stream must be (much) smaller than the raw stream.
        assert!(r.exposed_stream_time <= r.stream_time);
    }

    #[test]
    fn full_recompute_costs_time_saves_memory() {
        let model = ModelZoo::gpt3_175b();
        let base = Workload::for_model(&model);
        let m = WaferCostModel::new(WaferConfig::hpca(), model, base.clone());
        let cfg = HybridConfig::tuple(1, 2, 2, 8);
        let sel = m.evaluate_with(&cfg, MappingEngine::Tcme, &base).unwrap();
        let full = m
            .evaluate_with(
                &cfg,
                MappingEngine::Tcme,
                &base.with_recompute(RecomputeMode::Full),
            )
            .unwrap();
        assert!(full.memory.activations < sel.memory.activations);
        assert!(full.step_time > sel.step_time);
    }

    #[test]
    fn pipeline_adds_bubbles() {
        let model = ModelZoo::gpt3_175b();
        let w = Workload::for_model(&model);
        let m = WaferCostModel::new(WaferConfig::hpca(), model, w);
        let flat = m
            .evaluate(&HybridConfig::tuple(1, 2, 2, 8), MappingEngine::Tcme)
            .unwrap();
        let piped = m
            .evaluate(
                &HybridConfig {
                    pp: 4,
                    tp: 2,
                    sp: 2,
                    tatp: 8,
                    ..Default::default()
                },
                MappingEngine::Tcme,
            )
            .unwrap();
        assert_eq!(flat.bubble_time, 0.0);
        assert!(piped.bubble_time > 0.0);
    }

    #[test]
    fn sweet_spot_exists_for_tatp_degree() {
        // Fig. 9: throughput peaks at a moderate TATP degree; N=32 is not
        // better than N=8 or 16 per-layer once granularity effects bite.
        let m = model_6_7b();
        let mut times = Vec::new();
        for tatp in [2usize, 4, 8, 16, 32] {
            let dp = 32 / tatp;
            let r = m
                .evaluate(&HybridConfig::tuple(dp, 1, 1, tatp), MappingEngine::Tcme)
                .unwrap();
            times.push((tatp, r.step_time));
        }
        let best = times
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert!((4..=16).contains(&best), "sweet spot at {best}: {times:?}");
    }
}
