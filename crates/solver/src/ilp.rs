//! Exact baseline solver (the "ILP" of §VIII-H).
//!
//! Alpa-style ILP formulations assign a strategy to every operator subject
//! to chain-transition costs; exact solvers explore the product space. We
//! reproduce that search behaviour with an exhaustive branch-and-bound over
//! per-segment assignments *without* the graph partition — complexity
//! `O(candidates^segments)` — so the §VIII-H search-time comparison (DLS
//! 200x+ faster at scale) is measurable on real work.

/// Result of the exact solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Chosen candidate index per segment.
    pub choices: Vec<usize>,
    /// Total cost.
    pub cost: f64,
    /// Nodes expanded (search effort).
    pub nodes_expanded: usize,
}

/// Exhaustive branch-and-bound over the full assignment space.
///
/// Same inputs as [`crate::dp::solve_chain`] (ragged per-segment candidate
/// lists, segment-indexed transitions); same optimum, exponentially more
/// work.
pub fn solve_exact(
    segment_costs: &[Vec<f64>],
    transition: impl Fn(usize, usize, usize) -> f64 + Copy,
) -> IlpSolution {
    if segment_costs.is_empty() {
        return IlpSolution {
            choices: Vec::new(),
            cost: 0.0,
            nodes_expanded: 0,
        };
    }
    let mut best_cost = f64::INFINITY;
    let mut best_choices: Vec<usize> = Vec::new();
    let mut nodes = 0usize;
    let mut prefix: Vec<usize> = Vec::with_capacity(segment_costs.len());

    // The recursion threads the whole solver state explicitly; packing it
    // into a struct would only rename the seven arguments.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        segment_costs: &[Vec<f64>],
        transition: impl Fn(usize, usize, usize) -> f64 + Copy,
        acc: f64,
        prefix: &mut Vec<usize>,
        best_cost: &mut f64,
        best_choices: &mut Vec<usize>,
        nodes: &mut usize,
    ) {
        let s = prefix.len();
        if s == segment_costs.len() {
            if acc < *best_cost {
                *best_cost = acc;
                *best_choices = prefix.clone();
            }
            return;
        }
        for c in 0..segment_costs[s].len() {
            *nodes += 1;
            let t = prefix.last().map(|&p| transition(s, p, c)).unwrap_or(0.0);
            let cost = acc + segment_costs[s][c] + t;
            // Bound: costs are non-negative, prune dominated prefixes.
            if cost >= *best_cost {
                continue;
            }
            prefix.push(c);
            recurse(
                segment_costs,
                transition,
                cost,
                prefix,
                best_cost,
                best_choices,
                nodes,
            );
            prefix.pop();
        }
    }

    recurse(
        segment_costs,
        transition,
        0.0,
        &mut prefix,
        &mut best_cost,
        &mut best_choices,
        &mut nodes,
    );
    IlpSolution {
        choices: best_choices,
        cost: best_cost,
        nodes_expanded: nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::solve_chain;

    #[test]
    fn exact_matches_dp_optimum() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let segs = rng.gen_range(1..6usize);
            let ks: Vec<usize> = (0..segs).map(|_| rng.gen_range(1..4usize)).collect();
            let costs: Vec<Vec<f64>> = ks
                .iter()
                .map(|&k| (0..k).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let kmax = ks.iter().copied().max().unwrap();
            let tr: Vec<Vec<f64>> = (0..kmax)
                .map(|_| (0..kmax).map(|_| rng.gen_range(0.0..2.0)).collect())
                .collect();
            let dp = solve_chain(&costs, |_, a, b| tr[a][b]).unwrap();
            let exact = solve_exact(&costs, |_, a, b| tr[a][b]);
            assert!((dp.cost - exact.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn search_effort_grows_exponentially() {
        let costs_for = |segs: usize| -> Vec<Vec<f64>> {
            // Deliberately anti-pruning costs: decreasing per index so the
            // first path found is the worst.
            (0..segs).map(|_| vec![3.0, 2.0, 1.0]).collect()
        };
        let small = solve_exact(&costs_for(4), |_, _, _| 0.1);
        let large = solve_exact(&costs_for(8), |_, _, _| 0.1);
        assert!(
            large.nodes_expanded > 4 * small.nodes_expanded,
            "small {} vs large {}",
            small.nodes_expanded,
            large.nodes_expanded
        );
    }

    #[test]
    fn empty_instance_is_trivial() {
        let s = solve_exact(&[], |_, _, _| 0.0);
        assert_eq!(s.cost, 0.0);
        assert_eq!(s.nodes_expanded, 0);
    }
}
