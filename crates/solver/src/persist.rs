//! Text codecs for persisting solver caches across processes.
//!
//! The vendored `serde` is a no-op stub, so persistence is a hand-rolled
//! line format in the same spirit as the gate-predictor `to_text` /
//! `from_text` ("linreg v1 ..."): whitespace-separated fields, floats
//! written with `{:?}` (which round-trips `f64` exactly, including `inf`
//! and `NaN`), one record per line. The cost-table format lives on top of
//! these codecs in [`crate::search::SearchContext::export_cost_table`].
//!
//! Cache files are keyed by an FNV-1a fingerprint of the full
//! `(wafer, model, workload)` triple plus [`crate::cost::COST_MODEL_VERSION`],
//! so a cache written under a different die array, model shape, workload
//! or cost-model revision is rejected instead of silently poisoning the
//! warm start.

use temp_graph::segment::SegmentKind;
use temp_graph::workload::RecomputeMode;
use temp_mapping::engines::MappingEngine;
use temp_parallel::memory::FootprintBreakdown;
use temp_parallel::strategy::HybridConfig;
use temp_sim::collectives::CollectiveKind;
use temp_sim::power::EnergyLedger;

use crate::cost::{CostReport, SegmentCost};

/// 64-bit FNV-1a over arbitrary bytes — stable, dependency-free, and good
/// enough to key cache files (a collision merely merges two caches whose
/// keys then fail to overlap; correctness is preserved by the key match
/// on every entry).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub(crate) fn engine_code(engine: MappingEngine) -> u8 {
    match engine {
        MappingEngine::SMap => 0,
        MappingEngine::GMap => 1,
        MappingEngine::Tcme => 2,
    }
}

pub(crate) fn engine_from_code(code: u8) -> Result<MappingEngine, String> {
    match code {
        0 => Ok(MappingEngine::SMap),
        1 => Ok(MappingEngine::GMap),
        2 => Ok(MappingEngine::Tcme),
        other => Err(format!("unknown engine code {other}")),
    }
}

pub(crate) fn mode_code(mode: RecomputeMode) -> u8 {
    match mode {
        RecomputeMode::None => 0,
        RecomputeMode::Selective => 1,
        RecomputeMode::Full => 2,
    }
}

pub(crate) fn mode_from_code(code: u8) -> Result<RecomputeMode, String> {
    match code {
        0 => Ok(RecomputeMode::None),
        1 => Ok(RecomputeMode::Selective),
        2 => Ok(RecomputeMode::Full),
        other => Err(format!("unknown recompute code {other}")),
    }
}

pub(crate) fn kind_from_code(code: u8) -> Result<SegmentKind, String> {
    SegmentKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| format!("unknown segment kind code {code}"))
}

pub(crate) fn collective_code(kind: CollectiveKind) -> u8 {
    match kind {
        CollectiveKind::AllGather => 0,
        CollectiveKind::AllReduce => 1,
        CollectiveKind::ReduceScatter => 2,
        CollectiveKind::Broadcast => 3,
        CollectiveKind::AllToAll => 4,
        CollectiveKind::P2pShift => 5,
    }
}

pub(crate) fn collective_from_code(code: u8) -> Result<CollectiveKind, String> {
    match code {
        0 => Ok(CollectiveKind::AllGather),
        1 => Ok(CollectiveKind::AllReduce),
        2 => Ok(CollectiveKind::ReduceScatter),
        3 => Ok(CollectiveKind::Broadcast),
        4 => Ok(CollectiveKind::AllToAll),
        5 => Ok(CollectiveKind::P2pShift),
        other => Err(format!("unknown collective kind code {other}")),
    }
}

/// `dp fsdp01 tp sp cp tatp ep pp`.
pub(crate) fn encode_cfg(c: &HybridConfig) -> String {
    format!(
        "{} {} {} {} {} {} {} {}",
        c.dp, c.fsdp as u8, c.tp, c.sp, c.cp, c.tatp, c.ep, c.pp
    )
}

/// Shared field cursor for the decoders below.
pub(crate) struct Fields<'a> {
    iter: std::str::SplitWhitespace<'a>,
    line: &'a str,
}

impl<'a> Fields<'a> {
    pub(crate) fn new(line: &'a str) -> Self {
        Fields {
            iter: line.split_whitespace(),
            line,
        }
    }

    pub(crate) fn next(&mut self) -> Result<&'a str, String> {
        self.iter
            .next()
            .ok_or_else(|| format!("truncated record: {:?}", self.line))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        let s = self.next()?;
        s.parse().map_err(|_| format!("bad integer {s:?}"))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, String> {
        Ok(self.u64()? as usize)
    }

    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        let s = self.next()?;
        s.parse().map_err(|_| format!("bad float {s:?}"))
    }

    pub(crate) fn bool01(&mut self) -> Result<bool, String> {
        match self.next()? {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(format!("bad boolean {other:?}")),
        }
    }

    /// Whether the next field is the `-` marker for "evaluation failed"
    /// entries (consumes it when present).
    pub(crate) fn takes_none_marker(&mut self) -> bool {
        let mut peek = self.iter.clone();
        if peek.next() == Some("-") {
            self.iter = peek;
            true
        } else {
            false
        }
    }

    pub(crate) fn finish(mut self) -> Result<(), String> {
        match self.iter.next() {
            None => Ok(()),
            Some(extra) => Err(format!("trailing field {extra:?} in {:?}", self.line)),
        }
    }
}

pub(crate) fn decode_cfg(f: &mut Fields) -> Result<HybridConfig, String> {
    Ok(HybridConfig {
        dp: f.usize()?,
        fsdp: f.bool01()?,
        tp: f.usize()?,
        sp: f.usize()?,
        cp: f.usize()?,
        tatp: f.usize()?,
        ep: f.usize()?,
        pp: f.usize()?,
    })
}

/// The 22 value fields of a [`CostReport`] (its `config`/`engine` ride in
/// the record key, not here).
pub(crate) fn encode_report(r: &CostReport) -> String {
    format!(
        "{:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {} {:?} {:?} {:?} {:?} {:?} {:?} {:?}",
        r.step_time,
        r.compute_time,
        r.collective_time,
        r.stream_time,
        r.exposed_stream_time,
        r.bubble_time,
        r.embedding_time,
        r.head_time,
        r.moe_time,
        r.memory.weights,
        r.memory.gradients,
        r.memory.optimizer,
        r.memory.activations,
        r.memory.buffers,
        r.fits_memory as u8,
        r.energy.compute,
        r.energy.d2d,
        r.energy.hbm,
        r.throughput,
        r.power,
        r.power_efficiency,
        r.contention_factor,
    )
}

pub(crate) fn decode_report(
    config: HybridConfig,
    engine: MappingEngine,
    f: &mut Fields,
) -> Result<CostReport, String> {
    Ok(CostReport {
        config,
        engine,
        step_time: f.f64()?,
        compute_time: f.f64()?,
        collective_time: f.f64()?,
        stream_time: f.f64()?,
        exposed_stream_time: f.f64()?,
        bubble_time: f.f64()?,
        embedding_time: f.f64()?,
        head_time: f.f64()?,
        moe_time: f.f64()?,
        memory: FootprintBreakdown {
            weights: f.f64()?,
            gradients: f.f64()?,
            optimizer: f.f64()?,
            activations: f.f64()?,
            buffers: f.f64()?,
        },
        fits_memory: f.bool01()?,
        energy: EnergyLedger {
            compute: f.f64()?,
            d2d: f.f64()?,
            hbm: f.f64()?,
        },
        throughput: f.f64()?,
        power: f.f64()?,
        power_efficiency: f.f64()?,
        contention_factor: f.f64()?,
    })
}

/// The 6 value fields of a [`SegmentCost`] (its `kind` rides in the key).
pub(crate) fn encode_segment_cost(s: &SegmentCost) -> String {
    format!(
        "{:?} {:?} {:?} {:?} {:?} {}",
        s.time,
        s.compute_time,
        s.collective_time,
        s.stream_time,
        s.memory_bytes,
        s.fits_memory as u8,
    )
}

pub(crate) fn decode_segment_cost(
    kind: SegmentKind,
    f: &mut Fields,
) -> Result<SegmentCost, String> {
    Ok(SegmentCost {
        kind,
        time: f.f64()?,
        compute_time: f.f64()?,
        collective_time: f.f64()?,
        stream_time: f.f64()?,
        memory_bytes: f.f64()?,
        fits_memory: f.bool01()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_spreads() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"gpt3"), fnv1a(b"gpt4"));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
    }

    #[test]
    fn cfg_round_trips() {
        let cfg = HybridConfig {
            dp: 2,
            fsdp: true,
            tp: 4,
            sp: 1,
            cp: 1,
            tatp: 4,
            ep: 2,
            pp: 3,
        };
        let text = encode_cfg(&cfg);
        let mut f = Fields::new(&text);
        assert_eq!(decode_cfg(&mut f).unwrap(), cfg);
        f.finish().unwrap();
    }

    #[test]
    fn extreme_floats_round_trip() {
        for v in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-308,
            std::f64::consts::PI,
            6.02214076e23,
        ] {
            let text = format!("{v:?}");
            let parsed: f64 = text.parse().expect("parse");
            assert_eq!(parsed.to_bits(), v.to_bits(), "{text}");
        }
        let nan: f64 = format!("{:?}", f64::NAN).parse().expect("nan");
        assert!(nan.is_nan());
    }

    #[test]
    fn codes_round_trip_and_reject_garbage() {
        for engine in [
            MappingEngine::SMap,
            MappingEngine::GMap,
            MappingEngine::Tcme,
        ] {
            assert_eq!(engine_from_code(engine_code(engine)).unwrap(), engine);
        }
        for mode in [
            RecomputeMode::None,
            RecomputeMode::Selective,
            RecomputeMode::Full,
        ] {
            assert_eq!(mode_from_code(mode_code(mode)).unwrap(), mode);
        }
        for kind in SegmentKind::ALL {
            assert_eq!(kind_from_code(kind.code()).unwrap(), kind);
        }
        for kind in [
            CollectiveKind::AllGather,
            CollectiveKind::AllReduce,
            CollectiveKind::ReduceScatter,
            CollectiveKind::Broadcast,
            CollectiveKind::AllToAll,
            CollectiveKind::P2pShift,
        ] {
            assert_eq!(collective_from_code(collective_code(kind)).unwrap(), kind);
        }
        assert!(engine_from_code(9).is_err());
        assert!(mode_from_code(9).is_err());
        assert!(kind_from_code(9).is_err());
        assert!(collective_from_code(9).is_err());
    }

    #[test]
    fn field_cursor_reports_truncation_and_trailing() {
        let mut f = Fields::new("1 2");
        assert_eq!(f.u64().unwrap(), 1);
        assert_eq!(f.u64().unwrap(), 2);
        assert!(f.u64().is_err(), "truncated");
        let f = Fields::new("1 2 3");
        let mut f2 = f;
        f2.u64().unwrap();
        f2.u64().unwrap();
        assert!(f2.finish().is_err(), "trailing field");
        let mut none = Fields::new("- tail");
        assert!(none.takes_none_marker());
        assert_eq!(none.next().unwrap(), "tail");
        let mut some = Fields::new("5");
        assert!(!some.takes_none_marker());
        assert_eq!(some.u64().unwrap(), 5);
    }
}
