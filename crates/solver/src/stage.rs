//! Stage-partitioned multi-wafer planning (Fig. 19, §VIII-E).
//!
//! A pipeline stage is a **contiguous slice of the segment chain**, not a
//! scalar degree: the planner jointly picks the cut positions (how many
//! Transformer blocks each stage owns) and the per-stage strategies, with
//! the first stage owning the embedding and the last the LM head. The
//! pre-refactor behavior — one uniform intra-wafer solve scaled by a
//! pipeline-degree multiplier — priced every stage identically and
//! charged the embedding/head as if they serialized outside the pipeline;
//! here they live *inside* their stages, so a step costs
//!
//! ```text
//! T_step = sum_s t_s  +  (micro - 1) x max_s t_s  +  handoffs
//! ```
//!
//! (fill/drain of one micro-batch through every stage, then the
//! bottleneck paces the remaining `micro - 1`). Stages sharing a wafer
//! (`pp_multiplier > 1`) time-multiplex the same dies, so the pace is set
//! by the **wafer load** — the sum of its stages' times — not by the
//! smallest stage: splitting one wafer into more virtual stages is not a
//! free speedup. Inter-wafer handoffs are priced from the **actual
//! boundary activation tensor** at each cut
//! ([`SegmentChain::boundary_activation_bytes`]) through
//! [`MultiWaferSystem::inter_wafer_transfer_time`]; stage boundaries that
//! stay on one wafer keep the activation resident and pay nothing.
//!
//! The search reuses the whole existing pipeline: candidates are costed
//! through the shared [`crate::search::SearchContext`] (exact or
//! surrogate-gated), the block unit time comes from the exact whole-model
//! evaluation, the end segments from the tier-independent per-segment
//! cost table, and the cut positions from the
//! [`crate::dp::balance_stage_cuts`] parametric DP. With one stage the
//! planner delegates to the single-wafer solve, so `wafer_count = 1`
//! reproduces it bit-for-bit.

use serde::{Deserialize, Serialize};

use temp_graph::segment::{SegmentChain, SegmentKind};
use temp_graph::workload::Workload;
use temp_mapping::engines::MappingEngine;
use temp_parallel::strategy::HybridConfig;
use temp_wsc::multiwafer::MultiWaferSystem;

use crate::dlws::{Dlws, ExecutionPlan, SegmentAssignment};
use crate::par;
use crate::{Result, SolverError};

/// One pipeline stage of a multi-wafer plan: which slice of the chain it
/// owns, on which wafer, under which strategies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Stage index in pipeline order.
    pub stage: usize,
    /// The wafer hosting this stage (stages fill wafers in order).
    pub wafer: usize,
    /// The contiguous chain slice this stage executes.
    pub chain: SegmentChain,
    /// Strategy per run of the slice (the end stages may assign their
    /// embedding/head a different strategy than the blocks).
    pub segments: Vec<SegmentAssignment>,
    /// Per-micro-batch latency of this stage, including any intra-stage
    /// resharding boundary.
    pub stage_time: f64,
    /// Boundary activation bytes this stage receives from its
    /// predecessor (zero for the first stage).
    pub inbound_bytes: f64,
    /// Whether that inbound handoff crossed wafers (and therefore paid
    /// the inter-wafer link).
    pub inter_wafer_inbound: bool,
}

/// A solved stage-partitioned multi-wafer deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiWaferPlan {
    /// Wafers in the chain.
    pub wafer_count: usize,
    /// Stages per wafer.
    pub pp_multiplier: usize,
    /// The pipeline-body plan: the block strategy (its `config.pp` is the
    /// stage count), the exact whole-model report it was priced from, and
    /// the overall chain assignment.
    pub body: ExecutionPlan,
    /// Per-stage slices, strategies and handoffs, in pipeline order.
    pub stages: Vec<StagePlan>,
    /// One optimizer-step wall-clock time of the pipelined execution.
    pub step_time: f64,
    /// The per-micro-batch time of the most loaded *wafer* (the sum of
    /// its stages' times) — what paces the pipeline, since stages on one
    /// wafer time-multiplex the same dies.
    pub bottleneck_time: f64,
    /// Fill/drain bubble per step: `sum_s t_s` minus one pace quantum.
    pub bubble_time: f64,
    /// Total inter-wafer handoff time per step (priced from the actual
    /// boundary activation tensors at the cuts).
    pub handoff_time: f64,
}

impl MultiWaferPlan {
    /// Total pipeline stages (`wafer_count x pp_multiplier`).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Whether any stage assigned a segment a strategy different from the
    /// pipeline body's.
    pub fn is_heterogeneous(&self) -> bool {
        self.stages
            .iter()
            .flat_map(|s| &s.segments)
            .any(|a| a.config != self.body.config)
    }

    /// Block instances per stage, in pipeline order.
    pub fn blocks_per_stage(&self) -> Vec<u64> {
        self.stages
            .iter()
            .map(|s| {
                s.chain
                    .find(SegmentKind::Block)
                    .map(|seg| seg.count)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl Dlws {
    /// Plans a stage-partitioned multi-wafer deployment: cut positions,
    /// per-stage strategies and inter-wafer handoffs, jointly. See the
    /// module docs for the objective.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NoFeasiblePlan`] when no filtered candidate
    /// fits memory, or when the pipeline is deeper than the block chain.
    pub fn solve_stage_partitioned(
        &self,
        engine: MappingEngine,
        wafers: &MultiWaferSystem,
        pp_multiplier: usize,
        filter: impl Fn(&HybridConfig) -> bool,
    ) -> Result<MultiWaferPlan> {
        let pp_multiplier = pp_multiplier.max(1);
        // One wafer has no pipeline boundaries and its stages would
        // time-multiplex one die array, so the multiplier is moot: plan
        // it as a single stage.
        let stage_count = if wafers.wafer_count == 1 {
            1
        } else {
            wafers.stage_count(pp_multiplier)
        };
        let ctx = self.context();
        let chain = ctx.chain().clone();
        let micro = ctx.cost_model().workload().micro_batches.max(1) as f64;

        // One stage: the single-wafer solve *is* the plan (bit-for-bit).
        if stage_count == 1 {
            let body = self.solve_with_engine_pp(engine, 1, filter)?;
            let stage_time = body.report.step_time / micro;
            let stages = vec![StagePlan {
                stage: 0,
                wafer: 0,
                chain,
                segments: body.segments.clone(),
                stage_time,
                inbound_bytes: 0.0,
                inter_wafer_inbound: false,
            }];
            return Ok(MultiWaferPlan {
                wafer_count: wafers.wafer_count,
                pp_multiplier,
                step_time: body.report.step_time,
                bottleneck_time: stage_time,
                bubble_time: 0.0,
                handoff_time: 0.0,
                body,
                stages,
            });
        }

        // Interior instances in chain order: dense blocks and (for MoE
        // models) MoE blocks. They are the pipeline's divisible work; the
        // embedding/head stay pinned to the end stages.
        let interior: Vec<(SegmentKind, u64)> = chain
            .segments()
            .iter()
            .filter(|s| matches!(s.kind, SegmentKind::Block | SegmentKind::MoeBlock))
            .map(|s| (s.kind, s.count))
            .collect();
        let dense_blocks: u64 = interior
            .iter()
            .filter(|(k, _)| *k == SegmentKind::Block)
            .map(|(_, c)| c)
            .sum();
        let moe_blocks: u64 = interior
            .iter()
            .filter(|(k, _)| *k == SegmentKind::MoeBlock)
            .map(|(_, c)| c)
            .sum();
        let blocks = dense_blocks + moe_blocks;
        if blocks == 0 {
            return Err(SolverError::Internal("chain has no block segment".into()));
        }
        if blocks < stage_count as u64 {
            return Err(SolverError::NoFeasiblePlan(format!(
                "pipeline of {stage_count} stages is deeper than the {blocks}-block chain"
            )));
        }

        let candidates: Vec<HybridConfig> = ctx
            .candidates_with_pp(stage_count)
            .into_iter()
            .filter(|c| filter(c))
            .collect();
        if candidates.is_empty() {
            return Err(SolverError::NoFeasiblePlan(
                "no candidates pass the filter".into(),
            ));
        }
        let costed = ctx.cost_candidates(&candidates, engine);
        if costed.iter().all(|(t, _)| !t.is_finite()) {
            return Err(SolverError::NoFeasiblePlan(
                "every candidate OOMs even with full recomputation".into(),
            ));
        }

        // End-segment rows (per-step, tier-independent) and the per-step
        // resharding charge of moving an end segment off the body's
        // strategy — the same quantities the single-wafer chain DP uses.
        let base_mode = ctx.cost_model().workload().recompute;
        let emb_row =
            ctx.segment_step_costs(SegmentKind::Embedding, &candidates, engine, base_mode);
        let head_row = ctx.segment_step_costs(SegmentKind::Head, &candidates, engine, base_mode);
        let boundary_step = micro * ctx.full_reshard_cost();

        // Per-wafer block floors: with `m` virtual stages per wafer every
        // stage must stay non-empty, so interior wafers need `m` blocks
        // and the end wafers `m - 1` (their end segment fills one stage).
        let wafer_count = wafers.wafer_count;
        let m = pp_multiplier as u64;
        let wafer_mins: Vec<u64> = if m == 1 {
            Vec::new()
        } else {
            (0..wafer_count)
                .map(|w| {
                    if w == 0 || w == wafer_count - 1 {
                        m - 1
                    } else {
                        m
                    }
                })
                .collect()
        };

        // Joint search: for each feasible body candidate, assign the end
        // segments (per-segment cost table + resharding boundary), balance
        // the wafer loads against the end-wafer extras, and price the
        // pipelined step; keep the global minimum. Scoring one candidate
        // is pure arithmetic over the precomputed rows, so the batch fans
        // out on the runtime pool (its own cost class — items here are
        // far cheaper than exact costing, so the adaptive cutoff keeps
        // small sweeps serial), while the winner fold below runs in index
        // order with strict less-than, bit-identical to the serial loop.
        let score = |i: usize| -> Option<Winner> {
            let (t, payload) = &costed[i];
            if !t.is_finite() {
                return None;
            }
            let (_, report) = payload.as_ref()?;
            let (emb_idx, emb_step) = best_end(&emb_row, i, boundary_step);
            let (head_idx, head_step) = best_end(&head_row, i, boundary_step);
            if !emb_step.is_finite() || !head_step.is_finite() {
                return None;
            }
            // Per-(micro-batch, instance) units of the body, one per
            // interior kind: the exact whole-model dense/MoE times divided
            // back out of Eq. 4 (`block_time = (micro + S - 1) x
            // (dense / S) x layer_time`, and likewise `moe_time`).
            let s_f = stage_count as f64;
            let pipeline_reps = micro + s_f - 1.0;
            let unit = if moe_blocks == 0 {
                // Dense chains keep the seed arithmetic bit-for-bit.
                let local_layers = (blocks as f64 / s_f).max(1.0);
                report.block_time() / (pipeline_reps * local_layers)
            } else if dense_blocks > 0 {
                report.block_time() * s_f / (pipeline_reps * dense_blocks as f64)
            } else {
                0.0
            };
            let unit_moe = if moe_blocks > 0 {
                report.moe_time * s_f / (pipeline_reps * moe_blocks as f64)
            } else {
                0.0
            };
            // Balance at wafer granularity: the pace is the most loaded
            // wafer, however its blocks split into virtual stages. Dense
            // chains keep the uniform parametric solver; mixed chains run
            // the weighted one, whose cuts can isolate expert-heavy
            // stretches onto their own wafers (a stage of expensive MoE
            // instances simply takes fewer of them).
            let cuts = if moe_blocks == 0 {
                ctx.balanced_stage_cuts(
                    blocks,
                    wafer_count,
                    unit,
                    emb_step / micro,
                    head_step / micro,
                    &wafer_mins,
                )
            } else {
                let weights = interior_weights(&interior, unit, unit_moe);
                ctx.balanced_weighted_cuts(
                    &weights,
                    wafer_count,
                    emb_step / micro,
                    head_step / micro,
                    &wafer_mins,
                )
            };
            let cuts = cuts.ok()?;

            // Handoffs: only wafer-crossing boundaries pay the link, and
            // each is priced from the boundary tensor at its actual cut.
            let mut handoff = 0.0;
            let mut acc = 1u64; // the embedding precedes the first cut
            for wafer_blocks in cuts.blocks.iter().take(wafer_count - 1) {
                acc += wafer_blocks;
                let bytes = chain.boundary_activation_bytes(acc).unwrap_or(0.0);
                handoff += micro * wafers.inter_wafer_transfer_time(bytes);
            }

            let interior_time = dense_blocks as f64 * unit + moe_blocks as f64 * unit_moe;
            let sum_stages = interior_time + (emb_step + head_step) / micro;
            let step = (micro - 1.0) * cuts.bottleneck + sum_stages + handoff;
            Some(Winner {
                index: i,
                emb_idx,
                head_idx,
                emb_step,
                head_step,
                unit,
                unit_moe,
                wafer_blocks: cuts.blocks,
                pace: cuts.bottleneck,
                bubble: sum_stages - cuts.bottleneck,
                handoff,
                step,
            })
        };
        static STAGE_SCORE_CLASS: par::ParClass = par::ParClass::new();
        let indices: Vec<usize> = (0..costed.len()).collect();
        let scored = par::par_map_class(&STAGE_SCORE_CLASS, &indices, |&i| score(i));
        let mut best: Option<Winner> = None;
        for candidate in scored.into_iter().flatten() {
            if best
                .as_ref()
                .map(|b| candidate.step < b.step)
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
        let w = best.ok_or_else(|| {
            SolverError::NoFeasiblePlan("no candidate admits a stage partition".into())
        })?;

        self.assemble(
            w,
            wafers,
            pp_multiplier,
            engine,
            &chain,
            &interior,
            &candidates,
            &costed,
            &emb_row,
            &head_row,
            micro,
        )
    }

    /// Builds the [`MultiWaferPlan`] for a chosen winner: slices the
    /// chain at the cut positions and attaches per-run assignments.
    /// `interior` is the same (kind, count) run list the cut solver
    /// balanced over — passed through so the stage-time accounting cannot
    /// diverge from the cuts it prices.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        w: Winner,
        wafers: &MultiWaferSystem,
        pp_multiplier: usize,
        engine: MappingEngine,
        chain: &SegmentChain,
        interior: &[(SegmentKind, u64)],
        candidates: &[HybridConfig],
        costed: &[crate::search::CandidateCost],
        emb_row: &[f64],
        head_row: &[f64],
        micro: f64,
    ) -> Result<MultiWaferPlan> {
        let wafer_count = w.wafer_blocks.len();
        let m = pp_multiplier.max(1);
        let stage_count = wafer_count * m;
        let (workload, report): (Workload, _) = costed[w.index]
            .1
            .clone()
            .ok_or_else(|| SolverError::Internal("winner lost its report".into()))?;
        let body_cfg = candidates[w.index];

        // Split every wafer's allotment into its virtual stages (balanced
        // counts; the stage holding an end segment may take zero blocks),
        // then cut the chain at the resulting stage boundaries.
        let mut stage_blocks: Vec<u64> = Vec::with_capacity(stage_count);
        for (wafer, &k) in w.wafer_blocks.iter().enumerate() {
            stage_blocks.extend(split_within_wafer(
                k,
                m,
                wafer == 0,
                wafer == wafer_count - 1,
            ));
        }
        let mut cut_pos = Vec::with_capacity(stage_count - 1);
        let mut acc = 1u64; // the embedding precedes the first cut
        for k in stage_blocks.iter().take(stage_count - 1) {
            acc += k;
            cut_pos.push(acc);
        }
        let slices = chain
            .split_at(&cut_pos)
            .ok_or_else(|| SolverError::Internal("degenerate cut positions".into()))?;

        let assignment_for = |kind: SegmentKind, count: u64| -> SegmentAssignment {
            match kind {
                SegmentKind::Embedding => SegmentAssignment {
                    kind,
                    count,
                    config: candidates[w.emb_idx],
                    step_time: emb_row[w.emb_idx],
                },
                SegmentKind::Head => SegmentAssignment {
                    kind,
                    count,
                    config: candidates[w.head_idx],
                    step_time: head_row[w.head_idx],
                },
                SegmentKind::Block => SegmentAssignment {
                    kind,
                    count,
                    config: body_cfg,
                    // Per-step execution time of this run's blocks.
                    step_time: count as f64 * w.unit * micro,
                },
                SegmentKind::MoeBlock => SegmentAssignment {
                    kind,
                    count,
                    config: body_cfg,
                    step_time: count as f64 * w.unit_moe * micro,
                },
            }
        };

        // Per-micro weight of every interior instance, in chain order —
        // stage times on a mixed chain are weighted sums, not
        // count x unit.
        let weights = interior_weights(interior, w.unit, w.unit_moe);
        let mut weight_prefix = Vec::with_capacity(weights.len() + 1);
        weight_prefix.push(0.0);
        for wt in &weights {
            weight_prefix.push(weight_prefix.last().unwrap() + wt);
        }

        let mut stages = Vec::with_capacity(stage_count);
        let mut item_start = 0usize;
        for (s, slice) in slices.into_iter().enumerate() {
            let segments: Vec<SegmentAssignment> = slice
                .segments()
                .iter()
                .map(|seg| assignment_for(seg.kind, seg.count))
                .collect();
            let item_end = item_start + stage_blocks[s] as usize;
            let mut stage_time = weight_prefix[item_end] - weight_prefix[item_start];
            item_start = item_end;
            if s == 0 {
                stage_time += w.emb_step / micro;
            }
            if s == stage_count - 1 {
                stage_time += w.head_step / micro;
            }
            let (inbound_bytes, inter_wafer_inbound) = if s == 0 {
                (0.0, false)
            } else {
                (
                    chain
                        .boundary_activation_bytes(cut_pos[s - 1])
                        .unwrap_or(0.0),
                    wafers.boundary_crosses_wafers(s - 1, pp_multiplier),
                )
            };
            stages.push(StagePlan {
                stage: s,
                wafer: wafers.wafer_of_stage(s, pp_multiplier),
                chain: slice,
                segments,
                stage_time,
                inbound_bytes,
                inter_wafer_inbound,
            });
        }

        // The body plan mirrors a single-wafer ExecutionPlan: whole-chain
        // assignment plus the chain objective under this pipeline degree.
        let chain_cost = emb_row[w.emb_idx]
            + if w.emb_idx == w.index {
                0.0
            } else {
                micro * self.context().full_reshard_cost()
            }
            + report.block_time()
            + report.moe_time
            + head_row[w.head_idx]
            + if w.head_idx == w.index {
                0.0
            } else {
                micro * self.context().full_reshard_cost()
            };
        let mut body_segments = vec![assignment_for(SegmentKind::Embedding, 1)];
        for &(kind, count) in interior {
            body_segments.push(match kind {
                SegmentKind::Block => SegmentAssignment {
                    kind,
                    count,
                    config: body_cfg,
                    step_time: report.block_time(),
                },
                SegmentKind::MoeBlock => SegmentAssignment {
                    kind,
                    count,
                    config: body_cfg,
                    step_time: report.moe_time,
                },
                _ => unreachable!("interior runs are blocks"),
            });
        }
        body_segments.push(assignment_for(SegmentKind::Head, 1));
        let body = ExecutionPlan {
            config: body_cfg,
            engine,
            workload,
            segments: body_segments,
            chain_cost,
            report,
        };

        Ok(MultiWaferPlan {
            wafer_count: wafers.wafer_count,
            pp_multiplier,
            body,
            stages,
            step_time: w.step,
            bottleneck_time: w.pace,
            bubble_time: w.bubble,
            handoff_time: w.handoff,
        })
    }
}

/// Internal record of the best candidate found by the joint search.
struct Winner {
    index: usize,
    emb_idx: usize,
    head_idx: usize,
    /// Per-step end-segment costs including any resharding boundary.
    emb_step: f64,
    head_step: f64,
    /// Per-(micro, instance) body unit times: dense blocks and MoE blocks.
    unit: f64,
    unit_moe: f64,
    /// Interior instances (dense + MoE blocks) per wafer.
    wafer_blocks: Vec<u64>,
    /// Per-micro load of the most loaded wafer.
    pace: f64,
    bubble: f64,
    handoff: f64,
    step: f64,
}

/// Per-micro-batch weight of every interior instance in chain order:
/// dense blocks at `unit`, MoE blocks at `unit_moe`.
fn interior_weights(interior: &[(SegmentKind, u64)], unit: f64, unit_moe: f64) -> Vec<f64> {
    let mut weights = Vec::with_capacity(interior.iter().map(|(_, c)| *c as usize).sum());
    for &(kind, count) in interior {
        let w = if kind == SegmentKind::MoeBlock {
            unit_moe
        } else {
            unit
        };
        weights.extend(std::iter::repeat(w).take(count as usize));
    }
    weights
}

/// Splits one wafer's block allotment across its `m` virtual stages as
/// evenly as possible. A stage holding an end segment (the first stage of
/// the first wafer, the last of the last) may take zero blocks; every
/// other stage gets at least one — the caller's wafer-level floors
/// guarantee enough blocks exist.
fn split_within_wafer(blocks: u64, m: usize, has_embedding: bool, has_head: bool) -> Vec<u64> {
    let mut parts: Vec<u64> = (0..m)
        .map(|i| {
            let end = (i == 0 && has_embedding) || (i == m - 1 && has_head);
            u64::from(!end)
        })
        .collect();
    let mut remaining = blocks.saturating_sub(parts.iter().sum());
    while remaining > 0 {
        let min = *parts.iter().min().expect("m >= 1");
        let next = parts.iter().position(|&p| p == min).expect("non-empty");
        parts[next] += 1;
        remaining -= 1;
    }
    parts
}

/// Picks the cheapest strategy for an end segment given the body's
/// candidate `own`: staying on the body's strategy is free of boundaries,
/// any other pays one per-step resharding charge. Returns the chosen row
/// index and its per-step cost including the charge.
fn best_end(row: &[f64], own: usize, boundary: f64) -> (usize, f64) {
    let mut best = (own, row[own]);
    for (idx, &t) in row.iter().enumerate() {
        let cost = if idx == own { t } else { t + boundary };
        if cost < best.1 {
            best = (idx, cost);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use temp_graph::models::{ModelConfig, ModelZoo};
    use temp_graph::workload::Workload;
    use temp_wsc::config::WaferConfig;

    fn solver(model: ModelConfig) -> Dlws {
        let workload = Workload::for_model(&model);
        Dlws::new(WaferConfig::hpca(), model, workload)
    }

    fn wafers(n: usize) -> MultiWaferSystem {
        MultiWaferSystem::new(WaferConfig::hpca(), n).unwrap()
    }

    #[test]
    fn one_stage_reproduces_the_single_wafer_plan_bit_for_bit() {
        let s = solver(ModelZoo::gpt3_6_7b());
        let single = s.solve().unwrap();
        let plan = s
            .solve_stage_partitioned(MappingEngine::Tcme, &wafers(1), 1, |_| true)
            .unwrap();
        assert_eq!(plan.body, single);
        assert_eq!(plan.step_time, single.report.step_time);
        assert_eq!(plan.stage_count(), 1);
        assert_eq!(plan.handoff_time, 0.0);
        assert_eq!(plan.bubble_time, 0.0);
        assert_eq!(plan.stages[0].chain, s.context().chain().clone());
    }

    #[test]
    fn stages_partition_the_chain_and_balance_the_ends() {
        let s = solver(ModelZoo::gpt3_6_7b());
        let plan = s
            .solve_stage_partitioned(MappingEngine::Tcme, &wafers(2), 2, |_| true)
            .unwrap();
        assert_eq!(plan.stage_count(), 4);
        let blocks = plan.blocks_per_stage();
        assert_eq!(blocks.iter().sum::<u64>(), 32);
        // The slices reassemble into the whole chain.
        let total: u64 = plan.stages.iter().map(|st| st.chain.expanded_len()).sum();
        assert_eq!(total, s.context().chain().expanded_len());
        assert_eq!(
            plan.stages[0].chain.segments()[0].kind,
            SegmentKind::Embedding
        );
        assert_eq!(
            plan.stages
                .last()
                .unwrap()
                .chain
                .segments()
                .last()
                .unwrap()
                .kind,
            SegmentKind::Head
        );
        // Stage placement: stages 0-1 on wafer 0, 2-3 on wafer 1; only the
        // middle boundary crosses wafers.
        let wafer_seq: Vec<usize> = plan.stages.iter().map(|st| st.wafer).collect();
        assert_eq!(wafer_seq, vec![0, 0, 1, 1]);
        let crossings: Vec<bool> = plan
            .stages
            .iter()
            .map(|st| st.inter_wafer_inbound)
            .collect();
        assert_eq!(crossings, vec![false, false, true, false]);
        assert!(plan.handoff_time > 0.0);
        // Step-time bookkeeping: micro x pace + bubble + handoff.
        let micro = plan.body.workload.micro_batches as f64;
        let recon = micro * plan.bottleneck_time + plan.bubble_time + plan.handoff_time;
        assert!(
            (recon - plan.step_time).abs() <= 1e-9 * plan.step_time,
            "{recon} vs {}",
            plan.step_time
        );
        // The pace is the most loaded *wafer* (its stages time-multiplex
        // one die array), not the largest single stage.
        let mut wafer_loads = [0.0f64; 2];
        for st in &plan.stages {
            wafer_loads[st.wafer] += st.stage_time;
        }
        let max_load = wafer_loads.iter().copied().fold(0.0f64, f64::max);
        assert!(
            (max_load - plan.bottleneck_time).abs() <= 1e-9 * max_load,
            "{max_load} vs {}",
            plan.bottleneck_time
        );
    }

    #[test]
    fn virtual_stages_are_not_a_free_speedup() {
        // Splitting each wafer into more virtual stages cannot beat the
        // same deployment at one stage per wafer: the dies are shared, so
        // the pace is the wafer load either way (only the stage display
        // granularity changes).
        let s = solver(ModelZoo::gpt3_6_7b());
        let flat = s
            .solve_stage_partitioned(MappingEngine::Tcme, &wafers(2), 1, |_| true)
            .unwrap();
        let virt = s
            .solve_stage_partitioned(MappingEngine::Tcme, &wafers(2), 2, |_| true)
            .unwrap();
        assert_eq!(virt.stage_count(), 4);
        assert_eq!(flat.stage_count(), 2);
        // Same handoff structure (one wafer crossing) and no pace gain.
        assert!(
            virt.step_time >= flat.step_time * (1.0 - 5e-3),
            "virtual stages must not fabricate speedup: {} vs {}",
            virt.step_time,
            flat.step_time
        );
    }

    #[test]
    fn deeper_pipelines_than_the_chain_are_rejected() {
        let s = solver(ModelZoo::gpt3_6_7b());
        // 32 blocks cannot fill 64 stages.
        let err = s
            .solve_stage_partitioned(MappingEngine::Tcme, &wafers(8), 8, |_| true)
            .unwrap_err();
        assert!(matches!(err, SolverError::NoFeasiblePlan(_)), "{err}");
        let err = s
            .solve_stage_partitioned(MappingEngine::Tcme, &wafers(2), 1, |_| false)
            .unwrap_err();
        assert!(matches!(err, SolverError::NoFeasiblePlan(_)));
    }

    #[test]
    fn stage_plan_beats_the_uniform_multiplier_costing() {
        // The uniform-multiplier model charges the embedding/head outside
        // the pipeline and every stage boundary at inter-wafer price; the
        // stage-partitioned plan overlaps the ends inside their stages and
        // must therefore be at least as fast given the same degree.
        let s = solver(ModelZoo::gpt3_6_7b());
        let sys = wafers(2);
        let plan = s
            .solve_stage_partitioned(MappingEngine::Tcme, &sys, 1, |_| true)
            .unwrap();
        // Uniform-multiplier reference: best pp=2 candidate + handoff.
        let ctx = s.context();
        let candidates = ctx.candidates_with_pp(2);
        let costed = ctx.cost_candidates(&candidates, MappingEngine::Tcme);
        let uniform_best = costed
            .iter()
            .map(|(t, _)| *t)
            .filter(|t| t.is_finite())
            .fold(f64::INFINITY, f64::min);
        let workload = s.cost_model().workload();
        let act = workload.micro_batch_size() as f64
            * workload.seq_len as f64
            * s.cost_model().model().hidden as f64
            * workload.compute_dtype.bytes() as f64;
        let uniform =
            uniform_best + sys.inter_wafer_transfer_time(act) * workload.micro_batches as f64;
        assert!(
            plan.step_time <= uniform * (1.0 + 1e-9),
            "stage {} vs uniform {uniform}",
            plan.step_time
        );
        // GPT-3 6.7B's embedding leaves the body's vocab-sharded tuple, so
        // the win is strict.
        assert!(plan.is_heterogeneous(), "{:?}", plan.stages[0].segments);
        assert!(plan.step_time < uniform);
    }
}
