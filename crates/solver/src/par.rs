//! Minimal data-parallel map over scoped threads.
//!
//! The offline build environment has no rayon, so candidate costing uses
//! this hand-rolled equivalent of `par_iter().map().collect()`: a shared
//! atomic work index, one worker per available core (capped by item
//! count), and order-preserving result assembly. Workers pull items one
//! at a time, which load-balances the skewed per-candidate costing times
//! (mapping a 32-die TATP ring costs far more than pure DP).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of workers a parallel map would use on this machine.
///
/// Honors a `TEMP_THREADS` environment override (clamped to the machine's
/// `available_parallelism`) so CI and benchmarks can pin worker counts
/// reproducibly; unset, zero or unparsable values fall back to the
/// hardware count.
pub fn available_workers() -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    clamp_override(std::env::var("TEMP_THREADS").ok().as_deref(), hardware)
}

/// The `TEMP_THREADS` clamping rule, factored out so it is testable
/// without mutating process environment (setenv racing getenv across
/// test threads is undefined behavior on glibc).
fn clamp_override(raw: Option<&str>, hardware: usize) -> usize {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(hardware),
        _ => hardware,
    }
}

/// Maps `f` over `items`, preserving order, using up to
/// [`available_workers`] scoped threads. Falls back to a plain serial map
/// when only one worker is available (or there is at most one item), so
/// single-core machines pay no thread overhead.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(available_workers(), items, f)
}

/// As [`par_map`] with an explicit worker count (benchmarks use this to
/// compare serial and parallel paths on the same machine).
pub fn par_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("par_map covered every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_worker_counts_agree() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map_with(1, &items, |x| x * x);
        let parallel = par_map_with(8, &items, |x| x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_with(64, &items, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn temp_threads_override_clamps_and_falls_back() {
        assert_eq!(clamp_override(Some("1"), 8), 1);
        assert_eq!(clamp_override(Some(" 4 "), 8), 4, "whitespace tolerated");
        assert_eq!(clamp_override(Some("1000000"), 8), 8, "clamped to machine");
        assert_eq!(clamp_override(Some("0"), 8), 8, "zero is ignored");
        assert_eq!(clamp_override(Some("not-a-number"), 8), 8);
        assert_eq!(clamp_override(None, 8), 8);
    }
}
