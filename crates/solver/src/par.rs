//! Data-parallel map facade over the work-stealing runtime.
//!
//! The offline build environment has no rayon, so candidate costing uses
//! this hand-rolled equivalent of `par_iter().map().collect()`. Two
//! implementations live here:
//!
//! * [`par_map`] — the production path: dispatches onto the persistent
//!   [`crate::runtime`] work-stealing pool, with an **adaptive serial
//!   cutoff**. Each call site class keeps an EWMA of its observed
//!   per-item cost ([`ParClass`]); when `items × estimate` falls below
//!   the dispatch threshold the map runs inline, so tiny batches (a
//!   handful of DP transitions) never pay queue traffic, while real
//!   costing batches fan out in ~100 µs chunks.
//! * [`par_map_scoped`] — the retained scoped-thread baseline (one fresh
//!   thread per worker per call, shared atomic work index). Benchmarks
//!   keep it alive so `BENCH_search.json` can report `pool_speedup`
//!   against the very implementation it replaced; results are written
//!   straight into pre-allocated slots (no `Vec<Option<R>>` pass).
//!
//! `TEMP_THREADS` (clamped to the machine's `available_parallelism`)
//! controls the worker count of both paths and the size of the global
//! pool.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::runtime;

/// Number of workers a parallel map would use on this machine.
///
/// Honors a `TEMP_THREADS` environment override (clamped to the machine's
/// `available_parallelism`) so CI and benchmarks can pin worker counts
/// reproducibly; unset, zero or unparsable values fall back to the
/// hardware count. The global pool is sized from this on first use.
pub fn available_workers() -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    clamp_override(std::env::var("TEMP_THREADS").ok().as_deref(), hardware)
}

/// The `TEMP_THREADS` clamping rule, factored out so it is testable
/// without mutating process environment (setenv racing getenv across
/// test threads is undefined behavior on glibc).
fn clamp_override(raw: Option<&str>, hardware: usize) -> usize {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(hardware),
        _ => hardware,
    }
}

/// Dispatching below this total estimated batch cost is not worth the
/// queue round-trip (measured: external submission costs tens of µs).
const DISPATCH_THRESHOLD_NS: u64 = 300_000;

/// Target per-chunk duration: long enough to amortize one task's queue
/// traffic, short enough that a skewed batch still steals well.
const TARGET_CHUNK_NS: u64 = 100_000;

/// Per-call-site cost class: a lock-free EWMA of observed per-item nanos.
///
/// Each logical kind of batch (candidate costing, stage winner scan, ...)
/// declares one `static CLASS: ParClass = ParClass::new();` so cheap maps
/// do not pollute the estimate of expensive ones. A fresh class starts
/// with no estimate and dispatches its first non-trivial batch to the
/// pool to learn one.
pub struct ParClass {
    /// EWMA of per-item nanos; 0 = no observation yet.
    ewma_ns: AtomicU64,
}

impl ParClass {
    /// Const-constructible so classes can live in statics.
    pub const fn new() -> Self {
        ParClass {
            ewma_ns: AtomicU64::new(0),
        }
    }

    /// Current per-item estimate, if any batch has been observed.
    pub fn estimate_ns(&self) -> Option<u64> {
        match self.ewma_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// Folds one observed batch into the EWMA (α = 1/4). Racy updates
    /// just blend two observations — precision is not needed here.
    fn observe(&self, total_ns: u64, items: usize) {
        if items == 0 {
            return;
        }
        let per_item = (total_ns / items as u64).max(1);
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            per_item
        } else {
            old - old / 4 + per_item / 4
        };
        self.ewma_ns.store(new.max(1), Ordering::Relaxed);
    }

    /// Whether a batch of `n` items is worth dispatching, and with what
    /// chunk size. `None` = run serial.
    fn plan(&self, n: usize, workers: usize) -> Option<usize> {
        if workers <= 1 || n <= 1 {
            return None;
        }
        match self.estimate_ns() {
            Some(est) => {
                if (n as u64).saturating_mul(est) < DISPATCH_THRESHOLD_NS {
                    return None;
                }
                let chunk = (TARGET_CHUNK_NS / est).max(1) as usize;
                // Keep at least ~2 chunks per worker for stealing slack.
                Some(chunk.min(n.div_ceil(workers * 2)).max(1))
            }
            // Unknown cost: dispatch to learn, with conservative chunks.
            None => Some((n / (workers * 8)).max(1)),
        }
    }
}

impl Default for ParClass {
    fn default() -> Self {
        ParClass::new()
    }
}

/// The default cost class used by [`par_map`] — candidate costing, the
/// dominant batch shape in the solver.
static COSTING_CLASS: ParClass = ParClass::new();

/// Maps `f` over `items`, preserving order, on the global work-stealing
/// pool, with the default (candidate-costing) cost class. Falls back to a
/// plain serial map when the batch is too small to be worth dispatching.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_class(&COSTING_CLASS, items, f)
}

/// As [`par_map`] with an explicit [`ParClass`], so call sites with very
/// different per-item costs keep separate serial-cutoff estimates.
pub fn par_map_class<T, R, F>(class: &ParClass, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let pool = runtime::global();
    let Some(chunk) = class.plan(n, pool.workers()) else {
        return items.iter().map(f).collect();
    };
    let start = std::time::Instant::now();
    let out = pool.map(items, &f, chunk);
    class.observe(start.elapsed().as_nanos() as u64, n);
    out
}

/// As [`par_map`], but cooperatively cancellable: the per-item loop
/// (whether it runs inline or inside the work-stealing pool's chunk
/// executor) polls `token` before every item, and once the token reports
/// cancelled the remaining items get `on_cancel(item)` instead of
/// `f(item)`. The batch always completes — every queued chunk drains, so
/// the shared pool stays clean for subsequent jobs — it just stops paying
/// for real work the moment the deadline passes.
pub fn par_map_cancellable<T, R, F, G>(
    token: &runtime::CancelToken,
    items: &[T],
    on_cancel: G,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    G: Fn(&T) -> R + Sync,
{
    par_map_class(&COSTING_CLASS, items, |item| {
        if token.is_cancelled() {
            on_cancel(item)
        } else {
            f(item)
        }
    })
}

/// As [`par_map`] with an explicit worker count. `workers <= 1` runs
/// serial; otherwise the global pool executes the batch (an explicit
/// count larger than the pool merely saturates it — benchmarks use
/// `TEMP_THREADS` to actually size the pool).
pub fn par_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let pool = runtime::global();
    let chunk = (n / (pool.workers().max(1) * 4)).max(1);
    pool.map(items, &f, chunk)
}

/// The retained scoped-thread baseline: spawns `workers` fresh threads,
/// pulls items one at a time off a shared atomic index, and writes each
/// result **directly into its pre-allocated output slot** (the former
/// `Vec<Option<R>>` assembly pass is gone). Benchmarks compare the pool
/// against this; production paths use [`par_map`].
pub fn par_map_scoped<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<R> = Vec::with_capacity(n);
    let base = SendPtr(out.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (base, f, next) = (&base, &f, &next);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(&items[i]);
                    // SAFETY: `i` is claimed by exactly one worker via
                    // fetch_add, so each slot in the capacity-n buffer is
                    // written exactly once while the scope borrows `out`.
                    unsafe { base.0.add(i).write(value) };
                })
            })
            .collect();
        for h in handles {
            h.join().expect("par_map worker panicked");
        }
    });
    // SAFETY: the scope joined every worker and the atomic index covered
    // 0..n, so all n slots are initialized.
    unsafe { out.set_len(n) };
    out
}

/// Raw output-buffer pointer shared with scoped workers.
struct SendPtr<R>(*mut R);
// SAFETY: workers write disjoint slots (unique fetch_add indices).
unsafe impl<R: Send> Sync for SendPtr<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_worker_counts_agree() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map_with(1, &items, |x| x * x);
        let parallel = par_map_with(8, &items, |x| x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn cancellable_map_switches_to_the_fallback_after_cancellation() {
        let items: Vec<u64> = (0..64).collect();
        // A live token behaves exactly like par_map.
        let token = runtime::CancelToken::new();
        let out = par_map_cancellable(&token, &items, |_| u64::MAX, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // A cancelled token yields the fallback for every item: the batch
        // still completes (order, length), it just stops doing work.
        token.cancel();
        let out = par_map_cancellable(&token, &items, |_| u64::MAX, |x| x * 2);
        assert!(out.iter().all(|&v| v == u64::MAX));
        assert_eq!(out.len(), items.len());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_with(64, &items, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn scoped_baseline_matches_serial() {
        let items: Vec<u64> = (0..1023).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 7 + 3).collect();
        for workers in [1, 2, 4, 16] {
            assert_eq!(par_map_scoped(workers, &items, |x| x * 7 + 3), serial);
        }
        let empty: Vec<u64> = vec![];
        assert!(par_map_scoped(4, &empty, |x| *x).is_empty());
    }

    #[test]
    fn class_cutoff_learns_and_stays_serial_for_tiny_batches() {
        let class = ParClass::new();
        assert_eq!(class.estimate_ns(), None);
        // A fresh class dispatches (to learn) whenever workers > 1.
        assert!(class.plan(100, 4).is_some());
        assert_eq!(class.plan(100, 1), None, "single worker is always serial");

        // Teach it the batch was cheap: 100 items in 50 µs = 500 ns/item.
        class.observe(50_000, 100);
        let est = class.estimate_ns().expect("observed");
        assert!(est >= 1);
        // 100 items * 500 ns = 50 µs < 300 µs threshold: stay serial.
        assert_eq!(class.plan(100, 4), None);
        // 10_000 items clears the threshold and chunks sensibly.
        let chunk = class.plan(10_000, 4).expect("dispatch");
        assert!((1..=10_000 / 8 + 1).contains(&chunk));

        // An expensive class (1 ms/item) dispatches even small batches.
        let heavy = ParClass::new();
        heavy.observe(1_000_000_000, 1_000);
        assert!(heavy.plan(4, 4).is_some());
    }

    #[test]
    fn ewma_blends_observations() {
        let class = ParClass::new();
        class.observe(1_000_000, 1_000); // 1000 ns/item
        let first = class.estimate_ns().unwrap();
        class.observe(8_000_000, 1_000); // 8000 ns/item
        let second = class.estimate_ns().unwrap();
        assert!(second > first, "EWMA must move toward new observations");
        assert!(
            second < 8_000,
            "EWMA must not jump all the way to the new value"
        );
    }

    #[test]
    fn temp_threads_override_clamps_and_falls_back() {
        assert_eq!(clamp_override(Some("1"), 8), 1);
        assert_eq!(clamp_override(Some(" 4 "), 8), 4, "whitespace tolerated");
        assert_eq!(clamp_override(Some("1000000"), 8), 8, "clamped to machine");
        assert_eq!(clamp_override(Some("0"), 8), 8, "zero is ignored");
        assert_eq!(clamp_override(Some("not-a-number"), 8), 8);
        assert_eq!(clamp_override(None, 8), 8);
    }
}
