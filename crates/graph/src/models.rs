//! The LLM model zoo: Table II configurations plus the motivation and
//! scalability models referenced in Figs. 4, 7 and 19.

use serde::{Deserialize, Serialize};

use crate::{GraphError, Result};

/// Mixture-of-Experts configuration of a model's MoE blocks.
///
/// A MoE block keeps the dense block's attention path but replaces the
/// FFN with a router plus `num_experts` expert FFNs of width
/// `expert_ffn_hidden`; each token is dispatched to its `top_k` experts
/// (all-to-all across the expert-parallel groups) and the expert outputs
/// are combined back into the residual stream. `capacity_factor` pads the
/// per-expert token budget against routing imbalance — it multiplies the
/// expert compute/activation pace the cost model charges.
///
/// Following the DeepSeek-MoE convention, the first `dense_layers` layers
/// stay dense (a purely dense stem stabilizes routing), so every MoE
/// model yields a *mixed* dense/MoE segment chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Expert count E per MoE layer.
    pub num_experts: u64,
    /// Experts each token is routed to.
    pub top_k: u64,
    /// FFN intermediate size of one expert.
    pub expert_ffn_hidden: u64,
    /// Per-expert token-budget padding factor (>= 1.0).
    pub capacity_factor: f64,
    /// Leading layers that stay dense (>= 1 so the chain is mixed).
    pub dense_layers: u64,
}

impl MoeConfig {
    /// Trained parameters of one MoE layer's expert path: the router
    /// (`H x E`) plus `E` gated expert FFNs (`3 H F_e` each).
    pub fn expert_params(&self, hidden: u64) -> u64 {
        hidden * self.num_experts + self.num_experts * 3 * hidden * self.expert_ffn_hidden
    }

    /// Parameters of the experts one token activates (router + `top_k`
    /// expert FFNs) — what the training-FLOP accounting charges.
    pub fn active_expert_params(&self, hidden: u64) -> u64 {
        hidden * self.num_experts + self.top_k * 3 * hidden * self.expert_ffn_hidden
    }

    /// Activation **elements** per token of the routed expert path kept
    /// for the backward pass: the dispatched inputs (`H`) plus the expert
    /// intermediates (`F_e`) of every `top_k x capacity_factor` routed
    /// copy. The single source of this term — the chain builder, the
    /// per-segment footprint and the whole-model memory verdict all
    /// multiply it by their own dtype/sharding conventions, and must not
    /// drift on the count itself.
    pub fn routed_activation_elems_per_token(&self, hidden: u64) -> f64 {
        self.top_k as f64 * self.capacity_factor * (hidden + self.expert_ffn_hidden) as f64
    }
}

/// Architecture of a decoder-only Transformer LLM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name ("GPT-3 175B").
    pub name: String,
    /// Attention head count.
    pub heads: u64,
    /// Key/value head count (grouped-query attention; equals `heads` for
    /// classic multi-head attention).
    pub kv_heads: u64,
    /// Hidden size H.
    pub hidden: u64,
    /// Transformer layer count.
    pub layers: u64,
    /// FFN intermediate size.
    pub ffn_hidden: u64,
    /// Whether the FFN is gated (SwiGLU-style, three matrices) as in the
    /// Llama family, versus two matrices for GPT/OPT/Bloom.
    pub gated_ffn: bool,
    /// Vocabulary size.
    pub vocab: u64,
    /// Default sequence length from Table II.
    pub default_seq: u64,
    /// Default global batch size from Table II.
    pub default_batch: u64,
    /// Mixture-of-Experts configuration; `None` for dense models. When
    /// set, layers beyond [`MoeConfig::dense_layers`] swap their FFN for
    /// the routed expert path.
    pub moe: Option<MoeConfig>,
}

impl ModelConfig {
    /// Head dimension `hidden / heads`.
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }

    /// Key/value projection width `kv_heads * head_dim` (equals `hidden`
    /// for classic MHA).
    pub fn kv_dim(&self) -> u64 {
        self.kv_heads * self.head_dim()
    }

    /// Parameters of one Transformer layer.
    ///
    /// Attention: Q (`H^2`) + KV (`2 H kv_dim`) + output projection (`H^2`).
    /// FFN: `2 H F` (or `3 H F` gated). Norms: `4 H`.
    pub fn params_per_layer(&self) -> u64 {
        let attn = 2 * self.hidden * self.hidden + 2 * self.hidden * self.kv_dim();
        let ffn_mats = if self.gated_ffn { 3 } else { 2 };
        let ffn = ffn_mats * self.hidden * self.ffn_hidden;
        attn + ffn + 4 * self.hidden
    }

    /// Parameters of one layer's non-FFN path: attention matrices plus the
    /// two norms — what a MoE layer keeps from the dense block.
    pub fn attn_params_per_layer(&self) -> u64 {
        2 * self.hidden * self.hidden + 2 * self.hidden * self.kv_dim() + 4 * self.hidden
    }

    /// Parameters of one MoE layer: the dense attention path plus the
    /// router and every expert FFN. Zero for dense models.
    pub fn moe_params_per_layer(&self) -> u64 {
        match self.moe {
            Some(moe) => self.attn_params_per_layer() + moe.expert_params(self.hidden),
            None => 0,
        }
    }

    /// How many leading layers are dense (all of them for dense models).
    pub fn dense_layer_count(&self) -> u64 {
        match self.moe {
            Some(moe) => moe.dense_layers.min(self.layers),
            None => self.layers,
        }
    }

    /// How many layers are MoE blocks (zero for dense models).
    pub fn moe_layer_count(&self) -> u64 {
        self.layers - self.dense_layer_count()
    }

    /// Parameters held in expert FFNs plus routers across the whole model
    /// — the part an expert-parallel degree shards. Zero for dense models.
    pub fn total_expert_params(&self) -> u64 {
        match self.moe {
            Some(moe) => self.moe_layer_count() * moe.expert_params(self.hidden),
            None => 0,
        }
    }

    /// Total parameters including the (tied) embedding and, for MoE
    /// models, every expert's weights.
    pub fn total_params(&self) -> u64 {
        self.dense_layer_count() * self.params_per_layer()
            + self.moe_layer_count() * self.moe_params_per_layer()
            + self.vocab * self.hidden
    }

    /// Parameters one token activates: for dense models this equals
    /// [`ModelConfig::total_params`]; for MoE models only `top_k` of the
    /// `num_experts` expert FFNs count — the basis of the training-FLOP
    /// accounting.
    pub fn active_params(&self) -> u64 {
        match self.moe {
            Some(moe) => {
                self.dense_layer_count() * self.params_per_layer()
                    + self.moe_layer_count()
                        * (self.attn_params_per_layer() + moe.active_expert_params(self.hidden))
                    + self.vocab * self.hidden
            }
            None => self.total_params(),
        }
    }

    /// Total parameters in billions (for display).
    pub fn params_b(&self) -> f64 {
        self.total_params() as f64 / 1e9
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] when heads do not divide the
    /// hidden size or any dimension is zero.
    pub fn validate(&self) -> Result<()> {
        if self.heads == 0 || self.hidden == 0 || self.layers == 0 || self.ffn_hidden == 0 {
            return Err(GraphError::InvalidParameter(format!(
                "model {} has a zero dimension",
                self.name
            )));
        }
        if self.hidden % self.heads != 0 {
            return Err(GraphError::InvalidParameter(format!(
                "model {}: hidden {} not divisible by heads {}",
                self.name, self.hidden, self.heads
            )));
        }
        if let Some(moe) = &self.moe {
            if moe.num_experts == 0 || moe.expert_ffn_hidden == 0 {
                return Err(GraphError::InvalidParameter(format!(
                    "model {} has a zero MoE dimension",
                    self.name
                )));
            }
            if moe.top_k == 0 || moe.top_k > moe.num_experts {
                return Err(GraphError::InvalidParameter(format!(
                    "model {}: top_k {} incompatible with {} experts",
                    self.name, moe.top_k, moe.num_experts
                )));
            }
            if moe.capacity_factor < 1.0 {
                return Err(GraphError::InvalidParameter(format!(
                    "model {}: capacity factor {} below 1.0",
                    self.name, moe.capacity_factor
                )));
            }
            if moe.dense_layers == 0 || moe.dense_layers >= self.layers {
                return Err(GraphError::InvalidParameter(format!(
                    "model {}: dense_layers {} must leave a mixed chain in {} layers",
                    self.name, moe.dense_layers, self.layers
                )));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (H={}, L={}, heads={}, {:.1}B params)",
            self.name,
            self.hidden,
            self.layers,
            self.heads,
            self.params_b()
        )
    }
}

/// Constructors for every model used in the paper's figures.
#[derive(Debug, Clone, Copy)]
pub struct ModelZoo;

impl ModelZoo {
    fn gpt_like(
        name: &str,
        heads: u64,
        hidden: u64,
        layers: u64,
        seq: u64,
        batch: u64,
    ) -> ModelConfig {
        ModelConfig {
            name: name.into(),
            heads,
            kv_heads: heads,
            hidden,
            layers,
            ffn_hidden: 4 * hidden,
            gated_ffn: false,
            vocab: 50_304,
            default_seq: seq,
            default_batch: batch,
            moe: None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn llama_like(
        name: &str,
        heads: u64,
        kv_heads: u64,
        hidden: u64,
        layers: u64,
        ffn: u64,
        vocab: u64,
        seq: u64,
        batch: u64,
    ) -> ModelConfig {
        ModelConfig {
            name: name.into(),
            heads,
            kv_heads,
            hidden,
            layers,
            ffn_hidden: ffn,
            gated_ffn: true,
            vocab,
            default_seq: seq,
            default_batch: batch,
            moe: None,
        }
    }

    // ---- Table II --------------------------------------------------------

    /// GPT-3 6.7B: 32 heads, hidden 4096, 32 layers, seq 2048, batch 128.
    pub fn gpt3_6_7b() -> ModelConfig {
        Self::gpt_like("GPT-3 6.7B", 32, 4096, 32, 2048, 128)
    }

    /// Llama2 7B: 32 heads, hidden 4096, 32 layers, seq 4096, batch 128.
    pub fn llama2_7b() -> ModelConfig {
        Self::llama_like("Llama2 7B", 32, 32, 4096, 32, 11_008, 32_000, 4096, 128)
    }

    /// Llama3 70B: 64 heads, hidden 8192, 80 layers, seq 4096, batch 128.
    pub fn llama3_70b() -> ModelConfig {
        Self::llama_like("Llama3 70B", 64, 8, 8192, 80, 28_672, 128_256, 4096, 128)
    }

    /// GPT-3 76B: 80 heads, hidden 10240, 60 layers, seq 2048, batch 128.
    pub fn gpt3_76b() -> ModelConfig {
        Self::gpt_like("GPT-3 76B", 80, 10_240, 60, 2048, 128)
    }

    /// GPT-3 175B: 96 heads, hidden 12288, 96 layers, seq 2048, batch 128.
    pub fn gpt3_175b() -> ModelConfig {
        Self::gpt_like("GPT-3 175B", 96, 12_288, 96, 2048, 128)
    }

    /// OPT 175B: 96 heads, hidden 12288, 96 layers, seq 4096, batch 128.
    pub fn opt_175b() -> ModelConfig {
        Self::gpt_like("OPT 175B", 96, 12_288, 96, 4096, 128)
    }

    /// The six Table II models, in the paper's order.
    pub fn table2() -> Vec<ModelConfig> {
        vec![
            Self::gpt3_6_7b(),
            Self::llama2_7b(),
            Self::llama3_70b(),
            Self::gpt3_76b(),
            Self::gpt3_175b(),
            Self::opt_175b(),
        ]
    }

    // ---- Motivation models (Fig. 4) --------------------------------------

    /// DeepSeek 7B (Fig. 4(b)).
    pub fn deepseek_7b() -> ModelConfig {
        Self::llama_like("DeepSeek 7B", 32, 32, 4096, 30, 11_008, 102_400, 4096, 128)
    }

    /// DeepSeek 67B (Fig. 4(b)).
    pub fn deepseek_67b() -> ModelConfig {
        Self::llama_like("DeepSeek 67B", 64, 8, 8192, 95, 22_016, 102_400, 4096, 128)
    }

    /// DeepSeek-V2 236B dense-equivalent (Fig. 4(b)).
    pub fn deepseek_v2_236b() -> ModelConfig {
        Self::llama_like(
            "DeepSeek-V2 236B",
            128,
            128,
            16_384,
            72,
            45_056,
            102_400,
            4096,
            128,
        )
    }

    /// Bloom 176B (Fig. 4(c)).
    pub fn bloom_176b() -> ModelConfig {
        Self::gpt_like("Bloom 176B", 112, 14_336, 70, 2048, 128)
    }

    /// Llama2 13B (Fig. 7(c) family).
    pub fn llama2_13b() -> ModelConfig {
        Self::llama_like("Llama2 13B", 40, 40, 5120, 40, 13_824, 32_000, 4096, 128)
    }

    /// Llama2 30B (Fig. 7(c); Llama-1 30B dimensions).
    pub fn llama2_30b() -> ModelConfig {
        Self::llama_like("Llama2 30B", 52, 52, 6656, 60, 17_920, 32_000, 4096, 128)
    }

    /// Llama2 70B (Figs. 4(c), 7(c)).
    pub fn llama2_70b() -> ModelConfig {
        Self::llama_like("Llama2 70B", 64, 8, 8192, 80, 28_672, 32_000, 4096, 128)
    }

    // ---- MoE models (fig20_moe; MoEntwine/WATOS workload family) ----------

    /// Mixtral-8x7B-like: Llama-7B attention geometry (GQA, seq 4096) with
    /// eight SwiGLU experts of width 14336, top-2 routing and a 1.25
    /// capacity factor. Two leading layers stay dense so the segment
    /// chain mixes dense and MoE blocks.
    pub fn mixtral_8x7b() -> ModelConfig {
        let mut m = Self::llama_like("Mixtral 8x7B", 32, 8, 4096, 32, 14_336, 32_000, 4096, 128);
        m.moe = Some(MoeConfig {
            num_experts: 8,
            top_k: 2,
            expert_ffn_hidden: 14_336,
            capacity_factor: 1.25,
            dense_layers: 2,
        });
        m
    }

    /// DeepSeek-MoE-16B-style fine-grained config: 64 narrow experts of
    /// width 1408 with top-6 routing, one dense stem layer — many small
    /// experts stress the all-to-all dispatch instead of expert GEMM
    /// width.
    pub fn deepseek_moe_16b() -> ModelConfig {
        let mut m = Self::llama_like(
            "DeepSeek-MoE 16B",
            16,
            16,
            2048,
            28,
            10_944,
            102_400,
            4096,
            128,
        );
        m.moe = Some(MoeConfig {
            num_experts: 64,
            top_k: 6,
            expert_ffn_hidden: 1408,
            capacity_factor: 1.0,
            dense_layers: 1,
        });
        m
    }

    /// The MoE model zoo (fig20_moe): a wide-expert Mixtral-like config
    /// and a fine-grained DeepSeek-style one.
    pub fn moe_zoo() -> Vec<ModelConfig> {
        vec![Self::mixtral_8x7b(), Self::deepseek_moe_16b()]
    }

    // ---- Scalability models (Fig. 19) -------------------------------------

    /// Grok-1 341B dense-equivalent (Fig. 19, 4 wafers).
    pub fn grok1_341b() -> ModelConfig {
        Self::gpt_like("Grok-1 341B", 96, 15_360, 120, 8192, 128)
    }

    /// Llama3 405B (Fig. 19, 4 wafers).
    pub fn llama3_405b() -> ModelConfig {
        Self::llama_like(
            "Llama3 405B",
            128,
            8,
            16_384,
            126,
            53_248,
            128_256,
            8192,
            128,
        )
    }

    /// GPT-3 504B variant (Fig. 19, 6 wafers).
    pub fn gpt3_504b() -> ModelConfig {
        Self::gpt_like("GPT-3 504B", 128, 16_384, 156, 2048, 128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_models_validate() {
        for m in ModelZoo::table2() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn param_counts_land_near_nameplates() {
        let cases = [
            (ModelZoo::gpt3_6_7b(), 6.7),
            (ModelZoo::llama2_7b(), 7.0),
            (ModelZoo::llama3_70b(), 70.0),
            (ModelZoo::gpt3_76b(), 76.0),
            (ModelZoo::gpt3_175b(), 175.0),
            (ModelZoo::opt_175b(), 175.0),
            (ModelZoo::llama2_70b(), 70.0),
            (ModelZoo::bloom_176b(), 176.0),
            (ModelZoo::grok1_341b(), 341.0),
            (ModelZoo::llama3_405b(), 405.0),
            (ModelZoo::gpt3_504b(), 504.0),
        ];
        for (m, nameplate) in cases {
            let b = m.params_b();
            let err = (b - nameplate).abs() / nameplate;
            assert!(
                err < 0.15,
                "{}: {b:.1}B vs nameplate {nameplate}B ({err:.0}%)",
                m.name
            );
        }
    }

    #[test]
    fn head_dim_divides() {
        for m in ModelZoo::table2() {
            assert_eq!(m.head_dim() * m.heads, m.hidden, "{}", m.name);
        }
    }

    #[test]
    fn invalid_head_count_rejected() {
        let mut m = ModelZoo::gpt3_6_7b();
        m.heads = 33;
        assert!(m.validate().is_err());
    }

    #[test]
    fn table2_defaults_match_paper() {
        let m = ModelZoo::gpt3_175b();
        assert_eq!(m.default_batch, 128);
        assert_eq!(m.default_seq, 2048);
        assert_eq!(ModelZoo::opt_175b().default_seq, 4096);
        assert_eq!(ModelZoo::llama2_7b().default_seq, 4096);
    }

    #[test]
    fn moe_zoo_models_validate_and_count_experts() {
        for m in ModelZoo::moe_zoo() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
            let moe = m.moe.expect("moe zoo models carry a MoeConfig");
            assert!(m.dense_layer_count() >= 1, "{}", m.name);
            assert!(m.moe_layer_count() >= 1, "{}", m.name);
            assert_eq!(m.dense_layer_count() + m.moe_layer_count(), m.layers);
            // Stored params dominate active params by roughly E/top_k on
            // the expert path.
            assert!(m.total_params() > m.active_params(), "{}", m.name);
            assert_eq!(
                m.total_expert_params(),
                m.moe_layer_count() * moe.expert_params(m.hidden)
            );
            // The layer split is consistent with the totals.
            let expect = m.dense_layer_count() * m.params_per_layer()
                + m.moe_layer_count() * m.moe_params_per_layer()
                + m.vocab * m.hidden;
            assert_eq!(m.total_params(), expect, "{}", m.name);
        }
        // Mixtral-like lands near the 47B nameplate with ~13B active.
        let mixtral = ModelZoo::mixtral_8x7b();
        let total_b = mixtral.params_b();
        assert!((40.0..50.0).contains(&total_b), "{total_b}");
        let active_b = mixtral.active_params() as f64 / 1e9;
        assert!((10.0..15.0).contains(&active_b), "{active_b}");
        // Dense models: active == total, no expert params.
        let dense = ModelZoo::gpt3_6_7b();
        assert_eq!(dense.active_params(), dense.total_params());
        assert_eq!(dense.total_expert_params(), 0);
        assert_eq!(dense.moe_layer_count(), 0);
    }

    #[test]
    fn invalid_moe_configs_are_rejected() {
        let base = ModelZoo::mixtral_8x7b();
        let with = |f: fn(&mut MoeConfig)| {
            let mut m = base.clone();
            f(m.moe.as_mut().unwrap());
            m
        };
        assert!(with(|c| c.top_k = 0).validate().is_err());
        assert!(with(|c| c.top_k = 99).validate().is_err());
        assert!(with(|c| c.num_experts = 0).validate().is_err());
        assert!(with(|c| c.capacity_factor = 0.5).validate().is_err());
        assert!(with(|c| c.dense_layers = 0).validate().is_err());
        assert!(with(|c| c.dense_layers = 32).validate().is_err());
    }

    #[test]
    fn gated_ffn_has_three_matrices() {
        let llama = ModelZoo::llama2_7b();
        let gpt = ModelZoo::gpt3_6_7b();
        // Same H and L; llama's FFN params = 3*H*F vs gpt's 2*H*(4H).
        let llama_ffn = 3 * llama.hidden * llama.ffn_hidden;
        assert_eq!(
            llama.params_per_layer() - 4 * llama.hidden * llama.hidden - 4 * llama.hidden,
            llama_ffn
        );
        assert!(gpt.params_per_layer() > 0);
    }
}
