//! # temp-graph — compute graphs, transformer builders and LLM workloads
//!
//! The TEMP framework plans *tensor programs*: it never executes real
//! arithmetic, but it needs faithful structure — operator DAGs with residual
//! edges (Fig. 12(a) of the paper), tensor shapes over the (B, M, N, K)
//! dimensions used by the unified parallelism representation (Fig. 10), and
//! byte/FLOP accounting for the memory and cost models.
//!
//! Modules:
//!
//! * [`tensor`] — dtypes and linear-operator dimensions;
//! * [`op`] — operator kinds with FLOP and footprint accounting;
//! * [`graph`] — the operator DAG, topological order and residual-aware
//!   segmentation (the "graph partition" step of the DLS algorithm);
//! * [`segment`] — the segment-chain IR: embedding -> blocks -> head, each
//!   with its own parameter/FLOP/activation footprint (what the Level-1 DP
//!   actually solves over);
//! * [`transformer`] — the 13-operator Transformer block of Fig. 12(a);
//! * [`models`] — the Table II model zoo plus motivation/scalability models;
//! * [`workload`] — training-step configuration and memory formulas
//!   (mixed-precision Adam, activation accounting with recompute modes).
//!
//! # Example
//!
//! ```
//! use temp_graph::models::ModelZoo;
//! use temp_graph::transformer::TransformerBuilder;
//! use temp_graph::workload::Workload;
//!
//! let model = ModelZoo::gpt3_6_7b();
//! let workload = Workload::training(128, 2048);
//! let block = TransformerBuilder::new(&model, &workload).block();
//! assert_eq!(block.op_count(), 13); // Fig. 12(a)
//! ```

pub mod graph;
pub mod models;
pub mod op;
pub mod segment;
pub mod tensor;
pub mod transformer;
pub mod workload;

pub use graph::{ComputeGraph, OpId};
pub use models::ModelConfig;
pub use op::{OpKind, Operator};
pub use segment::{Segment, SegmentChain, SegmentKind};
pub use tensor::{DType, LinearDims};
pub use workload::Workload;

/// Errors produced by graph construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operator id did not exist in the graph.
    UnknownOp(usize),
    /// An edge would create a cycle or reference a missing node.
    InvalidEdge {
        from: usize,
        to: usize,
        reason: String,
    },
    /// A model/workload parameter was invalid.
    InvalidParameter(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownOp(id) => write!(f, "unknown operator id {id}"),
            GraphError::InvalidEdge { from, to, reason } => {
                write!(f, "invalid edge {from} -> {to}: {reason}")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
