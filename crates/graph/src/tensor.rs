//! Tensor dtypes and the (B, M, N, K) linear-operator dimension tuple.
//!
//! TEMP's unified parallelism representation (Fig. 10) splits tensors along
//! four named axes: **B** (batch), **M** (sequence), **N** (input hidden)
//! and **K** (output hidden/intermediate). A linear operator computes
//! `O[B, M, K] = I[B, M, N] x W[N, K]` (Eq. 1 of the paper).

use serde::{Deserialize, Serialize};

/// Numeric precision of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DType {
    /// IEEE half precision — the paper's training dtype for weights and
    /// activations.
    #[default]
    F16,
    /// bfloat16 (same byte width as F16).
    Bf16,
    /// IEEE single precision — the paper's Adam optimizer state dtype.
    F32,
}

impl DType {
    /// Bytes per element.
    pub fn bytes(&self) -> u64 {
        match self {
            DType::F16 | DType::Bf16 => 2,
            DType::F32 => 4,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::F16 => write!(f, "fp16"),
            DType::Bf16 => write!(f, "bf16"),
            DType::F32 => write!(f, "fp32"),
        }
    }
}

/// The four named parallelizable axes of the unified representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Batch dimension (split by DP).
    B,
    /// Sequence dimension (split by SP/CP and by TATP streaming).
    M,
    /// Input-hidden dimension (split by TP variants and TATP).
    N,
    /// Output-hidden/intermediate dimension (split by TP and TATP).
    K,
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Axis::B => write!(f, "B"),
            Axis::M => write!(f, "M"),
            Axis::N => write!(f, "N"),
            Axis::K => write!(f, "K"),
        }
    }
}

/// Dimensions of a linear operator `O[B, M, K] = I[B, M, N] x W[N, K]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinearDims {
    /// Batch size (independent GEMMs).
    pub b: u64,
    /// Rows of the input (sequence/token dimension).
    pub m: u64,
    /// Contraction dimension (input hidden size).
    pub n: u64,
    /// Output columns (output hidden / intermediate size).
    pub k: u64,
}

impl LinearDims {
    /// Creates the dimension tuple.
    pub fn new(b: u64, m: u64, n: u64, k: u64) -> Self {
        LinearDims { b, m, n, k }
    }

    /// Multiply–accumulate FLOPs of the full operator (2 per MAC).
    pub fn flops(&self) -> f64 {
        2.0 * self.b as f64 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Bytes of the input activation `I[B, M, N]`.
    pub fn input_bytes(&self, dtype: DType) -> f64 {
        (self.b * self.m * self.n * dtype.bytes()) as f64
    }

    /// Bytes of the weight `W[N, K]` (shared across the batch).
    pub fn weight_bytes(&self, dtype: DType) -> f64 {
        (self.n * self.k * dtype.bytes()) as f64
    }

    /// Bytes of the output activation `O[B, M, K]`.
    pub fn output_bytes(&self, dtype: DType) -> f64 {
        (self.b * self.m * self.k * dtype.bytes()) as f64
    }

    /// Number of weight parameters.
    pub fn weight_params(&self) -> u64 {
        self.n * self.k
    }

    /// Splits the dims by per-axis factors, rounding up so that shards cover
    /// the tensor (the last shard may be padded).
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    pub fn split(&self, b: u64, m: u64, n: u64, k: u64) -> LinearDims {
        assert!(
            b > 0 && m > 0 && n > 0 && k > 0,
            "split factors must be positive"
        );
        LinearDims {
            b: self.b.div_ceil(b),
            m: self.m.div_ceil(m),
            n: self.n.div_ceil(n),
            k: self.k.div_ceil(k),
        }
    }

    /// Arithmetic intensity in FLOPs per byte touched (input + weight +
    /// output, at the given dtype), used by the roofline compute model.
    pub fn arithmetic_intensity(&self, dtype: DType) -> f64 {
        let bytes = self.input_bytes(dtype) + self.weight_bytes(dtype) + self.output_bytes(dtype);
        if bytes == 0.0 {
            0.0
        } else {
            self.flops() / bytes
        }
    }
}

impl std::fmt::Display for LinearDims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[B={}, M={}, N={}, K={}]",
            self.b, self.m, self.n, self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_widths() {
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::Bf16.bytes(), 2);
        assert_eq!(DType::F32.bytes(), 4);
    }

    #[test]
    fn flops_are_two_bmnk() {
        let d = LinearDims::new(2, 128, 256, 512);
        assert!((d.flops() - 2.0 * 2.0 * 128.0 * 256.0 * 512.0).abs() < 1.0);
    }

    #[test]
    fn byte_accounting() {
        let d = LinearDims::new(1, 4, 8, 16);
        assert_eq!(d.input_bytes(DType::F16), (4 * 8 * 2) as f64);
        assert_eq!(d.weight_bytes(DType::F16), (8 * 16 * 2) as f64);
        assert_eq!(d.output_bytes(DType::F32), (4 * 16 * 4) as f64);
        assert_eq!(d.weight_params(), 128);
    }

    #[test]
    fn split_rounds_up() {
        let d = LinearDims::new(2, 100, 64, 64);
        let s = d.split(2, 3, 1, 4);
        assert_eq!(s.b, 1);
        assert_eq!(s.m, 34);
        assert_eq!(s.n, 64);
        assert_eq!(s.k, 16);
    }

    #[test]
    #[should_panic(expected = "split factors must be positive")]
    fn split_rejects_zero() {
        LinearDims::new(1, 1, 1, 1).split(0, 1, 1, 1);
    }

    #[test]
    fn intensity_grows_with_square_size() {
        let small = LinearDims::new(1, 64, 64, 64);
        let big = LinearDims::new(1, 4096, 4096, 4096);
        assert!(big.arithmetic_intensity(DType::F16) > small.arithmetic_intensity(DType::F16));
    }
}
